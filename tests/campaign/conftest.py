"""Campaign test fixtures: a tiny, fast grid and a fresh store per test."""

from __future__ import annotations

import pytest

from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore


@pytest.fixture()
def tiny_spec() -> CampaignSpec:
    """2 matrices x 2 schemes at scale 0.25: ~a second of compute."""
    return CampaignSpec(
        name="tiny",
        matrices=("wathen100", "Andrews"),
        schemes=("RD", "F0"),
        nranks=(8,),
        fault_loads=(2,),
        scale=0.25,
    )


@pytest.fixture()
def store(tmp_path) -> ResultStore:
    with ResultStore(tmp_path / "cache") as s:
        yield s
