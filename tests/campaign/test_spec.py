"""Grid expansion and presets."""

import pytest

from repro.campaign.spec import (
    BASELINE_SCHEME,
    CampaignCell,
    CampaignSpec,
    preset,
    preset_names,
)
from repro.harness.experiment import ExperimentConfig
from repro.matrices import suite


class TestExpansion:
    def test_cell_count_matches_len(self, tiny_spec):
        cells = tiny_spec.cells()
        assert len(cells) == len(tiny_spec) == 2 * (1 + 2)

    def test_baseline_first_in_every_group(self, tiny_spec):
        cells = tiny_spec.cells()
        by_config = {}
        for cell in cells:
            by_config.setdefault(cell.config, []).append(cell.scheme)
        assert len(by_config) == 2
        for schemes in by_config.values():
            assert schemes[0] == BASELINE_SCHEME
            assert schemes[1:] == ["RD", "F0"]

    def test_expansion_is_deterministic(self, tiny_spec):
        assert tiny_spec.cells() == tiny_spec.cells()

    def test_full_grid_dimensions(self):
        spec = CampaignSpec(
            matrices=("Kuu", "ex15"),
            schemes=("RD",),
            nranks=(4, 8),
            fault_loads=(2, 5),
            seeds=(0, 1, 2),
        )
        assert len(spec) == 2 * 2 * 2 * 3 * (1 + 1)
        configs = spec.experiment_configs()
        assert len(set(configs)) == len(configs) == 24

    def test_cells_carry_spec_scalars(self, tiny_spec):
        for cell in tiny_spec.cells():
            assert cell.config.scale == 0.25
            assert cell.config.nranks == 8
            assert cell.config.n_faults == 2

    def test_explicit_ff_not_duplicated(self):
        spec = CampaignSpec(
            matrices=("Kuu",), schemes=("FF", "RD"), nranks=(4,)
        )
        schemes = [c.scheme for c in spec.cells()]
        assert schemes == ["FF", "RD"]


class TestValidation:
    def test_unknown_matrix_rejected(self):
        with pytest.raises(ValueError, match="unknown matrices"):
            CampaignSpec(matrices=("not-a-matrix",))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown schemes"):
            CampaignSpec(schemes=("MAGIC",))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(matrices=())


class TestPresets:
    def test_known_presets(self):
        assert set(preset_names()) >= {
            "iteration-study",
            "cost-study",
            "dvfs-study",
            "smoke",
        }

    def test_iteration_study_matches_paper_grid(self):
        spec = preset("iteration-study")
        assert spec.matrices == tuple(suite.names())
        assert spec.nranks == (256,)
        assert spec.cr_interval == "paper"
        assert "LI" in spec.schemes and "CR-D" in spec.schemes

    def test_cost_study_uses_young_interval(self):
        assert preset("cost-study").cr_interval == "young"

    def test_override_narrows_grid(self):
        spec = preset("iteration-study", matrices=("Kuu",))
        assert spec.matrices == ("Kuu",)
        assert spec.nranks == (256,)  # untouched

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown preset"):
            preset("nope")


class TestCell:
    def test_label_mentions_the_coordinates(self):
        cell = CampaignCell(
            ExperimentConfig(matrix="Kuu", nranks=8, n_faults=3, seed=7), "LI"
        )
        assert "Kuu" in cell.label
        assert "r8" in cell.label
        assert "f3" in cell.label
        assert "s7" in cell.label
        assert cell.label.endswith("/LI")

    def test_is_baseline(self):
        cfg = ExperimentConfig(matrix="Kuu")
        assert CampaignCell(cfg, "FF").is_baseline
        assert not CampaignCell(cfg, "RD").is_baseline


class TestEngineAxis:
    def test_default_grid_is_sim_only(self, tiny_spec):
        assert tiny_spec.engines == ("sim",)
        assert all(c.config.engine == "sim" for c in tiny_spec.cells())

    def test_engines_multiply_the_grid(self, tiny_spec):
        from dataclasses import replace

        both = replace(tiny_spec, engines=("sim", "analytic"))
        assert len(both) == 2 * len(tiny_spec)
        engines = {c.config.engine for c in both.cells()}
        assert engines == {"sim", "analytic"}

    def test_every_grid_point_appears_under_both_engines(self, tiny_spec):
        from dataclasses import replace

        both = replace(tiny_spec, engines=("sim", "analytic"))
        points = {}
        for config in both.experiment_configs():
            key = (config.matrix, config.nranks, config.n_faults, config.seed)
            points.setdefault(key, set()).add(config.engine)
        assert all(v == {"sim", "analytic"} for v in points.values())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engines"):
            CampaignSpec(matrices=("Kuu",), engines=("warp",))

    def test_empty_engines_rejected(self):
        with pytest.raises(ValueError, match="at least one engine"):
            CampaignSpec(matrices=("Kuu",), engines=())

    def test_describe_mentions_engines_when_swept(self, tiny_spec):
        from dataclasses import replace

        assert "engines" not in tiny_spec.describe()
        both = replace(tiny_spec, engines=("sim", "analytic"))
        assert "analytic" in both.describe()

    def test_label_marks_non_default_engine_and_scope(self):
        cfg = ExperimentConfig(
            matrix="Kuu", nranks=8, n_faults=3, engine="analytic",
            fault_scope="node",
        )
        cell = CampaignCell(cfg, "LI")
        assert "analytic" in cell.label
        assert "node" in cell.label
        assert "analytic" not in CampaignCell(
            ExperimentConfig(matrix="Kuu"), "LI"
        ).label

    def test_model_validation_preset_sweeps_both_engines(self):
        spec = preset("model-validation")
        assert spec.engines == ("sim", "analytic")
        assert set(spec.schemes) == {"RD", "F0", "FI", "CR-D", "CR-M"}
        assert "model-validation" in preset_names()


class TestVictimsPerFaultAxis:
    def test_default_axis_is_single_victim(self, tiny_spec):
        assert tiny_spec.victims_per_fault == (1,)
        assert all(
            c.config.victims_per_fault == 1 for c in tiny_spec.cells()
        )

    def test_axis_multiplies_the_grid(self, tiny_spec):
        from dataclasses import replace

        swept = replace(tiny_spec, victims_per_fault=(1, 2))
        assert len(swept) == 2 * len(tiny_spec)
        assert {c.config.victims_per_fault for c in swept.cells()} == {1, 2}

    def test_invalid_axis_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(matrices=("Kuu",), victims_per_fault=())
        with pytest.raises(ValueError):
            CampaignSpec(matrices=("Kuu",), victims_per_fault=(0,))

    def test_label_marks_multi_victim_cells_only(self):
        multi = CampaignCell(
            ExperimentConfig(matrix="Kuu", victims_per_fault=2), "LI"
        )
        single = CampaignCell(ExperimentConfig(matrix="Kuu"), "LI")
        assert "v2" in multi.label
        assert "v2" not in single.label

    def test_describe_mentions_axis_when_swept(self, tiny_spec):
        from dataclasses import replace

        assert "victim-set" not in tiny_spec.describe()
        swept = replace(tiny_spec, victims_per_fault=(2,))
        assert "victim-set" in swept.describe()

    def test_multi_fault_preset(self):
        spec = preset("multi-fault")
        assert "multi-fault" in preset_names()
        assert spec.victims_per_fault == (2,)
        assert spec.engines == ("sim", "analytic")
        assert {"ESR", "ABCR"} <= set(spec.schemes)
