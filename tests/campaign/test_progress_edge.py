"""Progress and fleet edge cases: empty, all-cached, all-failed, hung.

The satellite coverage for the observability tentpole: degenerate
campaign shapes must render (not crash), the ``--json-progress`` stream
must round-trip through the schema with exactly one terminal line per
cell, and the synthetic pathologies — a hung worker, a retry storm —
must surface as findings through ``repro doctor``.
"""

from __future__ import annotations

import os

import pytest

from repro.campaign import (
    FleetMonitor,
    ResultStore,
    cell_event_from_line,
    render_fleet,
    run_campaign,
)
from repro.campaign.manifest import ManifestCell, ManifestWorker
from repro.cli import main
from tests.campaign.helpers import FLAKY_DIR_ENV, always_raising_worker

CAMPAIGN_ARGS = [
    "campaign",
    "--matrices", "wathen100",
    "--schemes", "RD",
    "--ranks", "8",
    "--faults", "2",
    "--scale", "0.25",
    "--quiet",
]


def tiny_manifest(store_root):
    with ResultStore(store_root) as store:
        manifest = store.latest_manifest()
    assert manifest is not None
    return manifest


class TestEmptyCampaign:
    """A monitor that never sees a cell must still render and persist."""

    def test_snapshot_and_frame_degrade_cleanly(self):
        mon = FleetMonitor(workers=2)
        mon.begin(total=0, name="empty")
        snap = mon.snapshot()
        assert snap["done"] == 0 and snap["eta_s"] is None
        frame = render_fleet(snap)
        assert "0/0 (0%)" in frame and "eta --" in frame

    def test_manifest_is_empty_but_well_formed(self):
        from repro.campaign import manifest_from_doc, manifest_to_doc

        mon = FleetMonitor(workers=2)
        mon.begin(total=0, name="empty")
        mon.finalize()
        manifest = mon.manifest()
        assert manifest.cells == () and manifest.worker_rows == ()
        assert manifest_from_doc(manifest_to_doc(manifest)) == manifest


class TestAllCachedResume:
    def test_resume_banks_everything_and_stays_clean(self, tiny_spec, store):
        first = run_campaign(tiny_spec, store=store)
        second = run_campaign(tiny_spec, store=store)
        assert second.n_cached == len(second.results)
        manifest = second.manifest
        assert {c.status for c in manifest.cells} == {"cached"}
        assert manifest.counters["banked_s"] == pytest.approx(
            sum(r.elapsed_s for r in first.results if r.status == "ran"),
            rel=0.5,
        )
        assert manifest.counters["store_overwrites"] == 0
        # cached-only fleet evidence raises no anomalies
        assert second.anomalies() == []

    def test_cached_events_round_trip_one_terminal_line_per_cell(
        self, tiny_spec, store
    ):
        run_campaign(tiny_spec, store=store)
        events = []
        result = run_campaign(tiny_spec, store=store, event_sink=events.append)
        lines = [e for e in events]
        terminal = [e for e in lines if e["event"] == "cached"]
        assert len(terminal) == len(result.results)
        assert {e["cell"] for e in terminal} == {
            r.cell.label for r in result.results
        }


class TestAllFailedCampaign:
    def test_manifest_attributes_the_failures(self, tiny_spec, store, tmp_path):
        os.environ[FLAKY_DIR_ENV] = str(tmp_path / "flaky")
        (tmp_path / "flaky").mkdir()
        try:
            result = run_campaign(
                tiny_spec, store=store, worker=always_raising_worker, retries=1
            )
        finally:
            os.environ.pop(FLAKY_DIR_ENV, None)
        assert result.n_failed == len(result.results)
        manifest = result.manifest
        assert {c.status for c in manifest.cells} == {"failed"}
        assert all(c.error for c in manifest.cells)
        # summary still renders with every cell failed
        from repro.campaign import format_summary

        text = format_summary(result)
        assert "0 ran" in text and f"{result.n_failed} failed" in text


class TestDoctorFleetScenarios:
    """Synthetic pathologies must fire through the full doctor path."""

    def _persist(self, tmp_path, manifest):
        root = tmp_path / "cache"
        with ResultStore(root) as store:
            store.put_manifest(manifest)
        return str(root)

    def _campaign_manifest(self, tiny_spec, store):
        return run_campaign(tiny_spec, store=store).manifest

    def test_healthy_campaign_passes_doctor(self, tiny_spec, store, capsys):
        run_campaign(tiny_spec, store=store)
        assert main(["doctor", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "manifest" in out and "no findings" in out

    def test_synthetic_hang_fires_heartbeat_gap(
        self, tiny_spec, store, tmp_path, capsys
    ):
        from dataclasses import replace

        manifest = self._campaign_manifest(tiny_spec, store)
        hung = replace(
            manifest,
            heartbeat_interval_s=1.0,
            worker_rows=(
                ManifestWorker(
                    worker=4242, cells_done=1, busy_s=1.0, heartbeats=3,
                    max_heartbeat_gap_s=50.0, last_cell="wathen100/r8/f2/x0.25/RD",
                ),
            ),
        )
        root = self._persist(tmp_path, hung)
        assert main(["doctor", "--store", root]) == 1
        out = capsys.readouterr().out
        assert "heartbeat_gap" in out
        assert "worker went 50.0s without a heartbeat" in out

    def test_synthetic_straggler_fires_worker_straggler(
        self, tiny_spec, store, tmp_path, capsys
    ):
        from dataclasses import replace

        manifest = self._campaign_manifest(tiny_spec, store)
        stuck = replace(
            manifest,
            finished_at=manifest.finished_at + 100.0,
            cells=(
                *manifest.cells,
                ManifestCell(
                    label="Andrews/r8/f2/x0.25/RD", cell_id="f" * 16,
                    scheme="RD", status="running", worker=4242,
                    started_ts=manifest.finished_at,
                ),
            ),
        )
        root = self._persist(tmp_path, stuck)
        assert main(["doctor", "--store", root]) == 1
        out = capsys.readouterr().out
        assert "worker_straggler" in out
        assert "still running on worker 4242" in out

    def test_retry_storm_fires_on_a_flapping_grid(
        self, tiny_spec, store, tmp_path, capsys
    ):
        from dataclasses import replace

        manifest = self._campaign_manifest(tiny_spec, store)
        stormy = replace(
            manifest,
            counters={**manifest.counters, "retries": 5, "ran": 6, "failed": 0},
        )
        root = self._persist(tmp_path, stormy)
        assert main(["doctor", "--store", root]) == 1
        assert "retry_storm" in capsys.readouterr().out

    def test_cache_stampede_fires_on_overwrites(
        self, tiny_spec, store, tmp_path, capsys
    ):
        from dataclasses import replace

        manifest = self._campaign_manifest(tiny_spec, store)
        stampede = replace(
            manifest,
            counters={**manifest.counters, "store_overwrites": 6, "ran": 6},
        )
        root = self._persist(tmp_path, stampede)
        assert main(["doctor", "--store", root]) == 1
        assert "cache_stampede" in capsys.readouterr().out

    def test_run_id_selects_a_specific_manifest(
        self, tiny_spec, store, capsys
    ):
        manifest = self._campaign_manifest(tiny_spec, store)
        assert main(
            ["doctor", "--store", str(store.root), "--run-id", manifest.run_id]
        ) == 0
        assert manifest.run_id in capsys.readouterr().out

    def test_unknown_run_id_is_an_error(self, tiny_spec, store):
        self._campaign_manifest(tiny_spec, store)
        with pytest.raises(SystemExit, match="no campaign manifest"):
            main(["doctor", "--store", str(store.root), "--run-id", "nope"])


class TestJsonProgressCli:
    def test_stream_round_trips_with_one_terminal_line_per_cell(
        self, tmp_path, capsys
    ):
        progress = tmp_path / "progress.jsonl"
        code = main(
            CAMPAIGN_ARGS
            + [
                "--store", str(tmp_path / "cache"),
                "--workers", "2",
                "--json-progress", str(progress),
            ]
        )
        assert code == 0
        events = [
            cell_event_from_line(line)
            for line in progress.read_text().splitlines()
        ]
        assert events, "progress stream is empty"
        run_ids = {e["run_id"] for e in events}
        assert len(run_ids) == 1
        terminal = [e for e in events if e["event"] in ("finished", "failed")]
        labels = {e["cell"] for e in events}
        assert len(terminal) == len(labels)
        assert {e["cell"] for e in terminal} == labels
        # every cell queued before its terminal event
        for label in labels:
            kinds = [e["event"] for e in events if e["cell"] == label]
            assert kinds.count("queued") >= 1

    def test_watch_once_prints_an_escape_free_final_frame(
        self, tmp_path, capsys
    ):
        code = main(
            CAMPAIGN_ARGS
            + ["--store", str(tmp_path / "cache"), "--watch", "--once"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "\x1b" not in out
        assert "repro campaign —" in out
        assert "eta 0:00" in out
        assert "run manifest" in out

    def test_once_requires_watch(self, tmp_path):
        with pytest.raises(SystemExit, match="--once requires --watch"):
            main(CAMPAIGN_ARGS + ["--store", str(tmp_path / "cache"), "--once"])
