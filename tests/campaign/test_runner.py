"""Runner: execution, resume, retries, crashes, serial/parallel equality."""

import pytest

from repro.campaign.progress import (
    ProgressReporter,
    format_normalized_tables,
    format_summary,
    summary_counters,
)
from repro.campaign.runner import (
    CellTimeout,
    execute_cell,
    run_campaign,
)
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore
from repro.harness.experiment import ExperimentConfig

from tests.campaign.helpers import (
    FLAKY_DIR_ENV,
    always_raising_worker,
    assert_reports_equal,
    crashing_worker,
    raising_worker,
)


@pytest.fixture()
def flaky_state(tmp_path, monkeypatch):
    state = tmp_path / "flaky-state"
    state.mkdir()
    monkeypatch.setenv(FLAKY_DIR_ENV, str(state))
    return state


class TestExecuteCell:
    def test_baseline_priming_skips_the_ff_solve(self):
        cfg = ExperimentConfig(matrix="wathen100", nranks=8, n_faults=2, scale=0.25)
        ff, _ = execute_cell(CampaignCell(cfg, "FF"))
        primed, _ = execute_cell(CampaignCell(cfg, "RD"), baseline=ff)
        unprimed, _ = execute_cell(CampaignCell(cfg, "RD"))
        assert_reports_equal(primed, unprimed)

    def test_timeout_aborts_the_cell(self):
        cfg = ExperimentConfig(matrix="wathen100", nranks=8, n_faults=2)
        with pytest.raises(CellTimeout):
            execute_cell(CampaignCell(cfg, "FF"), timeout_s=1e-3)


class TestSerialCampaign:
    def test_runs_every_cell(self, tiny_spec, store):
        result = run_campaign(tiny_spec, store=store, max_workers=1)
        assert result.n_ran == len(tiny_spec)
        assert result.n_failed == 0
        assert [r.cell for r in result.results] == tiny_spec.cells()

    def test_resume_serves_everything_from_cache(self, tiny_spec, store):
        first = run_campaign(tiny_spec, store=store, max_workers=1)
        second = run_campaign(tiny_spec, store=store, max_workers=1)
        assert second.n_cached == len(tiny_spec)
        assert second.n_ran == 0
        for a, b in zip(first.results, second.results):
            assert_reports_equal(a.report, b.report)

    def test_no_resume_recomputes(self, tiny_spec, store):
        run_campaign(tiny_spec, store=store, max_workers=1)
        fresh = run_campaign(tiny_spec, store=store, max_workers=1, resume=False)
        assert fresh.n_ran == len(tiny_spec)

    def test_partial_store_runs_only_the_gap(self, tiny_spec, store):
        # seed the store with one matrix's cells only
        half = CampaignSpec(
            name="half",
            matrices=("wathen100",),
            schemes=tiny_spec.schemes,
            nranks=tiny_spec.nranks,
            fault_loads=tiny_spec.fault_loads,
            scale=tiny_spec.scale,
        )
        run_campaign(half, store=store, max_workers=1)
        result = run_campaign(tiny_spec, store=store, max_workers=1)
        assert result.n_cached == 3
        assert result.n_ran == 3


class TestRetries:
    def test_cell_raising_once_then_succeeding(self, tiny_spec, store, flaky_state):
        result = run_campaign(
            tiny_spec, store=store, max_workers=1, worker=raising_worker
        )
        assert result.n_failed == 0
        retried = [r for r in result.results if r.attempts > 1]
        assert {r.cell.scheme for r in retried} == {"RD"}

    def test_retry_exhaustion_fails_the_cell_not_the_campaign(
        self, tiny_spec, store, flaky_state
    ):
        result = run_campaign(
            tiny_spec, store=store, max_workers=1, worker=always_raising_worker
        )
        # every baseline failed; their scheme cells are failed by propagation
        assert result.n_failed == len(tiny_spec)
        for r in result.results:
            if not r.cell.is_baseline:
                assert "baseline failed" in r.error

    def test_worker_crash_rebuilds_pool_and_retries(
        self, tiny_spec, store, flaky_state
    ):
        result = run_campaign(
            tiny_spec, store=store, max_workers=2, worker=crashing_worker
        )
        assert result.n_failed == 0
        assert result.n_ran == len(tiny_spec)
        crashed = [r for r in result.results if r.attempts > 1]
        assert any(r.cell.scheme == "RD" for r in crashed)

    def test_parallel_transient_errors_are_retried(
        self, tiny_spec, store, flaky_state
    ):
        result = run_campaign(
            tiny_spec, store=store, max_workers=2, worker=raising_worker
        )
        assert result.n_failed == 0


class TestSerialParallelEquality:
    def test_identical_reports_and_tables(self, tiny_spec, tmp_path):
        serial = run_campaign(
            tiny_spec, store=ResultStore(tmp_path / "s"), max_workers=1
        )
        parallel = run_campaign(
            tiny_spec, store=ResultStore(tmp_path / "p"), max_workers=2
        )
        assert serial.n_failed == parallel.n_failed == 0
        for a, b in zip(serial.results, parallel.results):
            assert a.cell == b.cell
            assert_reports_equal(a.report, b.report)
        assert format_normalized_tables(serial) == format_normalized_tables(parallel)

    def test_cached_equals_fresh(self, tiny_spec, store):
        fresh = run_campaign(tiny_spec, store=store, max_workers=2)
        cached = run_campaign(tiny_spec, store=store, max_workers=2)
        assert format_normalized_tables(fresh) == format_normalized_tables(cached)


class TestProgressAndSummary:
    def test_progress_counts_and_eta(self, tiny_spec, store, capsys):
        progress = ProgressReporter(len(tiny_spec), workers=1)
        assert progress.eta_s() is None
        result = run_campaign(
            tiny_spec, store=store, max_workers=1, progress=progress
        )
        assert progress.finished == len(tiny_spec)
        err = capsys.readouterr().err
        assert f"[{len(tiny_spec)}/{len(tiny_spec)}]" in err
        counters = summary_counters(result)
        assert counters["ran"] == len(tiny_spec)
        assert counters["wall_s"] > 0

    def test_summary_lists_every_cell_with_cache_status(self, tiny_spec, store):
        run_campaign(tiny_spec, store=store, max_workers=1)
        resumed = run_campaign(tiny_spec, store=store, max_workers=1)
        text = format_summary(resumed)
        cached_rows = sum(
            1 for line in text.splitlines() if "cached" in line.split()
        )
        assert cached_rows == len(tiny_spec)
        assert "aggregate speedup" in text
        for matrix in tiny_spec.matrices:
            assert matrix in text

    def test_disabled_progress_prints_nothing(self, tiny_spec, store, capsys):
        progress = ProgressReporter(len(tiny_spec), workers=1, enabled=False)
        run_campaign(tiny_spec, store=store, max_workers=1, progress=progress)
        assert capsys.readouterr().err == ""


class TestWastedCompute:
    """Failed attempts must surface the seconds they burned."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failed_cells_carry_their_wasted_seconds(
        self, tiny_spec, store, workers
    ):
        from tests.campaign.helpers import wasteful_worker

        result = run_campaign(
            tiny_spec, store=store, max_workers=workers, worker=wasteful_worker
        )
        failed = [r for r in result.results if r.status == "failed"]
        assert failed, "no RD cells failed"
        for r in failed:
            # 2 attempts (1 retry) x 0.05s each
            assert r.attempts == 2
            assert r.elapsed_s == pytest.approx(0.10)
            assert "RuntimeError: wasted" in r.error
        # the manifest attributes the same wasted compute per cell
        for r in failed:
            cell = result.manifest.cell(r.cell.label)
            assert cell.status == "failed"
            assert cell.wasted_s == pytest.approx(0.10)
        # ...and failed seconds never leak into the compute aggregate
        assert result.compute_s == pytest.approx(
            sum(r.elapsed_s for r in result.results if r.ok)
        )

    def test_progress_line_reports_wasted_seconds(self, tiny_spec):
        import io

        from repro.campaign.runner import CellResult

        cell = tiny_spec.cells()[0]
        stream = io.StringIO()
        progress = ProgressReporter(1, workers=1, stream=stream)
        progress.cell_done(
            CellResult(
                cell=cell, status="failed", elapsed_s=0.1, attempts=2,
                error="RuntimeError: boom",
            )
        )
        line = stream.getvalue()
        assert "(0.10s wasted)" in line
        assert "RuntimeError: boom" in line

    def test_campaign_result_carries_run_id_and_manifest(
        self, tiny_spec, store
    ):
        result = run_campaign(tiny_spec, store=store, run_id="cafecafecafecafe")
        assert result.run_id == "cafecafecafecafe"
        assert result.manifest.run_id == "cafecafecafecafe"
        assert len(result.manifest.cells) == len(result.results)
        assert store.get_manifest("cafecafecafecafe") is not None
