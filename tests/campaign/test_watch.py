"""The --watch dashboard: frame rendering and the repaint loop."""

from __future__ import annotations

import io
import time

from repro.campaign.fleet import FleetMonitor
from repro.campaign.runner import CellResult
from repro.campaign.watch import CampaignWatch, render_fleet
from repro.obs.term import CLEAR


def snapshot(**overrides) -> dict:
    snap = {
        "run_id": "feedbeeffeedbeef",
        "name": "watch-test",
        "workers": 2,
        "total": 6,
        "done": 3,
        "ran": 2,
        "cached": 1,
        "failed": 0,
        "retries": 1,
        "wall_s": 12.0,
        "cells_per_sec": 0.25,
        "eta_s": 36.0,
        "queue_wait_s": 0.5,
        "compute_s": 8.0,
        "wasted_s": 0.1,
        "banked_s": 4.0,
        "log_lines": 3,
        "worker_rows": [
            {
                "worker": 101, "state": "busy",
                "cell": "wathen100/r8/f2/x0.25/FF", "cell_age_s": 2.5,
                "hb_age_s": 0.4, "heartbeats": 11, "done": 2,
                "failed_attempts": 0, "rss_bytes": 64 << 20,
            },
            {
                "worker": 102, "state": "idle", "cell": None,
                "cell_age_s": None, "hb_age_s": 1.0, "heartbeats": 12,
                "done": 1, "failed_attempts": 1, "rss_bytes": 32 << 20,
            },
        ],
        "last_error": None,
    }
    snap.update(overrides)
    return snap


class TestRenderFleet:
    def test_frame_is_escape_free(self):
        frame = render_fleet(snapshot())
        assert "\x1b" not in frame

    def test_frame_carries_the_headline_numbers(self):
        frame = render_fleet(snapshot())
        assert "watch-test [run feedbeeffeedbeef], 2 worker(s)" in frame
        assert "3/6 (50%)" in frame
        assert "2 ran  1 cached  0 failed  1 retries" in frame
        assert "eta 0:36" in frame
        assert "compute 8.00s" in frame and "banked 4.00s" in frame

    def test_worker_rows_show_current_cell_and_age(self):
        frame = render_fleet(snapshot())
        assert "wathen100/r8/f2/x0.25/FF (2.5s)" in frame
        assert "busy" in frame and "idle" in frame
        assert "64.0M" in frame

    def test_unknown_eta_renders_as_dashes(self):
        assert "eta --" in render_fleet(snapshot(eta_s=None))

    def test_serial_run_renders_a_placeholder_row(self):
        frame = render_fleet(snapshot(worker_rows=[]))
        assert "serial run: cells execute in-process" in frame

    def test_last_error_line(self):
        frame = render_fleet(
            snapshot(
                last_error={
                    "cell": "Andrews/r8/f2/x0.25/RD",
                    "error": "RuntimeError: boom",
                    "attempts": 3,
                }
            )
        )
        assert "last error" in frame
        assert "Andrews/r8/f2/x0.25/RD (attempt 3): RuntimeError: boom" in frame


class TestCampaignWatch:
    def _monitor(self, tiny_spec) -> FleetMonitor:
        mon = FleetMonitor("feedbeeffeedbeef", workers=2)
        mon.begin(total=2, name="watch-test")
        mon.cell_done(
            CellResult(cell=tiny_spec.cells()[0], status="ran", elapsed_s=0.5)
        )
        return mon

    def test_once_mode_never_spawns_the_thread(self, tiny_spec):
        watch = CampaignWatch(self._monitor(tiny_spec), once=True).start()
        assert watch._thread is None
        frame = watch.final_frame()
        assert "\x1b" not in frame
        assert "1/2" in frame
        watch.stop()

    def test_live_loop_repaints_with_one_clear_per_frame(self, tiny_spec):
        out = io.StringIO()
        watch = CampaignWatch(
            self._monitor(tiny_spec), interval_s=0.01, out=out
        ).start()
        deadline = time.time() + 5.0
        while time.time() < deadline and CLEAR not in out.getvalue():
            time.sleep(0.01)
        watch.stop()
        text = out.getvalue()
        assert text.count(CLEAR) >= 1
        assert "watch-test" in text

    def test_stop_is_idempotent(self, tiny_spec):
        watch = CampaignWatch(
            self._monitor(tiny_spec), interval_s=0.01, out=io.StringIO()
        ).start()
        watch.stop()
        watch.stop()
        assert watch._thread is None
