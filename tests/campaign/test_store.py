"""Result store: hashing, round-trips, hits and misses, self-healing."""

import json
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.campaign.serialize import report_from_dict, report_to_dict
from repro.campaign.spec import CampaignCell
from repro.campaign.store import (
    ResultStore,
    _hash_material,
    cell_key,
    legacy_cell_key,
    legacy_cell_keys,
)
from repro.harness.experiment import Experiment, ExperimentConfig


@pytest.fixture(scope="module")
def solved():
    """One real faulty solve to push through the store."""
    exp = Experiment(
        ExperimentConfig(matrix="wathen100", nranks=8, n_faults=2, scale=0.25)
    )
    cell = CampaignCell(exp.config, "LI")
    return cell, exp.run("LI")


def assert_reports_equal(a, b):
    assert a.scheme == b.scheme
    assert a.converged == b.converged
    assert a.iterations == b.iterations
    assert a.final_relative_residual == b.final_relative_residual
    assert a.time_s == b.time_s
    assert a.energy_j == b.energy_j
    assert a.baseline_iters == b.baseline_iters
    np.testing.assert_array_equal(a.residual_history, b.residual_history)
    assert a.account.charges == b.account.charges
    assert a.rapl.log.phases == b.rapl.log.phases
    assert a.faults == b.faults
    assert a.traffic == b.traffic


class TestSerialize:
    def test_json_round_trip_is_exact(self, solved):
        _, report = solved
        data = json.loads(json.dumps(report_to_dict(report)))
        assert_reports_equal(report_from_dict(data), report)

    def test_multivictim_fault_round_trip(self, solved):
        from repro.faults.events import FaultEvent

        _, report = solved
        multi = replace(report, faults=[FaultEvent.multi(5, (2, 0, 3))])
        data = json.loads(json.dumps(report_to_dict(multi)))
        assert data["faults"][0]["victims"] == [2, 0, 3]
        assert data["faults"][0]["victim_rank"] == 2
        assert report_from_dict(data).faults == multi.faults

    def test_single_victim_wire_shape_has_no_victims_key(self, solved):
        """Single-victim events keep the pre-victim-set payload bytes;
        decoding normalizes them back to one-element victim sets."""
        _, report = solved
        data = report_to_dict(report)
        assert report.faults  # the fixture solve did inject faults
        assert all("victims" not in ev for ev in data["faults"])
        back = report_from_dict(json.loads(json.dumps(data)))
        assert all(e.victims == (e.victim_rank,) for e in back.faults)

    def test_unserializable_details_are_dropped_with_a_note(self, solved):
        _, report = solved
        report.details["weird"] = object()
        try:
            data = report_to_dict(report)
        finally:
            del report.details["weird"]
        assert "weird" not in data["details"]
        assert "weird" in data["details"]["_dropped"]


class TestKeying:
    def test_key_is_stable(self, solved):
        cell, _ = solved
        assert cell_key(cell) == cell_key(cell)

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 1},
            {"n_faults": 3},
            {"nranks": 16},
            {"tol": 1e-6},
            {"cr_interval": "young"},
            {"scale": 0.5},
            {"engine": "analytic"},
            {"fault_scope": "node"},
        ],
    )
    def test_any_config_change_changes_the_key(self, solved, change):
        cell, _ = solved
        other = CampaignCell(replace(cell.config, **change), cell.scheme)
        assert cell_key(other) != cell_key(cell)

    def test_scheme_changes_the_key(self, solved):
        cell, _ = solved
        assert cell_key(CampaignCell(cell.config, "RD")) != cell_key(cell)


class TestStore:
    def test_miss_then_hit(self, store, solved):
        cell, report = solved
        assert store.get(cell) is None
        assert cell not in store
        store.put(cell, report, elapsed_s=1.5)
        assert cell in store
        assert_reports_equal(store.get(cell), report)

    def test_hit_carries_bookkeeping(self, store, solved):
        cell, report = solved
        store.put(cell, report, elapsed_s=1.5)
        entry = store.get_entry(cell)
        assert entry.elapsed_s == 1.5
        assert entry.key == cell_key(cell)

    def test_changed_config_misses(self, store, solved):
        cell, report = solved
        store.put(cell, report)
        other = CampaignCell(replace(cell.config, seed=99), cell.scheme)
        assert store.get(other) is None

    def test_persists_across_instances(self, tmp_path, solved):
        cell, report = solved
        with ResultStore(tmp_path / "c") as first:
            first.put(cell, report)
        with ResultStore(tmp_path / "c") as second:
            assert_reports_equal(second.get(cell), report)

    def test_missing_payload_heals_to_a_miss(self, store, solved):
        cell, report = solved
        key = store.put(cell, report)
        store._payload_path(key).unlink()
        assert store.get(cell) is None
        assert len(store) == 0  # stale row was dropped

    def test_len_and_stats(self, store, solved):
        cell, report = solved
        assert len(store) == 0
        store.put(cell, report, elapsed_s=2.0)
        assert len(store) == 1
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["compute_seconds_banked"] == 2.0

    def test_stats_report_disk_bytes_and_lookup_counters(self, store, solved):
        cell, report = solved
        assert store.stats()["payload_bytes"] == 0
        assert store.get(cell) is None  # one miss
        store.put(cell, report)
        assert store.get(cell) is not None  # one hit
        stats = store.stats()
        payload = store._payload_path(cell_key(cell))
        assert stats["payload_bytes"] == payload.stat().st_size > 0
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_clear(self, store, solved):
        cell, report = solved
        store.put(cell, report)
        store.clear()
        assert len(store) == 0
        assert store.get(cell) is None

    def test_overwrites_are_counted(self, store, solved):
        cell, report = solved
        assert store.stats()["overwrites"] == 0
        store.put(cell, report)
        assert store.stats()["overwrites"] == 0
        store.put(cell, report)  # same key again: an overwrite
        store.put(cell, report)
        assert store.overwrites == 2
        assert store.stats()["overwrites"] == 2
        assert len(store) == 1


def make_manifest(run_id: str, name: str = "m", finished_at: float = 2000.0):
    from repro.campaign.manifest import ManifestCell, RunManifest

    return RunManifest(
        run_id=run_id,
        name=name,
        workers=2,
        heartbeat_interval_s=1.0,
        started_at=1000.0,
        finished_at=finished_at,
        wall_s=finished_at - 1000.0,
        counters={"cells": 1, "ran": 1},
        cells=(
            ManifestCell(
                label="wathen100/r8/f2/x0.25/LI", cell_id="a" * 16,
                scheme="LI", status="ran", compute_s=1.0,
            ),
        ),
    )


class TestManifestPersistence:
    def test_round_trips_through_the_store(self, store):
        manifest = make_manifest("feedbeeffeedbeef")
        store.put_manifest(manifest)
        assert store.get_manifest("feedbeeffeedbeef") == manifest

    def test_missing_run_id_is_none(self, store):
        assert store.get_manifest("absent") is None
        assert store.latest_manifest() is None

    def test_latest_wins_by_finish_time(self, store):
        store.put_manifest(make_manifest("a" * 16, finished_at=2000.0))
        store.put_manifest(make_manifest("b" * 16, finished_at=3000.0))
        assert store.latest_manifest().run_id == "b" * 16
        listed = store.manifests()
        assert [run_id for run_id, _, _ in listed] == ["b" * 16, "a" * 16]

    def test_rewriting_a_run_id_replaces_it(self, store):
        store.put_manifest(make_manifest("a" * 16, name="first"))
        store.put_manifest(make_manifest("a" * 16, name="second"))
        assert store.get_manifest("a" * 16).name == "second"
        assert len(store.manifests()) == 1

    def test_manifests_survive_reopen_and_clear_removes_them(
        self, tmp_path, solved
    ):
        with ResultStore(tmp_path / "cache") as store:
            store.put_manifest(make_manifest("a" * 16))
        with ResultStore(tmp_path / "cache") as store:
            assert store.get_manifest("a" * 16) is not None
            store.clear()
            assert store.get_manifest("a" * 16) is None

    def test_manifest_writes_never_touch_payloads(self, store, solved):
        cell, report = solved
        store.put(cell, report)
        payload = store._payload_path(cell_key(cell))
        before = payload.read_bytes()
        store.put_manifest(make_manifest("a" * 16))
        assert payload.read_bytes() == before
        assert store.stats()["overwrites"] == 0


class TestConcurrency:
    """The serving tier reads and writes from worker threads; two CLI
    processes may share one store.  Neither may see 'database is locked'
    or a torn payload."""

    N_THREADS = 8
    N_READS = 5

    def _hammer(self, store_for_thread, cell, report, errors):
        def work(seed):
            try:
                mine = CampaignCell(replace(cell.config, seed=seed), cell.scheme)
                s = store_for_thread(seed)
                assert s.put(mine, report) == cell_key(mine)
                for _ in range(self.N_READS):
                    got = s.get(mine)
                    assert got is not None
                    assert got.iterations == report.iterations
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(seed,))
            for seed in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_threads_share_one_connection(self, store, solved):
        cell, report = solved
        errors = []
        self._hammer(lambda seed: store, cell, report, errors)
        assert errors == []
        assert len(store) == self.N_THREADS
        assert store.hits == self.N_THREADS * self.N_READS

    def test_two_instances_share_one_store_on_disk(self, tmp_path, solved):
        """Separate connections on one directory — WAL + busy_timeout
        territory, the cross-process sharing mode."""
        cell, report = solved
        with ResultStore(tmp_path / "c") as a, ResultStore(tmp_path / "c") as b:
            errors = []
            self._hammer(
                lambda seed: a if seed % 2 == 0 else b, cell, report, errors
            )
            assert errors == []
            assert len(a) == len(b) == self.N_THREADS
            # every cell is visible through both connections
            for seed in range(self.N_THREADS):
                mine = CampaignCell(
                    replace(cell.config, seed=seed), cell.scheme
                )
                assert mine in a and mine in b


def _write_v2_entry(store, cell, report):
    """Hand-build the entry a format-2 store would hold for this cell:
    keyed by the legacy hash, payload config without the post-v2 fields."""
    import time
    from dataclasses import asdict

    key = legacy_cell_key(cell)
    config = asdict(cell.config)
    del config["engine"], config["fault_scope"]
    path = store._payload_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "key": key,
        "cell": {"config": config, "scheme": cell.scheme},
        "report": report_to_dict(report),
    }
    path.write_text(json.dumps(payload, sort_keys=True))
    cfg = cell.config
    store._db.execute(
        "INSERT OR REPLACE INTO results VALUES "
        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (
            key, cfg.matrix, cell.scheme, cfg.nranks, cfg.n_faults, cfg.seed,
            cfg.scale, str(cfg.cr_interval), cfg.tol, int(report.converged),
            report.iterations, report.time_s, report.energy_j, 1.0,
            time.time(), str(path.relative_to(store.root)),
        ),
    )
    store._db.commit()
    return key


def _write_v4_entry(store, cell, report):
    """Hand-build the entry a format-4 store would hold for this cell:
    keyed by the v4 hash, payload config without ``victims_per_fault``."""
    import time
    from dataclasses import asdict

    config = asdict(cell.config)
    del config["victims_per_fault"]
    key = _hash_material(4, config, cell.scheme)
    path = store._payload_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "key": key,
        "cell": {"config": config, "scheme": cell.scheme},
        "report": report_to_dict(report),
    }
    path.write_text(json.dumps(payload, sort_keys=True))
    cfg = cell.config
    store._db.execute(
        "INSERT OR REPLACE INTO results VALUES "
        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (
            key, cfg.matrix, cell.scheme, cfg.nranks, cfg.n_faults, cfg.seed,
            cfg.scale, str(cfg.cr_interval), cfg.tol, int(report.converged),
            report.iterations, report.time_s, report.energy_j, 1.0,
            time.time(), str(path.relative_to(store.root)),
        ),
    )
    store._db.commit()
    return key


class TestMigration:
    """Format-2 stores keep serving their banked cells under format 3."""

    def test_v3_and_legacy_keys_differ(self, solved):
        cell, _ = solved
        assert legacy_cell_key(cell) is not None
        assert legacy_cell_key(cell) != cell_key(cell)

    def test_post_v2_cells_have_no_legacy_identity(self, solved):
        cell, _ = solved
        analytic = CampaignCell(
            replace(cell.config, engine="analytic"), cell.scheme
        )
        node = CampaignCell(
            replace(cell.config, fault_scope="node"), cell.scheme
        )
        assert legacy_cell_key(analytic) is None
        assert legacy_cell_key(node) is None

    def test_v2_store_loads_under_v3(self, store, solved):
        cell, report = solved
        legacy = _write_v2_entry(store, cell, report)
        entry = store.get_entry(cell)
        assert entry is not None
        assert entry.key == legacy
        assert_reports_equal(entry.report, report)
        assert cell in store

    def test_v2_payload_config_gains_defaults_in_entries(self, store, solved):
        cell, report = solved
        _write_v2_entry(store, cell, report)
        (entry,) = list(store.entries())
        assert entry.cell.config.engine == "sim"
        assert entry.cell.config.fault_scope == "process"
        assert entry.cell.config == cell.config

    def test_v3_write_wins_over_legacy_fallback(self, store, solved):
        """Once a cell is recomputed and stored under its v3 key, the
        fresh entry is served (the legacy row remains, unreferenced)."""
        cell, report = solved
        _write_v2_entry(store, cell, report)
        store.put(cell, report, elapsed_s=9.0)
        entry = store.get_entry(cell)
        assert entry.key == cell_key(cell)
        assert entry.elapsed_s == 9.0

    def test_analytic_cells_never_hit_legacy_rows(self, store, solved):
        cell, report = solved
        _write_v2_entry(store, cell, report)
        analytic = CampaignCell(
            replace(cell.config, engine="analytic"), cell.scheme
        )
        assert store.get(analytic) is None

    def test_legacy_chain_is_newest_first(self, solved):
        """An all-defaults cell reaches back through v4, v3 and v2."""
        cell, _ = solved
        keys = legacy_cell_keys(cell)
        assert len(keys) == 3
        assert len(set(keys)) == 3
        assert keys[-1] == legacy_cell_key(cell)
        assert cell_key(cell) not in keys

    def test_multivictim_cells_have_no_legacy_identity(self, solved):
        """A v4 store only ever held single-victim cells, so a
        victims_per_fault > 1 cell must not chase any legacy key."""
        cell, _ = solved
        multi = CampaignCell(
            replace(cell.config, victims_per_fault=2), cell.scheme
        )
        assert legacy_cell_keys(multi) == []
        assert legacy_cell_key(multi) is None

    def test_v4_store_loads_under_v5(self, store, solved):
        cell, report = solved
        v4_key = _write_v4_entry(store, cell, report)
        entry = store.get_entry(cell)
        assert entry is not None
        assert entry.key == v4_key
        assert_reports_equal(entry.report, report)
        assert entry.cell.config.victims_per_fault == 1
        assert entry.cell.config == cell.config

    def test_multivictim_cells_never_hit_v4_rows(self, store, solved):
        cell, report = solved
        _write_v4_entry(store, cell, report)
        multi = CampaignCell(
            replace(cell.config, victims_per_fault=2), cell.scheme
        )
        assert store.get(multi) is None

    def test_v5_write_wins_over_v4_fallback(self, store, solved):
        cell, report = solved
        _write_v4_entry(store, cell, report)
        store.put(cell, report, elapsed_s=9.0)
        entry = store.get_entry(cell)
        assert entry.key == cell_key(cell)
        assert entry.elapsed_s == 9.0


class TestMixedEngines:
    def test_mixed_engine_entries_round_trip_bit_exactly(self, store, solved):
        cell, sim_report = solved
        ana_config = replace(cell.config, engine="analytic")
        ana_exp = Experiment(ana_config)
        ana_cell = CampaignCell(ana_config, "LI")
        ana_report = ana_exp.run("LI")
        store.put(cell, sim_report)
        store.put(ana_cell, ana_report)
        by_engine = {e.cell.config.engine: e for e in store.entries()}
        assert set(by_engine) == {"sim", "analytic"}
        assert_reports_equal(by_engine["sim"].report, sim_report)
        assert_reports_equal(by_engine["analytic"].report, ana_report)
        assert by_engine["analytic"].report.details["engine"] == "analytic"
        assert by_engine["analytic"].cell.config == ana_config
