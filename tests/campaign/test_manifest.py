"""The run manifest: round-trip fidelity, strictness, rendering."""

from __future__ import annotations

import json

import pytest

from repro.campaign.manifest import (
    MANIFEST_SCHEMA,
    ManifestCell,
    ManifestError,
    ManifestWorker,
    RunManifest,
    format_manifest,
    manifest_from_doc,
    manifest_to_doc,
)


def sample_manifest(**overrides) -> RunManifest:
    fields = dict(
        run_id="feedbeeffeedbeef",
        name="sample",
        workers=2,
        heartbeat_interval_s=1.0,
        started_at=1000.0,
        finished_at=1010.0,
        wall_s=10.0,
        counters={
            "cells": 2, "ran": 1, "cached": 0, "failed": 1, "retries": 2,
            "queue_wait_s": 0.5, "compute_s": 3.0, "wasted_s": 1.5,
            "banked_s": 0.0, "log_lines": 7, "store_overwrites": 0,
        },
        cells=(
            ManifestCell(
                label="wathen100/r8/f2/x0.25/FF",
                cell_id="a" * 16,
                scheme="FF",
                status="ran",
                attempts=1,
                worker=101,
                queued_ts=1000.0,
                started_ts=1000.5,
                finished_ts=1003.5,
                queue_wait_s=0.5,
                compute_s=3.0,
            ),
            ManifestCell(
                label="wathen100/r8/f2/x0.25/RD",
                cell_id="b" * 16,
                scheme="RD",
                status="failed",
                attempts=3,
                worker=102,
                wasted_s=1.5,
                error="RuntimeError: " + "x" * 60,
            ),
        ),
        worker_rows=(
            ManifestWorker(
                worker=101, cells_done=1, busy_s=3.0, heartbeats=9,
                max_heartbeat_gap_s=1.1, max_rss_bytes=1 << 20,
                last_cell="wathen100/r8/f2/x0.25/FF",
            ),
            ManifestWorker(worker=102, failed_attempts=3, busy_s=1.5),
        ),
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestRoundTrip:
    def test_doc_round_trip_is_exact(self):
        manifest = sample_manifest()
        assert manifest_from_doc(manifest_to_doc(manifest)) == manifest

    def test_survives_json(self):
        """The store persists the doc as JSON: tuples become lists and
        must still reconstruct the identical manifest."""
        manifest = sample_manifest()
        doc = json.loads(json.dumps(manifest_to_doc(manifest), sort_keys=True))
        assert manifest_from_doc(doc) == manifest

    def test_retries_property_sums_extra_attempts(self):
        assert sample_manifest().retries == 2

    def test_cell_lookup(self):
        manifest = sample_manifest()
        assert manifest.cell("wathen100/r8/f2/x0.25/RD").status == "failed"
        assert manifest.cell("nope") is None


class TestStrictness:
    def test_non_object_is_rejected(self):
        with pytest.raises(ManifestError, match="not an object"):
            manifest_from_doc([1, 2])

    def test_schema_mismatch_is_rejected(self):
        doc = manifest_to_doc(sample_manifest())
        doc["schema"] = MANIFEST_SCHEMA + 1
        with pytest.raises(ManifestError, match="unsupported manifest schema"):
            manifest_from_doc(doc)

    def test_missing_key_is_rejected(self):
        doc = manifest_to_doc(sample_manifest())
        del doc["counters"]
        with pytest.raises(ManifestError, match="missing keys: counters"):
            manifest_from_doc(doc)

    def test_unknown_cell_status_is_rejected(self):
        doc = manifest_to_doc(sample_manifest())
        doc["cells"][0]["status"] = "vanished"
        with pytest.raises(ManifestError, match="unknown cell status"):
            manifest_from_doc(doc)

    def test_malformed_row_is_rejected(self):
        doc = manifest_to_doc(sample_manifest())
        doc["worker_rows"][0]["surprise"] = 1
        with pytest.raises(ManifestError, match="malformed manifest row"):
            manifest_from_doc(doc)


class TestRendering:
    def test_header_carries_the_counters(self):
        text = format_manifest(sample_manifest())
        assert "run manifest feedbeeffeedbeef" in text
        assert "campaign 'sample', 2 worker(s)" in text
        assert "1 ran, 0 cached, 1 failed, 2 retries" in text
        assert "wasted 1.50s" in text

    def test_tables_render_workers_and_cells(self):
        text = format_manifest(sample_manifest())
        assert "workers" in text and "cells" in text
        assert "101" in text and "102" in text
        assert "wathen100/r8/f2/x0.25/RD" in text

    def test_long_errors_are_truncated(self):
        text = format_manifest(sample_manifest())
        assert "RuntimeError: " + "x" * 26 in text
        assert "x" * 40 not in text

    def test_empty_manifest_renders_header_only(self):
        text = format_manifest(
            sample_manifest(cells=(), worker_rows=(), counters={})
        )
        assert "run manifest" in text
        assert "workers\n" not in text
