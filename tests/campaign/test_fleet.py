"""Fleet telemetry: event codec, correlation ids, the monitor fold.

The worker → parent channel is side-band only, so these tests pin the
two contracts that make it safe: the ``--json-progress`` wire format
round-trips exactly (schema-checked both ways), and the deterministic
cell correlation ids never perturb stored payloads.  The
:class:`FleetMonitor` state machine is driven directly with a fake
clock — queued/started/finished races, retries, heartbeat gaps — and
its manifest snapshot is checked against what it was fed.
"""

from __future__ import annotations

import pickle
import queue as queue_mod
import time

import pytest

from repro.campaign.fleet import (
    CELL_EVENTS,
    ChannelDrainer,
    FleetMonitor,
    LocalChannel,
    ProgressEventError,
    WorkerChannel,
    cell_correlation_id,
    cell_event,
    cell_event_from_line,
    cell_event_to_line,
)
from repro.campaign.runner import (
    CellExecutionError,
    CellResult,
    CellTimeout,
    run_campaign,
)
from repro.campaign.store import cell_key

EVENT_DOC = {
    "ts": 1700000000.25,
    "run_id": "aaaabbbbccccdddd",
    "event": "finished",
    "cell": "wathen100/r8/f2/x0.25/FF",
    "cell_id": "0123456789abcdef",
    "worker": 4242,
    "attempt": 2,
    "elapsed_s": 1.5,
}

GOLDEN_LINE = (
    '{"attempt":2,"cell":"wathen100/r8/f2/x0.25/FF",'
    '"cell_id":"0123456789abcdef","elapsed_s":1.5,"event":"finished",'
    '"run_id":"aaaabbbbccccdddd","ts":1700000000.25,"worker":4242}'
)


class TestEventCodec:
    def test_round_trip_is_exact(self):
        line = cell_event_to_line(EVENT_DOC)
        assert cell_event_from_line(line) == EVENT_DOC
        assert cell_event_to_line(cell_event_from_line(line)) == line

    def test_wire_format_is_canonical(self):
        """Sorted keys, compact separators: the golden line is the line."""
        assert cell_event_to_line(EVENT_DOC) == GOLDEN_LINE

    def test_cell_event_builds_conformant_docs(self):
        for kind in CELL_EVENTS:
            doc = cell_event("r" * 16, kind, "cell/FF", "c" * 16, 1, 1)
            assert cell_event_from_line(cell_event_to_line(doc)) == doc

    def test_error_field_round_trips(self):
        doc = cell_event(
            "r" * 16, "failed", "cell/FF", "c" * 16, 1, 3,
            elapsed_s=0.5, error="RuntimeError: boom",
        )
        assert cell_event_from_line(cell_event_to_line(doc))["error"] == (
            "RuntimeError: boom"
        )

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.pop("run_id"), "missing keys"),
            (lambda d: d.update(surprise=1), "unknown keys"),
            (lambda d: d.update(event="exploded"), "unknown event"),
            (lambda d: d.update(ts="noon"), "'ts' must be a number"),
            (lambda d: d.update(ts=True), "'ts' must be a number"),
            (lambda d: d.update(worker="w1"), "'worker' must be an integer"),
            (lambda d: d.update(attempt=True), "'attempt' must be an integer"),
            (lambda d: d.update(cell=7), "'cell' must be a string"),
            (lambda d: d.update(elapsed_s="slow"), "'elapsed_s' must be a number"),
            (lambda d: d.update(error=13), "'error' must be a string"),
        ],
    )
    def test_nonconformant_docs_are_rejected(self, mutate, match):
        doc = dict(EVENT_DOC)
        mutate(doc)
        with pytest.raises(ProgressEventError, match=match):
            cell_event_to_line(doc)

    def test_non_json_line_is_rejected(self):
        with pytest.raises(ProgressEventError, match="not JSON"):
            cell_event_from_line("{nope")

    def test_non_object_line_is_rejected(self):
        with pytest.raises(ProgressEventError, match="not a JSON object"):
            cell_event_from_line("[1, 2]")


class TestCorrelationIds:
    def test_id_is_a_key_prefix_and_deterministic(self, tiny_spec):
        for cell in tiny_spec.cells():
            cid = cell_correlation_id(cell)
            assert cid == cell_key(cell)[:16]
            assert cid == cell_correlation_id(cell)
            assert len(cid) == 16

    def test_distinct_cells_get_distinct_ids(self, tiny_spec):
        ids = [cell_correlation_id(c) for c in tiny_spec.cells()]
        assert len(set(ids)) == len(ids)

    def test_annotation_reaches_the_stored_solve_span(self, store):
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="annot",
            matrices=("wathen100",),
            schemes=("F0",),
            nranks=(8,),
            fault_loads=(2,),
            scale=0.25,
            trace=True,
        )
        result = run_campaign(spec, store=store)
        assert result.n_failed == 0
        for entry in store.entries():
            tel = entry.report.details["telemetry"]
            root = next(
                s for s in tel.spans.spans if s.name == "solve" and s.depth == 0
            )
            assert dict(root.attrs)["cell_id"] == cell_correlation_id(entry.cell)

    def test_untraced_report_is_left_alone(self, tiny_spec, store):
        result = run_campaign(tiny_spec, store=store)
        for r in result.results:
            assert "telemetry" not in r.report.details


class TestPicklableErrors:
    """Worker exceptions must carry their wasted seconds across the pool."""

    @pytest.mark.parametrize("cls", [CellTimeout, CellExecutionError])
    def test_elapsed_survives_pickling(self, cls):
        exc = pickle.loads(pickle.dumps(cls("boom", 1.25)))
        assert exc.elapsed_s == 1.25
        assert str(exc) == "boom"

    @pytest.mark.parametrize("cls", [CellTimeout, CellExecutionError])
    def test_elapsed_defaults_to_zero(self, cls):
        assert cls("boom").elapsed_s == 0.0


# ----------------------------------------------------------------------
def _monitor(events=None, *, workers=2, clock=None, total=4):
    clk = clock or FakeClock()
    mon = FleetMonitor(
        "feedbeeffeedbeef",
        workers=workers,
        heartbeat_interval_s=1.0,
        event_sink=None if events is None else events.append,
        clock=clk,
    )
    mon.begin(total=total, name="fleet-test")
    return mon, clk


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestFleetMonitor:
    def test_queued_started_done_lifecycle(self, tiny_spec):
        events: list[dict] = []
        mon, clk = _monitor(events)
        cell = tiny_spec.cells()[0]
        cid = cell_correlation_id(cell)
        mon.cell_queued(cell, 1)
        clk.t += 0.5
        mon.on_event(
            cell_event(mon.run_id, "started", cell.label, cid, 77, 1, ts=clk.t)
        )
        clk.t += 2.0
        mon.on_event(
            cell_event(
                mon.run_id, "finished", cell.label, cid, 77, 1,
                ts=clk.t, elapsed_s=2.0,
            )
        )
        mon.cell_done(CellResult(cell=cell, status="ran", elapsed_s=2.0))
        snap = mon.snapshot()
        assert snap["done"] == 1 and snap["ran"] == 1
        assert snap["queue_wait_s"] == pytest.approx(0.5)
        assert snap["compute_s"] == pytest.approx(2.0)
        (row,) = snap["worker_rows"]
        assert row["worker"] == 77 and row["done"] == 1 and row["state"] == "idle"
        # exactly one terminal event, from the parent's outcome
        assert [e["event"] for e in events] == ["queued", "started", "finished"]

    def test_worker_parent_race_emits_one_terminal_event(self, tiny_spec):
        """cell_done and the worker's finished event must not double-emit."""
        events: list[dict] = []
        mon, _ = _monitor(events)
        cell = tiny_spec.cells()[0]
        cid = cell_correlation_id(cell)
        # parent's future completes before the drainer sees the event
        mon.cell_done(CellResult(cell=cell, status="ran", elapsed_s=1.0))
        mon.on_event(
            cell_event(
                mon.run_id, "finished", cell.label, cid, 77, 1, elapsed_s=1.0
            )
        )
        terminal = [e for e in events if e["event"] == "finished"]
        assert len(terminal) == 1
        # the late worker event still credits the worker's aggregates
        assert mon.snapshot()["worker_rows"][0]["done"] == 1
        # ...but the cell's ran seconds are not double-counted
        assert mon.snapshot()["compute_s"] == pytest.approx(1.0)

    def test_cached_cell_banks_its_original_cost(self, tiny_spec):
        events: list[dict] = []
        mon, _ = _monitor(events)
        cell = tiny_spec.cells()[0]
        mon.cell_done(CellResult(cell=cell, status="cached", elapsed_s=3.5))
        snap = mon.snapshot()
        assert snap["cached"] == 1
        assert snap["banked_s"] == pytest.approx(3.5)
        assert snap["compute_s"] == 0.0
        assert events[-1]["event"] == "cached"

    def test_failed_attempts_accumulate_wasted_seconds(self, tiny_spec):
        events: list[dict] = []
        mon, clk = _monitor(events)
        cell = tiny_spec.cells()[0]
        cid = cell_correlation_id(cell)
        for attempt in (1, 2):
            mon.cell_queued(cell, attempt)
            mon.on_event(
                cell_event(
                    mon.run_id, "started", cell.label, cid, 77, attempt, ts=clk.t
                )
            )
            mon.on_event(
                cell_event(
                    mon.run_id, "failed", cell.label, cid, 77, attempt,
                    ts=clk.t, elapsed_s=0.5, error="RuntimeError: boom",
                )
            )
        mon.cell_done(
            CellResult(
                cell=cell, status="failed", elapsed_s=1.0, attempts=2,
                error="RuntimeError: boom",
            )
        )
        snap = mon.snapshot()
        assert snap["failed"] == 1
        assert snap["retries"] == 1
        assert snap["wasted_s"] == pytest.approx(1.0)
        assert snap["last_error"]["cell"] == cell.label
        assert snap["worker_rows"][0]["failed_attempts"] == 2
        assert [e["event"] for e in events].count("failed") == 1

    def test_eta_extrapolates_from_ran_cells(self, tiny_spec):
        mon, _ = _monitor(total=4, workers=2)
        assert mon.snapshot()["eta_s"] is None  # no evidence yet
        cell = tiny_spec.cells()[0]
        mon.cell_done(CellResult(cell=cell, status="ran", elapsed_s=1.0))
        # 3 remaining x 1.0s avg / 2 workers
        assert mon.snapshot()["eta_s"] == pytest.approx(1.5)

    def test_eta_is_zero_when_complete(self, tiny_spec):
        mon, _ = _monitor(total=1)
        mon.cell_done(
            CellResult(cell=tiny_spec.cells()[0], status="ran", elapsed_s=1.0)
        )
        assert mon.snapshot()["eta_s"] == 0.0

    def test_heartbeat_gap_counts_only_while_busy(self, tiny_spec):
        mon, clk = _monitor()
        cell = tiny_spec.cells()[0]
        cid = cell_correlation_id(cell)

        def beat():
            mon.on_heartbeat(
                {"ts": clk.t, "run_id": mon.run_id, "worker": 77,
                 "rss_bytes": 1 << 20, "cell": None, "cell_id": None,
                 "cell_elapsed_s": None}
            )

        beat()
        clk.t += 20.0  # idle silence: not a gap
        beat()
        assert mon.snapshot()["worker_rows"][0]["heartbeats"] == 2
        mon.on_event(
            cell_event(mon.run_id, "started", cell.label, cid, 77, 1, ts=clk.t)
        )
        clk.t += 7.0  # busy silence: the gap the detector wants
        beat()
        mon.finalize()
        manifest = mon.manifest()
        (w,) = manifest.worker_rows
        assert w.max_heartbeat_gap_s == pytest.approx(7.0)
        assert w.max_rss_bytes == 1 << 20

    def test_finalize_adds_the_terminal_gap_of_a_hung_worker(self, tiny_spec):
        mon, clk = _monitor()
        cell = tiny_spec.cells()[0]
        cid = cell_correlation_id(cell)
        mon.on_heartbeat(
            {"ts": clk.t, "run_id": mon.run_id, "worker": 99, "rss_bytes": 0,
             "cell": None, "cell_id": None, "cell_elapsed_s": None}
        )
        mon.on_event(
            cell_event(mon.run_id, "started", cell.label, cid, 99, 1, ts=clk.t)
        )
        clk.t += 42.0  # worker dies silently mid-cell
        mon.finalize()
        manifest = mon.manifest()
        assert manifest.worker_rows[0].max_heartbeat_gap_s == pytest.approx(42.0)
        # the cell it held is recorded as still running
        assert manifest.cell(cell.label).status == "running"

    def test_manifest_snapshots_the_counters(self, tiny_spec):
        mon, clk = _monitor(total=2)
        cells = tiny_spec.cells()[:2]
        mon.cell_done(CellResult(cell=cells[0], status="ran", elapsed_s=1.0))
        mon.cell_done(CellResult(cell=cells[1], status="cached", elapsed_s=2.0))
        clk.t += 10.0
        mon.finalize()
        manifest = mon.manifest(store_overwrites=3)
        assert manifest.run_id == mon.run_id
        assert manifest.name == "fleet-test"
        assert manifest.wall_s == pytest.approx(10.0)
        assert manifest.counters["ran"] == 1
        assert manifest.counters["cached"] == 1
        assert manifest.counters["banked_s"] == pytest.approx(2.0)
        assert manifest.counters["store_overwrites"] == 3
        assert {c.status for c in manifest.cells} == {"ran", "cached"}
        assert manifest.cell(cells[0].label).cell_id == (
            cell_correlation_id(cells[0])
        )


class TestLocalChannel:
    def test_serial_events_feed_the_monitor_directly(self, tiny_spec):
        events: list[dict] = []
        mon, _ = _monitor(events, workers=1)
        channel = LocalChannel(mon)
        cell = tiny_spec.cells()[0]
        cid = cell_correlation_id(cell)
        channel.cell_started(cell.label, cid, 1)
        channel.cell_finished(cell.label, cid, 1, 0.5)
        assert [e["event"] for e in events] == ["started"]
        assert mon.snapshot()["worker_rows"][0]["done"] == 1


class TestWorkerChannel:
    def test_events_and_heartbeats_reach_the_queue(self):
        q: queue_mod.Queue = queue_mod.Queue()
        channel = WorkerChannel(
            q, "feedbeeffeedbeef", heartbeat_interval_s=0.01
        )
        try:
            channel.cell_started("cell/FF", "c" * 16, 1)
            deadline = time.time() + 5.0
            kinds = set()
            while time.time() < deadline and "hb" not in kinds:
                kind, payload = q.get(timeout=5.0)
                kinds.add(kind)
                if kind == "hb":
                    assert payload["cell"] == "cell/FF"
                    assert payload["worker"] == channel.pid
            channel.cell_finished("cell/FF", "c" * 16, 1, 0.1)
            assert "hb" in kinds
        finally:
            channel.close()

    def test_puts_are_best_effort(self):
        class TornQueue:
            def put(self, item):
                raise OSError("parent is gone")

        channel = WorkerChannel(TornQueue(), "r" * 16, heartbeat_interval_s=0)
        channel.cell_started("cell/FF", "c" * 16, 1)  # must not raise
        channel.cell_finished("cell/FF", "c" * 16, 1, 0.1)
        channel.close()


class TestChannelDrainer:
    def test_drains_the_backlog_after_stop(self, tiny_spec):
        mon, _ = _monitor()
        cell = tiny_spec.cells()[0]
        cid = cell_correlation_id(cell)
        q: queue_mod.Queue = queue_mod.Queue()
        for attempt in (1, 2, 3):
            q.put(
                ("event",
                 cell_event(mon.run_id, "started", cell.label, cid, 7, attempt))
            )
        q.put(("bogus",))  # a torn message must not kill the loop
        q.put(
            ("event",
             cell_event(mon.run_id, "finished", cell.label, cid, 7, 3,
                        elapsed_s=0.2))
        )
        drainer = ChannelDrainer(q, mon)
        drainer.start()
        drainer.stop()
        assert not drainer.is_alive()
        assert mon.snapshot()["worker_rows"][0]["done"] == 1

    def test_forwarded_log_lines_are_counted(self):
        from repro.obs.logging import root_manager

        mon, _ = _monitor()
        manager = root_manager()
        saved = manager.sinks
        manager.sinks = []
        try:
            q: queue_mod.Queue = queue_mod.Queue()
            q.put(("log", '{"msg":"hello"}'))
            drainer = ChannelDrainer(q, mon)
            drainer.start()
            drainer.stop()
        finally:
            manager.sinks = saved
        assert mon.snapshot()["log_lines"] == 1
