"""Shared assertions and picklable fault-injecting workers.

The workers live at module level so ``ProcessPoolExecutor`` can import
them in child processes; their cross-process state (has this cell
already failed once?) is a marker file under the directory named by
``REPRO_TEST_FLAKY_DIR``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.campaign.runner import execute_cell

FLAKY_DIR_ENV = "REPRO_TEST_FLAKY_DIR"


def assert_reports_equal(a, b):
    """Bitwise equality of two SolveReports' measured content."""
    assert a.scheme == b.scheme
    assert a.converged == b.converged
    assert a.iterations == b.iterations
    assert a.final_relative_residual == b.final_relative_residual
    assert a.time_s == b.time_s
    assert a.energy_j == b.energy_j
    assert a.baseline_iters == b.baseline_iters
    np.testing.assert_array_equal(a.residual_history, b.residual_history)
    assert a.account.charges == b.account.charges
    assert a.rapl.log.phases == b.rapl.log.phases
    assert a.faults == b.faults
    assert a.traffic == b.traffic


def _first_time_for(cell) -> bool:
    marker = Path(os.environ[FLAKY_DIR_ENV]) / cell.label.replace("/", "_")
    if marker.exists():
        return False
    marker.write_text("failed once")
    return True


def raising_worker(cell, baseline=None, timeout_s=None):
    """Every RD cell raises on its first attempt, then succeeds."""
    if cell.scheme == "RD" and _first_time_for(cell):
        raise RuntimeError("injected transient failure")
    return execute_cell(cell, baseline, timeout_s)


def crashing_worker(cell, baseline=None, timeout_s=None):
    """Every RD cell hard-kills its worker process on the first attempt."""
    if cell.scheme == "RD" and _first_time_for(cell):
        os._exit(13)
    return execute_cell(cell, baseline, timeout_s)


def always_raising_worker(cell, baseline=None, timeout_s=None):
    """FF cells always fail — exercises baseline-failure propagation."""
    if cell.is_baseline:
        raise RuntimeError("baseline always fails")
    return execute_cell(cell, baseline, timeout_s)


def wasteful_worker(cell, baseline=None, timeout_s=None):
    """Every RD cell burns a measurable 0.05s of compute, then fails.

    The failure carries its elapsed seconds the way :func:`execute_cell`
    wraps real solver errors, so the wasted-compute attribution path is
    exercised without sleeping in tests.
    """
    from repro.campaign.runner import CellExecutionError

    if cell.scheme == "RD":
        raise CellExecutionError(f"RuntimeError: wasted {cell.label}", 0.05)
    return execute_cell(cell, baseline, timeout_s)
