"""Telemetry through the campaign: persistence, rollup, bit-identity.

The acceptance surface of the observability layer: a traced campaign
persists every cell's telemetry in the store, the rollup merges the
worker-side registries, and — because solver telemetry rides the
simulated clock — a serial run and a 2-worker run export byte-identical
JSONL.
"""

from __future__ import annotations

import pytest

from repro.campaign import ResultStore, run_campaign
from repro.campaign.progress import format_telemetry_summary
from repro.campaign.spec import CampaignSpec
from repro.obs.export import trace_jsonl_lines
from repro.obs.telemetry import Telemetry


@pytest.fixture()
def traced_spec() -> CampaignSpec:
    """One matrix x one scheme at scale 0.25, telemetry on."""
    return CampaignSpec(
        name="traced",
        matrices=("wathen100",),
        schemes=("F0",),
        nranks=(8,),
        fault_loads=(2,),
        scale=0.25,
        trace=True,
    )


def cell_lines(result) -> list[str]:
    return trace_jsonl_lines(result.cell_telemetry())


class TestTelemetryPersistence:
    def test_store_round_trips_cell_telemetry(self, traced_spec, store):
        result = run_campaign(traced_spec, store=store)
        assert result.n_failed == 0
        for entry in store.entries():
            tel = entry.report.details.get("telemetry")
            assert isinstance(tel, Telemetry)
            assert tel.timebase == "sim"
            # the trace alias still points at the same event log
            assert entry.report.details["trace"] is tel.events
            if entry.cell.scheme == "F0":
                assert len(tel.events.faults) == 2
                assert len(tel.events.recoveries) == 2

    def test_cached_cells_reproduce_telemetry_exactly(self, traced_spec, store):
        first = run_campaign(traced_spec, store=store)
        second = run_campaign(traced_spec, store=store)
        assert second.n_cached == len(second.results)
        assert cell_lines(first) == cell_lines(second)

    def test_untraced_spec_persists_no_telemetry(self, tiny_spec, store):
        result = run_campaign(tiny_spec, store=store)
        assert result.cell_telemetry() == {}
        for entry in store.entries():
            assert "telemetry" not in entry.report.details


class TestRollup:
    def test_rollup_merges_worker_registries(self, traced_spec, store):
        result = run_campaign(traced_spec, store=store)
        snap = result.telemetry_rollup().snapshot()
        assert snap["counters"]["campaign.cells{status=ran}"] == 2.0
        assert snap["counters"]["campaign.cache.misses"] == 2.0
        assert snap["counters"]["campaign.retries"] == 0.0
        assert snap["counters"]["solver.faults{fault_class=SNF,scope=process}"] == 2.0
        hist = snap["histograms"]["recovery.latency_s{scheme=F0}"]
        assert hist["n"] == 2
        assert "campaign.cells_per_sec" in snap["gauges"]

    def test_rollup_counts_cache_hits_on_resume(self, traced_spec, store):
        run_campaign(traced_spec, store=store)
        snap = run_campaign(traced_spec, store=store).telemetry_rollup().snapshot()
        assert snap["counters"]["campaign.cells{status=cached}"] == 2.0
        assert snap["counters"]["campaign.cache.hits"] == 2.0
        # worker metrics still merge: cached reports carry telemetry too
        assert snap["counters"]["solver.recoveries{scheme=F0}"] == 2.0

    def test_summary_renders(self, traced_spec, store):
        result = run_campaign(traced_spec, store=store)
        text = format_telemetry_summary(result)
        assert "campaign telemetry rollup:" in text
        assert "recovery.latency_s{scheme=F0}" in text


class TestSerialParallelBitIdentity:
    def test_serial_and_parallel_export_identical_jsonl(self, traced_spec, tmp_path):
        serial = run_campaign(
            traced_spec, store=ResultStore(tmp_path / "serial")
        )
        parallel = run_campaign(
            traced_spec, store=ResultStore(tmp_path / "parallel"), max_workers=2
        )
        assert serial.n_failed == parallel.n_failed == 0
        assert cell_lines(serial) == cell_lines(parallel)
