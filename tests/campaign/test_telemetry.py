"""Telemetry through the campaign: persistence, rollup, bit-identity.

The acceptance surface of the observability layer: a traced campaign
persists every cell's telemetry in the store, the rollup merges the
worker-side registries, and — because solver telemetry rides the
simulated clock — a serial run and a 2-worker run export byte-identical
JSONL.
"""

from __future__ import annotations

import pytest

from repro.campaign import ResultStore, run_campaign
from repro.campaign.progress import format_telemetry_summary
from repro.campaign.spec import CampaignSpec
from repro.obs.export import trace_jsonl_lines
from repro.obs.telemetry import Telemetry


@pytest.fixture()
def traced_spec() -> CampaignSpec:
    """One matrix x one scheme at scale 0.25, telemetry on."""
    return CampaignSpec(
        name="traced",
        matrices=("wathen100",),
        schemes=("F0",),
        nranks=(8,),
        fault_loads=(2,),
        scale=0.25,
        trace=True,
    )


def cell_lines(result) -> list[str]:
    return trace_jsonl_lines(result.cell_telemetry())


class TestTelemetryPersistence:
    def test_store_round_trips_cell_telemetry(self, traced_spec, store):
        result = run_campaign(traced_spec, store=store)
        assert result.n_failed == 0
        for entry in store.entries():
            tel = entry.report.details.get("telemetry")
            assert isinstance(tel, Telemetry)
            assert tel.timebase == "sim"
            # the trace alias still points at the same event log
            assert entry.report.details["trace"] is tel.events
            if entry.cell.scheme == "F0":
                assert len(tel.events.faults) == 2
                assert len(tel.events.recoveries) == 2

    def test_cached_cells_reproduce_telemetry_exactly(self, traced_spec, store):
        first = run_campaign(traced_spec, store=store)
        second = run_campaign(traced_spec, store=store)
        assert second.n_cached == len(second.results)
        assert cell_lines(first) == cell_lines(second)

    def test_untraced_spec_persists_no_telemetry(self, tiny_spec, store):
        result = run_campaign(tiny_spec, store=store)
        assert result.cell_telemetry() == {}
        for entry in store.entries():
            assert "telemetry" not in entry.report.details


class TestRollup:
    def test_rollup_merges_worker_registries(self, traced_spec, store):
        result = run_campaign(traced_spec, store=store)
        snap = result.telemetry_rollup().snapshot()
        assert snap["counters"]["campaign.cells{status=ran}"] == 2.0
        assert snap["counters"]["campaign.cache.misses"] == 2.0
        assert snap["counters"]["campaign.retries"] == 0.0
        assert snap["counters"]["solver.faults{fault_class=SNF,scope=process}"] == 2.0
        hist = snap["histograms"]["recovery.latency_s{scheme=F0}"]
        assert hist["n"] == 2
        assert "campaign.cells_per_sec" in snap["gauges"]

    def test_rollup_counts_cache_hits_on_resume(self, traced_spec, store):
        run_campaign(traced_spec, store=store)
        snap = run_campaign(traced_spec, store=store).telemetry_rollup().snapshot()
        assert snap["counters"]["campaign.cells{status=cached}"] == 2.0
        assert snap["counters"]["campaign.cache.hits"] == 2.0
        # worker metrics still merge: cached reports carry telemetry too
        assert snap["counters"]["solver.recoveries{scheme=F0}"] == 2.0

    def test_summary_renders(self, traced_spec, store):
        result = run_campaign(traced_spec, store=store)
        text = format_telemetry_summary(result)
        assert "campaign telemetry rollup:" in text
        assert "recovery.latency_s{scheme=F0}" in text


def payload_bytes(root) -> dict[str, bytes]:
    """Every stored payload keyed by filename, byte-exact."""
    return {
        p.name: p.read_bytes()
        for p in sorted((root / "payloads").rglob("*.json"))
    }


class TestSerialParallelBitIdentity:
    def test_serial_and_parallel_export_identical_jsonl(self, traced_spec, tmp_path):
        serial = run_campaign(
            traced_spec, store=ResultStore(tmp_path / "serial")
        )
        parallel = run_campaign(
            traced_spec, store=ResultStore(tmp_path / "parallel"), max_workers=2
        )
        assert serial.n_failed == parallel.n_failed == 0
        assert cell_lines(serial) == cell_lines(parallel)

    def test_stored_payloads_are_byte_identical_with_the_channel_active(
        self, traced_spec, tmp_path
    ):
        """The fleet channel is side-band only: a serial run and a
        2-worker run (heartbeats, forwarded events and all) must write
        byte-identical payload files under identical content keys."""
        events: list[dict] = []
        run_campaign(traced_spec, store=ResultStore(tmp_path / "serial"))
        run_campaign(
            traced_spec,
            store=ResultStore(tmp_path / "parallel"),
            max_workers=2,
            heartbeat_interval_s=0.05,
            event_sink=events.append,
        )
        assert events, "the channel was not active"
        serial = payload_bytes(tmp_path / "serial")
        parallel = payload_bytes(tmp_path / "parallel")
        assert set(serial) == set(parallel)
        assert serial == parallel

    def test_fresh_and_cached_payloads_share_one_identity(
        self, traced_spec, tmp_path
    ):
        """A resume must not rewrite (or re-annotate) stored payloads."""
        store = ResultStore(tmp_path / "cache")
        run_campaign(traced_spec, store=store)
        before = payload_bytes(tmp_path / "cache")
        result = run_campaign(traced_spec, store=store)
        assert result.n_cached == len(result.results)
        assert payload_bytes(tmp_path / "cache") == before


class TestAnalysisEdgeCases:
    """The analyzer must tolerate thin or legacy evidence gracefully."""

    def test_empty_campaign_rollup_degrades_cleanly(self, tiny_spec):
        from repro.campaign import CampaignResult, format_attribution_summary

        empty = CampaignResult(spec=tiny_spec, results=[], wall_s=0.0, workers=1)
        assert empty.run_records() == []
        assert empty.attribution_summary() == {}
        assert empty.anomalies() == []
        text = format_attribution_summary(empty)
        assert "no attributable cells" in text
        assert "anomalies: none" in text

    def test_untraced_campaign_attributes_from_accounts(self, tiny_spec, store):
        from repro.campaign import format_attribution_summary

        result = run_campaign(tiny_spec, store=store)
        rollup = result.attribution_summary()
        assert set(rollup) == {"FF", "RD", "F0"}
        assert all(a.source == "rollup" for a in rollup.values())
        # summation order differs between the account dict and the
        # phase-ordered rows, so the residual is ulp-level, not exact
        assert all(a.residual_energy_rel <= 1e-12 for a in rollup.values())
        assert result.anomalies() == []
        assert "anomalies: none" in format_attribution_summary(result)

    def test_traced_campaign_reconciles_and_passes_doctor(
        self, traced_spec, store
    ):
        result = run_campaign(traced_spec, store=store)
        rollup = result.attribution_summary()
        for attr in rollup.values():
            assert attr.residual_energy_rel <= 1e-9
            assert attr.residual_time_rel <= 1e-9
        assert result.anomalies() == []

    def test_zero_fault_trace_analyzes_clean(self, store):
        from repro.obs.analysis import attribute_record, records_from_campaign
        from repro.obs.analysis import run_detectors

        spec = CampaignSpec(
            name="zero-fault",
            matrices=("wathen100",),
            schemes=("F0",),
            nranks=(8,),
            fault_loads=(0,),
            scale=0.25,
            trace=True,
        )
        result = run_campaign(spec, store=store)
        assert result.n_failed == 0
        records = records_from_campaign(result)
        for record in records:
            assert not record.telemetry.events.faults
            attr = attribute_record(record)
            assert attr.residual_energy_rel <= 1e-9
            assert attr.resilience_energy_j == 0.0
        assert run_detectors(records) == []

    def test_format2_store_payloads_analyze_under_format3(self, store):
        from tests.campaign.test_store import _write_v2_entry

        from repro.campaign.spec import CampaignCell
        from repro.harness.experiment import Experiment, ExperimentConfig
        from repro.obs.analysis import (
            attribute_record,
            records_from_store,
            run_detectors,
        )

        config = ExperimentConfig(
            matrix="wathen100", nranks=8, n_faults=2, scale=0.25
        )
        report = Experiment(config).run("LI")
        _write_v2_entry(store, CampaignCell(config, "LI"), report)

        records = records_from_store(store)
        assert len(records) == 1
        record = records[0]
        # legacy payload config regains the post-v2 defaults, so the
        # schedule-drift detector can re-derive the schedule
        assert record.config.engine == "sim"
        assert record.config.fault_scope == "process"
        attr = attribute_record(record)
        assert attr.source == "account"  # format-2 cells carry no trace
        assert attr.residual_energy_rel == 0.0
        assert run_detectors(records) == []
