"""Unit tests for checkpoint stores."""

import numpy as np
import pytest

from repro.checkpoint.store import DiskStore, MemoryStore, Snapshot


class TestSnapshot:
    def test_immutable(self):
        s = Snapshot(3, np.ones(10))
        with pytest.raises(ValueError):
            s.x[0] = 2.0

    def test_nbytes(self):
        assert Snapshot(0, np.ones(10)).nbytes == 80

    def test_rejects_negative_iteration(self):
        with pytest.raises(ValueError):
            Snapshot(-1, np.ones(2))


class TestStoreDataPath:
    @pytest.mark.parametrize("store_cls", [MemoryStore, DiskStore])
    def test_save_copies_data(self, store_cls):
        store = store_cls()
        x = np.ones(10)
        snap = store.save(1, x)
        x[:] = 99.0
        assert np.allclose(snap.x, 1.0)

    @pytest.mark.parametrize("store_cls", [MemoryStore, DiskStore])
    def test_latest_and_latest_before(self, store_cls):
        store = store_cls()
        store.save(10, np.full(4, 1.0))
        store.save(20, np.full(4, 2.0))
        store.save(30, np.full(4, 3.0))
        assert store.latest().iteration == 30
        assert store.latest_before(25).iteration == 20
        assert store.latest_before(20).iteration == 20
        assert store.latest_before(5) is None

    def test_empty_store(self):
        store = MemoryStore()
        assert store.latest() is None
        assert store.count == 0
        assert store.bytes_stored == 0

    def test_bytes_stored_accumulates(self):
        store = MemoryStore()
        store.save(1, np.ones(10))
        store.save(2, np.ones(20))
        assert store.bytes_stored == 80 + 160


class TestMemoryCosts:
    def test_write_time_constant_under_weak_scaling(self):
        """Constant bytes per rank => CR-M time stays flat (Section 6)."""
        store = MemoryStore()
        per_rank = 1_000_000.0
        t16 = store.write_time_s(per_rank * 16, 16)
        t1024 = store.write_time_s(per_rank * 1024, 1024)
        assert t1024 == pytest.approx(t16)

    def test_read_equals_write(self):
        store = MemoryStore()
        assert store.read_time_s(1e6, 4) == pytest.approx(store.write_time_s(1e6, 4))

    def test_rejects_bad_args(self):
        store = MemoryStore()
        with pytest.raises(ValueError):
            store.write_time_s(-1, 4)
        with pytest.raises(ValueError):
            store.write_time_s(100, 0)


class TestDiskCosts:
    def test_write_time_linear_under_weak_scaling(self):
        """Constant bytes per rank => CR-D time grows ~linearly (Section 6)."""
        store = DiskStore()
        per_rank = 10_000_000.0
        t16 = store.write_time_s(per_rank * 16, 16)
        t256 = store.write_time_s(per_rank * 256, 256)
        # subtract latency before comparing slopes
        lat = store.params.latency_s
        assert (t256 - lat) / (t16 - lat) == pytest.approx(16.0, rel=1e-6)

    def test_disk_slower_than_memory(self):
        nbytes, nranks = 8_000_000.0, 16
        assert DiskStore().write_time_s(nbytes, nranks) > MemoryStore().write_time_s(
            nbytes, nranks
        )

    def test_read_faster_than_write(self):
        store = DiskStore()
        assert store.read_time_s(1e8, 4) < store.write_time_s(1e8, 4)

    def test_rejects_bad_params(self):
        from repro.checkpoint.store import _DiskParams

        with pytest.raises(ValueError):
            DiskStore(_DiskParams(aggregate_bandwidth_gbps=0.0))
