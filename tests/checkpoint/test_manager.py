"""Unit tests for the checkpoint manager."""

import numpy as np
import pytest

from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.store import MemoryStore


@pytest.fixture()
def mgr() -> CheckpointManager:
    return CheckpointManager(MemoryStore(), interval_iters=10)


class TestCadence:
    def test_due_on_multiples(self, mgr):
        assert mgr.due(10)
        assert mgr.due(20)
        assert not mgr.due(5)
        assert not mgr.due(0)

    def test_rejects_negative_iteration(self, mgr):
        with pytest.raises(ValueError):
            mgr.due(-1)

    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError):
            CheckpointManager(MemoryStore(), interval_iters=0)


class TestCheckpointing:
    def test_maybe_checkpoint_skips_off_cadence(self, mgr):
        assert mgr.maybe_checkpoint(7, np.ones(8), 2) is None
        assert mgr.writes == 0

    def test_maybe_checkpoint_writes_on_cadence(self, mgr):
        result = mgr.maybe_checkpoint(10, np.ones(8), 2)
        assert result is not None
        snap, write_s = result
        assert snap.iteration == 10
        assert write_s > 0
        assert mgr.writes == 1

    def test_snapshot_is_a_copy(self, mgr):
        x = np.ones(8)
        snap, _ = mgr.maybe_checkpoint(10, x, 2)
        x[:] = -1
        assert np.allclose(snap.x, 1.0)


class TestRollback:
    def test_rollback_returns_latest_before(self, mgr):
        mgr.maybe_checkpoint(10, np.full(8, 1.0), 2)
        mgr.maybe_checkpoint(20, np.full(8, 2.0), 2)
        snap, read_s = mgr.rollback(25, 64, 2)
        assert snap.iteration == 20
        assert read_s > 0
        assert mgr.rollbacks == 1

    def test_rollback_without_checkpoint(self, mgr):
        snap, read_s = mgr.rollback(5, 64, 2)
        assert snap is None
        assert read_s > 0

    def test_rollback_exact_boundary(self, mgr):
        mgr.maybe_checkpoint(10, np.full(8, 1.0), 2)
        snap, _ = mgr.rollback(10, 64, 2)
        assert snap.iteration == 10
