"""Unit tests for the multi-level (SCR-style) checkpoint manager."""

import numpy as np
import pytest

from repro.checkpoint.multilevel import MultiLevelManager


def mgr(**kw) -> MultiLevelManager:
    defaults = dict(memory_interval=10, disk_every=3, memory_survival=1.0, seed=0)
    defaults.update(kw)
    return MultiLevelManager(**defaults)


class TestCadence:
    def test_memory_cadence(self):
        m = mgr()
        assert m.due(10) and m.due(20)
        assert not m.due(5) and not m.due(0)

    def test_disk_cadence_is_every_kth_memory_checkpoint(self):
        m = mgr()
        assert m.disk_due(30) and m.disk_due(60)
        assert not m.disk_due(10) and not m.disk_due(20)
        assert not m.disk_due(35)

    def test_maybe_checkpoint_levels(self):
        m = mgr()
        x = np.ones(16)
        assert m.maybe_checkpoint(5, x, 2) is None
        write_s, wrote_disk = m.maybe_checkpoint(10, x, 2)
        assert write_s > 0 and not wrote_disk
        write_s2, wrote_disk2 = m.maybe_checkpoint(30, x, 2)
        assert wrote_disk2
        assert write_s2 > write_s  # disk flush costs extra
        assert m.memory_writes == 2
        assert m.disk_writes == 1


class TestRollback:
    def test_prefers_memory_when_alive(self):
        m = mgr(memory_survival=1.0)
        m.maybe_checkpoint(10, np.full(8, 1.0), 2)
        m.maybe_checkpoint(30, np.full(8, 3.0), 2)  # also disk
        restore = m.rollback(35, 64, 2)
        assert restore.level == "memory"
        assert restore.snapshot.iteration == 30
        assert m.memory_restores == 1

    def test_falls_back_to_disk_when_memory_lost(self):
        m = mgr(memory_survival=0.0)
        m.maybe_checkpoint(10, np.full(8, 1.0), 2)
        m.maybe_checkpoint(30, np.full(8, 3.0), 2)
        m.maybe_checkpoint(40, np.full(8, 4.0), 2)  # memory only
        restore = m.rollback(45, 64, 2)
        assert restore.level == "disk"
        assert restore.snapshot.iteration == 30  # newest *disk* copy
        assert m.disk_restores == 1

    def test_initial_when_nothing_stored(self):
        restore = mgr(memory_survival=0.0).rollback(5, 64, 2)
        assert restore.level == "initial"
        assert restore.snapshot is None
        assert restore.read_time_s > 0

    def test_disk_restore_slower_than_memory(self):
        m_mem = mgr(memory_survival=1.0)
        m_disk = mgr(memory_survival=0.0)
        for m in (m_mem, m_disk):
            m.maybe_checkpoint(30, np.full(1024, 3.0), 2)
        nbytes = 1024 * 8
        fast = m_mem.rollback(35, nbytes, 2)
        slow = m_disk.rollback(35, nbytes, 2)
        assert fast.read_time_s < slow.read_time_s

    def test_survival_is_seeded(self):
        outcomes = []
        for _ in range(2):
            m = mgr(memory_survival=0.5, seed=7)
            m.maybe_checkpoint(10, np.full(8, 1.0), 2)
            m.maybe_checkpoint(30, np.full(8, 3.0), 2)
            outcomes.append([m.rollback(35, 64, 2).level for _ in range(5)])
        assert outcomes[0] == outcomes[1]


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            mgr(memory_interval=0)
        with pytest.raises(ValueError):
            mgr(disk_every=0)
        with pytest.raises(ValueError):
            mgr(memory_survival=1.5)
        with pytest.raises(ValueError):
            mgr().due(-1)
