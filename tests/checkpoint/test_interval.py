"""Unit tests for Young's and Daly's checkpoint intervals."""

import math

import pytest

from repro.checkpoint.interval import (
    daly_interval,
    interval_in_iterations,
    young_interval,
)


class TestYoung:
    def test_formula(self):
        assert young_interval(1.0, 3600.0) == pytest.approx(math.sqrt(7200.0))

    def test_grows_with_mtbf(self):
        assert young_interval(1.0, 7200.0) > young_interval(1.0, 3600.0)

    def test_grows_with_checkpoint_cost(self):
        assert young_interval(4.0, 3600.0) == pytest.approx(
            2 * young_interval(1.0, 3600.0)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 100.0)
        with pytest.raises(ValueError):
            young_interval(1.0, 0.0)


class TestClosedFormValues:
    """Pin the exact closed-form numbers, not just shapes and limits."""

    def test_young_exact_values(self):
        # I = sqrt(2 t_C M)
        assert young_interval(2.0, 100.0) == 20.0
        assert young_interval(0.5, 3600.0) == 60.0
        assert young_interval(30.0, 24 * 3600.0) == pytest.approx(
            2276.839915321233, abs=1e-6
        )

    def test_daly_exact_values(self):
        # I = sqrt(2 t_C M) (1 + sqrt(t_C/2M)/3 + t_C/(18M)) - t_C
        assert daly_interval(2.0, 100.0) == pytest.approx(
            18.68888888888889, rel=1e-12
        )
        assert daly_interval(0.5, 3600.0) == pytest.approx(
            59.667129629629635, rel=1e-9
        )

    def test_daly_degenerate_boundary(self):
        # the t_C >= 2M branch engages exactly at the boundary
        assert daly_interval(200.0, 100.0) == 100.0
        assert daly_interval(199.999, 100.0) != 100.0

    def test_interval_round_trip_to_iterations(self):
        # a 20 s Young interval at 0.5 s/iteration is 40 iterations
        assert interval_in_iterations(young_interval(2.0, 100.0), 0.5) == 40


class TestDaly:
    def test_close_to_young_for_small_tc(self):
        """Daly reduces to Young when t_C << MTBF."""
        t_c, mtbf = 0.001, 10_000.0
        assert daly_interval(t_c, mtbf) == pytest.approx(
            young_interval(t_c, mtbf), rel=1e-2
        )

    def test_below_young_for_large_tc(self):
        """The -t_C correction bites when checkpointing is expensive."""
        t_c, mtbf = 100.0, 3600.0
        assert daly_interval(t_c, mtbf) < young_interval(t_c, mtbf)

    def test_degenerate_regime_returns_mtbf(self):
        assert daly_interval(10_000.0, 100.0) == pytest.approx(100.0)

    def test_positive_everywhere(self):
        for t_c in (0.01, 1.0, 50.0):
            for mtbf in (10.0, 1000.0, 1e6):
                assert daly_interval(t_c, mtbf) > 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            daly_interval(-1.0, 100.0)


class TestIntervalInIterations:
    def test_rounds_to_nearest(self):
        assert interval_in_iterations(1.0, 0.3) == 3
        assert interval_in_iterations(1.6, 1.0) == 2

    def test_minimum_floor(self):
        assert interval_in_iterations(0.001, 1.0) == 1
        assert interval_in_iterations(0.001, 1.0, minimum=5) == 5

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            interval_in_iterations(0.0, 1.0)
        with pytest.raises(ValueError):
            interval_in_iterations(1.0, 0.0)
        with pytest.raises(ValueError):
            interval_in_iterations(1.0, 1.0, minimum=0)
