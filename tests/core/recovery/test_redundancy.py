"""Unit tests for DMR redundancy."""

import numpy as np

from repro.core.recovery.redundancy import Redundancy
from repro.faults.events import FaultEvent
from repro.power.energy import PhaseTag


class TestRedundancy:
    def test_energy_multiplier_is_double(self):
        assert Redundancy().energy_multiplier == 2.0

    def test_replica_restores_exactly(self, services, midsolve_state):
        scheme = Redundancy()
        scheme.setup(services)
        scheme.on_iteration_end(services, midsolve_state)
        before = midsolve_state.copy()
        sl = services.partition.slice_of(2)
        midsolve_state.x[sl] = np.nan
        midsolve_state.r[sl] = np.nan
        midsolve_state.p[sl] = np.nan
        out = scheme.recover(services, midsolve_state, FaultEvent(20, 2))
        assert not out.needs_restart  # exact recovery, no restart needed
        assert np.array_equal(midsolve_state.x, before.x)
        assert np.array_equal(midsolve_state.r, before.r)
        assert np.array_equal(midsolve_state.p, before.p)
        assert midsolve_state.rz == before.rz

    def test_replica_is_a_copy_not_a_view(self, services, midsolve_state):
        scheme = Redundancy()
        scheme.setup(services)
        scheme.on_iteration_end(services, midsolve_state)
        midsolve_state.x[:] = 0.0
        assert not np.allclose(scheme._replica.x, 0.0)

    def test_fault_before_first_iteration_restores_initial_state(
        self, services, midsolve_state
    ):
        scheme = Redundancy()
        scheme.setup(services)  # no on_iteration_end yet
        sl = services.partition.slice_of(1)
        midsolve_state.x[sl] = np.nan
        out = scheme.recover(services, midsolve_state, FaultEvent(0, 1))
        assert out.needs_restart
        assert np.allclose(midsolve_state.x[sl], services.x0[sl])

    def test_transfer_cost_is_charged_but_small(self, services, midsolve_state):
        scheme = Redundancy()
        scheme.setup(services)
        scheme.on_iteration_end(services, midsolve_state)
        sl = services.partition.slice_of(0)
        midsolve_state.x[sl] = np.nan
        scheme.recover(services, midsolve_state, FaultEvent(20, 0))
        restore = services.time_of(PhaseTag.RESTORE)
        assert 0 < restore < 1e-3  # "negligible" (Section 3.2)

    def test_recovery_counter(self, services, midsolve_state):
        scheme = Redundancy()
        scheme.setup(services)
        scheme.on_iteration_end(services, midsolve_state)
        for k in range(3):
            scheme.recover(services, midsolve_state, FaultEvent(20, k))
        assert scheme.recoveries == 3

    def test_setup_resets(self, services, midsolve_state):
        scheme = Redundancy()
        scheme.setup(services)
        scheme.on_iteration_end(services, midsolve_state)
        scheme.recover(services, midsolve_state, FaultEvent(20, 0))
        scheme.setup(services)
        assert scheme.recoveries == 0
        assert scheme._replica is None
