"""Fixtures for recovery-scheme unit tests: a fake services object so
schemes are tested in isolation from the solver."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core.cg import DistributedCG
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.generators import banded_spd
from repro.matrices.partition import BlockRowPartition
from repro.power.energy import PhaseTag


@dataclass
class FakeServices:
    """Minimal RecoveryServices implementation with charge recording."""

    dmat: DistributedMatrix
    b: np.ndarray
    x0: np.ndarray
    charges: list = field(default_factory=list)
    overlapped: list = field(default_factory=list)
    dvfs_calls: list = field(default_factory=list)
    compute_rate: float = 1e9

    @property
    def partition(self) -> BlockRowPartition:
        return self.dmat.partition

    @property
    def nranks(self) -> int:
        return self.dmat.nranks

    @property
    def iteration_wall_s(self) -> float:
        return 1e-4

    def charge_phase(self, tag, duration_s, power_w):
        assert duration_s >= 0 and power_w >= 0
        self.charges.append((tag, duration_s, power_w))

    def charge_overlapped(self, tag, energy_j):
        self.overlapped.append((tag, energy_j))

    def power_compute_w(self):
        return 100.0

    def power_checkpoint_w(self):
        return 74.0

    def power_reconstruct_w(self, *, dvfs):
        return 45.0 if dvfs else 75.0

    def power_idle_w(self):
        return 74.0

    def local_compute_s(self, flops, *, kind="spmv"):
        rate = {"spmv": 1.0, "dense": 2.0, "factor": 0.25}[kind] * self.compute_rate
        return flops / rate

    def collective_allreduce_s(self, nbytes):
        return 1e-6 + nbytes * 1e-10

    def p2p_s(self, src, dst, nbytes):
        if src == dst:
            return 0.0
        return 1e-6 + nbytes * 1e-10

    def interconnect_p2p_s(self, nbytes):
        return 1.5e-6 + nbytes * 2e-10

    def restart_cost_s(self):
        return 1e-4

    def apply_dvfs_reconstruct(self, victim_rank):
        self.dvfs_calls.append(("apply", victim_rank))

    def release_dvfs(self):
        self.dvfs_calls.append(("release", None))

    # -- helpers for assertions -----------------------------------------
    def time_of(self, tag: PhaseTag) -> float:
        return sum(d for t, d, _ in self.charges if t is tag)


@pytest.fixture()
def services(rng) -> FakeServices:
    a = banded_spd(96, 5, dominance=0.05, seed=0)
    x_true = rng.standard_normal(96)
    b = a @ x_true
    dmat = DistributedMatrix(a, BlockRowPartition(96, 4))
    return FakeServices(dmat=dmat, b=b, x0=np.zeros(96))


@pytest.fixture()
def midsolve_state(services):
    """A CG state 20 iterations into the solve (not yet converged)."""
    cg = DistributedCG(services.dmat, services.b, tol=1e-12)
    for _ in range(20):
        cg.step()
    return cg.state
