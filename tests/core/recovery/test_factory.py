"""Unit tests for the scheme factory."""

import pytest

from repro.checkpoint.store import DiskStore, MemoryStore
from repro.core.recovery import make_scheme, scheme_names
from repro.core.recovery.checkpoint import CheckpointRestart
from repro.core.recovery.fill import InitialGuessFill, ZeroFill
from repro.core.recovery.interpolation import (
    LeastSquaresInterpolation,
    LinearInterpolation,
)
from repro.core.recovery.redundancy import Redundancy


class TestFactory:
    def test_all_names_buildable(self):
        for name in scheme_names():
            scheme = make_scheme(name)
            assert scheme is not None

    def test_paper_table2_schemes_present(self):
        names = set(scheme_names())
        assert {"CR-M", "CR-D", "RD", "F0", "FI", "LI", "LSI"} <= names

    def test_optimized_variants_present(self):
        names = set(scheme_names())
        assert {"LI-DVFS", "LSI-DVFS", "LI-LU", "LSI-QR"} <= names

    def test_types(self):
        assert isinstance(make_scheme("RD"), Redundancy)
        assert isinstance(make_scheme("F0"), ZeroFill)
        assert isinstance(make_scheme("FI"), InitialGuessFill)
        assert isinstance(make_scheme("LI"), LinearInterpolation)
        assert isinstance(make_scheme("LSI"), LeastSquaresInterpolation)
        assert isinstance(make_scheme("CR-M"), CheckpointRestart)

    def test_store_wiring(self):
        assert isinstance(make_scheme("CR-M").store, MemoryStore)
        assert isinstance(make_scheme("CR-D").store, DiskStore)

    def test_method_wiring(self):
        assert make_scheme("LI").method == "cg"
        assert make_scheme("LI-LU").method == "lu"
        assert make_scheme("LSI-QR").method == "qr"

    def test_dvfs_wiring(self):
        assert make_scheme("LI-DVFS").dvfs
        assert make_scheme("LSI-DVFS").dvfs
        assert not make_scheme("LI").dvfs

    def test_cr_interval_default_is_papers_100(self):
        assert make_scheme("CR-D")._requested_interval == 100

    def test_cr_explicit_interval(self):
        assert make_scheme("CR-M", interval_iters=7)._requested_interval == 7

    def test_cr_mtbf_takes_precedence_over_default(self):
        scheme = make_scheme("CR-D", mtbf_s=10.0)
        assert scheme._requested_interval is None
        assert scheme.mtbf_s == 10.0

    def test_construct_tol_passthrough(self):
        assert make_scheme("LI", construct_tol=1e-2).construct_tol == 1e-2
        assert make_scheme("LSI-DVFS", construct_tol=1e-4).construct_tol == 1e-4

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_scheme("quintuple-redundancy")
