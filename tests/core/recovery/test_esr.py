"""Unit tests for exact state reconstruction (ESR, arXiv:1907.13077)."""

import numpy as np
import pytest

from repro.core.recovery.esr import (
    ExactStateReconstruction,
    rebuild_flops,
    retention_bytes,
)
from repro.faults.events import FaultEvent
from repro.power.energy import PhaseTag


def scheme_with(services):
    s = ExactStateReconstruction()
    s.setup(services)
    return s


class TestRetention:
    def test_overlap_energy_positive_after_setup(self, services):
        s = scheme_with(services)
        assert s.overlap_energy_per_iteration_j > 0

    def test_no_periodic_hook(self, services):
        s = scheme_with(services)
        assert s.next_hook_iteration(17) == float("inf")

    def test_retention_bytes_two_vectors(self):
        assert retention_bytes(10) == 2 * 10 * 8

    def test_rebuild_flops_scale_with_panel(self):
        assert rebuild_flops(100, 10) == 2 * 100 + 10 * 10


class TestRecover:
    def _corrupt_then_recover(self, services, state, victims):
        s = scheme_with(services)
        s.on_iteration_end(services, state)
        reference = state.copy()
        for v in victims:
            sl = services.partition.slice_of(v)
            state.x[sl] = np.nan
            state.r[sl] = np.nan
            state.p[sl] = np.nan
        out = s.recover(services, state, FaultEvent.multi(21, victims))
        return s, out, reference

    def test_multi_victim_rebuild_is_bitwise(self, services, midsolve_state):
        """Two simultaneous losses rebuild to the exact pre-fault state."""
        s, out, ref = self._corrupt_then_recover(
            services, midsolve_state, (1, 3)
        )
        assert not out.needs_restart
        assert np.array_equal(midsolve_state.x, ref.x)
        assert np.array_equal(midsolve_state.r, ref.r)
        assert np.array_equal(midsolve_state.p, ref.p)
        assert midsolve_state.rz == ref.rz
        assert s.recoveries == 2
        assert out.detail == {"exact": True, "victims": [1, 3]}

    def test_all_but_one_rank_lost_rebuilds(self, services, midsolve_state):
        _, out, ref = self._corrupt_then_recover(
            services, midsolve_state, (0, 1, 2)
        )
        assert not out.needs_restart
        assert np.array_equal(midsolve_state.x, ref.x)

    def test_restore_charged_per_victim(self, services, midsolve_state):
        self._corrupt_then_recover(services, midsolve_state, (1, 3))
        restores = [c for c in services.charges if c[0] is PhaseTag.RESTORE]
        assert len(restores) == 2
        assert all(p == pytest.approx(100.0) for _, _, p in restores)

    def test_reconstruct_charged_once_at_full_speed_power(
        self, services, midsolve_state
    ):
        self._corrupt_then_recover(services, midsolve_state, (1, 3))
        recon = [c for c in services.charges if c[0] is PhaseTag.RECONSTRUCT]
        assert len(recon) == 1
        assert recon[0][1] > 0
        assert recon[0][2] == pytest.approx(75.0)  # no-DVFS reconstruct power

    def test_fault_before_first_iteration_restarts_from_x0(self, services):
        from repro.core.cg import DistributedCG

        s = scheme_with(services)  # no on_iteration_end: nothing streamed
        cg = DistributedCG(services.dmat, services.b, tol=1e-12)
        state = cg.state
        out = s.recover(services, state, FaultEvent.multi(0, (0, 2)))
        assert out.needs_restart
        r0 = services.b - services.dmat.matvec(services.x0)
        for v in (0, 2):
            sl = services.partition.slice_of(v)
            assert np.array_equal(state.x[sl], services.x0[sl])
            assert np.array_equal(state.r[sl], r0[sl])


class TestEndToEnd:
    def test_esr_matches_fault_free_after_simultaneous_losses(self):
        """Acceptance: after >= 2 simultaneous failures in one event, the
        ESR trajectory is bitwise the fault-free one — same iteration
        count, same residual history."""
        from repro.faults.schedule import FixedIterationSchedule
        from tests.differential import run_solver

        ff = run_solver("banded", None)
        rep = run_solver(
            "banded", "ESR",
            schedule=FixedIterationSchedule(
                iterations=[7, 23], victims=[(1, 4), (0, 2, 5)]
            ),
        )
        assert rep.converged and ff.converged
        assert rep.iterations == ff.iterations
        assert np.array_equal(rep.residual_history, ff.residual_history)
        assert rep.final_relative_residual == ff.final_relative_residual
        assert len(rep.faults) == 2
