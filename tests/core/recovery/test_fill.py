"""Unit tests for F0 / FI assignment-based recovery."""

import numpy as np

from repro.core.recovery.fill import InitialGuessFill, ZeroFill
from repro.faults.events import FaultEvent


class TestZeroFill:
    def test_assigns_zero_to_victim_block(self, services, midsolve_state):
        sl = services.partition.slice_of(1)
        midsolve_state.x[sl] = np.nan
        out = ZeroFill().recover(services, midsolve_state, FaultEvent(20, 1))
        assert np.allclose(midsolve_state.x[sl], 0.0)
        assert out.needs_restart

    def test_leaves_other_blocks_alone(self, services, midsolve_state):
        before = midsolve_state.x.copy()
        sl = services.partition.slice_of(2)
        midsolve_state.x[sl] = np.nan
        ZeroFill().recover(services, midsolve_state, FaultEvent(20, 2))
        mask = np.ones(96, bool)
        mask[sl] = False
        assert np.array_equal(midsolve_state.x[mask], before[mask])

    def test_no_construction_cost(self, services, midsolve_state):
        """'F0 and FI are assignment based and thus do not incur a
        construction cost — i.e., T_const = 0' (Section 3.2)."""
        ZeroFill().recover(services, midsolve_state, FaultEvent(20, 0))
        assert services.charges == []

    def test_name(self):
        assert ZeroFill().name == "F0"


class TestInitialGuessFill:
    def test_assigns_initial_guess(self, services, midsolve_state):
        services.x0 = np.full(96, 7.0)
        sl = services.partition.slice_of(3)
        midsolve_state.x[sl] = np.nan
        out = InitialGuessFill().recover(services, midsolve_state, FaultEvent(20, 3))
        assert np.allclose(midsolve_state.x[sl], 7.0)
        assert out.needs_restart

    def test_equals_f0_for_zero_guess(self, services, midsolve_state):
        """With x0 = 0, FI degenerates to F0 (why the two overlap in
        Figure 6)."""
        sl = services.partition.slice_of(1)
        midsolve_state.x[sl] = np.nan
        InitialGuessFill().recover(services, midsolve_state, FaultEvent(20, 1))
        assert np.allclose(midsolve_state.x[sl], 0.0)

    def test_no_construction_cost(self, services, midsolve_state):
        InitialGuessFill().recover(services, midsolve_state, FaultEvent(20, 0))
        assert services.charges == []

    def test_name(self):
        assert InitialGuessFill().name == "FI"
