"""Unit tests for LI / LSI interpolation recovery."""

import numpy as np
import pytest

from repro.core.recovery.interpolation import (
    LeastSquaresInterpolation,
    LinearInterpolation,
)
from repro.faults.events import FaultEvent
from repro.power.energy import PhaseTag


def damage(services, state, rank):
    sl = services.partition.slice_of(rank)
    state.x[sl] = np.nan
    state.r[sl] = np.nan
    state.p[sl] = np.nan
    return sl


class TestLinearInterpolation:
    @pytest.mark.parametrize("method", ["cg", "lu"])
    def test_reconstruction_is_accurate_midsolve(self, services, midsolve_state, method):
        """LI's interpolant from healthy neighbour data is close to the
        pre-fault block (Eq. 17/19)."""
        before = midsolve_state.x.copy()
        sl = damage(services, midsolve_state, 1)
        scheme = LinearInterpolation(method=method, construct_tol=1e-8)
        out = scheme.recover(services, midsolve_state, FaultEvent(20, 1))
        err = np.linalg.norm(midsolve_state.x[sl] - before[sl]) / np.linalg.norm(before[sl])
        assert err < 0.05
        assert out.needs_restart

    def test_lu_solves_diag_block_exactly(self, services, midsolve_state):
        sl = damage(services, midsolve_state, 2)
        LinearInterpolation(method="lu").recover(
            services, midsolve_state, FaultEvent(20, 2)
        )
        # verify Eq. 19: A_ii x_i = b_i - sum_{j!=i} A_ij x_j
        rows = services.dmat.row_block(2)
        diag = services.dmat.diag_block(2)
        xz = midsolve_state.x.copy()
        xz[sl] = 0.0
        y = services.b[sl] - rows @ xz
        assert np.allclose(diag @ midsolve_state.x[sl], y, atol=1e-8)

    def test_non_victim_blocks_untouched(self, services, midsolve_state):
        before = midsolve_state.x.copy()
        sl = damage(services, midsolve_state, 0)
        LinearInterpolation().recover(services, midsolve_state, FaultEvent(20, 0))
        mask = np.ones(96, bool)
        mask[sl] = False
        assert np.array_equal(midsolve_state.x[mask], before[mask])

    def test_charges_reconstruct_phase(self, services, midsolve_state):
        damage(services, midsolve_state, 1)
        LinearInterpolation().recover(services, midsolve_state, FaultEvent(20, 1))
        tags = [t for t, _, _ in services.charges]
        assert PhaseTag.RECONSTRUCT in tags

    def test_dvfs_schedule_applied_and_released(self, services, midsolve_state):
        damage(services, midsolve_state, 1)
        LinearInterpolation(dvfs=True).recover(
            services, midsolve_state, FaultEvent(20, 1)
        )
        assert ("apply", 1) in services.dvfs_calls
        assert ("release", None) in services.dvfs_calls

    def test_dvfs_lowers_charged_power(self, services, midsolve_state):
        damage(services, midsolve_state, 1)
        LinearInterpolation(dvfs=True).recover(
            services, midsolve_state, FaultEvent(20, 1)
        )
        recon_powers = [
            p for t, d, p in services.charges if t is PhaseTag.RECONSTRUCT and d > 0
        ]
        assert min(recon_powers) == pytest.approx(45.0)  # fake dvfs power

    def test_names(self):
        assert LinearInterpolation().name == "LI"
        assert LinearInterpolation(dvfs=True).name == "LI-DVFS"

    def test_construction_records_stats(self, services, midsolve_state):
        damage(services, midsolve_state, 1)
        scheme = LinearInterpolation(method="cg", construct_tol=1e-4)
        scheme.recover(services, midsolve_state, FaultEvent(20, 1))
        assert len(scheme.constructions) == 1
        detail = scheme.constructions[0]
        assert detail["local_iters"] > 0
        assert detail["construct_s"] > 0

    def test_rejects_invalid_method(self):
        with pytest.raises(ValueError):
            LinearInterpolation(method="qr")

    def test_dvfs_requires_cg(self):
        with pytest.raises(ValueError):
            LinearInterpolation(method="lu", dvfs=True)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            LinearInterpolation(construct_tol=0.0)


class TestLeastSquaresInterpolation:
    @pytest.mark.parametrize("method", ["cg", "qr"])
    def test_reconstruction_is_accurate_midsolve(self, services, midsolve_state, method):
        before = midsolve_state.x.copy()
        sl = damage(services, midsolve_state, 1)
        scheme = LeastSquaresInterpolation(method=method, construct_tol=1e-10)
        out = scheme.recover(services, midsolve_state, FaultEvent(20, 1))
        err = np.linalg.norm(midsolve_state.x[sl] - before[sl]) / np.linalg.norm(before[sl])
        assert err < 0.05
        assert out.needs_restart

    def test_cg_and_qr_agree(self, services, midsolve_state):
        """The local normal-equations CG (Eq. 21) converges to the same
        minimiser as the exact parallel solve (Eq. 20)."""
        import copy

        state_a = midsolve_state.copy()
        state_b = midsolve_state.copy()
        sl = damage(services, state_a, 2)
        damage(services, state_b, 2)
        LeastSquaresInterpolation(method="cg", construct_tol=1e-12).recover(
            services, state_a, FaultEvent(20, 2)
        )
        LeastSquaresInterpolation(method="qr").recover(
            services, state_b, FaultEvent(20, 2)
        )
        assert np.allclose(state_a.x[sl], state_b.x[sl], atol=1e-5)

    def test_qr_charges_full_power(self, services, midsolve_state):
        """The exact parallel baseline keeps every core busy."""
        damage(services, midsolve_state, 1)
        LeastSquaresInterpolation(method="qr").recover(
            services, midsolve_state, FaultEvent(20, 1)
        )
        recon = [(d, p) for t, d, p in services.charges if t is PhaseTag.RECONSTRUCT]
        construct = max(recon, key=lambda dp: dp[0])
        assert construct[1] == pytest.approx(100.0)  # compute power

    def test_local_cg_charges_reduced_power(self, services, midsolve_state):
        damage(services, midsolve_state, 1)
        LeastSquaresInterpolation(method="cg").recover(
            services, midsolve_state, FaultEvent(20, 1)
        )
        recon_powers = [p for t, d, p in services.charges if t is PhaseTag.RECONSTRUCT]
        assert 75.0 in [pytest.approx(p) for p in recon_powers] or any(
            abs(p - 75.0) < 1e-9 for p in recon_powers
        )

    def test_names(self):
        assert LeastSquaresInterpolation().name == "LSI"
        assert LeastSquaresInterpolation(dvfs=True).name == "LSI-DVFS"

    def test_rejects_invalid_method(self):
        with pytest.raises(ValueError):
            LeastSquaresInterpolation(method="lu")

    def test_dvfs_requires_cg(self):
        with pytest.raises(ValueError):
            LeastSquaresInterpolation(method="qr", dvfs=True)
