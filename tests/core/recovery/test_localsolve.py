"""Unit tests for the local construction solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.recovery.localsolve import (
    exact_least_squares,
    local_cg,
    lu_solve_with_stats,
)
from repro.matrices.generators import banded_spd


@pytest.fixture()
def spd_system(rng):
    a = banded_spd(60, 5, dominance=0.1, seed=0)
    x = rng.standard_normal(60)
    return a, a @ x, x


class TestLocalCG:
    def test_solves_spd_system(self, spd_system):
        a, b, x_true = spd_system
        x, stats = local_cg(
            lambda v: a @ v, b, tol=1e-10, max_iters=1000, flops_per_apply=2 * a.nnz
        )
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-7
        assert stats.relative_residual <= 1e-10
        assert stats.iterations > 0

    def test_loose_tolerance_takes_fewer_iterations(self, spd_system):
        a, b, _ = spd_system
        _, tight = local_cg(lambda v: a @ v, b, tol=1e-10, max_iters=1000,
                            flops_per_apply=1.0)
        _, loose = local_cg(lambda v: a @ v, b, tol=1e-2, max_iters=1000,
                            flops_per_apply=1.0)
        assert loose.iterations < tight.iterations

    def test_flops_accounting(self, spd_system):
        a, b, _ = spd_system
        _, stats = local_cg(lambda v: a @ v, b, tol=1e-8, max_iters=1000,
                            flops_per_apply=100.0, dense_flops_per_row=10.0)
        assert stats.flops == pytest.approx(stats.iterations * (100.0 + 10.0 * 60))

    def test_zero_rhs_short_circuits(self):
        x, stats = local_cg(lambda v: v, np.zeros(5), tol=1e-8, max_iters=10,
                            flops_per_apply=1.0)
        assert np.allclose(x, 0)
        assert stats.iterations == 0

    def test_max_iters_cap(self, spd_system):
        a, b, _ = spd_system
        _, stats = local_cg(lambda v: a @ v, b, tol=1e-300, max_iters=3,
                            flops_per_apply=1.0)
        assert stats.iterations == 3

    def test_jacobi_preconditioning_helps_badly_scaled(self, rng):
        """Jacobi-PCG needs far fewer iterations on a badly row-scaled
        normal-equations operator."""
        a = banded_spd(80, 5, dominance=1e-3, seed=1)
        d = sp.diags(np.exp(2.0 * rng.standard_normal(80)))
        m = (d @ a @ d).tocsr()
        b = m @ rng.standard_normal(80)
        diag = m.diagonal()
        _, plain = local_cg(lambda v: m @ v, b, tol=1e-8, max_iters=5000,
                            flops_per_apply=1.0)
        _, pcg = local_cg(lambda v: m @ v, b, tol=1e-8, max_iters=5000,
                          flops_per_apply=1.0, jacobi_diag=diag)
        assert pcg.iterations < plain.iterations

    def test_jacobi_diag_validation(self):
        with pytest.raises(ValueError):
            local_cg(lambda v: v, np.ones(4), tol=1e-8, max_iters=10,
                     flops_per_apply=1.0, jacobi_diag=np.ones(3))
        with pytest.raises(ValueError):
            local_cg(lambda v: v, np.ones(4), tol=1e-8, max_iters=10,
                     flops_per_apply=1.0, jacobi_diag=np.array([1.0, -1.0, 1.0, 1.0]))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            local_cg(lambda v: v, np.ones(4), tol=0.0, max_iters=10, flops_per_apply=1.0)
        with pytest.raises(ValueError):
            local_cg(lambda v: v, np.ones(4), tol=1e-8, max_iters=0, flops_per_apply=1.0)


class TestLU:
    def test_exact_solution(self, spd_system):
        a, b, x_true = spd_system
        x, stats = lu_solve_with_stats(a, b)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-10

    def test_fill_statistics(self, spd_system):
        a, b, _ = spd_system
        _, stats = lu_solve_with_stats(a, b)
        assert stats.n == 60
        assert stats.factor_nnz >= a.nnz  # factors carry at least the pattern
        assert stats.factor_flops > 0
        assert stats.solve_flops == pytest.approx(4.0 * stats.factor_nnz)

    def test_bandwidth_estimate(self):
        from repro.core.recovery.localsolve import LuStats

        s = LuStats(n=100, factor_nnz=1000)
        assert s.effective_bandwidth == pytest.approx(5.0)
        assert s.factor_flops == pytest.approx(2 * 100 * 25.0)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            lu_solve_with_stats(sp.random(4, 6, format="csc"), np.ones(4))


class TestExactLeastSquares:
    def test_square_consistent_system(self, spd_system):
        a, b, x_true = spd_system
        x, stats = exact_least_squares(a, b)
        assert np.linalg.norm(x - x_true) / np.linalg.norm(x_true) < 1e-6
        assert stats.iterations > 0

    def test_overdetermined_minimiser(self, rng):
        a = sp.random(50, 10, density=0.4, random_state=1).tocsr()
        b = rng.standard_normal(50)
        x, stats = exact_least_squares(a, b)
        dense, *_ = np.linalg.lstsq(a.toarray(), b, rcond=None)
        assert np.allclose(x, dense, atol=1e-6)
