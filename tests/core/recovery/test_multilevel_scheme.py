"""Tests for the CR-ML recovery scheme (multi-level checkpoint/restart)."""

import numpy as np

from repro.core.recovery import make_scheme
from repro.core.recovery.multilevel import MultiLevelCheckpointRestart
from repro.faults.events import FaultEvent
from repro.faults.schedule import EvenlySpacedSchedule
from repro.power.energy import PhaseTag


class TestScheme:
    def test_factory(self):
        s = make_scheme("CR-ML")
        assert isinstance(s, MultiLevelCheckpointRestart)
        assert s.name == "CR-ML"

    def test_factory_interval_passthrough(self):
        s = make_scheme("CR-ML", interval_iters=7)
        s2 = MultiLevelCheckpointRestart(memory_interval=7)
        assert s._args["memory_interval"] == s2._args["memory_interval"] == 7

    def test_checkpoints_and_charges(self, services, midsolve_state):
        s = MultiLevelCheckpointRestart(memory_interval=5, disk_every=2)
        s.setup(services)
        midsolve_state.iteration = 5
        s.on_iteration_end(services, midsolve_state)   # memory only
        midsolve_state.iteration = 10
        s.on_iteration_end(services, midsolve_state)   # memory + disk
        assert s.manager.memory_writes == 2
        assert s.manager.disk_writes == 1
        assert services.time_of(PhaseTag.CHECKPOINT) > 0

    def test_recover_rolls_back_and_tracks_level(self, services, midsolve_state):
        s = MultiLevelCheckpointRestart(
            memory_interval=5, disk_every=2, memory_survival=1.0
        )
        s.setup(services)
        midsolve_state.iteration = 5
        saved = midsolve_state.x.copy()
        s.on_iteration_end(services, midsolve_state)
        midsolve_state.x += 1.0
        midsolve_state.iteration = 8
        out = s.recover(services, midsolve_state, FaultEvent(8, 1))
        assert out.needs_restart
        assert np.array_equal(midsolve_state.x, saved)
        assert s.restore_levels == ["memory"]
        assert s.rollback_reexecute_iters == 3

    def test_disk_fallback_loses_more_iterations(self, services, midsolve_state):
        s = MultiLevelCheckpointRestart(
            memory_interval=5, disk_every=4, memory_survival=0.0
        )
        s.setup(services)
        for it in (5, 10, 15, 20):
            midsolve_state.iteration = it
            s.on_iteration_end(services, midsolve_state)
        midsolve_state.iteration = 22
        out = s.recover(services, midsolve_state, FaultEvent(22, 0))
        # only iteration 20 went to disk
        assert out.detail["level"] == "disk"
        assert out.detail["rolled_back_iters"] == 2 or s.restore_levels == ["disk"]


class TestEndToEnd:
    def test_converges_under_faults(self, solver_factory):
        report = solver_factory(
            scheme=make_scheme("CR-ML", interval_iters=10),
            schedule=EvenlySpacedSchedule(n_faults=3),
        ).solve()
        assert report.converged
        details = report.details["scheme_details"]
        assert details["memory_writes"] > details["disk_writes"] > 0
        assert len(details["restore_levels"]) == 3

    def test_cheaper_checkpointing_than_pure_disk(self, solver_factory):
        ml = solver_factory(
            scheme=make_scheme("CR-ML", interval_iters=10),
            schedule=EvenlySpacedSchedule(n_faults=3),
        ).solve()
        crd = solver_factory(
            scheme=make_scheme("CR-D", interval_iters=10),
            schedule=EvenlySpacedSchedule(n_faults=3),
        ).solve()
        # same cadence: CR-ML flushes to disk only every 4th checkpoint
        assert ml.account.time(PhaseTag.CHECKPOINT) < crd.account.time(
            PhaseTag.CHECKPOINT
        )

    def test_survives_memory_level_loss(self, solver_factory):
        scheme = MultiLevelCheckpointRestart(
            memory_interval=10, disk_every=2, memory_survival=0.0
        )
        report = solver_factory(
            scheme=scheme, schedule=EvenlySpacedSchedule(n_faults=3)
        ).solve()
        assert report.converged
        levels = report.details["scheme_details"]["restore_levels"]
        assert all(lv in ("disk", "initial") for lv in levels)
