"""Unit tests for algorithm-based checkpoint-recovery (ABCR,
arXiv:2007.04066)."""

import numpy as np
import pytest

from repro.core.recovery.abcr import (
    RETAINED_VECTORS,
    AlgorithmBasedCheckpointRecovery,
    retention_transfer_s,
)
from repro.faults.events import FaultEvent
from repro.power.energy import PhaseTag


def scheme_with(services, interval=5):
    s = AlgorithmBasedCheckpointRecovery(interval_iters=interval)
    s.setup(services)
    return s


class TestCadence:
    def test_retains_on_interval_only(self, services, midsolve_state):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 5
        s.on_iteration_end(services, midsolve_state)
        assert s.manager.writes == 1
        midsolve_state.iteration = 7
        s.on_iteration_end(services, midsolve_state)
        assert s.manager.writes == 1

    def test_iteration_zero_never_retains(self, services, midsolve_state):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 0
        s.on_iteration_end(services, midsolve_state)
        assert s.manager.writes == 0

    def test_next_hook_lands_on_interval_multiples(self, services):
        s = scheme_with(services, interval=5)
        assert s.next_hook_iteration(3) == 5
        assert s.next_hook_iteration(5) == 10

    def test_retention_charged_as_checkpoint_at_low_power(
        self, services, midsolve_state
    ):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 10
        s.on_iteration_end(services, midsolve_state)
        cps = [c for c in services.charges if c[0] is PhaseTag.CHECKPOINT]
        assert len(cps) == 1
        assert cps[0][1] == pytest.approx(retention_transfer_s(services))
        assert cps[0][2] == pytest.approx(74.0)

    def test_transfer_prices_three_vectors_of_largest_block(self, services):
        part = services.partition
        worst = max(
            part.slice_of(r).stop - part.slice_of(r).start
            for r in range(services.nranks)
        )
        expected = services.interconnect_p2p_s(RETAINED_VECTORS * worst * 8)
        assert retention_transfer_s(services) == pytest.approx(expected)


class TestRecover:
    def test_rollback_restores_retained_x(self, services, midsolve_state):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 5
        saved = midsolve_state.x.copy()
        s.on_iteration_end(services, midsolve_state)
        midsolve_state.x += 1.0
        midsolve_state.iteration = 8
        out = s.recover(services, midsolve_state, FaultEvent(8, 1))
        assert out.needs_restart
        assert np.array_equal(midsolve_state.x, saved)
        assert out.detail["rolled_back_iters"] == 3
        assert s.rollback_reexecute_iters == 3

    def test_rollback_without_retention_restarts_from_x0(
        self, services, midsolve_state
    ):
        s = scheme_with(services, interval=1000)
        midsolve_state.iteration = 8
        s.recover(services, midsolve_state, FaultEvent(8, 1))
        assert np.array_equal(midsolve_state.x, services.x0)
        assert s.rollback_reexecute_iters == 8

    def test_restore_at_checkpoint_power_reconstruct_at_compute(
        self, services, midsolve_state
    ):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 6
        s.recover(services, midsolve_state, FaultEvent(6, 0))
        restores = [c for c in services.charges if c[0] is PhaseTag.RESTORE]
        recon = [c for c in services.charges if c[0] is PhaseTag.RECONSTRUCT]
        assert restores[0][1] == pytest.approx(retention_transfer_s(services))
        assert restores[0][2] == pytest.approx(74.0)
        assert recon[0][1] == pytest.approx(services.restart_cost_s())
        assert recon[0][2] == pytest.approx(100.0)

    def test_multi_victim_event_is_one_global_rollback(
        self, services, midsolve_state
    ):
        """A victim-set event costs one rollback, not one per victim —
        the retained copies cover every rank at once."""
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 5
        s.on_iteration_end(services, midsolve_state)
        midsolve_state.iteration = 9
        out = s.recover(
            services, midsolve_state, FaultEvent.multi(9, (0, 2, 3))
        )
        assert s.recoveries == 1
        assert out.detail["rolled_back_iters"] == 4
        restores = [c for c in services.charges if c[0] is PhaseTag.RESTORE]
        assert len(restores) == 1


class TestValidation:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            AlgorithmBasedCheckpointRecovery(interval_iters=0)

    def test_interval_property(self):
        assert (
            AlgorithmBasedCheckpointRecovery(interval_iters=7).interval_iters
            == 7
        )
