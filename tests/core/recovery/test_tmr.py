"""Tests for the TMR extension (triple modular redundancy).

The paper studies DMR and names TMR among the redundancy mechanisms
(Section 7); its future work asks to "extend our models to capture more
resilience mechanisms".  TMR = 3 modular copies: 3x power/energy, exact
recovery, and enough copies to out-vote a single silently corrupted one.
"""

import numpy as np
import pytest

from repro.core.models.general import GeneralModel, WorkloadParams
from repro.core.models.schemes import RedundancyModel
from repro.core.recovery import make_scheme
from repro.core.recovery.redundancy import Redundancy
from repro.faults.events import FaultClass, FaultEvent
from repro.faults.schedule import EvenlySpacedSchedule


class TestTmrScheme:
    def test_factory(self):
        s = make_scheme("TMR")
        assert isinstance(s, Redundancy)
        assert s.replicas == 3
        assert s.name == "TMR"

    def test_energy_multiplier_is_three(self):
        assert make_scheme("TMR").energy_multiplier == 3.0

    def test_sdc_voting_capability(self):
        assert make_scheme("TMR").can_outvote_sdc
        assert not make_scheme("RD").can_outvote_sdc

    def test_generic_replica_count_names(self):
        assert Redundancy(replicas=5).name == "5MR"

    def test_rejects_single_copy(self):
        with pytest.raises(ValueError):
            Redundancy(replicas=1)

    def test_exact_recovery(self, services, midsolve_state):
        scheme = Redundancy(replicas=3)
        scheme.setup(services)
        scheme.on_iteration_end(services, midsolve_state)
        before = midsolve_state.copy()
        sl = services.partition.slice_of(1)
        midsolve_state.x[sl] = np.nan
        out = scheme.recover(services, midsolve_state, FaultEvent(20, 1))
        assert not out.needs_restart
        assert np.array_equal(midsolve_state.x, before.x)


class TestTmrEndToEnd:
    def test_triples_energy_and_power(self, solver_factory):
        ff = solver_factory().solve()
        tmr = solver_factory(
            scheme=make_scheme("TMR"), schedule=EvenlySpacedSchedule(n_faults=2)
        ).solve()
        assert tmr.iterations == ff.iterations
        assert tmr.normalized_energy(ff) == pytest.approx(3.0, rel=0.05)
        assert tmr.normalized_power(ff) == pytest.approx(3.0, rel=0.05)
        assert tmr.normalized_time(ff) == pytest.approx(1.0, rel=0.05)

    def test_recovers_sdc(self, solver_factory):
        from repro.faults.schedule import FixedIterationSchedule

        report = solver_factory(
            scheme=make_scheme("TMR"),
            schedule=FixedIterationSchedule(
                iterations=[10], fault_class=FaultClass.SDC
            ),
        ).solve()
        assert report.converged


class TestTmrModel:
    @pytest.fixture()
    def gm(self):
        return GeneralModel(WorkloadParams(t_solve_s=100.0, p1_w=10.0), n_cores=8)

    def test_power_triples(self, gm):
        m = RedundancyModel(gm, replicas=3)
        assert m.average_power_w() == pytest.approx(3 * gm.power_execution_w())

    def test_e_res_doubles_ff(self, gm):
        m = RedundancyModel(gm, replicas=3)
        assert m.e_res_j() == pytest.approx(2 * gm.energy_fault_free_j())

    def test_dmr_default_unchanged(self, gm):
        m = RedundancyModel(gm)
        assert m.average_power_w() == pytest.approx(2 * gm.power_execution_w())
        assert m.e_res_j() == pytest.approx(gm.energy_fault_free_j())

    def test_rejects_bad_replicas(self, gm):
        with pytest.raises(ValueError):
            RedundancyModel(gm, replicas=1)
