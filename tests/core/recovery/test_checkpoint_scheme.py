"""Unit tests for the CR recovery scheme."""

import numpy as np
import pytest

from repro.checkpoint.store import DiskStore, MemoryStore
from repro.core.recovery.checkpoint import CheckpointRestart
from repro.faults.events import FaultEvent
from repro.power.energy import PhaseTag


def scheme_with(services, interval=5, store=None):
    s = CheckpointRestart(store or MemoryStore(), interval_iters=interval)
    s.setup(services)
    return s


class TestCadence:
    def test_checkpoints_on_interval(self, services, midsolve_state):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 5
        s.on_iteration_end(services, midsolve_state)
        assert s.manager.writes == 1
        midsolve_state.iteration = 7
        s.on_iteration_end(services, midsolve_state)
        assert s.manager.writes == 1

    def test_checkpoint_charges_checkpoint_phase_at_low_power(
        self, services, midsolve_state
    ):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 10
        s.on_iteration_end(services, midsolve_state)
        charges = [(t, p) for t, d, p in services.charges if t is PhaseTag.CHECKPOINT]
        assert charges
        assert charges[0][1] == pytest.approx(74.0)  # checkpoint power < compute

    def test_young_interval_derived_from_mtbf(self, services):
        s = CheckpointRestart(MemoryStore(), mtbf_s=1.0)
        s.setup(services)
        assert s.interval_iters >= 1

    def test_interval_accessible_only_after_setup(self):
        s = CheckpointRestart(MemoryStore(), interval_iters=10)
        with pytest.raises(RuntimeError):
            _ = s.interval_iters


class TestRollback:
    def test_rollback_restores_checkpointed_x(self, services, midsolve_state):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 5
        saved = midsolve_state.x.copy()
        s.on_iteration_end(services, midsolve_state)
        # keep iterating: x changes, then fault
        midsolve_state.x += 1.0
        midsolve_state.iteration = 8
        out = s.recover(services, midsolve_state, FaultEvent(8, 1))
        assert out.needs_restart
        assert np.array_equal(midsolve_state.x, saved)
        assert out.detail["rolled_back_iters"] == 3

    def test_rollback_without_checkpoint_restarts_from_x0(
        self, services, midsolve_state
    ):
        s = scheme_with(services, interval=1000)
        midsolve_state.iteration = 8
        s.recover(services, midsolve_state, FaultEvent(8, 1))
        assert np.array_equal(midsolve_state.x, services.x0)
        assert s.rollback_reexecute_iters == 8

    def test_restore_charged_at_checkpoint_power(self, services, midsolve_state):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 6
        s.recover(services, midsolve_state, FaultEvent(6, 0))
        restores = [(d, p) for t, d, p in services.charges if t is PhaseTag.RESTORE]
        assert restores and restores[0][0] > 0
        assert restores[0][1] == pytest.approx(74.0)

    def test_reexecution_accumulates(self, services, midsolve_state):
        s = scheme_with(services, interval=5)
        midsolve_state.iteration = 5
        s.on_iteration_end(services, midsolve_state)
        midsolve_state.iteration = 9
        s.recover(services, midsolve_state, FaultEvent(9, 0))
        midsolve_state.iteration = 13
        s.recover(services, midsolve_state, FaultEvent(13, 0))
        # 9->5 (4 lost) and 13->5 (8 lost; no newer checkpoint was taken)
        assert s.rollback_reexecute_iters == 12


class TestNaming:
    def test_store_based_names(self):
        assert CheckpointRestart(MemoryStore(), interval_iters=1).name == "CR-M"
        assert CheckpointRestart(DiskStore(), interval_iters=1).name == "CR-D"

    def test_explicit_name(self):
        s = CheckpointRestart(MemoryStore(), interval_iters=1, name="CR-X")
        assert s.name == "CR-X"


class TestValidation:
    def test_needs_interval_or_mtbf(self):
        with pytest.raises(ValueError):
            CheckpointRestart(MemoryStore())

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CheckpointRestart(MemoryStore(), interval_iters=0)

    def test_rejects_bad_mtbf(self):
        with pytest.raises(ValueError):
            CheckpointRestart(MemoryStore(), mtbf_s=-1.0)
