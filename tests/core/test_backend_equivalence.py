"""Differential equivalence: ``loop`` vs ``batched`` backend.

The ``batched`` backend executes each CG iteration with global
vectorized kernels; the ``loop`` backend walks rank by rank through
packed per-rank CSR blocks.  Both share the global reduction operators,
so the contract (DESIGN.md §5j) is **bitwise identity** of every
seed-visible observable — reports, residual histories, energy charges,
telemetry — across every scheme, matrix class, engine, and the
``fast``-path cross, under evenly spaced, Poisson, and fuzzed
adversarial fault schedules.

Tolerances are pinned by ``tests/core/golden/backend_tolerance.json``
(all bitwise today); on failure a JSON divergence artifact is written
to ``backend-equivalence-diff/`` for the CI job to upload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backends import (
    DEFAULT_BACKEND,
    backend_names,
    make_backend,
)
from repro.core.cg import DistributedCG
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.partition import BlockRowPartition
from repro.core.recovery import scheme_names
from repro.core.solver import SolverConfig
from repro.faults.schedule import EvenlySpacedSchedule, PoissonSchedule
from repro.harness.experiment import Experiment, ExperimentConfig
from tests.differential import (
    MATRICES,
    FaultScheduleFuzzer,
    assert_reports_identical,
    assert_telemetry_identical,
    build,
    dump_divergence,
    load_tolerance_policy,
    run_solver,
    ulp_distance,
)

POLICY = load_tolerance_policy()


def check_pair(matrix, scheme, *, context="", **kw):
    """Run both backends and compare under the golden policy.

    On divergence, dump a field-level JSON diff for the CI artifact
    before re-raising, so a red run ships the exact disagreement.
    """
    batched = run_solver(matrix, scheme, backend="batched", **kw)
    loop = run_solver(matrix, scheme, backend="loop", **kw)
    label = f"{matrix}-{scheme or 'FF'}" + (f"-{context}" if context else "")
    try:
        assert_reports_identical(
            loop, batched, context=context or label, policy=POLICY
        )
    except AssertionError:
        dump_divergence(loop, batched, label=label.replace("/", "_"))
        raise
    return batched, loop


# ----------------------------------------------------------------------
# registry surface
# ----------------------------------------------------------------------

def test_registry():
    assert backend_names() == ["batched", "loop"]
    assert DEFAULT_BACKEND == "batched"


def test_unknown_backend_rejected_everywhere():
    with pytest.raises(ValueError, match="unknown backend"):
        SolverConfig(backend="simd")
    with pytest.raises(ValueError, match="unknown backend"):
        ExperimentConfig(backend="simd")
    a = build("stencil")
    dmat = DistributedMatrix(a, BlockRowPartition(a.shape[0], 4))
    cg = DistributedCG(dmat, np.ones(a.shape[0]))
    with pytest.raises(ValueError, match="unknown backend"):
        make_backend("simd", cg)


def test_tolerance_policy_is_all_bitwise_today():
    # Loosening a field is a deliberate golden-file edit; this pins the
    # current policy so an accidental relaxation fails loudly.
    for name, rule in POLICY.items():
        assert rule["mode"] in ("bitwise", "ulp"), name
    assert all(rule["mode"] == "bitwise" for rule in POLICY.values())


def test_ulp_distance():
    assert ulp_distance(1.0, 1.0) == 0
    assert ulp_distance(1.0, np.nextafter(1.0, 2.0)) == 1
    assert ulp_distance(np.nextafter(1.0, 2.0), 1.0) == 1
    assert ulp_distance(-0.0, 0.0) == 0
    # crosses zero monotonically
    assert ulp_distance(np.nextafter(0.0, -1.0), np.nextafter(0.0, 1.0)) == 2


# ----------------------------------------------------------------------
# the full differential sweep
# ----------------------------------------------------------------------

@pytest.mark.parametrize("matrix", sorted(MATRICES))
@pytest.mark.parametrize("scheme", scheme_names())
def test_backends_identical_all_schemes(scheme, matrix):
    check_pair(matrix, scheme)


@pytest.mark.parametrize("matrix", sorted(MATRICES))
def test_backends_identical_fault_free(matrix):
    check_pair(matrix, None)


@pytest.mark.parametrize("scheme", ["RD", "LI", "CR-D"])
def test_backends_identical_traced(scheme):
    batched = run_solver("banded", scheme, backend="batched", trace=True)
    loop = run_solver("banded", scheme, backend="loop", trace=True)
    assert_reports_identical(loop, batched, policy=POLICY)
    assert_telemetry_identical(loop, batched)


def test_fault_free_traced():
    batched = run_solver("stencil", None, backend="batched", trace=True)
    loop = run_solver("stencil", None, backend="loop", trace=True)
    assert_reports_identical(loop, batched, policy=POLICY)
    assert_telemetry_identical(loop, batched)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_backends_identical_poisson(seed):
    check_pair(
        "irregular", "FI",
        schedule=PoissonSchedule(mtbf_iters=60, seed=seed),
        context=f"poisson-{seed}",
    )


def test_backends_identical_preconditioned():
    check_pair("banded", "LSI", preconditioner="jacobi")
    check_pair("irregular", "LI", preconditioner="jacobi")


def test_backends_identical_capped():
    check_pair("banded", "RD", max_iters=97, baseline_iters=150)


def test_fast_backend_cross():
    """The 2x2 (fast x backend) cross is one equivalence class."""
    reports = {
        (fast, backend): run_solver(
            "stencil", "LI", fast=fast, backend=backend
        )
        for fast in (False, True)
        for backend in ("batched", "loop")
    }
    ref = reports[(True, "batched")]
    for key, rep in reports.items():
        assert_reports_identical(
            rep, ref, context=f"fast={key[0]} backend={key[1]}",
            policy=POLICY,
        )


# ----------------------------------------------------------------------
# fuzzed adversarial schedules
# ----------------------------------------------------------------------

_horizons: dict[str, int] = {}


def _horizon(matrix: str) -> int:
    if matrix not in _horizons:
        _horizons[matrix] = run_solver(
            matrix, None, backend="batched"
        ).iterations
    return _horizons[matrix]


@pytest.mark.parametrize("seed", range(8))
def test_backends_identical_fuzzed(seed):
    matrix = sorted(MATRICES)[seed % len(MATRICES)]
    fuzzer = FaultScheduleFuzzer(
        nranks=8, horizon_iters=_horizon(matrix), hook_interval=40
    )
    schedule = fuzzer.generate(seed)
    scheme = scheme_names()[seed % len(scheme_names())]
    check_pair(
        matrix, scheme, schedule=schedule, context=fuzzer.repro_hint(seed)
    )


@pytest.mark.parametrize(
    "seed,scheme", [(0, "ESR"), (1, "ABCR"), (2, "LI"), (3, "RD")]
)
def test_backends_identical_fuzzed_multivictim(seed, scheme):
    """Victim-set schedules: simultaneous sets at iteration 0,
    all-ranks-but-one, and span-boundary multi-victim events must stay
    bitwise identical across backends too."""
    matrix = sorted(MATRICES)[seed % len(MATRICES)]
    fuzzer = FaultScheduleFuzzer(
        nranks=8, horizon_iters=_horizon(matrix), hook_interval=40
    )
    schedule = fuzzer.generate_multivictim(seed)
    check_pair(
        matrix, scheme, schedule=schedule,
        context=fuzzer.repro_hint(seed, method="generate_multivictim"),
    )


@pytest.mark.parametrize("scheme", ["ESR", "ABCR"])
def test_backends_identical_victims_per_fault(scheme):
    """The ``victims_per_fault`` schedule axis under both backends."""
    check_pair(
        "banded", scheme,
        schedule=EvenlySpacedSchedule(n_faults=2, victims_per_fault=2),
        context=f"{scheme}-victims_per_fault=2",
    )


# ----------------------------------------------------------------------
# engine invariance
# ----------------------------------------------------------------------

def test_analytic_engine_backend_invariant():
    """The analytic engine replays closed-form models off the fault-free
    baseline; since the backends are bit-identical, the analytic reports
    must be too."""
    reports = {}
    for backend in ("batched", "loop"):
        cfg = ExperimentConfig(
            matrix="wathen100", nranks=8, n_faults=2, seed=0,
            scale=0.25, engine="analytic", backend=backend,
        )
        exp = Experiment(cfg)
        reports[backend] = exp.run("RD")
    a, b = reports["loop"], reports["batched"]
    assert a.converged == b.converged
    assert a.iterations == b.iterations
    assert a.time_s == b.time_s
    assert a.energy_j == b.energy_j
