"""Tests for wide-scope faults (node / system blast radii)."""

import numpy as np
import pytest

from repro.cluster.machine import MachineSpec, NodeSpec
from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.events import FaultEvent, FaultScope
from repro.faults.schedule import EvenlySpacedSchedule, FixedIterationSchedule
from repro.matrices.generators import banded_spd


@pytest.fixture(scope="module")
def system():
    a = banded_spd(400, 7, dominance=1e-4, scaling_spread=0.5, seed=2)
    b = a @ np.random.default_rng(0).standard_normal(400)
    return a, b


MACHINE = MachineSpec(nodes=4, node=NodeSpec(sockets=1, cores_per_socket=4))


def config(**kw) -> SolverConfig:
    return SolverConfig(nranks=16, machine=MACHINE, **kw)


@pytest.fixture(scope="module")
def ff(system):
    a, b = system
    return ResilientSolver(a, b, config=config()).solve()


def run(system, ff, scheme_name, scope, victims=(5,), iteration=None):
    a, b = system
    it = iteration if iteration is not None else ff.iterations // 2
    return ResilientSolver(
        a,
        b,
        scheme=make_scheme(scheme_name, interval_iters=20),
        schedule=FixedIterationSchedule(
            iterations=[it] * len(victims), victims=list(victims), scope=scope
        ),
        config=config(baseline_iters=ff.iterations),
    ).solve()


class TestScopeExpansion:
    def test_process_scope_damages_one_block(self, system, ff):
        rep = run(system, ff, "F0", FaultScope.PROCESS)
        assert rep.converged

    @pytest.mark.parametrize(
        "scheme", ["F0", "FI", "LI", "LSI", "RD", "CR-M", "CR-D", "CR-ML"]
    )
    def test_every_scheme_survives_node_loss(self, system, ff, scheme):
        rep = run(system, ff, scheme, FaultScope.NODE)
        assert rep.converged, scheme
        assert rep.final_relative_residual <= 1e-8

    @pytest.mark.parametrize("scheme", ["F0", "LI", "RD", "CR-D"])
    def test_every_scheme_survives_system_outage(self, system, ff, scheme):
        rep = run(system, ff, scheme, FaultScope.SYSTEM)
        assert rep.converged, scheme

    def test_rd_exact_at_every_scope(self, system, ff):
        for scope in FaultScope:
            rep = run(system, ff, "RD", scope)
            assert rep.iterations == ff.iterations, scope

    def test_cr_rollback_invariant_to_scope(self, system, ff):
        """A rollback restores the whole state, so its cost does not
        depend on how many blocks were lost."""
        proc = run(system, ff, "CR-D", FaultScope.PROCESS)
        node = run(system, ff, "CR-D", FaultScope.NODE)
        system_ = run(system, ff, "CR-D", FaultScope.SYSTEM)
        assert proc.iterations == node.iterations == system_.iterations

    def test_interpolation_degrades_with_blast_radius(self, system, ff):
        """LI reconstructs from surviving neighbours; wider damage means
        poorer neighbours and more extra iterations."""
        proc = run(system, ff, "LI", FaultScope.PROCESS)
        sys_wide = run(system, ff, "LI", FaultScope.SYSTEM)
        assert sys_wide.iterations >= proc.iterations

    def test_node_scope_counts_one_event(self, system, ff):
        rep = run(system, ff, "F0", FaultScope.NODE)
        assert rep.n_faults == 1  # one event, many blocks

    def test_victim_rank_out_of_range(self, system, ff):
        a, b = system
        solver = ResilientSolver(
            a,
            b,
            scheme=make_scheme("F0"),
            schedule=FixedIterationSchedule(
                iterations=[5], victims=[15], scope=FaultScope.NODE
            ),
            config=config(baseline_iters=ff.iterations),
        )
        rep = solver.solve()  # rank 15 exists: fine
        assert rep.converged


class TestScheduleScope:
    def test_fixed_schedule_carries_scope(self):
        evs = FixedIterationSchedule(
            iterations=[3], victims=[1], scope=FaultScope.NODE
        ).events(nranks=4, horizon_iters=10)
        assert evs[0].scope is FaultScope.NODE

    def test_evenly_spaced_carries_scope(self):
        evs = EvenlySpacedSchedule(n_faults=2, scope=FaultScope.SYSTEM).events(
            nranks=4, horizon_iters=100
        )
        assert all(e.scope is FaultScope.SYSTEM for e in evs)

    def test_default_scope_is_process(self):
        assert FaultEvent(1, 0).scope is FaultScope.PROCESS
