"""Tests for the solver's bookkeeping: details dict, traffic counters,
phase structure, capped/preconditioned interplay."""

import numpy as np
import pytest

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver
from repro.faults.schedule import EvenlySpacedSchedule
from repro.matrices.generators import banded_spd
from repro.power.energy import PhaseTag
from tests.conftest import quick_config


@pytest.fixture(scope="module")
def system():
    a = banded_spd(300, 7, dominance=5e-3, seed=1)
    b = a @ np.random.default_rng(1).standard_normal(300)
    return a, b


class TestDetails:
    def test_fault_free_details(self, system):
        a, b = system
        rep = ResilientSolver(a, b, config=quick_config(nranks=8)).solve()
        d = rep.details
        assert d["restarts"] == 0
        assert d["iteration_wall_s"] > 0
        assert d["dvfs_transitions"] == 0
        assert d["operating_frequency_ghz"] == pytest.approx(2.3)

    def test_restart_count_matches_faults_for_restarting_schemes(self, system):
        a, b = system
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("F0"),
            schedule=EvenlySpacedSchedule(n_faults=3),
            config=quick_config(nranks=8),
        ).solve()
        assert rep.details["restarts"] == 3

    def test_cr_details(self, system):
        a, b = system
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("CR-M", interval_iters=10),
            schedule=EvenlySpacedSchedule(n_faults=2),
            config=quick_config(nranks=8),
        ).solve()
        sd = rep.details["scheme_details"]
        assert sd["interval_iters"] == 10
        assert sd["checkpoints_written"] > 0
        assert sd["rollback_reexecute_iters"] >= 0

    def test_interpolation_constructions_recorded(self, system):
        a, b = system
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("LI"),
            schedule=EvenlySpacedSchedule(n_faults=2),
            config=quick_config(nranks=8),
        ).solve()
        constructions = rep.details["scheme_details"]["constructions"]
        assert len(constructions) == 2
        assert all(c["method"] == "cg" for c in constructions)


class TestTraffic:
    def test_traffic_scales_with_iterations(self, system):
        a, b = system
        rep = ResilientSolver(a, b, config=quick_config(nranks=8)).solve()
        assert rep.traffic is not None
        assert rep.traffic.bytes_total > 0
        assert rep.traffic.collectives == 2 * rep.iterations

    def test_single_rank_moves_collective_bytes_only(self, system):
        a, b = system
        rep = ResilientSolver(a, b, config=quick_config(nranks=1)).solve()
        # one rank: no halo traffic; allreduce degenerates but is counted
        assert rep.traffic.bytes_p2p == pytest.approx(
            rep.iterations * rep.traffic.bytes_p2p / rep.iterations
        )


class TestPhaseStructure:
    def test_fault_free_has_only_solve_and_overhead(self, system):
        a, b = system
        rep = ResilientSolver(a, b, config=quick_config(nranks=8)).solve()
        assert set(rep.phase_summary()) <= {"solve", "overhead"}

    def test_faulty_run_adds_resilience_phases(self, system):
        a, b = system
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("CR-D", interval_iters=10),
            schedule=EvenlySpacedSchedule(n_faults=2),
            config=quick_config(nranks=8),
        ).solve()
        tags = set(rep.phase_summary())
        assert {"checkpoint", "restore", "extra"} <= tags

    def test_extra_charged_even_without_baseline_for_restarts(self, system):
        """The post-recovery restart cost always lands in EXTRA."""
        a, b = system
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("F0"),
            schedule=EvenlySpacedSchedule(n_faults=1),
            config=quick_config(nranks=8),
        ).solve()
        assert rep.account.time(PhaseTag.EXTRA) > 0


class TestFeatureInterplay:
    def test_cap_plus_preconditioner(self, system):
        a, b = system
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("LI"),
            schedule=EvenlySpacedSchedule(n_faults=2),
            config=quick_config(
                nranks=8, preconditioner="jacobi", power_cap_w=8 * 7.0
            ),
        ).solve()
        assert rep.converged
        assert rep.average_power_w <= 8 * 7.0 * 1.0001
        assert rep.details["operating_frequency_ghz"] < 2.3

    def test_cap_plus_dvfs_recovery(self, system):
        """The DVFS schedule must respect the cap's operating frequency
        when it releases."""
        a, b = system
        cap = 8 * 7.0
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("LI-DVFS"),
            schedule=EvenlySpacedSchedule(n_faults=2),
            config=quick_config(nranks=8, power_cap_w=cap),
        ).solve()
        assert rep.converged
        assert rep.average_power_w <= cap * 1.0001

    def test_rd_under_cap_doubles_capped_power(self, system):
        a, b = system
        cap = 8 * 7.0
        ff = ResilientSolver(
            a, b, config=quick_config(nranks=8, power_cap_w=cap)
        ).solve()
        rd = ResilientSolver(
            a,
            b,
            scheme=make_scheme("RD"),
            schedule=EvenlySpacedSchedule(n_faults=1),
            config=quick_config(nranks=8, power_cap_w=cap),
        ).solve()
        assert rd.average_power_w == pytest.approx(
            2 * ff.average_power_w, rel=0.05
        )
