"""Unit tests for the distributed CG stepper."""

import numpy as np
import pytest

from repro.cluster.comm import SimComm
from repro.cluster.machine import MachineSpec, NodeSpec
from repro.core.cg import DistributedCG, IterationCosts
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.generators import banded_spd, stencil_5pt
from repro.matrices.partition import BlockRowPartition


def system(n=96, nranks=4, nnz=5, seed=0):
    a = banded_spd(n, nnz, dominance=0.05, seed=seed)
    rng = np.random.default_rng(seed)
    x_true = rng.standard_normal(n)
    b = a @ x_true
    dmat = DistributedMatrix(a, BlockRowPartition(n, nranks))
    return dmat, b, x_true


class TestConvergence:
    def test_solves_to_tolerance(self):
        dmat, b, x_true = system()
        cg = DistributedCG(dmat, b, tol=1e-10)
        iters = cg.solve_fault_free()
        assert cg.converged
        assert iters < 200
        assert np.linalg.norm(cg.state.x - x_true) / np.linalg.norm(x_true) < 1e-7

    def test_residual_history_matches_iterations(self):
        dmat, b, _ = system()
        cg = DistributedCG(dmat, b, tol=1e-8)
        cg.solve_fault_free()
        assert len(cg.residual_history) == cg.iteration
        assert cg.residual_history[-1] <= 1e-8

    def test_distribution_does_not_change_numerics(self):
        """Block-row distributed CG is mathematically the global CG."""
        results = []
        for nranks in (1, 3, 8):
            dmat, b, _ = system(nranks=nranks)
            cg = DistributedCG(dmat, b, tol=1e-9)
            cg.solve_fault_free()
            results.append((cg.iteration, cg.state.x.copy()))
        base_it, base_x = results[0]
        for it, x in results[1:]:
            assert it == base_it
            assert np.allclose(x, base_x)

    def test_zero_rhs_converges_immediately(self):
        dmat, _, _ = system()
        cg = DistributedCG(dmat, np.zeros(96), tol=1e-8)
        assert cg.converged
        assert cg.solve_fault_free() == 0

    def test_respects_max_iters(self):
        dmat, b, _ = system()
        cg = DistributedCG(dmat, b, tol=1e-300, max_iters=5)
        cg.solve_fault_free()
        assert cg.iteration == 5
        assert not cg.converged

    def test_custom_initial_guess(self):
        dmat, b, x_true = system()
        cg = DistributedCG(dmat, b, x0=x_true, tol=1e-8)
        assert cg.converged  # starts at the solution

    def test_stencil_iterations_scale_with_grid_edge(self):
        def iters(nx):
            a = stencil_5pt(nx)
            n = a.shape[0]
            b = a @ np.ones(n)
            d = DistributedMatrix(a, BlockRowPartition(n, 1))
            return DistributedCG(d, b, tol=1e-8).solve_fault_free()

        small, big = iters(10), iters(40)
        assert 2.0 < big / small < 8.0  # ~linear in nx


class TestRestart:
    def test_restart_preserves_solution_trajectory(self):
        dmat, b, _ = system()
        cg = DistributedCG(dmat, b, tol=1e-9)
        for _ in range(10):
            cg.step()
        x_before = cg.state.x.copy()
        cg.restart()
        assert np.allclose(cg.state.x, x_before)
        assert cg.restarts == 1
        # residual is the true residual
        assert np.allclose(cg.state.r, b - dmat.matvec(cg.state.x))
        assert np.allclose(cg.state.p, cg.state.r)

    def test_restart_preserves_iteration_count(self):
        dmat, b, _ = system()
        cg = DistributedCG(dmat, b, tol=1e-9)
        for _ in range(7):
            cg.step()
        cg.restart()
        assert cg.iteration == 7

    def test_converges_after_restart(self):
        dmat, b, x_true = system()
        cg = DistributedCG(dmat, b, tol=1e-10)
        for _ in range(5):
            cg.step()
        cg.restart()
        cg.solve_fault_free()
        assert cg.converged

    def test_nan_state_recovers_via_internal_restart(self):
        """A poisoned state that is repaired in x but not r/p must not
        kill the solve: step() re-anchors on the true residual."""
        dmat, b, _ = system()
        cg = DistributedCG(dmat, b, tol=1e-8)
        for _ in range(3):
            cg.step()
        cg.state.r[:10] = np.nan
        cg.state.p[:10] = np.nan
        cg.step()  # triggers breakdown path -> restart
        assert np.all(np.isfinite(cg.state.r))
        cg.solve_fault_free()
        assert cg.converged


class TestStateCopy:
    def test_copy_is_deep(self):
        dmat, b, _ = system()
        cg = DistributedCG(dmat, b)
        cg.step()
        snap = cg.state.copy()
        cg.step()
        assert snap.iteration == 1
        assert not np.allclose(snap.x, cg.state.x)


class TestValidation:
    def test_rejects_mismatched_rhs(self):
        dmat, _, _ = system()
        with pytest.raises(ValueError):
            DistributedCG(dmat, np.ones(5))

    def test_rejects_bad_tolerance(self):
        dmat, b, _ = system()
        with pytest.raises(ValueError):
            DistributedCG(dmat, b, tol=0.0)

    def test_rejects_bad_x0(self):
        dmat, b, _ = system()
        with pytest.raises(ValueError):
            DistributedCG(dmat, b, x0=np.ones(3))


class TestIterationCosts:
    @pytest.fixture()
    def costs(self):
        dmat, b, _ = system(n=96, nranks=4)
        machine = MachineSpec(nodes=1, node=NodeSpec(sockets=1, cores_per_socket=4))
        comm = SimComm(machine, 4)
        return IterationCosts.measure(dmat, comm)

    def test_wall_is_compute_plus_comm(self, costs):
        assert costs.wall_s == pytest.approx(costs.compute_max_s + costs.comm_s)

    def test_compute_per_rank_positive(self, costs):
        assert np.all(costs.compute_s > 0)
        assert costs.compute_s.shape == (4,)

    def test_two_allreduces_per_iteration(self, costs):
        machine = MachineSpec(nodes=1, node=NodeSpec(sockets=1, cores_per_socket=4))
        comm = SimComm(machine, 4)
        single = comm.collectives.allreduce(8)
        assert costs.allreduce_s == pytest.approx(2 * single)

    def test_single_rank_has_no_comm(self):
        dmat, b, _ = system(nranks=1)
        machine = MachineSpec(nodes=1, node=NodeSpec(sockets=1, cores_per_socket=4))
        comm = SimComm(machine, 1)
        costs = IterationCosts.measure(dmat, comm)
        assert costs.comm_s == 0.0

    def test_bytes_include_halo_and_collectives(self, costs):
        assert costs.bytes_per_iter > 0
