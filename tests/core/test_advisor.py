"""Tests for the adaptive scheme advisor."""

import math

import pytest

from repro.core.advisor import (
    ADVISOR_SCHEMES,
    Objective,
    SchemeAdvisor,
    Situation,
)


def situation(**kw) -> Situation:
    defaults = dict(
        t_solve_s=600.0,
        p1_w=10.0,
        n_cores=192,
        rate_per_s=1e-3,
    )
    defaults.update(kw)
    return Situation(**defaults)


class TestSituation:
    def test_validation(self):
        with pytest.raises(ValueError):
            situation(t_solve_s=0.0)
        with pytest.raises(ValueError):
            situation(n_cores=0)
        with pytest.raises(ValueError):
            situation(rate_per_s=-1.0)
        with pytest.raises(ValueError):
            situation(power_budget_w=0.0)


class TestEstimates:
    def test_every_scheme_estimable(self):
        adv = SchemeAdvisor(situation())
        for s in ADVISOR_SCHEMES:
            est = adv.estimate(s)
            assert est.total_time_s > 0
            assert est.total_energy_j > 0

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            SchemeAdvisor(situation()).estimate("ABFT")

    def test_rd_profile(self):
        adv = SchemeAdvisor(situation())
        rd = adv.estimate("RD")
        assert rd.avg_power_w == pytest.approx(2 * 192 * 10.0)
        # no time overhead
        crm = adv.estimate("CR-M")
        assert rd.total_time_s <= crm.total_time_s

    def test_tmr_costs_more_than_rd(self):
        adv = SchemeAdvisor(situation())
        assert adv.estimate("TMR").total_energy_j > adv.estimate("RD").total_energy_j
        assert adv.estimate("TMR").avg_power_w == pytest.approx(3 * 1920.0)

    def test_dvfs_saves_energy_over_plain_fw(self):
        adv = SchemeAdvisor(situation(rate_per_s=5e-3, t_const_s=2.0))
        assert (
            adv.estimate("FW-DVFS").total_energy_j
            < adv.estimate("FW").total_energy_j
        )

    def test_halting_scheme_flagged_not_raised(self):
        # enormous fault rate: CR-D cannot make progress
        adv = SchemeAdvisor(situation(rate_per_s=10.0, t_c_disk_s=10.0))
        est = adv.estimate("CR-D")
        assert est.halted
        assert not est.feasible
        assert math.isinf(est.total_time_s)


class TestBudget:
    def test_redundancy_infeasible_under_tight_budget(self):
        # budget covers 1x execution power but not 2x
        budget = 192 * 10.0 * 1.5
        adv = SchemeAdvisor(situation(power_budget_w=budget))
        assert not adv.estimate("RD").feasible
        assert not adv.estimate("TMR").feasible
        assert adv.estimate("FW").feasible
        assert adv.estimate("CR-M").feasible

    def test_recommendation_respects_budget(self):
        budget = 192 * 10.0 * 1.5
        best = SchemeAdvisor(
            situation(power_budget_w=budget)
        ).recommend(Objective.TIME)
        assert best.scheme not in ("RD", "TMR")

    def test_no_feasible_scheme_raises(self):
        adv = SchemeAdvisor(situation(power_budget_w=1.0, rate_per_s=10.0,
                                      t_c_disk_s=10.0, t_c_mem_s=5.0,
                                      t_const_s=10.0, extra_fraction=0.9))
        with pytest.raises(RuntimeError):
            adv.recommend()


class TestRanking:
    def test_time_objective_prefers_redundancy_unbudgeted(self):
        best = SchemeAdvisor(situation()).recommend(Objective.TIME)
        assert best.scheme == "RD"

    def test_energy_objective_never_picks_redundancy_at_low_rates(self):
        best = SchemeAdvisor(situation(rate_per_s=1e-5)).recommend(
            Objective.ENERGY
        )
        assert best.scheme not in ("RD", "TMR")

    def test_rank_is_sorted(self):
        ranked = SchemeAdvisor(situation()).rank(Objective.ENERGY)
        feasible = [e for e in ranked if e.feasible]
        energies = [e.total_energy_j for e in feasible]
        assert energies == sorted(energies)
        # infeasible entries, if any, come last
        flags = [e.feasible for e in ranked]
        assert flags == sorted(flags, reverse=True)

    def test_adaptivity_rate_changes_the_winner(self):
        """The paper's headline: the right scheme depends on the fault
        rate.  At extreme rates forward recovery / checkpointing drown in
        recovery work and redundancy's flat profile wins even on energy."""
        low = SchemeAdvisor(situation(rate_per_s=1e-5)).recommend(Objective.ENERGY)
        high = SchemeAdvisor(
            situation(rate_per_s=40.0, t_const_s=1.0, extra_fraction=0.5)
        ).recommend(Objective.ENERGY)
        assert low.scheme != high.scheme
        assert high.scheme == "RD"
