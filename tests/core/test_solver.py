"""Integration-level tests for the resilient solver."""

import numpy as np
import pytest

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import EvenlySpacedSchedule, FixedIterationSchedule
from repro.power.energy import PhaseTag

from tests.conftest import quick_config


class TestFaultFree:
    def test_converges_and_reports(self, solver_factory):
        report = solver_factory().solve()
        assert report.converged
        assert report.scheme == "FF"
        assert report.iterations > 0
        assert report.time_s > 0
        assert report.energy_j > 0
        assert report.n_faults == 0

    def test_energy_account_consistency(self, solver_factory):
        """Sum of phase energies equals the RAPL counter's total."""
        report = solver_factory().solve()
        assert report.energy_j == pytest.approx(report.rapl.energy_j(), rel=1e-9)

    def test_time_matches_iterations(self, solver_factory):
        report = solver_factory().solve()
        wall = report.details["iteration_wall_s"]
        assert report.time_s == pytest.approx(report.iterations * wall, rel=1e-6)

    def test_power_is_compute_power(self, solver_factory):
        solver = solver_factory()
        report = solver.solve()
        assert report.average_power_w == pytest.approx(
            solver.power_compute_w(), rel=0.01
        )

    def test_no_resilience_charges(self, solver_factory):
        report = solver_factory().solve()
        assert report.resilience_time_s == 0.0
        assert report.resilience_energy_j == 0.0

    def test_deterministic(self, small_banded, rng):
        b = small_banded @ np.ones(96)
        r1 = ResilientSolver(small_banded, b, config=quick_config()).solve()
        r2 = ResilientSolver(small_banded, b, config=quick_config()).solve()
        assert r1.iterations == r2.iterations
        assert r1.time_s == r2.time_s
        assert r1.energy_j == r2.energy_j


class TestFaultyRuns:
    @pytest.mark.parametrize(
        "scheme_name",
        ["RD", "CR-M", "CR-D", "F0", "FI", "LI", "LSI", "LI-DVFS", "LSI-DVFS"],
    )
    def test_every_scheme_converges_under_faults(self, solver_factory, scheme_name):
        report = solver_factory(
            scheme=make_scheme(scheme_name, interval_iters=10),
            schedule=EvenlySpacedSchedule(n_faults=3),
        ).solve()
        assert report.converged, scheme_name
        assert report.n_faults == 3
        assert report.final_relative_residual <= 1e-8

    def test_faults_require_a_scheme(self, solver_factory):
        solver = solver_factory(schedule=EvenlySpacedSchedule(n_faults=2))
        with pytest.raises(RuntimeError):
            solver.solve()

    def test_rd_matches_fault_free_trajectory(self, solver_factory):
        """RD overlaps the FF residual curve (Figure 6)."""
        ff = solver_factory().solve()
        rd = solver_factory(
            scheme=make_scheme("RD"), schedule=EvenlySpacedSchedule(n_faults=3)
        ).solve()
        assert rd.iterations == ff.iterations
        assert np.allclose(rd.residual_history, ff.residual_history)

    def test_rd_doubles_energy_and_power(self, solver_factory):
        ff = solver_factory().solve()
        rd = solver_factory(
            scheme=make_scheme("RD"), schedule=EvenlySpacedSchedule(n_faults=2)
        ).solve()
        assert rd.normalized_energy(ff) == pytest.approx(2.0, rel=0.05)
        assert rd.normalized_power(ff) == pytest.approx(2.0, rel=0.05)
        assert rd.normalized_time(ff) == pytest.approx(1.0, rel=0.05)

    def test_fill_schemes_cost_iterations_not_reconstruction(self, solver_factory):
        report = solver_factory(
            scheme=make_scheme("F0"), schedule=EvenlySpacedSchedule(n_faults=3)
        ).solve()
        assert report.account.time(PhaseTag.RECONSTRUCT) == 0.0

    def test_li_charges_reconstruction(self, solver_factory):
        report = solver_factory(
            scheme=make_scheme("LI"), schedule=EvenlySpacedSchedule(n_faults=3)
        ).solve()
        assert report.account.time(PhaseTag.RECONSTRUCT) > 0

    def test_cr_charges_checkpoint_and_restore(self, solver_factory):
        report = solver_factory(
            scheme=make_scheme("CR-M", interval_iters=10),
            schedule=EvenlySpacedSchedule(n_faults=2),
        ).solve()
        assert report.account.time(PhaseTag.CHECKPOINT) > 0
        assert report.account.time(PhaseTag.RESTORE) > 0

    def test_extra_iterations_split(self, solver_factory):
        """With a baseline given, iterations beyond it land in EXTRA."""
        ff = solver_factory().solve()
        faulty = solver_factory(
            scheme=make_scheme("F0"),
            schedule=EvenlySpacedSchedule(n_faults=3),
            baseline_iters=ff.iterations,
        ).solve()
        assert faulty.iterations > ff.iterations
        assert faulty.extra_iterations == faulty.iterations - ff.iterations
        assert faulty.account.time(PhaseTag.EXTRA) > 0

    def test_baseline_computed_internally_when_missing(self, solver_factory):
        faulty = solver_factory(
            scheme=make_scheme("F0"), schedule=EvenlySpacedSchedule(n_faults=2)
        ).solve()
        assert faulty.baseline_iters is not None
        assert faulty.baseline_iters > 0

    def test_dce_needs_no_recovery(self, solver_factory):
        """DCE events are corrected in hardware: no scheme required."""
        from repro.faults.events import FaultClass

        report = solver_factory(
            schedule=FixedIterationSchedule(
                iterations=[5], fault_class=FaultClass.DCE
            )
        ).solve()
        assert report.converged
        assert report.n_faults == 1

    def test_dvfs_transitions_recorded(self, solver_factory):
        report = solver_factory(
            scheme=make_scheme("LI-DVFS"),
            schedule=EvenlySpacedSchedule(n_faults=2),
        ).solve()
        assert report.details["dvfs_transitions"] > 0

    def test_dvfs_saves_energy_vs_plain_li(self, solver_factory):
        li = solver_factory(
            scheme=make_scheme("LI"), schedule=EvenlySpacedSchedule(n_faults=3)
        ).solve()
        dvfs = solver_factory(
            scheme=make_scheme("LI-DVFS"), schedule=EvenlySpacedSchedule(n_faults=3)
        ).solve()
        assert dvfs.iterations == li.iterations  # no performance impact
        assert dvfs.energy_j <= li.energy_j

    def test_victims_damage_matching_blocks(self, solver_factory):
        schedule = FixedIterationSchedule(iterations=[5, 10], victims=[1, 3])
        report = solver_factory(
            scheme=make_scheme("F0"), schedule=schedule
        ).solve()
        assert [e.victim_rank for e in report.faults] == [1, 3]


class TestConfigValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            SolverConfig(nranks=0)
        with pytest.raises(ValueError):
            SolverConfig(tol=-1.0)
        with pytest.raises(ValueError):
            SolverConfig(max_iters=0)

    def test_distributed_matrix_rank_mismatch(self, small_system):
        dmat, b, _ = small_system  # 4 ranks
        with pytest.raises(ValueError):
            ResilientSolver(dmat, b, config=quick_config(nranks=8))

    def test_accepts_predistributed_matrix(self, small_system):
        dmat, b, _ = small_system
        report = ResilientSolver(dmat, b, config=quick_config(nranks=4)).solve()
        assert report.converged


class TestRaplTrace:
    def test_trace_shows_compute_plateau(self, solver_factory):
        solver = solver_factory()
        report = solver.solve()
        times, watts = report.rapl.power_trace(report.time_s / 20)
        assert np.all(watts[:-1] > 0)
        # plateau near compute power
        assert np.median(watts) == pytest.approx(solver.power_compute_w(), rel=0.05)

    def test_rd_trace_doubles(self, solver_factory):
        solver = solver_factory(
            scheme=make_scheme("RD"), schedule=EvenlySpacedSchedule(n_faults=1)
        )
        report = solver.solve()
        _, watts = report.rapl.power_trace(report.time_s / 10)
        assert np.median(watts) == pytest.approx(2 * solver.power_compute_w(), rel=0.1)
