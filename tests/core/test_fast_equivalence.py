"""Fast path ≡ legacy path: bit-identical SolveReports and telemetry.

The span-batched fast solve engine (``SolverConfig.fast``, the default)
must be indistinguishable from the legacy per-iteration loop in every
observable: iteration trajectory, simulated time, phase-tagged energy
charges, RAPL log, traffic counters, residual history, fault list,
scheme details — and, when traced, the metrics snapshot and the full
exported trace JSONL.  Equality here is exact (``==`` on floats, not
allclose): the fast path *replays* the legacy bookkeeping rather than
summarising it (DESIGN.md §5e).

The legacy path stays selectable (``fast=False``) precisely so this
regression matrix keeps meaning something.  The fixtures and comparison
live in :mod:`tests.differential`, shared with the backend-equivalence
harness (DESIGN.md §5j).
"""

from __future__ import annotations

import pytest

from repro.core.recovery.factory import scheme_names
from repro.faults.schedule import PoissonSchedule
from tests.differential import (
    MATRICES,
    assert_reports_identical,
    assert_telemetry_identical,
    run_solver,
)


@pytest.mark.parametrize("matrix_name", sorted(MATRICES))
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_all_schemes_bit_identical(matrix_name, scheme_name):
    fast = run_solver(matrix_name, scheme_name, fast=True)
    legacy = run_solver(matrix_name, scheme_name, fast=False)
    assert fast.faults, "equivalence run must actually exercise recovery"
    assert_reports_identical(fast, legacy)


@pytest.mark.parametrize("scheme_name", scheme_names())
def test_traced_runs_identical_telemetry(scheme_name):
    fast = run_solver("banded", scheme_name, fast=True, trace=True)
    legacy = run_solver("banded", scheme_name, fast=False, trace=True)
    assert_reports_identical(fast, legacy)
    # metric snapshots and the full exported trace (events + spans +
    # metrics) are byte-identical: phase transitions, recovery spans,
    # checkpoint events, ...
    assert_telemetry_identical(fast, legacy)


def test_fault_free_identical():
    fast = run_solver("banded", None, fast=True)
    legacy = run_solver("banded", None, fast=False)
    assert not fast.faults
    assert_reports_identical(fast, legacy)


def test_fault_free_traced_identical():
    fast = run_solver("banded", None, fast=True, trace=True)
    legacy = run_solver("banded", None, fast=False, trace=True)
    assert_reports_identical(fast, legacy)
    assert_telemetry_identical(fast, legacy)


def test_poisson_schedule_identical():
    """Random (seeded) fault times land mid-span; spans must split on
    them exactly like the legacy loop observes them."""
    for seed in (1, 2, 3):
        sched = PoissonSchedule(mtbf_iters=45.0, seed=seed, horizon_factor=2.0)
        fast = run_solver("banded", "LI", fast=True, schedule=sched)
        legacy = run_solver("banded", "LI", fast=False, schedule=sched)
        assert fast.faults
        assert_reports_identical(fast, legacy)


def test_preconditioned_identical():
    fast = run_solver("banded", "LSI", fast=True, preconditioner="jacobi")
    legacy = run_solver("banded", "LSI", fast=False, preconditioner="jacobi")
    assert_reports_identical(fast, legacy)


def test_max_iters_cap_identical():
    """Truncated runs stop at the same iteration with the same books."""
    fast = run_solver("banded", "F0", fast=True, max_iters=97,
                      baseline_iters=150)
    legacy = run_solver("banded", "F0", fast=False, max_iters=97,
                        baseline_iters=150)
    assert not fast.converged
    assert fast.iterations == 97
    assert_reports_identical(fast, legacy)


def test_power_capped_identical():
    """DVFS-derated iteration costs flow through span charging too."""
    fast = run_solver("banded", "CR-M", fast=True, power_cap_w=260.0)
    legacy = run_solver("banded", "CR-M", fast=False, power_cap_w=260.0)
    assert_reports_identical(fast, legacy)
