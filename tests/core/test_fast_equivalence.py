"""Fast path ≡ legacy path: bit-identical SolveReports and telemetry.

The span-batched fast solve engine (``SolverConfig.fast``, the default)
must be indistinguishable from the legacy per-iteration loop in every
observable: iteration trajectory, simulated time, phase-tagged energy
charges, RAPL log, traffic counters, residual history, fault list,
scheme details — and, when traced, the metrics snapshot and the full
exported trace JSONL.  Equality here is exact (``==`` on floats, not
allclose): the fast path *replays* the legacy bookkeeping rather than
summarising it (DESIGN.md §5e).

The legacy path stays selectable (``fast=False``) precisely so this
regression matrix keeps meaning something.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recovery.factory import make_scheme, scheme_names
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import EvenlySpacedSchedule, PoissonSchedule
from repro.matrices.generators import banded_spd, irregular_spd, stencil_5pt

MATRICES = {
    "banded": lambda: banded_spd(300, 7, dominance=0.01, seed=11),
    "irregular": lambda: irregular_spd(260, 9, dominance=0.02, seed=7),
    "stencil": lambda: stencil_5pt(17),
}

_built: dict[str, object] = {}


def build(name):
    if name not in _built:
        _built[name] = MATRICES[name]()
    return _built[name]


def run_solver(matrix_name: str, scheme_name: str | None, *, fast: bool,
               trace: bool = False, schedule=None, **cfg_kw):
    a = build(matrix_name)
    rng = np.random.default_rng(42)
    b = a @ rng.standard_normal(a.shape[0])
    cfg = SolverConfig(
        nranks=8, tol=1e-8, seed=5, trace=trace, fast=fast, **cfg_kw
    )
    scheme = (
        make_scheme(scheme_name, interval_iters=40) if scheme_name else None
    )
    if schedule is None and scheme is not None:
        schedule = EvenlySpacedSchedule(n_faults=3)
    solver = ResilientSolver(a, b, scheme=scheme, schedule=schedule, config=cfg)
    return solver.solve()


def assert_reports_identical(fast, legacy):
    """Exact equality on every seed-visible field of a SolveReport."""
    assert fast.scheme == legacy.scheme
    assert fast.converged == legacy.converged
    assert fast.iterations == legacy.iterations
    assert fast.baseline_iters == legacy.baseline_iters
    # sim time and residuals: exact, not approximate
    assert fast.time_s == legacy.time_s
    assert fast.final_relative_residual == legacy.final_relative_residual
    assert fast.residual_history.dtype == legacy.residual_history.dtype
    assert np.array_equal(fast.residual_history, legacy.residual_history)
    # phase-tagged energy account, charge by charge
    assert set(fast.account.charges) == set(legacy.account.charges)
    for tag, c_legacy in legacy.account.charges.items():
        c_fast = fast.account.charges[tag]
        assert c_fast.time_s == c_legacy.time_s, tag
        assert c_fast.energy_j == c_legacy.energy_j, tag
    # RAPL log: same phases, same boundaries, same powers (Phase is a
    # frozen dataclass — equality is exact field equality)
    assert fast.rapl.log.phases == legacy.rapl.log.phases
    assert fast.traffic == legacy.traffic
    assert fast.faults == legacy.faults
    d_fast = {k: v for k, v in fast.details.items()
              if k not in ("trace", "telemetry")}
    d_legacy = {k: v for k, v in legacy.details.items()
                if k not in ("trace", "telemetry")}
    assert d_fast == d_legacy


@pytest.mark.parametrize("matrix_name", sorted(MATRICES))
@pytest.mark.parametrize("scheme_name", scheme_names())
def test_all_schemes_bit_identical(matrix_name, scheme_name):
    fast = run_solver(matrix_name, scheme_name, fast=True)
    legacy = run_solver(matrix_name, scheme_name, fast=False)
    assert fast.faults, "equivalence run must actually exercise recovery"
    assert_reports_identical(fast, legacy)


@pytest.mark.parametrize("scheme_name", scheme_names())
def test_traced_runs_identical_telemetry(scheme_name):
    from repro.obs.export import trace_jsonl_lines

    fast = run_solver("banded", scheme_name, fast=True, trace=True)
    legacy = run_solver("banded", scheme_name, fast=False, trace=True)
    assert_reports_identical(fast, legacy)
    t_fast = fast.details["telemetry"]
    t_legacy = legacy.details["telemetry"]
    # metric snapshots are byte-identical for equal recorded values
    assert t_fast.metrics.snapshot() == t_legacy.metrics.snapshot()
    # the full exported trace (events + spans + metrics) matches line by
    # line: phase transitions, recovery spans, checkpoint events, ...
    assert trace_jsonl_lines({"c": t_fast}) == trace_jsonl_lines({"c": t_legacy})


def test_fault_free_identical():
    fast = run_solver("banded", None, fast=True)
    legacy = run_solver("banded", None, fast=False)
    assert not fast.faults
    assert_reports_identical(fast, legacy)


def test_fault_free_traced_identical():
    fast = run_solver("banded", None, fast=True, trace=True)
    legacy = run_solver("banded", None, fast=False, trace=True)
    assert_reports_identical(fast, legacy)
    assert (fast.details["telemetry"].metrics.snapshot()
            == legacy.details["telemetry"].metrics.snapshot())


def test_poisson_schedule_identical():
    """Random (seeded) fault times land mid-span; spans must split on
    them exactly like the legacy loop observes them."""
    for seed in (1, 2, 3):
        sched = PoissonSchedule(mtbf_iters=45.0, seed=seed, horizon_factor=2.0)
        fast = run_solver("banded", "LI", fast=True, schedule=sched)
        legacy = run_solver("banded", "LI", fast=False, schedule=sched)
        assert fast.faults
        assert_reports_identical(fast, legacy)


def test_preconditioned_identical():
    fast = run_solver("banded", "LSI", fast=True, preconditioner="jacobi")
    legacy = run_solver("banded", "LSI", fast=False, preconditioner="jacobi")
    assert_reports_identical(fast, legacy)


def test_max_iters_cap_identical():
    """Truncated runs stop at the same iteration with the same books."""
    fast = run_solver("banded", "F0", fast=True, max_iters=97,
                      baseline_iters=150)
    legacy = run_solver("banded", "F0", fast=False, max_iters=97,
                        baseline_iters=150)
    assert not fast.converged
    assert fast.iterations == 97
    assert_reports_identical(fast, legacy)


def test_power_capped_identical():
    """DVFS-derated iteration costs flow through span charging too."""
    fast = run_solver("banded", "CR-M", fast=True, power_cap_w=260.0)
    legacy = run_solver("banded", "CR-M", fast=False, power_cap_w=260.0)
    assert_reports_identical(fast, legacy)
