"""Unit tests for the Section-6 weak-scaling projection (Figure 9)."""

import pytest

from repro.core.models.projection import (
    FIGURE9_SCHEMES,
    ProjectionConfig,
    project,
    project_scheme,
)

SIZES = [192, 1536, 12_288, 49_152, 98_304]


@pytest.fixture()
def cfg() -> ProjectionConfig:
    return ProjectionConfig()


class TestScalingLaws:
    def test_rate_linear_in_size(self, cfg):
        assert cfg.rate_per_s(2000) == pytest.approx(2 * cfg.rate_per_s(1000))

    def test_system_mtbf_shrinks(self, cfg):
        assert cfg.system_mtbf_s(10_000) < cfg.system_mtbf_s(100)

    def test_disk_tc_linear(self, cfg):
        assert cfg.t_c_disk_at(2 * cfg.n0) == pytest.approx(2 * cfg.t_c_disk_s)

    def test_const_linear(self, cfg):
        assert cfg.t_const_at(4 * cfg.n0) == pytest.approx(4 * cfg.t_const_s)

    def test_overhead_grows_with_n(self, cfg):
        assert cfg.t_overhead_s(1_000_000) > cfg.t_overhead_s(1000) > 0
        assert cfg.t_overhead_s(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ProjectionConfig(t_solve_s=-1.0)
        with pytest.raises(ValueError):
            ProjectionConfig(extra_fraction=1.5)


class TestFigure9Trends:
    """The qualitative trends the paper reads off Figure 9."""

    def test_rd_flat(self, cfg):
        pts = [project_scheme("RD", n, cfg) for n in SIZES]
        assert all(p.t_res_ratio == 0.0 for p in pts)
        assert all(p.e_res_ratio == pytest.approx(1.0) for p in pts)
        assert all(p.power_ratio == pytest.approx(2.0) for p in pts)

    def test_fw_grows_monotonically(self, cfg):
        """'T_res and E_res of FW increases roughly linearly'."""
        pts = [project_scheme("FW", n, cfg) for n in SIZES]
        ratios = [p.t_res_ratio for p in pts]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] / ratios[0] > 50

    def test_crd_grows_faster_than_fw(self, cfg):
        """'T_res and E_res of CR-D increases faster'."""
        big = SIZES[-1]
        crd = project_scheme("CR-D", big, cfg)
        fw = project_scheme("FW", big, cfg)
        assert crd.t_res_ratio > fw.t_res_ratio
        assert crd.e_res_ratio > fw.e_res_ratio

    def test_crm_overhead_stays_small(self, cfg):
        """'T_res and E_res of CR-M decreases because of its negligible
        t_C' — CR-M stays far below the fault-free time at every size."""
        pts = [project_scheme("CR-M", n, cfg) for n in SIZES]
        assert all(p.t_res_ratio < 0.5 for p in pts)
        crd = [project_scheme("CR-D", n, cfg) for n in SIZES]
        assert all(m.t_res_ratio < d.t_res_ratio for m, d in zip(pts, crd))

    def test_fw_and_crd_power_drops_at_scale(self, cfg):
        """'P of FW and CR-D drops as the time cost in recovery or
        reconstruction becomes dominant.'"""
        for scheme in ("FW", "CR-D"):
            small = project_scheme(scheme, SIZES[0], cfg)
            large = project_scheme(scheme, SIZES[-1], cfg)
            assert large.power_ratio < small.power_ratio

    def test_crd_overhead_dominates_at_scale(self, cfg):
        """'T_res and E_res for FW and CR-D become larger than time and
        energy required for the fault-free case' at large sizes."""
        p = project_scheme("CR-D", SIZES[-1], cfg)
        assert p.t_res_ratio > 1.0
        assert p.e_res_ratio > 1.0

    def test_progress_halts_beyond_the_plot(self, cfg):
        """'if MTBF continues to decrease, workload progress can
        possibly halt' — the halt point is reported, not crashed on."""
        p = project_scheme("CR-D", 400_000, cfg)
        assert p.halted
        fw = project_scheme("FW", 400_000, cfg)
        assert fw.halted
        crm = project_scheme("CR-M", 400_000, cfg)
        assert not crm.halted


class TestProjectDriver:
    def test_all_schemes_all_sizes(self):
        out = project(SIZES)
        assert set(out) == set(FIGURE9_SCHEMES)
        for pts in out.values():
            assert [p.n for p in pts] == sorted(SIZES)

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError):
            project([])

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            project([0, 100])

    def test_unknown_scheme(self, cfg):
        with pytest.raises(ValueError):
            project_scheme("TMR", 100, cfg)

    def test_points_carry_mtbf(self, cfg):
        p = project_scheme("FW", 1000, cfg)
        assert p.system_mtbf_s == pytest.approx(cfg.mtbf_per_proc_s / 1000)
