"""Unit tests for the per-scheme cost models (Equations 9-16)."""

import math

import pytest

from repro.checkpoint.interval import young_interval
from repro.core.models.general import GeneralModel, WorkloadParams
from repro.core.models.schemes import (
    CheckpointModel,
    ForwardRecoveryModel,
    RedundancyModel,
)


@pytest.fixture()
def gm() -> GeneralModel:
    return GeneralModel(
        WorkloadParams(t_solve_s=1000.0, p1_w=10.0),
        n_cores=64,
        parallel_overhead_s=50.0,
    )


class TestRedundancyModel:
    def test_no_time_overhead(self, gm):
        assert RedundancyModel(gm).t_res_s() == 0.0

    def test_p_res_equals_n_p1(self, gm):
        """Equation 12."""
        assert RedundancyModel(gm).p_res_w() == pytest.approx(640.0)

    def test_energy_overhead_equals_fault_free(self, gm):
        m = RedundancyModel(gm)
        assert m.e_res_j() == pytest.approx(gm.energy_fault_free_j())

    def test_average_power_doubles(self, gm):
        assert RedundancyModel(gm).average_power_w() == pytest.approx(1280.0)


class TestCheckpointModel:
    def test_default_interval_is_young(self, gm):
        m = CheckpointModel(gm, t_c_s=4.0, rate_per_s=1 / 3600.0)
        assert m.effective_interval_s == pytest.approx(young_interval(4.0, 3600.0))

    def test_explicit_interval_respected(self, gm):
        m = CheckpointModel(gm, t_c_s=4.0, rate_per_s=1 / 3600.0, interval_s=100.0)
        assert m.effective_interval_s == 100.0

    def test_t_chkpt_formula(self, gm):
        """Equation 10: T_chkpt = t_C T / I_C."""
        m = CheckpointModel(gm, t_c_s=2.0, rate_per_s=0.0, interval_s=100.0)
        assert m.t_chkpt_s(1000.0) == pytest.approx(20.0)

    def test_t_lost_formula(self, gm):
        """Equation 11: T_lost = (I_C/2) lambda T."""
        m = CheckpointModel(gm, t_c_s=2.0, rate_per_s=0.01, interval_s=100.0)
        assert m.t_lost_s(1000.0) == pytest.approx(0.5 * 100 * 0.01 * 1000)

    def test_zero_rate_means_interval_infinite_no_loss(self, gm):
        m = CheckpointModel(gm, t_c_s=2.0, rate_per_s=0.0)
        assert math.isinf(m.effective_interval_s)
        assert m.t_res_s() == 0.0

    def test_fixed_point_consistency(self, gm):
        """T_res solves T = T_ff + T_chkpt(T) + T_lost(T)."""
        m = CheckpointModel(gm, t_c_s=2.0, rate_per_s=1e-3, interval_s=60.0)
        t_res = m.t_res_s()
        total = gm.time_fault_free_s() + t_res
        assert t_res == pytest.approx(m.t_chkpt_s(total) + m.t_lost_s(total), rel=1e-9)

    def test_t_res_grows_with_rate(self, gm):
        lo = CheckpointModel(gm, t_c_s=2.0, rate_per_s=1e-4).t_res_s()
        hi = CheckpointModel(gm, t_c_s=2.0, rate_per_s=1e-2).t_res_s()
        assert hi > lo

    def test_t_res_grows_with_checkpoint_cost(self, gm):
        cheap = CheckpointModel(gm, t_c_s=0.5, rate_per_s=1e-3).t_res_s()
        pricey = CheckpointModel(gm, t_c_s=8.0, rate_per_s=1e-3).t_res_s()
        assert pricey > cheap

    def test_checkpoint_power_below_execution(self, gm):
        m = CheckpointModel(gm, t_c_s=2.0, rate_per_s=1e-3)
        assert m.p_res_w() < gm.power_execution_w()

    def test_average_power_below_execution(self, gm):
        m = CheckpointModel(gm, t_c_s=2.0, rate_per_s=1e-3)
        assert m.average_power_w() < gm.power_execution_w()

    def test_diverging_rate_raises(self, gm):
        with pytest.raises(ValueError):
            CheckpointModel(gm, t_c_s=2.0, rate_per_s=10.0, interval_s=1.0).t_res_s()

    def test_validation(self, gm):
        with pytest.raises(ValueError):
            CheckpointModel(gm, t_c_s=0.0, rate_per_s=1e-3)
        with pytest.raises(ValueError):
            CheckpointModel(gm, t_c_s=1.0, rate_per_s=-1.0)
        with pytest.raises(ValueError):
            CheckpointModel(gm, t_c_s=1.0, rate_per_s=1e-3, checkpoint_power_fraction=0.0)


class TestForwardRecoveryModel:
    def make(self, gm, **kw):
        defaults = dict(rate_per_s=1e-3, t_const_s=5.0, t_extra_s=20.0,
                        n_active=1, idle_power_fraction=0.45)
        defaults.update(kw)
        return ForwardRecoveryModel(gm, **defaults)

    def test_t_res_splits_const_and_extra(self, gm):
        """Equation 13."""
        m = self.make(gm)
        assert m.t_res_s() == pytest.approx(
            m.t_const_total_s() + m.t_extra_total_s(), rel=1e-9
        )

    def test_t_const_proportional_to_rate(self, gm):
        """Equation 14 (at low rates the fixed point is ~linear)."""
        lo = self.make(gm, rate_per_s=1e-5).t_const_total_s()
        hi = self.make(gm, rate_per_s=2e-5).t_const_total_s()
        assert hi / lo == pytest.approx(2.0, rel=1e-2)

    def test_assignment_schemes_have_zero_const(self, gm):
        """F0/FI: t_const = 0 (Section 3.2)."""
        m = self.make(gm, t_const_s=0.0)
        assert m.t_const_total_s() == 0.0
        assert m.t_res_s() == pytest.approx(m.t_extra_total_s())

    def test_p_const_formula(self, gm):
        """Equation 15: P_const = N~ P1 + (N - N~) P_idle."""
        m = self.make(gm)
        assert m.p_const_w() == pytest.approx(1 * 10 + 63 * 0.45 * 10)

    def test_p_const_below_execution(self, gm):
        assert self.make(gm).p_const_w() < gm.power_execution_w()

    def test_dvfs_lowers_construction_power(self, gm):
        plain = self.make(gm, idle_power_fraction=0.74).p_const_w()
        dvfs = self.make(gm, idle_power_fraction=0.45).p_const_w()
        assert dvfs < plain

    def test_e_res_formula(self, gm):
        """Equation 16."""
        m = self.make(gm)
        expected = (
            m.p_const_w() * m.t_const_total_s()
            + gm.power_execution_w() * m.t_extra_total_s()
        )
        assert m.e_res_j() == pytest.approx(expected, rel=1e-9)

    def test_average_power_below_execution(self, gm):
        assert self.make(gm).average_power_w() < gm.power_execution_w()

    def test_all_cores_active_matches_execution_power(self, gm):
        m = self.make(gm, n_active=64)
        assert m.p_const_w() == pytest.approx(gm.power_execution_w())

    def test_validation(self, gm):
        with pytest.raises(ValueError):
            self.make(gm, rate_per_s=-1.0)
        with pytest.raises(ValueError):
            self.make(gm, t_const_s=-1.0)
        with pytest.raises(ValueError):
            self.make(gm, n_active=0)
        with pytest.raises(ValueError):
            self.make(gm, n_active=100)
        with pytest.raises(ValueError):
            self.make(gm, idle_power_fraction=1.5)
