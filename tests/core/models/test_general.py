"""Unit tests for the generalized T/P/E models (Equations 1-8)."""

import pytest

from repro.core.models.general import GeneralModel, WorkloadParams


@pytest.fixture()
def workload() -> WorkloadParams:
    return WorkloadParams(t_solve_s=100.0, p1_w=10.0)


class TestWorkloadParams:
    def test_e1_is_p1_t1(self, workload):
        """Equation 6."""
        assert workload.e1_j == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadParams(t_solve_s=0.0, p1_w=10.0)
        with pytest.raises(ValueError):
            WorkloadParams(t_solve_s=1.0, p1_w=-1.0)


class TestTime:
    def test_fixed_time_scaling(self, workload):
        """Equation 2: constant time absent parallel overhead."""
        m1 = GeneralModel(workload, n_cores=1)
        m64 = GeneralModel(workload, n_cores=64)
        assert m1.time_fault_free_s() == m64.time_fault_free_s() == 100.0

    def test_constant_overhead(self, workload):
        m = GeneralModel(workload, n_cores=16, parallel_overhead_s=5.0)
        assert m.time_fault_free_s() == pytest.approx(105.0)

    def test_callable_overhead(self, workload):
        import math

        m = GeneralModel(
            workload, n_cores=1024, parallel_overhead_s=lambda n: math.log2(n)
        )
        assert m.t_overhead_s == pytest.approx(10.0)

    def test_resilience_term(self, workload):
        """Equation 3."""
        m = GeneralModel(workload, n_cores=4, parallel_overhead_s=5.0)
        assert m.time_s(t_res_s=20.0) == pytest.approx(125.0)

    def test_rejects_negative_t_res(self, workload):
        with pytest.raises(ValueError):
            GeneralModel(workload, n_cores=4).time_s(-1.0)

    def test_rejects_negative_overhead(self, workload):
        with pytest.raises(ValueError):
            GeneralModel(workload, n_cores=4, parallel_overhead_s=-1.0).t_overhead_s


class TestPower:
    def test_execution_power_scales_with_cores(self, workload):
        """Equation 4."""
        assert GeneralModel(workload, n_cores=64).power_execution_w() == pytest.approx(640.0)

    def test_overlapped_power_adds(self, workload):
        """Equation 5, overlapped phase."""
        m = GeneralModel(workload, n_cores=10)
        assert m.power_overlapped_w(100.0) == pytest.approx(200.0)

    def test_average_power_time_weighted(self, workload):
        m = GeneralModel(workload, n_cores=1)
        avg = m.average_power_w([(1.0, 100.0), (3.0, 50.0)])
        assert avg == pytest.approx((100 + 150) / 4)

    def test_average_power_validation(self, workload):
        m = GeneralModel(workload, n_cores=1)
        with pytest.raises(ValueError):
            m.average_power_w([])
        with pytest.raises(ValueError):
            m.average_power_w([(-1.0, 10.0)])


class TestEnergy:
    def test_fault_free_energy(self, workload):
        """Equation 7."""
        m = GeneralModel(workload, n_cores=8, parallel_overhead_s=25.0)
        assert m.energy_fault_free_j() == pytest.approx(8 * 10 * 125.0)

    def test_faulty_energy(self, workload):
        """Equation 8."""
        m = GeneralModel(workload, n_cores=2, parallel_overhead_s=0.0)
        assert m.energy_j(t_res_s=50.0, p_avg_w=18.0) == pytest.approx(18 * 150.0)

    def test_rejects_negative_power(self, workload):
        with pytest.raises(ValueError):
            GeneralModel(workload, n_cores=2).energy_j(0.0, -1.0)
