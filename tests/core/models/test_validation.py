"""Unit tests for the Table-6 model-vs-experiment validation."""

import pytest

from repro.core.models.validation import validate_scheme
from repro.core.recovery import make_scheme
from repro.faults.schedule import EvenlySpacedSchedule


@pytest.fixture(scope="module")
def reports():
    """FF + three faulty runs on the small system."""
    import numpy as np

    from repro.core.solver import ResilientSolver
    from repro.matrices.generators import banded_spd
    from tests.conftest import quick_config

    a = banded_spd(200, 7, dominance=5e-3, seed=0)
    b = a @ np.random.default_rng(0).standard_normal(200)
    ff = ResilientSolver(a, b, config=quick_config(nranks=4)).solve()

    def run(scheme):
        return ResilientSolver(
            a,
            b,
            scheme=scheme,
            schedule=EvenlySpacedSchedule(n_faults=3),
            config=quick_config(nranks=4, baseline_iters=ff.iterations),
        ).solve()

    return {
        "FF": ff,
        "RD": run(make_scheme("RD")),
        "CR-M": run(make_scheme("CR-M", interval_iters=10)),
        "LI-DVFS": run(make_scheme("LI-DVFS")),
    }


class TestValidation:
    def test_ff_row_is_exact(self, reports):
        v = validate_scheme(reports["FF"], reports["FF"], nranks=4)
        assert v.model_t_res == 0.0
        assert v.model_p == pytest.approx(1.0)
        assert v.exp_t_res == 0.0
        assert v.exp_p == pytest.approx(1.0)

    def test_rd_model_matches_experiment_exactly(self, reports):
        """'FF and RD uses the same data in the models and in the
        experiments' — both give T_res=0, P=2, E_res=1."""
        v = validate_scheme(reports["FF"], reports["RD"], nranks=4)
        assert v.model_t_res == 0.0
        assert v.model_p == pytest.approx(2.0)
        assert v.model_e_res == pytest.approx(1.0, rel=0.02)
        assert v.exp_p == pytest.approx(2.0, rel=0.05)
        assert v.exp_e_res == pytest.approx(1.0, rel=0.1)

    def test_cr_model_in_the_ballpark(self, reports):
        v = validate_scheme(reports["FF"], reports["CR-M"], nranks=4)
        assert v.model_t_res > 0
        assert v.model_e_res > 0
        assert 0.5 < v.model_p <= 1.01
        # relative agreement: same order of magnitude as experiment
        assert v.model_t_res == pytest.approx(v.exp_t_res, rel=2.0, abs=0.5)

    def test_fw_model_present_and_positive(self, reports):
        v = validate_scheme(reports["FF"], reports["LI-DVFS"], nranks=4)
        assert v.model_t_res > 0
        assert v.model_e_res > 0
        assert v.model_p < 1.01

    def test_scheme_ordering_preserved(self, reports):
        """'our main goal is to provide comparison and relative order
        between the schemes' — RD has more power than CR and FW in both
        model and experiment."""
        rows = {
            name: validate_scheme(reports["FF"], reports[name], nranks=4)
            for name in ("RD", "CR-M", "LI-DVFS")
        }
        assert rows["RD"].model_p > rows["CR-M"].model_p
        assert rows["RD"].model_p > rows["LI-DVFS"].model_p
        assert rows["RD"].exp_p > rows["CR-M"].exp_p
        assert rows["RD"].exp_p > rows["LI-DVFS"].exp_p

    def test_as_row_shape(self, reports):
        v = validate_scheme(reports["FF"], reports["RD"], nranks=4)
        row = v.as_row()
        assert row[0] == "RD"
        assert len(row) == 7

    def test_rejects_bad_nranks(self, reports):
        with pytest.raises(ValueError):
            validate_scheme(reports["FF"], reports["RD"], nranks=0)
