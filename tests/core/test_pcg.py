"""Tests for the Jacobi-PCG extension.

The paper's future work: "study the performance and energy optimization
for more applications."  Jacobi-preconditioned CG is the first such
application: same recovery schemes, same cost accounting, different
iteration operator.
"""

import numpy as np
import pytest

from repro.core.cg import DistributedCG
from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver
from repro.faults.schedule import EvenlySpacedSchedule
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.generators import banded_spd
from repro.matrices.partition import BlockRowPartition
from tests.conftest import quick_config


@pytest.fixture(scope="module")
def scaled_system():
    """Badly row-scaled system where Jacobi shines."""
    a = banded_spd(600, 9, dominance=1e-5, scaling_spread=0.8, seed=3)
    b = a @ np.random.default_rng(1).standard_normal(600)
    return a, b


class TestPcgNumerics:
    def test_converges_to_same_solution(self, scaled_system):
        a, b = scaled_system
        d = DistributedMatrix(a, BlockRowPartition(600, 4))
        plain = DistributedCG(d, b, tol=1e-10)
        plain.solve_fault_free()
        pcg = DistributedCG(d, b, tol=1e-10, preconditioner="jacobi")
        pcg.solve_fault_free()
        assert np.allclose(plain.state.x, pcg.state.x, rtol=1e-5, atol=1e-8)

    def test_jacobi_much_faster_on_scaled_systems(self, scaled_system):
        a, b = scaled_system
        d = DistributedMatrix(a, BlockRowPartition(600, 4))
        plain = DistributedCG(d, b, tol=1e-8)
        pcg = DistributedCG(d, b, tol=1e-8, preconditioner="jacobi")
        assert pcg.solve_fault_free() < plain.solve_fault_free() / 3

    def test_residual_criterion_is_true_residual(self, scaled_system):
        a, b = scaled_system
        d = DistributedMatrix(a, BlockRowPartition(600, 4))
        pcg = DistributedCG(d, b, tol=1e-8, preconditioner="jacobi")
        pcg.solve_fault_free()
        true_rel = np.linalg.norm(b - a @ pcg.state.x) / np.linalg.norm(b)
        assert true_rel <= 1.1e-8

    def test_restart_preserves_preconditioning(self, scaled_system):
        a, b = scaled_system
        d = DistributedMatrix(a, BlockRowPartition(600, 4))
        pcg = DistributedCG(d, b, tol=1e-8, preconditioner="jacobi")
        for _ in range(10):
            pcg.step()
        pcg.restart()
        pcg.solve_fault_free()
        assert pcg.converged
        assert pcg.iteration < 1000  # still preconditioned after restart

    def test_rejects_unknown_preconditioner(self, scaled_system):
        a, b = scaled_system
        d = DistributedMatrix(a, BlockRowPartition(600, 4))
        with pytest.raises(ValueError):
            DistributedCG(d, b, preconditioner="ilu")

    def test_rejects_nonpositive_diagonal(self):
        import scipy.sparse as sp

        a = sp.diags([-1.0, 1.0, 1.0, 1.0]).tocsr()
        d = DistributedMatrix(a, BlockRowPartition(4, 2))
        with pytest.raises(ValueError):
            DistributedCG(d, np.ones(4), preconditioner="jacobi")


class TestPcgResilience:
    @pytest.mark.parametrize("name", ["RD", "CR-M", "F0", "LI", "LSI-DVFS"])
    def test_every_scheme_works_under_pcg(self, scaled_system, name):
        a, b = scaled_system
        report = ResilientSolver(
            a,
            b,
            scheme=make_scheme(name, interval_iters=10),
            schedule=EvenlySpacedSchedule(n_faults=3),
            config=quick_config(nranks=8, preconditioner="jacobi"),
        ).solve()
        assert report.converged, name
        assert report.final_relative_residual <= 1e-8

    def test_rd_still_overlaps_fault_free(self, scaled_system):
        a, b = scaled_system
        def cfg(**kw):
            return quick_config(nranks=8, preconditioner="jacobi", **kw)

        ff = ResilientSolver(a, b, config=cfg()).solve()
        rd = ResilientSolver(
            a,
            b,
            scheme=make_scheme("RD"),
            schedule=EvenlySpacedSchedule(n_faults=3),
            config=cfg(baseline_iters=ff.iterations),
        ).solve()
        assert rd.iterations == ff.iterations

    def test_pcg_costs_more_per_iteration_but_fewer_iterations(self, scaled_system):
        a, b = scaled_system
        plain = ResilientSolver(a, b, config=quick_config(nranks=8)).solve()
        pcg = ResilientSolver(
            a, b, config=quick_config(nranks=8, preconditioner="jacobi")
        ).solve()
        assert pcg.details["iteration_wall_s"] > plain.details["iteration_wall_s"]
        assert pcg.iterations < plain.iterations
        assert pcg.time_s < plain.time_s  # net win on this system
        assert pcg.energy_j < plain.energy_j
