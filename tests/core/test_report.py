"""Unit tests for SolveReport."""

import numpy as np
import pytest

from repro.core.report import SolveReport
from repro.power.energy import EnergyAccount, PhaseTag
from repro.power.rapl import RaplMeter


def make_report(scheme="FF", iterations=100, time_s=10.0, solve_j=1000.0,
                extra_j=0.0, baseline=None):
    acc = EnergyAccount()
    acc.charge(PhaseTag.SOLVE, time_s=time_s, power_w=solve_j / time_s)
    if extra_j:
        acc.charge(PhaseTag.EXTRA, time_s=1.0, power_w=extra_j)
    return SolveReport(
        scheme=scheme,
        converged=True,
        iterations=iterations,
        final_relative_residual=1e-9,
        residual_history=np.geomspace(1, 1e-9, iterations),
        time_s=time_s + (1.0 if extra_j else 0.0),
        account=acc,
        rapl=RaplMeter(),
        baseline_iters=baseline,
    )


class TestDerivedMetrics:
    def test_energy_and_power(self):
        r = make_report()
        assert r.energy_j == pytest.approx(1000.0)
        assert r.average_power_w == pytest.approx(100.0)

    def test_resilience_split(self):
        r = make_report(extra_j=50.0)
        assert r.resilience_energy_j == pytest.approx(50.0)
        assert r.resilience_time_s == pytest.approx(1.0)

    def test_extra_iterations(self):
        assert make_report(iterations=150, baseline=100).extra_iterations == 50
        assert make_report(iterations=90, baseline=100).extra_iterations == 0
        assert make_report(iterations=90).extra_iterations == 0


class TestNormalization:
    def test_ratios(self):
        base = make_report()
        faulty = make_report(scheme="F0", iterations=220, time_s=20.0, solve_j=2500.0)
        assert faulty.normalized_iterations(base) == pytest.approx(2.2)
        assert faulty.normalized_time(base) == pytest.approx(2.0)
        assert faulty.normalized_energy(base) == pytest.approx(2.5)

    def test_self_normalization_is_one(self):
        r = make_report()
        assert r.normalized_iterations(r) == 1.0
        assert r.normalized_time(r) == 1.0
        assert r.normalized_energy(r) == 1.0
        assert r.normalized_power(r) == 1.0

    def test_zero_baseline_rejected(self):
        base = make_report(iterations=0)
        with pytest.raises(ValueError):
            make_report().normalized_iterations(base)


class TestPresentation:
    def test_phase_summary_keys(self):
        r = make_report(extra_j=10.0)
        summary = r.phase_summary()
        assert set(summary) == {"solve", "extra"}
        t, e = summary["solve"]
        assert t == pytest.approx(10.0)

    def test_summary_text(self):
        text = make_report(scheme="LI").summary()
        assert "scheme=LI" in text
        assert "converged=True" in text
