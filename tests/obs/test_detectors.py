"""Anomaly detectors: zero findings on health, loud on corruption."""

from dataclasses import replace

import numpy as np
import pytest

from repro.obs.analysis import RunRecord, detectors, run_detectors
from repro.obs.analysis.detectors import (
    ENERGY_BALANCE_REL_TOL,
    RESIDUAL_JUMP_FACTOR,
    Finding,
)
from repro.obs.export import telemetry_from_dict, telemetry_to_dict


def _copy_record(record: RunRecord) -> RunRecord:
    """An independent copy whose telemetry can be corrupted freely."""
    return RunRecord(
        label=record.label,
        report=record.report,
        telemetry=telemetry_from_dict(telemetry_to_dict(record.telemetry)),
        config=record.config,
    )


class TestRegistry:
    def test_builtins_are_registered(self):
        names = {d.name for d in detectors()}
        assert {
            "energy_balance",
            "residual_convergence",
            "schedule_drift",
            "span_integrity",
            "model_divergence",
        } <= names

    def test_detectors_sorted_by_name(self):
        names = [d.name for d in detectors()]
        assert names == sorted(names)

    def test_unknown_name_raises_with_the_known_list(self, traced_record):
        with pytest.raises(ValueError, match="unknown detectors: nope"):
            run_detectors([traced_record], ["nope"])

    def test_named_subset_runs_only_those(self, traced_record):
        # selecting one detector on a clean run: still zero findings
        assert run_detectors([traced_record], ["span_integrity"]) == []

    def test_finding_str_carries_value_and_threshold(self):
        f = Finding("d", "error", "cell", "broken", value=2.0, threshold=1.0)
        assert str(f) == "[error] cell: d: broken (value=2, threshold=1)"


class TestCleanRun:
    def test_all_detectors_pass_on_a_healthy_traced_run(self, traced_record):
        assert run_detectors([traced_record]) == []

    def test_detectors_tolerate_a_bare_record(self):
        # no report, no telemetry: every run-scope detector degrades to
        # "nothing to check" instead of crashing
        bare = RunRecord(label="bare")
        assert run_detectors([bare], [d.name for d in detectors()]) == []


class TestEnergyBalance:
    def test_inflated_phase_counter_breaks_the_books(self, traced_record):
        bad = _copy_record(traced_record)
        bad.telemetry.metrics.counter("phase.energy_j", phase="solve").inc(
            traced_record.report.energy_j  # double-count the solve energy
        )
        findings = run_detectors([bad], ["energy_balance"])
        assert findings
        assert all(f.detector == "energy_balance" for f in findings)
        assert any("energy" in f.message for f in findings)
        assert all(f.threshold == ENERGY_BALANCE_REL_TOL for f in findings)

    def test_skewed_energy_gauge_disagrees_with_the_report(self, traced_record):
        bad = _copy_record(traced_record)
        bad.telemetry.metrics.gauge("solver.energy_j").set(
            traced_record.report.energy_j * 1.5
        )
        findings = run_detectors([bad], ["energy_balance"])
        assert any("gauge disagrees" in f.message for f in findings)


class TestResidualConvergence:
    def test_unexplained_jump_is_flagged(self, traced_record):
        history = np.array(traced_record.report.residual_history, dtype=float)
        # plant a jump far from any fault: right before the end
        i = len(history) - 2
        assert all(
            abs((i + 1) - ev.iteration) > 3
            for ev in traced_record.report.faults
        )
        history[i] = history[i - 1] * (2 * RESIDUAL_JUMP_FACTOR)
        bad = RunRecord(
            label=traced_record.label,
            report=replace(traced_record.report, residual_history=history),
        )
        findings = run_detectors([bad], ["residual_convergence"])
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "jumped" in findings[0].message

    def test_fault_excursions_are_excused(self, traced_record):
        # the real faulty history has jumps at the fault iterations; the
        # detector must not flag them
        assert run_detectors([traced_record], ["residual_convergence"]) == []

    def test_stall_is_a_warning(self, traced_record):
        history = np.concatenate(
            [
                np.array(traced_record.report.residual_history, dtype=float),
                np.full(1500, 1.0),  # flat tail, no faults in the gap
            ]
        )
        bad = RunRecord(
            label="stalled",
            report=replace(
                traced_record.report, residual_history=history, faults=[]
            ),
        )
        findings = run_detectors([bad], ["residual_convergence"])
        warnings = [f for f in findings if f.severity == "warning"]
        assert any("not improved" in f.message for f in warnings)


class TestScheduleDrift:
    def test_trace_and_report_must_agree_on_faults(self, traced_record):
        bad = RunRecord(
            label=traced_record.label,
            report=replace(
                traced_record.report,
                faults=[
                    replace(ev, iteration=ev.iteration + 7)
                    for ev in traced_record.report.faults
                ],
            ),
            telemetry=traced_record.telemetry,
        )
        findings = run_detectors([bad], ["schedule_drift"])
        assert any("trace records faults" in f.message for f in findings)

    def test_config_implied_schedule_must_be_realized(self, traced_record):
        bad = RunRecord(
            label=traced_record.label,
            report=replace(traced_record.report, faults=[]),
            config=traced_record.config,
        )
        findings = run_detectors([bad], ["schedule_drift"])
        assert any("config implies faults" in f.message for f in findings)


class TestSpanIntegrity:
    def test_child_escaping_its_parent_is_flagged(self, traced_record):
        bad = _copy_record(traced_record)
        spans = bad.telemetry.spans.spans
        root = max(spans, key=lambda s: s.duration_s)
        child_idx = next(i for i, s in enumerate(spans) if s.depth == 1)
        # shift the child past the end of the run: a gap the tree cannot
        # contain
        spans[child_idx] = replace(
            spans[child_idx],
            t_start=root.t_end + 1.0,
            t_end=root.t_end + 2.0,
        )
        findings = run_detectors([bad], ["span_integrity"])
        assert any("escapes its parent" in f.message for f in findings)

    def test_negative_duration_is_flagged(self, traced_record):
        bad = _copy_record(traced_record)
        spans = bad.telemetry.spans.spans
        spans[0] = replace(spans[0], t_start=spans[0].t_end + 5.0)
        findings = run_detectors([bad], ["span_integrity"])
        assert any("negative duration" in f.message for f in findings)

    def test_truncated_solve_span_disagrees_with_the_report(self, traced_record):
        bad = _copy_record(traced_record)
        spans = bad.telemetry.spans.spans
        solve_idx = next(
            i for i, s in enumerate(spans) if s.name == "solve" and s.depth == 0
        )
        mid = (spans[solve_idx].t_start + spans[solve_idx].t_end) / 2
        spans[solve_idx] = replace(spans[solve_idx], t_end=mid)
        findings = run_detectors([bad], ["span_integrity"])
        assert any("solve span covers" in f.message for f in findings)


class TestDoctorScenario:
    """The acceptance case: a span gap plus an energy imbalance."""

    def test_corrupted_trace_yields_both_findings(self, traced_record):
        bad = _copy_record(traced_record)
        spans = bad.telemetry.spans.spans
        root = max(spans, key=lambda s: s.duration_s)
        child_idx = next(i for i, s in enumerate(spans) if s.depth == 1)
        spans[child_idx] = replace(
            spans[child_idx],
            t_start=root.t_end + 1.0,
            t_end=root.t_end + 2.0,
        )
        bad.telemetry.metrics.counter("phase.energy_j", phase="solve").inc(
            traced_record.report.energy_j
        )
        found = {f.detector for f in run_detectors([bad])}
        assert "span_integrity" in found
        assert "energy_balance" in found
