"""Anomaly detectors: zero findings on health, loud on corruption."""

from dataclasses import replace

import numpy as np
import pytest

from repro.obs.analysis import RunRecord, detectors, run_detectors
from repro.obs.analysis.detectors import (
    ENERGY_BALANCE_REL_TOL,
    RESIDUAL_JUMP_FACTOR,
    Finding,
)
from repro.obs.export import telemetry_from_dict, telemetry_to_dict


def _copy_record(record: RunRecord) -> RunRecord:
    """An independent copy whose telemetry can be corrupted freely."""
    return RunRecord(
        label=record.label,
        report=record.report,
        telemetry=telemetry_from_dict(telemetry_to_dict(record.telemetry)),
        config=record.config,
    )


class TestRegistry:
    def test_builtins_are_registered(self):
        names = {d.name for d in detectors()}
        assert {
            "energy_balance",
            "residual_convergence",
            "schedule_drift",
            "span_integrity",
            "model_divergence",
        } <= names

    def test_detectors_sorted_by_name(self):
        names = [d.name for d in detectors()]
        assert names == sorted(names)

    def test_unknown_name_raises_with_the_known_list(self, traced_record):
        with pytest.raises(ValueError, match="unknown detectors: nope"):
            run_detectors([traced_record], ["nope"])

    def test_named_subset_runs_only_those(self, traced_record):
        # selecting one detector on a clean run: still zero findings
        assert run_detectors([traced_record], ["span_integrity"]) == []

    def test_finding_str_carries_value_and_threshold(self):
        f = Finding("d", "error", "cell", "broken", value=2.0, threshold=1.0)
        assert str(f) == "[error] cell: d: broken (value=2, threshold=1)"


class TestCleanRun:
    def test_all_detectors_pass_on_a_healthy_traced_run(self, traced_record):
        assert run_detectors([traced_record]) == []

    def test_detectors_tolerate_a_bare_record(self):
        # no report, no telemetry: every run-scope detector degrades to
        # "nothing to check" instead of crashing
        bare = RunRecord(label="bare")
        assert run_detectors([bare], [d.name for d in detectors()]) == []


class TestEnergyBalance:
    def test_inflated_phase_counter_breaks_the_books(self, traced_record):
        bad = _copy_record(traced_record)
        bad.telemetry.metrics.counter("phase.energy_j", phase="solve").inc(
            traced_record.report.energy_j  # double-count the solve energy
        )
        findings = run_detectors([bad], ["energy_balance"])
        assert findings
        assert all(f.detector == "energy_balance" for f in findings)
        assert any("energy" in f.message for f in findings)
        assert all(f.threshold == ENERGY_BALANCE_REL_TOL for f in findings)

    def test_skewed_energy_gauge_disagrees_with_the_report(self, traced_record):
        bad = _copy_record(traced_record)
        bad.telemetry.metrics.gauge("solver.energy_j").set(
            traced_record.report.energy_j * 1.5
        )
        findings = run_detectors([bad], ["energy_balance"])
        assert any("gauge disagrees" in f.message for f in findings)


class TestResidualConvergence:
    def test_unexplained_jump_is_flagged(self, traced_record):
        history = np.array(traced_record.report.residual_history, dtype=float)
        # plant a jump far from any fault: right before the end
        i = len(history) - 2
        assert all(
            abs((i + 1) - ev.iteration) > 3
            for ev in traced_record.report.faults
        )
        history[i] = history[i - 1] * (2 * RESIDUAL_JUMP_FACTOR)
        bad = RunRecord(
            label=traced_record.label,
            report=replace(traced_record.report, residual_history=history),
        )
        findings = run_detectors([bad], ["residual_convergence"])
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert "jumped" in findings[0].message

    def test_fault_excursions_are_excused(self, traced_record):
        # the real faulty history has jumps at the fault iterations; the
        # detector must not flag them
        assert run_detectors([traced_record], ["residual_convergence"]) == []

    def test_stall_is_a_warning(self, traced_record):
        history = np.concatenate(
            [
                np.array(traced_record.report.residual_history, dtype=float),
                np.full(1500, 1.0),  # flat tail, no faults in the gap
            ]
        )
        bad = RunRecord(
            label="stalled",
            report=replace(
                traced_record.report, residual_history=history, faults=[]
            ),
        )
        findings = run_detectors([bad], ["residual_convergence"])
        warnings = [f for f in findings if f.severity == "warning"]
        assert any("not improved" in f.message for f in warnings)


class TestScheduleDrift:
    def test_trace_and_report_must_agree_on_faults(self, traced_record):
        bad = RunRecord(
            label=traced_record.label,
            report=replace(
                traced_record.report,
                faults=[
                    replace(ev, iteration=ev.iteration + 7)
                    for ev in traced_record.report.faults
                ],
            ),
            telemetry=traced_record.telemetry,
        )
        findings = run_detectors([bad], ["schedule_drift"])
        assert any("trace records faults" in f.message for f in findings)

    def test_config_implied_schedule_must_be_realized(self, traced_record):
        bad = RunRecord(
            label=traced_record.label,
            report=replace(traced_record.report, faults=[]),
            config=traced_record.config,
        )
        findings = run_detectors([bad], ["schedule_drift"])
        assert any("config implies faults" in f.message for f in findings)


class TestSpanIntegrity:
    def test_child_escaping_its_parent_is_flagged(self, traced_record):
        bad = _copy_record(traced_record)
        spans = bad.telemetry.spans.spans
        root = max(spans, key=lambda s: s.duration_s)
        child_idx = next(i for i, s in enumerate(spans) if s.depth == 1)
        # shift the child past the end of the run: a gap the tree cannot
        # contain
        spans[child_idx] = replace(
            spans[child_idx],
            t_start=root.t_end + 1.0,
            t_end=root.t_end + 2.0,
        )
        findings = run_detectors([bad], ["span_integrity"])
        assert any("escapes its parent" in f.message for f in findings)

    def test_negative_duration_is_flagged(self, traced_record):
        bad = _copy_record(traced_record)
        spans = bad.telemetry.spans.spans
        spans[0] = replace(spans[0], t_start=spans[0].t_end + 5.0)
        findings = run_detectors([bad], ["span_integrity"])
        assert any("negative duration" in f.message for f in findings)

    def test_truncated_solve_span_disagrees_with_the_report(self, traced_record):
        bad = _copy_record(traced_record)
        spans = bad.telemetry.spans.spans
        solve_idx = next(
            i for i, s in enumerate(spans) if s.name == "solve" and s.depth == 0
        )
        mid = (spans[solve_idx].t_start + spans[solve_idx].t_end) / 2
        spans[solve_idx] = replace(spans[solve_idx], t_end=mid)
        findings = run_detectors([bad], ["span_integrity"])
        assert any("solve span covers" in f.message for f in findings)


def fleet_manifest(**overrides):
    """A healthy 2-worker campaign manifest to corrupt per test.

    Built from plain manifest rows (the detectors duck-type the
    manifest; obs never imports the campaign runner to produce one).
    """
    from repro.campaign.manifest import ManifestCell, ManifestWorker, RunManifest

    fields = dict(
        run_id="feedbeeffeedbeef",
        name="fleet",
        workers=2,
        heartbeat_interval_s=1.0,
        started_at=1000.0,
        finished_at=1020.0,
        wall_s=20.0,
        counters={
            "cells": 4, "ran": 4, "cached": 0, "failed": 0, "retries": 0,
            "store_overwrites": 0,
        },
        cells=tuple(
            ManifestCell(
                label=f"m{i}/r8/f2/x0.25/RD", cell_id=f"{i:016x}",
                scheme="RD", status="ran", worker=101 + i % 2,
                started_ts=1000.0 + i, finished_ts=1002.0 + i, compute_s=2.0,
            )
            for i in range(4)
        ),
        worker_rows=(
            ManifestWorker(
                worker=101, cells_done=4, busy_s=8.0, heartbeats=20,
                max_heartbeat_gap_s=1.2,
            ),
            ManifestWorker(
                worker=102, cells_done=4, busy_s=8.5, heartbeats=20,
                max_heartbeat_gap_s=1.1,
            ),
        ),
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestFleetDetectors:
    """Fleet-scoped detectors judge the campaign manifest, not cells."""

    FLEET = ("worker_straggler", "heartbeat_gap", "retry_storm", "cache_stampede")

    def test_fleet_scope_is_registered(self):
        scopes = {d.name: d.scope for d in detectors()}
        for name in self.FLEET:
            assert scopes[name] == "fleet"

    def test_skipped_without_a_manifest(self):
        assert run_detectors([], list(self.FLEET)) == []

    def test_healthy_manifest_passes(self):
        assert run_detectors([], list(self.FLEET), manifest=fleet_manifest()) == []

    def test_cell_hung_past_campaign_end_is_a_straggler(self):
        from dataclasses import replace as drep

        manifest = fleet_manifest()
        hung = drep(
            manifest,
            finished_at=1100.0,
            cells=(
                *manifest.cells[:3],
                drep(manifest.cells[3], status="running", finished_ts=None),
            ),
        )
        (finding,) = run_detectors([], ["worker_straggler"], manifest=hung)
        assert finding.severity == "error"
        assert "still running" in finding.message

    def test_one_slow_worker_is_a_straggler_warning(self):
        from dataclasses import replace as drep
        from repro.campaign.manifest import ManifestWorker

        # three workers so the pool median is set by the healthy pair
        manifest = fleet_manifest()
        skewed = drep(
            manifest,
            worker_rows=(
                *manifest.worker_rows,
                ManifestWorker(
                    worker=103, cells_done=4, busy_s=200.0, heartbeats=20,
                    max_heartbeat_gap_s=1.0,
                ),
            ),
        )
        (finding,) = run_detectors([], ["worker_straggler"], manifest=skewed)
        assert finding.severity == "warning"
        assert finding.cell == "fleet/worker-103"

    def test_silent_busy_worker_is_a_heartbeat_gap(self):
        from dataclasses import replace as drep

        manifest = fleet_manifest()
        silent = drep(
            manifest,
            worker_rows=(
                drep(manifest.worker_rows[0], max_heartbeat_gap_s=30.0),
                manifest.worker_rows[1],
            ),
        )
        (finding,) = run_detectors([], ["heartbeat_gap"], manifest=silent)
        assert finding.severity == "error"
        assert finding.value == pytest.approx(30.0)

    def test_heartbeats_disabled_never_fires(self):
        from dataclasses import replace as drep

        manifest = fleet_manifest()
        serial = drep(
            manifest,
            heartbeat_interval_s=0.0,
            worker_rows=(
                drep(manifest.worker_rows[0], max_heartbeat_gap_s=999.0),
            ),
        )
        assert run_detectors([], ["heartbeat_gap"], manifest=serial) == []

    def test_retry_storm_needs_both_count_and_ratio(self):
        def with_retries(retries, ran):
            m = fleet_manifest()
            return run_detectors(
                [], ["retry_storm"],
                manifest=fleet_manifest(
                    counters={**m.counters, "retries": retries, "ran": ran}
                ),
            )

        assert with_retries(2, 4) == []  # below the absolute floor
        assert with_retries(3, 100) == []  # below the ratio
        (finding,) = with_retries(3, 4)
        assert finding.detector == "retry_storm"

    def test_cache_stampede_fires_on_mass_overwrites(self):
        m = fleet_manifest()
        assert run_detectors(
            [], ["cache_stampede"],
            manifest=fleet_manifest(
                counters={**m.counters, "store_overwrites": 2, "ran": 4}
            ),
        ) == []
        (finding,) = run_detectors(
            [], ["cache_stampede"],
            manifest=fleet_manifest(
                counters={**m.counters, "store_overwrites": 4, "ran": 4}
            ),
        )
        assert "overwrote" in finding.message


class TestDoctorScenario:
    """The acceptance case: a span gap plus an energy imbalance."""

    def test_corrupted_trace_yields_both_findings(self, traced_record):
        bad = _copy_record(traced_record)
        spans = bad.telemetry.spans.spans
        root = max(spans, key=lambda s: s.duration_s)
        child_idx = next(i for i, s in enumerate(spans) if s.depth == 1)
        spans[child_idx] = replace(
            spans[child_idx],
            t_start=root.t_end + 1.0,
            t_end=root.t_end + 2.0,
        )
        bad.telemetry.metrics.counter("phase.energy_j", phase="solve").inc(
            traced_record.report.energy_j
        )
        found = {f.detector for f in run_detectors([bad])}
        assert "span_integrity" in found
        assert "energy_balance" in found
