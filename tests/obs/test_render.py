"""Rendering: terminal tables, Prometheus exposition, HTML report."""

from repro.obs.analysis import (
    attribute_record,
    build_span_tree,
    critical_path,
    diff_runs,
    format_attribution,
    format_attribution_rollup,
    format_critical_path,
    format_findings,
    format_run_diff,
    format_span_tree,
    html_report,
    prometheus_text,
    scheme_rollup,
)
from repro.obs.analysis.detectors import Finding
from repro.obs.metrics import MetricsRegistry


class TestTerminal:
    def test_attribution_waterfall_shows_residual(self, traced_record):
        text = format_attribution(attribute_record(traced_record))
        assert "residual" in text
        assert "solve" in text
        assert "(* = resilience phase)" in text
        assert "#" in text  # the waterfall bars

    def test_rollup_renders_every_scheme(self, traced_record):
        rollup = scheme_rollup([attribute_record(traced_record)])
        text = format_attribution_rollup(rollup)
        assert "LI (1 cells)" in text

    def test_empty_rollup_says_so(self):
        assert format_attribution_rollup({}) == "no attributable cells"

    def test_findings_render_with_a_count(self):
        findings = [
            Finding("d", "error", "cell", "broken"),
            Finding("d", "warning", "cell", "odd"),
        ]
        text = format_findings(findings)
        assert "[error] cell: d: broken" in text
        assert "2 finding(s): 1 error(s), 1 warning(s)" in text
        assert format_findings([]) == "no findings"

    def test_span_tree_indents_children(self, traced_record):
        text = format_span_tree(traced_record.telemetry.spans.spans)
        lines = text.splitlines()
        assert any(line.startswith("solve") for line in lines)
        # at least one nested span rendered with a two-space indent
        assert any(line.startswith("  ") for line in lines[2:])
        assert format_span_tree([]) == "no spans"

    def test_critical_path_starts_at_the_root(self, traced_record):
        path = critical_path(
            build_span_tree(traced_record.telemetry.spans.spans)
        )
        text = format_critical_path(path)
        assert text.splitlines()[1].startswith("solve")
        assert format_critical_path([]) == "no spans"

    def test_identical_diff_renders_one_line(self, traced_record):
        text = format_run_diff(diff_runs(traced_record, traced_record))
        assert "identical under the store schema" in text


class TestPrometheus:
    def test_counter_gets_total_suffix_and_type_line(self):
        reg = MetricsRegistry()
        reg.counter("cg.iterations", scheme="LI").inc(42)
        text = prometheus_text(reg)
        assert "# TYPE cg_iterations_total counter" in text
        assert 'cg_iterations_total{scheme="LI"} 42.0' in text

    def test_gauge_and_histogram_series(self):
        reg = MetricsRegistry()
        reg.gauge("solver.energy_j").set(12.5)
        reg.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        text = prometheus_text(reg)
        assert "# TYPE solver_energy_j gauge" in text
        assert "solver_energy_j 12.5" in text
        assert 'lat_bucket{le="1.0"} 0' in text
        assert 'lat_bucket{le="2.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 1.5" in text
        assert "lat_count 1" in text

    def test_deterministic_and_snapshot_equivalent(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        assert prometheus_text(reg) == prometheus_text(reg.snapshot())

    def test_invalid_name_characters_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("phase.time_s", phase="solve").inc(1)
        text = prometheus_text(reg)
        assert 'phase_time_s_total{phase="solve"} 1.0' in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestHtml:
    def test_report_is_self_contained(self, traced_record):
        attr = attribute_record(traced_record)
        doc = html_report(
            title="smoke",
            attributions=[attr],
            findings=[],
            span_trees={"cell": traced_record.telemetry.spans.spans},
            diff_text="diff: A=x  B=y",
        )
        assert doc.startswith("<!DOCTYPE html>")
        assert "<style>" in doc  # no external assets
        assert "Phase attribution" in doc
        assert "no findings" in doc
        assert "Span trees" in doc
        assert "Run diff" in doc

    def test_dynamic_text_is_escaped(self):
        doc = html_report(
            title="<script>alert(1)</script>",
            findings=[Finding("d", "error", "<cell>", "a < b")],
        )
        assert "<script>" not in doc
        assert "&lt;script&gt;" in doc
        assert "&lt;cell&gt;" in doc

    def test_resilience_bars_are_marked(self, traced_record):
        doc = html_report(attributions=[attribute_record(traced_record)])
        assert "class='bar res'" in doc
