"""Observability fixtures: one real traced faulty solve, shared."""

from __future__ import annotations

import pytest

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.obs.analysis import record_from_report


@pytest.fixture(scope="session")
def traced_li():
    """(config, report) of a traced LI run with two faults."""
    config = ExperimentConfig(
        matrix="wathen100", nranks=8, n_faults=2, scale=0.25, trace=True
    )
    return config, Experiment(config).run("LI")


@pytest.fixture()
def traced_record(traced_li):
    """The traced run wrapped as the analysis-layer RunRecord."""
    config, report = traced_li
    return record_from_report("wathen100/r8/f2/x0.25/LI", report, config)
