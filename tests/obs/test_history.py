"""Metrics history: ring-buffer bounds, windows, persistence, deltas."""

from __future__ import annotations

import pytest

from repro.obs.history import (
    MetricsHistory,
    counter_delta,
    histogram_delta,
    latency_error_fraction,
    percentile_from_buckets,
)
from repro.obs.metrics import MetricsRegistry


def snap(counters=None, histograms=None, gauges=None) -> dict:
    return {
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


class TestRingBuffer:
    def test_eviction_at_capacity_keeps_the_newest(self):
        hist = MetricsHistory(capacity=5)
        for i in range(8):
            hist.append(float(i), snap())
        assert len(hist) == 5
        assert [s.t for s in hist.samples()] == [3.0, 4.0, 5.0, 6.0, 7.0]
        assert hist.latest().t == 7.0

    def test_window_filters_by_trailing_seconds(self):
        hist = MetricsHistory(capacity=100)
        for t in (0.0, 10.0, 20.0, 30.0):
            hist.append(t, snap())
        assert [s.t for s in hist.samples(15.0)] == [20.0, 30.0]
        assert [s.t for s in hist.samples(100.0)] == [0.0, 10.0, 20.0, 30.0]
        # an explicit now (live wall clock ahead of the last sample)
        # shifts the horizon forward
        assert [s.t for s in hist.samples(20.0, now=45.0)] == [30.0]

    def test_sample_snapshots_a_registry(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        hist = MetricsHistory()
        sample = hist.sample(reg, t=42.0)
        assert sample.t == 42.0
        assert sample.metrics["counters"]["hits"] == 3.0

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError):
            MetricsHistory(capacity=0)
        with pytest.raises(ValueError):
            MetricsHistory(interval_s=0)


class TestPersistence:
    def test_doc_round_trip(self, tmp_path):
        hist = MetricsHistory(capacity=7, interval_s=0.5)
        hist.append(1.0, snap(counters={"reqs": 10.0}))
        hist.append(2.0, snap(counters={"reqs": 25.0}))
        path = tmp_path / "history.json"
        hist.save(path)
        back = MetricsHistory.load(path)
        assert back.capacity == 7
        assert back.interval_s == 0.5
        assert back.to_doc() == hist.to_doc()

    def test_doc_schema_and_window(self):
        hist = MetricsHistory()
        hist.append(0.0, snap())
        hist.append(100.0, snap())
        doc = hist.to_doc(window_s=50.0)
        assert doc["schema"] == 1
        assert [s["t"] for s in doc["samples"]] == [100.0]


class TestDeltas:
    def make_history(self):
        hist = MetricsHistory()
        hist.append(
            0.0,
            snap(counters={"reqs{status=200}": 100.0, "reqs{status=500}": 1.0}),
        )
        hist.append(
            10.0,
            snap(counters={"reqs{status=200}": 160.0, "reqs{status=500}": 5.0}),
        )
        return hist

    def test_counter_delta_over_window(self):
        hist = self.make_history()
        delta, dt = counter_delta(hist, lambda s: s.startswith("reqs"))
        assert delta == 64.0
        assert dt == 10.0
        delta, _ = counter_delta(hist, lambda s: "status=5" in s)
        assert delta == 4.0

    def test_counter_delta_needs_two_samples(self):
        hist = MetricsHistory()
        assert counter_delta(hist, lambda s: True) == (0.0, 0.0)
        hist.append(0.0, snap(counters={"reqs": 5.0}))
        assert counter_delta(hist, lambda s: True) == (0.0, 0.0)

    def test_histogram_delta_merges_series(self):
        buckets = [0.1, 1.0]
        hist = MetricsHistory()
        hist.append(
            0.0,
            snap(histograms={
                "lat{e=a}": {"buckets": buckets, "counts": [1, 0, 0], "n": 1, "total": 0.05},
            }),
        )
        hist.append(
            5.0,
            snap(histograms={
                "lat{e=a}": {"buckets": buckets, "counts": [3, 1, 0], "n": 4, "total": 0.9},
                "lat{e=b}": {"buckets": buckets, "counts": [0, 2, 1], "n": 3, "total": 12.0},
            }),
        )
        delta = histogram_delta(hist, lambda s: s.startswith("lat"))
        assert delta["buckets"] == [0.1, 1.0]
        assert delta["counts"] == [2, 3, 1]
        assert delta["n"] == 6

    def test_histogram_delta_skips_mismatched_buckets(self):
        hist = MetricsHistory()
        hist.append(0.0, snap())
        hist.append(
            5.0,
            snap(histograms={
                "lat{e=a}": {"buckets": [0.1], "counts": [2, 0], "n": 2, "total": 0.1},
                "lat{e=b}": {"buckets": [0.5], "counts": [9, 9], "n": 18, "total": 9.0},
            }),
        )
        delta = histogram_delta(hist, lambda s: s.startswith("lat"))
        assert delta["n"] == 2  # the incompatible layout is not mixed in

    def test_histogram_delta_none_without_evidence(self):
        hist = MetricsHistory()
        assert histogram_delta(hist, lambda s: True) is None
        hist.append(0.0, snap())
        hist.append(1.0, snap())
        assert histogram_delta(hist, lambda s: True) is None


class TestBucketMath:
    def test_percentile_resolves_to_bucket_upper_bounds(self):
        buckets = [0.001, 0.01, 0.1]
        counts = [50, 40, 9, 1]  # 100 observations, 1 overflow
        assert percentile_from_buckets(buckets, counts, 0.50) == 0.001
        assert percentile_from_buckets(buckets, counts, 0.90) == 0.01
        assert percentile_from_buckets(buckets, counts, 0.99) == 0.1
        # overflow resolves to the largest finite bound
        assert percentile_from_buckets(buckets, counts, 1.0) == 0.1

    def test_percentile_tiny_n_and_empty(self):
        assert percentile_from_buckets([1.0, 2.0], [0, 0, 0], 0.5) is None
        assert percentile_from_buckets([1.0, 2.0], [1, 0, 0], 0.99) == 1.0
        with pytest.raises(ValueError):
            percentile_from_buckets([1.0], [1, 0], 1.5)

    def test_latency_error_fraction_is_strict_between_bounds(self):
        delta = {"buckets": [0.1, 1.0], "counts": [60, 30, 10], "n": 100,
                 "total": 0.0}
        frac, n = latency_error_fraction(delta, 0.1)
        assert n == 100
        assert frac == pytest.approx(0.40)
        # a threshold between bounds counts the whole straddling bucket
        # as errors (strict side)
        frac, _ = latency_error_fraction(delta, 0.5)
        assert frac == pytest.approx(0.40)
        frac, _ = latency_error_fraction(delta, 1.0)
        assert frac == pytest.approx(0.10)

    def test_latency_error_fraction_empty(self):
        delta = {"buckets": [0.1], "counts": [0, 0], "n": 0, "total": 0.0}
        assert latency_error_fraction(delta, 0.1) == (0.0, 0)
