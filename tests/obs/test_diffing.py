"""Run diffing: identical runs diff empty, changes surface by name."""

from dataclasses import replace

import numpy as np

from repro.harness.experiment import Experiment
from repro.obs.analysis import RunRecord, diff_runs, record_from_report
from repro.obs.analysis.diffing import MAX_STRUCTURAL_CHANGES, MetricDelta


class TestIdentity:
    def test_run_diffed_against_itself_is_identical(self, traced_record):
        diff = diff_runs(traced_record, traced_record)
        assert diff.identical
        assert diff.n_changes == 0

    def test_labels_are_carried(self, traced_record):
        a = RunRecord(label="A", report=traced_record.report)
        b = RunRecord(label="B", report=traced_record.report)
        diff = diff_runs(a, b)
        assert (diff.label_a, diff.label_b) == ("A", "B")


class TestScalarAndPhaseDeltas:
    def test_different_schemes_differ_in_scalars(self, traced_li):
        config, li = traced_li
        rd = Experiment(config).run("RD")
        diff = diff_runs(
            record_from_report("LI", li, config),
            record_from_report("RD", rd, config),
        )
        assert not diff.identical
        changed = {d.name for d in diff.scalars if d.changed}
        assert "energy_j" in changed
        # both runs attribute, so per-phase deltas line up by phase name
        assert any(d.changed for d in diff.phases)

    def test_metric_delta_math(self):
        d = MetricDelta("x", 2.0, 3.0)
        assert d.delta == 1.0
        assert d.rel == 1.0 / 3.0
        assert d.changed
        assert not MetricDelta("x", 2.0, 2.0).changed

    def test_span_deltas_align_by_name(self, traced_li):
        config, li = traced_li
        untraced_cfg = replace(config, n_faults=0)
        ff = Experiment(untraced_cfg).run("F0")
        diff = diff_runs(
            record_from_report("LI", li, config),
            record_from_report("FF", ff, untraced_cfg),
        )
        by_name = {d.name: d for d in diff.spans}
        # the faulty traced run has recovery spans; the untraced one none
        assert any(
            d.count_b == 0 and d.count_a > 0 for d in by_name.values()
        )


class TestStructuralWalk:
    def test_long_numeric_arrays_summarize_to_one_change(self):
        from repro.obs.analysis.diffing import _walk

        a = {"deep": {"xs": list(range(100))}}
        b = {"deep": {"xs": [*range(50), 999, *range(51, 100)]}}
        out = []
        _walk(a, b, "", out)
        assert out == ["deep.xs: numeric array len 100 -> 100, first diverges at [50]"]

    def test_residual_history_is_excluded_from_the_walk(self, traced_record):
        history = np.array(traced_record.report.residual_history, dtype=float)
        mutated = history.copy()
        mutated[3] *= 2.0
        a = RunRecord(label="A", report=traced_record.report)
        b = RunRecord(
            label="B",
            report=replace(traced_record.report, residual_history=mutated),
        )
        diff = diff_runs(a, b)
        assert len(diff.structural) <= MAX_STRUCTURAL_CHANGES
        assert not any("residual_history" in c for c in diff.structural)

    def test_telemetry_is_excluded_from_the_structural_walk(self, traced_record):
        diff = diff_runs(traced_record, traced_record)
        assert not any(c.startswith("telemetry") for c in diff.structural)

    def test_scalar_value_changes_are_pathed(self):
        from repro.obs.analysis.diffing import _walk

        out = []
        _walk({"a": {"b": 1}}, {"a": {"b": 2}, "c": 3}, "", out)
        assert "a.b: 1 -> 2" in out
        assert "c: only in B" in out


class TestTelemetryOnly:
    def test_gauge_deltas_without_reports(self, traced_record):
        a = RunRecord(label="A", telemetry=traced_record.telemetry)
        b = RunRecord(label="B", telemetry=traced_record.telemetry)
        diff = diff_runs(a, b)
        assert diff.identical
        names = {d.name for d in diff.scalars}
        assert "solver.energy_j" in names

    def test_no_evidence_on_either_side_diffs_empty(self):
        diff = diff_runs(RunRecord(label="A"), RunRecord(label="B"))
        assert diff.scalars == ()
        assert diff.identical
