"""Span-tree reconstruction: depth-exact nesting, fallback, summaries."""

from repro.obs.analysis import build_span_tree, critical_path, tree_summary, walk
from repro.obs.spans import Span, SpanRecorder


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _recorded_forest():
    """solve > (recovery > construct, checkpoint) recorded live."""
    clock = FakeClock()
    rec = SpanRecorder(clock=clock, timebase="sim")
    with rec.span("solve", scheme="LI"):
        clock.t = 1.0
        with rec.span("recovery"):
            with rec.span("construct"):
                clock.t = 3.0
        with rec.span("checkpoint"):
            clock.t = 4.0
        clock.t = 10.0
    return rec.spans


class TestDepthReconstruction:
    def test_rebuilds_recorded_nesting(self):
        roots = build_span_tree(_recorded_forest())
        assert [r.name for r in roots] == ["solve"]
        solve = roots[0]
        assert [c.name for c in solve.children] == ["recovery", "checkpoint"]
        assert [c.name for c in solve.children[0].children] == ["construct"]

    def test_zero_duration_siblings_stay_siblings(self):
        # Containment cannot tell these apart; depth stamping can: a
        # zero-cost recovery closes at the very instant a restart opens.
        clock = FakeClock()
        rec = SpanRecorder(clock=clock, timebase="sim")
        with rec.span("solve"):
            clock.t = 2.0
            with rec.span("recovery"):
                pass  # zero duration at t=2
            with rec.span("restart"):
                pass  # zero duration at t=2
            clock.t = 5.0
        roots = build_span_tree(rec.spans)
        assert [c.name for c in roots[0].children] == ["recovery", "restart"]
        assert all(not c.children for c in roots[0].children)

    def test_open_spans_at_teardown_become_roots(self):
        # recorder torn down mid-span: the orphan (depth 1, parent never
        # closed) surfaces as a root instead of vanishing
        spans = [Span(name="orphan", t_start=1.0, t_end=2.0, depth=1)]
        roots = build_span_tree(spans)
        assert [r.name for r in roots] == ["orphan"]

    def test_children_sorted_by_start_time(self):
        roots = build_span_tree(_recorded_forest())
        starts = [c.span.t_start for c in roots[0].children]
        assert starts == sorted(starts)


class TestContainmentFallback:
    def _legacy(self, spans):
        """Strip depths the way a pre-depth-stamping export would."""
        return [
            Span(name=s.name, t_start=s.t_start, t_end=s.t_end, attrs=s.attrs)
            for s in spans
        ]

    def test_distinct_intervals_nest_correctly(self):
        roots = build_span_tree(self._legacy(_recorded_forest()))
        assert [r.name for r in roots] == ["solve"]
        assert [c.name for c in roots[0].children] == ["recovery", "checkpoint"]

    def test_tightest_container_wins(self):
        spans = self._legacy(
            [
                Span(name="inner", t_start=2.0, t_end=3.0, depth=2),
                Span(name="mid", t_start=1.0, t_end=4.0, depth=1),
                Span(name="outer", t_start=0.0, t_end=5.0, depth=0),
            ]
        )
        roots = build_span_tree(spans)
        assert roots[0].name == "outer"
        assert roots[0].children[0].name == "mid"
        assert roots[0].children[0].children[0].name == "inner"


class TestAggregates:
    def test_walk_yields_depths(self):
        pairs = [(n.name, d) for n, d in walk(build_span_tree(_recorded_forest()))]
        assert pairs == [
            ("solve", 0),
            ("recovery", 1),
            ("construct", 2),
            ("checkpoint", 1),
        ]

    def test_tree_summary_carries_depth_and_totals(self):
        rows = tree_summary(_recorded_forest())
        by_name = {r["name"]: r for r in rows}
        assert by_name["solve"]["depth"] == 0
        assert by_name["recovery"]["depth"] == 1
        assert by_name["construct"]["depth"] == 2
        assert by_name["solve"]["total_s"] == 10.0
        assert by_name["recovery"]["count"] == 1
        assert by_name["recovery"]["mean_s"] == 2.0

    def test_tree_summary_groups_repeats(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock, timebase="sim")
        with rec.span("solve"):
            for dt in (1.0, 3.0):
                with rec.span("recovery"):
                    clock.t += dt
        rows = tree_summary(rec.spans)
        rec_row = next(r for r in rows if r["name"] == "recovery")
        assert rec_row["count"] == 2
        assert rec_row["total_s"] == 4.0
        assert rec_row["max_s"] == 3.0

    def test_self_time_excludes_children(self):
        roots = build_span_tree(_recorded_forest())
        solve = roots[0]
        # solve covers 10s; recovery (2s) + checkpoint (1s) leave 7s
        assert solve.self_time_s == 7.0

    def test_critical_path_descends_longest_child(self):
        path = critical_path(build_span_tree(_recorded_forest()))
        assert [n.name for n in path] == ["solve", "recovery", "construct"]

    def test_critical_path_of_empty_forest(self):
        assert critical_path([]) == []
