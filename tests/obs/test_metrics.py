"""Tests for the metrics registry: instruments, snapshots, merging."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCardinalityError,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_keeps_last_value(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets_values(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]  # last slot is the +inf overflow
        assert h.n == 5
        assert h.total == pytest.approx(56.05)
        assert h.mean == pytest.approx(56.05 / 5)

    def test_histogram_boundary_is_inclusive(self):
        h = Histogram(buckets=(1.0,))
        h.observe(1.0)
        assert h.counts == [1, 0]

    def test_histogram_validates_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, float("inf")))


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        reg.counter("x", scheme="LI").inc()
        reg.counter("x", scheme="LI").inc()
        reg.counter("x", scheme="F0").inc()
        snap = reg.snapshot()
        assert snap["counters"] == {"x{scheme=F0}": 1.0, "x{scheme=LI}": 2.0}

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").inc()
        reg.counter("x", b="2", a="1").inc()
        assert reg.snapshot()["counters"] == {"x{a=1,b=2}": 2.0}

    def test_snapshot_is_sorted_and_deterministic(self):
        reg = MetricsRegistry()
        reg.gauge("zeta").set(1)
        reg.gauge("alpha").set(2)
        assert list(reg.snapshot()["gauges"]) == ["alpha", "zeta"]
        assert reg.snapshot() == reg.snapshot()

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c", k="v").inc(3)
        reg.gauge("g").set(0.25)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.snapshot() == reg.snapshot()

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.counter("c").inc(2)
            reg.histogram("h", buckets=(1.0,)).observe(0.5)
            reg.gauge("g").set(7)
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"]["c"] == 4.0
        assert snap["histograms"]["h"]["counts"] == [2, 0]
        assert snap["histograms"]["h"]["n"] == 2
        assert snap["gauges"]["g"] == 7.0  # gauges overwrite, not add

    def test_merge_rejects_bucket_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)


class TestCardinalityGuard:
    def test_cap_is_per_metric_name(self):
        reg = MetricsRegistry(max_label_sets=3)
        for i in range(3):
            reg.counter("ok", k=str(i)).inc()
        with pytest.raises(MetricsCardinalityError, match="cap 3"):
            reg.counter("ok", k="3").inc()
        # a different metric name has its own budget
        reg.counter("other", k="whatever").inc()

    def test_existing_series_stay_reachable_at_the_cap(self):
        reg = MetricsRegistry(max_label_sets=2)
        reg.counter("c", k="a").inc()
        reg.counter("c", k="b").inc()
        reg.counter("c", k="a").inc()  # touch, not create: allowed
        assert reg.snapshot()["counters"]["c{k=a}"] == 2.0

    def test_guard_covers_every_instrument_family(self):
        reg = MetricsRegistry(max_label_sets=1)
        reg.counter("c", k="a").inc()
        reg.gauge("g", k="a").set(1)
        reg.histogram("h", buckets=(1.0,), k="a").observe(0.5)
        with pytest.raises(MetricsCardinalityError):
            reg.counter("c", k="b")
        with pytest.raises(MetricsCardinalityError):
            reg.gauge("g", k="b")
        with pytest.raises(MetricsCardinalityError):
            reg.histogram("h", buckets=(1.0,), k="b")

    def test_families_have_separate_budgets(self):
        # a counter and a gauge may share a name without colliding
        reg = MetricsRegistry(max_label_sets=1)
        reg.counter("x", k="a").inc()
        reg.gauge("x", k="b").set(1)

    def test_zero_cap_disables_the_guard(self):
        reg = MetricsRegistry(max_label_sets=0)
        for i in range(300):
            reg.counter("free", k=str(i)).inc()
        assert len(reg.snapshot()["counters"]) == 300
