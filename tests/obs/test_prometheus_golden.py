"""Prometheus text-exposition conformance, pinned by a golden file.

``/metrics`` is scraped by real collectors, so the exposition format is
a public contract: counter ``_total`` suffixes, label-value escaping,
the implicit ``+Inf`` bucket, ``_count``/``_sum`` consistency and
deterministic ordering all get pinned here — first structurally, then
byte-for-byte against ``golden/prometheus_exposition.txt``.

To regenerate the golden after an intentional format change::

    PYTHONPATH=src python -c "
    from tests.obs.test_prometheus_golden import build_registry, GOLDEN
    from repro.obs.analysis import prometheus_text
    GOLDEN.write_text(prometheus_text(build_registry()))"
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.analysis import prometheus_text
from repro.obs.metrics import MetricsRegistry

GOLDEN = Path(__file__).parent / "golden" / "prometheus_exposition.txt"


def build_registry() -> MetricsRegistry:
    """A fixed registry exercising every exposition feature."""
    reg = MetricsRegistry()
    # counters: bare, labelled, name sanitization, awkward label values
    reg.counter("cg.iterations", scheme="LI").inc(42)
    reg.counter("cg.iterations", scheme="CR-D").inc(7)
    reg.counter("plain").inc(3)
    reg.counter("escapes", path='say "hi"\\now', note="line1\nline2").inc()
    # gauges
    reg.gauge("solver.energy_j").set(12.5)
    reg.gauge("queue_depth", pool="serve").set(0)
    # histograms: mid-bucket, boundary and overflow observations
    h = reg.histogram("latency_s", buckets=(0.001, 0.01, 0.1), stage="solve")
    for v in (0.0005, 0.01, 0.05, 3.0):
        h.observe(v)
    reg.histogram("latency_s", buckets=(0.001, 0.01, 0.1), stage="io")
    return reg


class TestExpositionConformance:
    def test_counters_carry_the_total_suffix(self):
        text = prometheus_text(build_registry())
        for line in text.splitlines():
            if line.startswith("# TYPE") and line.endswith("counter"):
                assert line.split()[2].endswith("_total"), line

    def test_label_values_are_escaped(self):
        text = prometheus_text(build_registry())
        (line,) = [x for x in text.splitlines() if x.startswith("escapes")]
        assert r'note="line1\nline2"' in line
        assert r'path="say \"hi\"\\now"' in line
        assert "\n" not in line

    def test_inf_bucket_equals_count(self):
        text = prometheus_text(build_registry())
        inf = {
            m.group(1): int(m.group(2))
            for m in re.finditer(
                r'^(\w+_bucket\{[^}]*le="\+Inf"[^}]*\}) (\d+)$', text, re.M
            )
        }
        counts = {
            m.group(1): int(m.group(2))
            for m in re.finditer(r"^(\w+_count\S*) (\d+)$", text, re.M)
        }
        assert inf  # the +Inf bucket is emitted at all
        for series, n in inf.items():
            name, raw = series.split("_bucket")
            kept = [
                item
                for item in raw.strip("{}").split(",")
                if not item.startswith("le=")
            ]
            labels = "{" + ",".join(kept) + "}" if kept else ""
            assert counts[f"{name}_count{labels}"] == n

    def test_bucket_counts_are_cumulative_and_sum_matches(self):
        reg = build_registry()
        text = prometheus_text(reg)
        solve = [
            int(m.group(1))
            for m in re.finditer(
                r'latency_s_bucket\{le="[^+][^"]*",stage="solve"\} (\d+)', text
            )
        ]
        assert solve == sorted(solve)  # cumulative, never decreasing
        (total,) = re.findall(r'latency_s_sum\{stage="solve"\} (\S+)', text)
        assert float(total) == 0.0005 + 0.01 + 0.05 + 3.0

    def test_equal_registries_expose_byte_identically(self):
        assert prometheus_text(build_registry()) == prometheus_text(
            build_registry()
        )
        # and insertion order does not leak into the output
        reordered = MetricsRegistry()
        reordered.counter("plain").inc(3)
        reordered.counter("cg.iterations", scheme="CR-D").inc(7)
        reordered.counter("cg.iterations", scheme="LI").inc(42)
        a = [
            line
            for line in prometheus_text(reordered).splitlines()
            if "cg_iterations" in line or line.startswith("plain")
        ]
        b = [
            line
            for line in prometheus_text(build_registry()).splitlines()
            if "cg_iterations" in line or line.startswith("plain")
        ]
        assert a == b


class TestGolden:
    def test_exposition_matches_the_golden_file(self):
        assert prometheus_text(build_registry()) == GOLDEN.read_text(), (
            "exposition format drifted; if intentional, regenerate the "
            "golden (see module docstring) and call out the change in "
            "the PR"
        )
