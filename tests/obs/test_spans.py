"""Tests for the span recorder: clocks, summaries, pickling."""

import pickle

import pytest

from repro.obs.spans import Span, SpanRecorder


class FakeClock:
    """Deterministic monotone clock with manual advance."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSpanRecorder:
    def test_span_records_interval_and_attrs(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock, timebase="sim")
        with rec.span("recovery.lsi", rank=3):
            clock.t = 2.5
        (span,) = rec.spans
        assert span.name == "recovery.lsi"
        assert span.t_start == 0.0
        assert span.t_end == 2.5
        assert span.duration_s == 2.5
        assert dict(span.attrs) == {"rank": 3}

    def test_span_closes_on_exception(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock)
        with pytest.raises(RuntimeError):
            with rec.span("work"):
                clock.t = 1.0
                raise RuntimeError("boom")
        assert len(rec) == 1
        assert rec.spans[0].t_end == 1.0

    def test_wall_clock_default(self):
        rec = SpanRecorder()
        with rec.span("w"):
            pass
        assert rec.spans[0].duration_s >= 0.0

    def test_of_name(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock)
        with rec.span("a"):
            pass
        with rec.span("b"):
            pass
        assert [s.name for s in rec.of_name("a")] == ["a"]

    def test_summary_orders_by_total_time(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock)
        with rec.span("short"):
            clock.t += 1.0
        for _ in range(2):
            with rec.span("long"):
                clock.t += 5.0
        rows = rec.summary()
        assert [r["name"] for r in rows] == ["long", "short"]
        assert rows[0]["count"] == 2
        assert rows[0]["total_s"] == pytest.approx(10.0)
        assert rows[0]["mean_s"] == pytest.approx(5.0)
        assert rows[0]["max_s"] == pytest.approx(5.0)

    def test_rows_round_trip(self):
        clock = FakeClock()
        rec = SpanRecorder(clock=clock, timebase="sim")
        with rec.span("x", scheme="LI"):
            clock.t = 1.0
        clone = SpanRecorder.from_rows(rec.to_rows(), timebase="sim")
        assert clone.spans == rec.spans
        assert clone.timebase == "sim"

    def test_pickle_drops_clock_keeps_spans(self):
        # Reports cross process-pool boundaries; a sim-clock closure
        # must not travel with them.
        clock = FakeClock()
        rec = SpanRecorder(clock=clock, timebase="sim")
        with rec.span("x"):
            clock.t = 1.0
        clone = pickle.loads(pickle.dumps(rec))
        assert clone.clock is None
        assert clone.spans == rec.spans
        assert clone.timebase == "sim"

    def test_span_from_row_sorts_attrs(self):
        row = {"name": "x", "t_start": 0.0, "t_end": 1.0, "attrs": {"b": 2, "a": 1}}
        assert Span.from_row(row).attrs == (("a", 1), ("b", 2))
