"""SLO burn-rate evaluation and the shared slo_burn detector."""

from __future__ import annotations

import pytest

from repro.obs.analysis.detectors import run_detectors
from repro.obs.history import MetricsHistory
from repro.obs.slo import (
    DEFAULT_SLOS,
    LATENCY_HISTOGRAM,
    REQUEST_COUNTER,
    Slo,
    evaluate_slo,
    evaluate_slos,
)

OK = f"{REQUEST_COUNTER}{{endpoint=/v1/solve,status=200}}"
FAIL = f"{REQUEST_COUNTER}{{endpoint=/v1/solve,status=500}}"
LAT = f"{LATENCY_HISTOGRAM}{{endpoint=/v1/solve}}"

AVAILABILITY = DEFAULT_SLOS[0]
LATENCY = DEFAULT_SLOS[1]


def snap(counters=None, histograms=None) -> dict:
    return {
        "counters": counters or {},
        "gauges": {},
        "histograms": histograms or {},
    }


def healthy_history() -> MetricsHistory:
    hist = MetricsHistory()
    hist.append(0.0, snap(counters={OK: 100.0}))
    hist.append(30.0, snap(counters={OK: 160.0}))
    return hist


def error_burst_history() -> MetricsHistory:
    """A synthetic 5xx burst: 50 of 60 requests in 30 s fail."""
    hist = MetricsHistory()
    hist.append(0.0, snap(counters={OK: 100.0}))
    hist.append(30.0, snap(counters={OK: 110.0, FAIL: 50.0}))
    return hist


def slow_latency_history() -> MetricsHistory:
    """Every request in the window lands above the 0.1 s threshold."""
    buckets = [0.005, 0.1, 1.0]
    hist = MetricsHistory()
    hist.append(
        0.0,
        snap(histograms={
            LAT: {"buckets": buckets, "counts": [100, 0, 0, 0], "n": 100,
                  "total": 0.2},
        }),
    )
    hist.append(
        30.0,
        snap(histograms={
            LAT: {"buckets": buckets, "counts": [100, 0, 50, 0], "n": 150,
                  "total": 25.2},
        }),
    )
    return hist


class TestSloDefinition:
    def test_budget_is_one_minus_objective(self):
        assert AVAILABILITY.budget == pytest.approx(0.001)
        assert LATENCY.budget == pytest.approx(0.01)

    def test_describe_mentions_the_policy(self):
        text = AVAILABILITY.describe()
        assert "5xx" in text
        assert "14" in text
        assert "slower than 0.1s" in LATENCY.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            Slo(name="x", kind="throughput", objective=0.9)
        with pytest.raises(ValueError):
            Slo(name="x", kind="availability", objective=1.0)
        with pytest.raises(ValueError):
            Slo(name="x", kind="latency", objective=0.9)  # no threshold
        with pytest.raises(ValueError):
            Slo(
                name="x", kind="availability", objective=0.9,
                fast_window_s=600.0, slow_window_s=60.0,
            )


class TestBurnEvaluation:
    def test_error_burst_trips_the_fast_burn(self):
        status = evaluate_slo(error_burst_history(), AVAILABILITY)
        assert status.fast.requests == 60
        assert status.fast.errors == 50.0
        assert status.fast.error_rate == pytest.approx(50 / 60)
        # 83% errors against a 0.1% budget burns ~833x, far over 14.
        assert status.fast.burn_rate == pytest.approx((50 / 60) / 0.001)
        assert status.fast.firing
        assert status.firing

    def test_healthy_history_is_quiet(self):
        for status in evaluate_slos(healthy_history()):
            assert not status.firing
            assert status.fast.burn_rate == 0.0

    def test_no_traffic_never_fires(self):
        status = evaluate_slo(MetricsHistory(), AVAILABILITY)
        assert status.fast.requests == 0
        assert not status.firing

    def test_latency_slo_fires_on_slow_requests(self):
        status = evaluate_slo(slow_latency_history(), LATENCY)
        assert status.fast.requests == 50
        assert status.fast.error_rate == pytest.approx(1.0)
        assert status.fast.burn_rate == pytest.approx(100.0)
        assert status.firing

    def test_latency_slo_quiet_when_fast(self):
        status = evaluate_slo(healthy_history(), LATENCY)
        assert not status.firing

    def test_client_errors_do_not_burn_availability(self):
        hist = MetricsHistory()
        bad_request = f"{REQUEST_COUNTER}{{endpoint=/v1/solve,status=400}}"
        hist.append(0.0, snap(counters={OK: 10.0}))
        hist.append(30.0, snap(counters={OK: 15.0, bad_request: 20.0}))
        status = evaluate_slo(hist, AVAILABILITY)
        assert status.fast.errors == 0.0
        assert not status.firing

    def test_status_to_dict_shape(self):
        doc = evaluate_slo(error_burst_history(), AVAILABILITY).to_dict()
        assert doc["name"] == "availability"
        assert doc["firing"] is True
        assert doc["fast"]["firing"] is True
        assert set(doc["fast"]) == {
            "window_s", "requests", "errors", "error_rate",
            "burn_rate", "threshold", "firing",
        }


class TestSharedDetector:
    def test_detector_fires_on_the_same_burst(self):
        findings = run_detectors([], history=error_burst_history())
        assert findings, "slo_burn should fire on the synthetic burst"
        assert all(f.detector == "slo_burn" for f in findings)
        assert any(f.cell == "slo/availability" for f in findings)
        assert all(f.severity == "error" for f in findings)
        fast = next(f for f in findings if "fast-burn" in f.message)
        assert fast.value == pytest.approx((50 / 60) / 0.001)
        assert fast.threshold == 14.0

    def test_detector_skipped_without_history(self):
        assert run_detectors([]) == []
        assert run_detectors([], names=["slo_burn"]) == []

    def test_detector_quiet_on_healthy_history(self):
        assert run_detectors([], history=healthy_history()) == []
