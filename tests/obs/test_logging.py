"""Structured logging: schema round-trip, sinks, levels, request ids."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs.logging import (
    LOG_LEVELS,
    LogRecord,
    LogSchemaError,
    MemorySink,
    RotatingFileSink,
    StructuredLogger,
    bound_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    new_request_id,
    record_from_line,
    record_to_line,
    reset_logging,
    valid_request_id,
)

GOLDEN = Path(__file__).parent / "golden" / "log_records.jsonl"

#: Records whose canonical serialization is pinned in the golden file,
#: in file order.  Changing the wire schema must change the golden file
#: consciously, never by accident.
GOLDEN_RECORDS = [
    LogRecord(
        ts=0.0,
        level="info",
        component="serve.http",
        msg="listening",
        fields=(("host", "127.0.0.1"), ("port", 8030)),
    ),
    LogRecord(
        ts=17.25,
        level="info",
        component="serve.app",
        msg="request",
        request_id="9f2c4ab0d1e88c3a",
        fields=(
            ("elapsed_ms", 1.25),
            ("endpoint", "/v1/solve"),
            ("method", "POST"),
            ("path", "/v1/solve"),
            ("status", 200),
        ),
    ),
    LogRecord(
        ts=3.5,
        level="debug",
        component="campaign.runner",
        msg="cell done",
        timebase="sim",
        fields=(
            ("cell", "wathen100/r8/f2/x0.25/LI"),
            ("elapsed_s", 0.5),
            ("status", "ran"),
        ),
    ),
    LogRecord(
        ts=100.0,
        level="error",
        component="serve.core",
        msg="solve failed",
        fields=(
            ("converged", False),
            ("error", "ValueError: boom"),
            ("key", "abc123"),
        ),
    ),
]


@pytest.fixture(autouse=True)
def _clean_root_manager():
    yield
    reset_logging()


class TestWireFormat:
    def test_round_trip_is_exact(self):
        for record in GOLDEN_RECORDS:
            line = record_to_line(record)
            back = record_from_line(line)
            assert back == record
            assert record_to_line(back) == line

    def test_golden_file_parses_and_reserializes_byte_identically(self):
        lines = GOLDEN.read_text().splitlines()
        assert len(lines) == len(GOLDEN_RECORDS)
        for line, record in zip(lines, GOLDEN_RECORDS):
            assert record_to_line(record) == line
            assert record_from_line(line) == record

    def test_request_id_omitted_when_absent(self):
        line = record_to_line(GOLDEN_RECORDS[0])
        assert "request_id" not in line
        assert record_from_line(line).request_id is None

    def test_field_order_does_not_change_the_line(self):
        a = LogRecord(
            ts=1.0, level="info", component="c", msg="m",
            fields=(("a", 1), ("b", 2)),
        )
        b = LogRecord(
            ts=1.0, level="info", component="c", msg="m",
            fields=(("b", 2), ("a", 1)),
        )
        assert record_to_line(a) == record_to_line(b)

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            "[1, 2, 3]",
            '{"level":"info"}',  # missing keys
            '{"component":"c","fields":{},"level":"loud","msg":"m",'
            '"timebase":"wall","ts":1.0}',  # unknown level
            '{"component":"c","fields":{},"level":"info","msg":"m",'
            '"timebase":"wall","ts":true}',  # bool ts
            '{"component":"c","fields":[],"level":"info","msg":"m",'
            '"timebase":"wall","ts":1.0}',  # fields not an object
            '{"component":"c","extra":1,"fields":{},"level":"info",'
            '"msg":"m","timebase":"wall","ts":1.0}',  # unknown key
            '{"component":"c","fields":{},"level":"info","msg":"m",'
            '"request_id":7,"timebase":"wall","ts":1.0}',  # non-str id
        ],
    )
    def test_malformed_lines_raise_schema_errors(self, line):
        with pytest.raises(LogSchemaError):
            record_from_line(line)


class TestRequestIds:
    def test_new_ids_are_16_hex_and_valid(self):
        rid = new_request_id()
        assert len(rid) == 16
        assert valid_request_id(rid) == rid

    @pytest.mark.parametrize("raw", ["abc-123.X_y", "a", "A" * 64])
    def test_safe_inbound_ids_pass(self, raw):
        assert valid_request_id(raw) == raw

    @pytest.mark.parametrize(
        "raw", [None, "", "has space", "a" * 65, 'quote"', "new\nline"]
    )
    def test_hostile_inbound_ids_rejected(self, raw):
        assert valid_request_id(raw) is None

    def test_bound_id_is_stamped_and_restored(self):
        sink = MemorySink()
        configure_logging(level="debug", stderr=False, memory=sink)
        log = get_logger("test")
        assert current_request_id() is None
        with bound_request_id("rid-one"):
            assert current_request_id() == "rid-one"
            log.info("inside")
        log.info("outside")
        records = sink.records()
        assert records[0].request_id == "rid-one"
        assert records[1].request_id is None


class TestLevelsAndSinks:
    def test_suppressed_levels_emit_nothing(self):
        sink = MemorySink()
        configure_logging(level="warning", stderr=False, memory=sink)
        log = get_logger("test")
        assert log.debug("quiet") is None
        assert log.info("quiet") is None
        assert log.warning("loud") is not None
        assert log.error("loud") is not None
        assert [r.level for r in sink.records()] == ["warning", "error"]

    def test_level_order_matches_severity(self):
        assert LOG_LEVELS == ("debug", "info", "warning", "error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            get_logger("test").log("loud", "msg")
        with pytest.raises(ValueError):
            configure_logging(level="loud")

    def test_sim_clock_and_timebase(self):
        sink = MemorySink()
        ticks = iter([1.5, 2.5])
        configure_logging(
            level="debug", stderr=False, memory=sink,
            clock=lambda: next(ticks), timebase="sim",
        )
        log = get_logger("solver")
        log.info("a")
        log.info("b")
        records = sink.records()
        assert [r.ts for r in records] == [1.5, 2.5]
        assert all(r.timebase == "sim" for r in records)

    def test_memory_sink_is_bounded(self):
        sink = MemorySink(capacity=3)
        configure_logging(level="debug", stderr=False, memory=sink)
        log = get_logger("test")
        for i in range(10):
            log.info("m", i=i)
        assert len(sink) == 3
        assert [dict(r.fields)["i"] for r in sink.records()] == [7, 8, 9]

    def test_private_manager_does_not_touch_the_root(self):
        from repro.obs.logging import LogManager

        sink = MemorySink()
        private = LogManager(level="debug", sinks=[sink])
        log = StructuredLogger("private", manager=private)
        log.debug("only here")
        assert len(sink) == 1

    def test_rotating_file_sink_rotates_and_every_line_parses(self, tmp_path):
        path = tmp_path / "app.log"
        sink = RotatingFileSink(path, max_bytes=400, backups=2)
        manager = configure_logging(level="debug", stderr=False)
        manager.sinks = [sink]
        log = get_logger("test")
        for i in range(40):
            log.info("fill", i=i, pad="x" * 40)
        files = sorted(p.name for p in tmp_path.iterdir())
        assert "app.log" in files
        assert "app.log.1" in files
        assert "app.log.2" in files
        assert "app.log.3" not in files  # backups cap honored
        total = 0
        for p in tmp_path.iterdir():
            for line in p.read_text().splitlines():
                record_from_line(line)  # every surviving line conformant
                total += 1
        assert 0 < total < 40  # oldest lines were dropped by rotation
