"""Tests for the telemetry exporters: JSONL round trips and CSV."""

import json

import numpy as np
import pytest

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver
from repro.faults.schedule import EvenlySpacedSchedule
from repro.harness.tracing import FaultInjected, PhaseEntered, RecoveryApplied
from repro.matrices.generators import banded_spd
from repro.obs.export import (
    event_from_row,
    event_to_row,
    load_trace_jsonl,
    residual_power_csv,
    telemetry_from_dict,
    telemetry_to_dict,
    trace_jsonl_lines,
    write_trace_jsonl,
)
from repro.obs.telemetry import Telemetry
from tests.conftest import quick_config


def make_telemetry() -> Telemetry:
    t = 0.0
    tel = Telemetry.for_solver(clock=lambda: t)
    tel.events.record(
        FaultInjected(iteration=3, sim_time_s=0.5, victim_rank=1)
    )
    tel.events.record(
        RecoveryApplied(iteration=3, sim_time_s=0.5, scheme="LI")
    )
    tel.events.record(
        PhaseEntered(iteration=3, sim_time_s=0.5, phase="extra", from_phase="solve")
    )
    with tel.spans.span("recovery.li", rank=1):
        pass
    tel.metrics.counter("solver.faults", fault_class="SNF").inc()
    tel.recovery_latency_histogram("LI").observe(0.0)
    return tel


class TestEventRows:
    def test_round_trip_preserves_type_and_fields(self):
        ev = FaultInjected(
            iteration=7, sim_time_s=1.5, victim_rank=2, scope="node", n_blocks_lost=4
        )
        clone = event_from_row(event_to_row(ev))
        assert clone == ev
        assert type(clone) is FaultInjected

    def test_unknown_kind_degrades_to_base(self):
        row = {"kind": "mystery", "iteration": 1, "sim_time_s": 0.0}
        ev = event_from_row(row)
        assert ev.iteration == 1


class TestTelemetryDict:
    def test_round_trip(self):
        tel = make_telemetry()
        data = telemetry_to_dict(tel)
        clone = telemetry_from_dict(json.loads(json.dumps(data)))
        assert telemetry_to_dict(clone) == data
        assert clone.timebase == "sim"
        assert clone.spans.timebase == "sim"
        assert len(clone.events) == 3
        assert clone.metrics.snapshot() == tel.metrics.snapshot()


class TestJsonl:
    def test_write_load_export_is_byte_identical(self, tmp_path):
        cells = {"m/r8/f2/LI": make_telemetry(), "m/r8/f2/FF": Telemetry()}
        path = tmp_path / "trace.jsonl"
        n = write_trace_jsonl(path, cells)
        assert n == len(path.read_text().splitlines())
        loaded = load_trace_jsonl(path)
        assert list(loaded) == list(cells)
        assert trace_jsonl_lines(loaded) == trace_jsonl_lines(cells)

    def test_every_line_is_json_with_stream(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, {"cell": make_telemetry()})
        for line in path.read_text().splitlines():
            assert json.loads(line)["stream"] in ("cell", "event", "span", "metrics")

    def test_record_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"stream":"event","cell":"x","kind":"fault","iteration":1,"sim_time_s":0.0}\n')
        with pytest.raises(ValueError, match="before its 'cell' header"):
            load_trace_jsonl(path)

    def test_unknown_stream_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"stream":"cell","cell":"x","timebase":"sim"}\n'
            '{"stream":"wat","cell":"x"}\n'
        )
        with pytest.raises(ValueError, match="unknown stream"):
            load_trace_jsonl(path)


class TestResidualPowerCsv:
    @pytest.fixture(scope="class")
    def report(self):
        a = banded_spd(300, 7, dominance=5e-3, seed=1)
        b = a @ np.random.default_rng(1).standard_normal(300)
        return ResilientSolver(
            a,
            b,
            scheme=make_scheme("F0"),
            schedule=EvenlySpacedSchedule(n_faults=2),
            config=quick_config(nranks=8, trace=True),
        ).solve()

    def test_csv_covers_every_iteration(self, report):
        lines = residual_power_csv(report).strip().splitlines()
        assert lines[0] == "iteration,sim_time_s,relative_residual,power_w"
        assert len(lines) - 1 == report.iterations

    def test_csv_values_parse_and_match_history(self, report):
        lines = residual_power_csv(report).strip().splitlines()[1:]
        history = list(report.residual_history)
        times = []
        for line in lines:
            it, t, res, p = line.split(",")
            times.append(float(t))
            assert float(res) == history[int(it) - 1]
            assert float(p) > 0
        assert times == sorted(times)
