"""Phase attribution: waterfalls must reconcile with the account."""

import pytest

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.obs.analysis import (
    RunRecord,
    attribute_record,
    attribute_telemetry,
    phase_counters,
    record_from_report,
    scheme_rollup,
)
from repro.obs.telemetry import Telemetry
from repro.power.energy import PhaseTag


class TestTracedAttribution:
    """The acceptance bar: per-phase sums reproduce the account totals."""

    def test_source_is_the_metric_counters(self, traced_record):
        assert attribute_record(traced_record).source == "metrics"

    def test_energy_reconciles_to_1e9_relative(self, traced_record):
        attr = attribute_record(traced_record)
        assert attr.residual_energy_rel <= 1e-9
        assert attr.residual_time_rel <= 1e-9

    def test_totals_are_the_account_totals(self, traced_record):
        attr = attribute_record(traced_record)
        account = traced_record.report.account
        assert attr.total_time_s == account.total_time_s
        assert attr.total_energy_j == account.total_energy_j

    def test_resilience_phases_present_on_a_faulty_run(self, traced_record):
        attr = attribute_record(traced_record)
        phases = {r.phase for r in attr.rows}
        assert PhaseTag.SOLVE.value in phases
        assert any(r.is_resilience for r in attr.rows)
        assert attr.resilience_energy_j > 0

    def test_rows_follow_phase_tag_order(self, traced_record):
        order = [tag.value for tag in PhaseTag]
        rows = attribute_record(traced_record).rows
        indices = [order.index(r.phase) for r in rows if r.phase in order]
        assert indices == sorted(indices)

    def test_shares_sum_to_one_minus_residual(self, traced_record):
        attr = attribute_record(traced_record)
        assert sum(r.energy_share for r in attr.rows) == pytest.approx(1.0)
        assert sum(r.time_share for r in attr.rows) == pytest.approx(1.0)


class TestFallbackSources:
    def test_untraced_report_attributes_from_the_account(self):
        config = ExperimentConfig(
            matrix="wathen100", nranks=8, n_faults=0, scale=0.25
        )
        report = Experiment(config).run("F0")
        attr = attribute_record(record_from_report("ff", report, config))
        assert attr.source == "account"
        assert attr.residual_energy_rel == 0.0
        assert attr.residual_time_rel == 0.0

    def test_telemetry_only_reconciles_against_the_gauges(self, traced_li):
        _, report = traced_li
        tel = report.details["telemetry"]
        attr = attribute_telemetry("bare", tel)
        assert attr.source == "metrics"
        # the solver.* gauges mirror the account totals, so a healthy
        # JSONL-only trace reconciles just as tightly
        assert attr.residual_energy_rel <= 1e-9
        assert attr.total_energy_j == pytest.approx(report.energy_j)

    def test_no_evidence_raises(self):
        with pytest.raises(ValueError, match="no report and no telemetry"):
            attribute_record(RunRecord(label="empty"))

    def test_empty_telemetry_has_zero_totals_and_zero_residual(self):
        attr = attribute_telemetry("idle", Telemetry(timebase="sim"))
        assert attr.rows == ()
        assert attr.total_energy_j == 0.0
        assert attr.residual_energy_rel == 0.0


class TestPhaseCounters:
    def test_mirrors_the_account_bit_for_bit(self, traced_record):
        pairs = phase_counters(traced_record.telemetry.metrics)
        for tag, charge in traced_record.report.account.charges.items():
            t, e = pairs[tag.value]
            assert t == pytest.approx(charge.time_s, rel=1e-12)
            assert e == pytest.approx(charge.energy_j, rel=1e-12)


class TestSchemeRollup:
    def test_sums_cells_per_scheme(self, traced_record):
        rollup = scheme_rollup([attribute_record(traced_record)] * 2)
        assert set(rollup) == {"LI"}
        agg = rollup["LI"]
        single = attribute_record(traced_record)
        assert agg.source == "rollup"
        assert agg.label == "LI (2 cells)"
        assert agg.total_energy_j == pytest.approx(2 * single.total_energy_j)
        assert agg.residual_energy_rel <= 1e-9

    def test_empty_input_yields_empty_rollup(self):
        assert scheme_rollup([]) == {}
