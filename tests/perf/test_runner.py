"""Perf-harness helpers that need no timing: the speedup readout."""

from benchmarks.perf import runner


def doc(**benchmarks):
    return {
        "suite": "smoke",
        "repeats": 1,
        "calibration": {"matvec_s": 1e-3, "pyloop_s": 1e-3},
        "benchmarks": benchmarks,
    }


def bench(median_s):
    return {"median_s": median_s, "normalized": median_s / 1e-3, "ref": "pyloop"}


class TestModelSpeedup:
    def test_ratio_of_sim_to_model_medians(self):
        d = doc(**{
            "solve_faulty_li.stencil": bench(1.0),
            "model_faulty_li.stencil": bench(0.01),
        })
        assert runner.model_speedup(d) == 100

    def test_none_when_either_side_missing(self):
        assert runner.model_speedup(doc()) is None
        assert runner.model_speedup(
            doc(**{"solve_faulty_li.stencil": bench(1.0)})
        ) is None

    def test_speedup_line_rendered_only_when_both_sides_ran(self):
        d = doc(**{
            "solve_faulty_li.stencil": bench(1.0),
            "model_faulty_li.stencil": bench(0.005),
        })
        assert "analytic model speedup: 200x" in runner.format_results(d)
        assert "speedup" not in runner.format_results(doc())


class TestBackendSpeedup:
    def test_ratio_of_loop_to_batched_medians(self):
        d = doc(**{
            "solve_loop_ff.stencil": bench(0.7),
            "solve_batched_ff.stencil": bench(0.1),
        })
        assert runner.backend_speedup(d) == 0.7 / 0.1

    def test_none_when_either_side_missing(self):
        assert runner.backend_speedup(doc()) is None
        assert runner.backend_speedup(
            doc(**{"solve_loop_ff.stencil": bench(1.0)})
        ) is None
        assert runner.backend_speedup(
            doc(**{"solve_batched_ff.stencil": bench(1.0)})
        ) is None

    def test_speedup_line_rendered_only_when_both_sides_ran(self):
        d = doc(**{
            "solve_loop_ff.stencil": bench(0.65),
            "solve_batched_ff.stencil": bench(0.1),
        })
        assert "backend speedup: 6.5x batched" in runner.format_results(d)

    def test_both_backend_benches_are_in_the_smoke_suite(self):
        smoke = {
            s.name for s in runner.BENCHMARKS if "smoke" in s.suites
        }
        assert "solve_loop_ff.stencil" in smoke
        assert "solve_batched_ff.stencil" in smoke

    def test_esr_multifault_bench_is_in_the_smoke_suite(self):
        smoke = {
            s.name for s in runner.BENCHMARKS if "smoke" in s.suites
        }
        assert "solve_esr_multifault.stencil" in smoke
