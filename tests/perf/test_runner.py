"""Perf-harness helpers that need no timing: the speedup readout."""

from benchmarks.perf import runner


def doc(**benchmarks):
    return {
        "suite": "smoke",
        "repeats": 1,
        "calibration": {"matvec_s": 1e-3, "pyloop_s": 1e-3},
        "benchmarks": benchmarks,
    }


def bench(median_s):
    return {"median_s": median_s, "normalized": median_s / 1e-3, "ref": "pyloop"}


class TestModelSpeedup:
    def test_ratio_of_sim_to_model_medians(self):
        d = doc(**{
            "solve_faulty_li.stencil": bench(1.0),
            "model_faulty_li.stencil": bench(0.01),
        })
        assert runner.model_speedup(d) == 100

    def test_none_when_either_side_missing(self):
        assert runner.model_speedup(doc()) is None
        assert runner.model_speedup(
            doc(**{"solve_faulty_li.stencil": bench(1.0)})
        ) is None

    def test_speedup_line_rendered_only_when_both_sides_ran(self):
        d = doc(**{
            "solve_faulty_li.stencil": bench(1.0),
            "model_faulty_li.stencil": bench(0.005),
        })
        assert "analytic model speedup: 200x" in runner.format_results(d)
        assert "speedup" not in runner.format_results(doc())
