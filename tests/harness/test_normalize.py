"""Tests for normalization helpers."""

import numpy as np
import pytest

from repro.core.report import SolveReport
from repro.harness.normalize import (
    normalize_report,
    normalize_reports,
    suite_average,
)
from repro.power.energy import EnergyAccount, PhaseTag
from repro.power.rapl import RaplMeter


def report(scheme, iterations, time_s, energy_j):
    acc = EnergyAccount()
    acc.charge(PhaseTag.SOLVE, time_s=time_s, power_w=energy_j / time_s)
    return SolveReport(
        scheme=scheme,
        converged=True,
        iterations=iterations,
        final_relative_residual=1e-9,
        residual_history=np.array([1e-9]),
        time_s=time_s,
        account=acc,
        rapl=RaplMeter(),
    )


@pytest.fixture()
def reports():
    return {
        "FF": report("FF", 100, 10.0, 1000.0),
        "F0": report("F0", 220, 22.0, 2200.0),
        "RD": report("RD", 100, 10.0, 2000.0),
    }


class TestNormalizeReport:
    def test_ratios(self, reports):
        m = normalize_report(reports["F0"], reports["FF"])
        assert m.iterations == pytest.approx(2.2)
        assert m.time == pytest.approx(2.2)
        assert m.energy == pytest.approx(2.2)
        assert m.power == pytest.approx(1.0)

    def test_rd_power(self, reports):
        m = normalize_report(reports["RD"], reports["FF"])
        assert m.power == pytest.approx(2.0)
        assert m.time == pytest.approx(1.0)

    def test_as_dict(self, reports):
        d = normalize_report(reports["FF"], reports["FF"]).as_dict()
        assert set(d) == {"iterations", "time", "energy", "power"}


class TestNormalizeReports:
    def test_baseline_included_as_ones(self, reports):
        out = normalize_reports(reports)
        assert out["FF"].iterations == pytest.approx(1.0)
        assert out["FF"].energy == pytest.approx(1.0)

    def test_missing_baseline(self, reports):
        del reports["FF"]
        with pytest.raises(KeyError):
            normalize_reports(reports)


class TestSuiteAverage:
    def test_average_over_matrices(self, reports):
        per_matrix = {
            "a": normalize_reports(reports),
            "b": normalize_reports(
                {
                    "FF": report("FF", 100, 10.0, 1000.0),
                    "F0": report("F0", 180, 18.0, 1800.0),
                    "RD": report("RD", 100, 10.0, 2000.0),
                }
            ),
        }
        avg = suite_average(per_matrix, "F0")
        assert avg["iterations"] == pytest.approx((2.2 + 1.8) / 2)

    def test_missing_scheme(self, reports):
        with pytest.raises(KeyError):
            suite_average({"a": normalize_reports(reports)}, "LSI")
