"""Tests for the experiment driver."""

import pytest

from repro.harness.experiment import (
    COST_STUDY_SCHEMES,
    ITERATION_STUDY_SCHEMES,
    PAPER_CR_INTERVAL,
    Experiment,
    ExperimentConfig,
    run_suite,
)
from repro.matrices.generators import banded_spd


@pytest.fixture(scope="module")
def small_exp():
    """Experiment on a custom small matrix (fast)."""
    a = banded_spd(200, 7, dominance=5e-3, seed=0)
    return Experiment(
        ExperimentConfig(matrix="custom", nranks=4, n_faults=3), a=a
    )


class TestExperiment:
    def test_fault_free_is_cached(self, small_exp):
        assert small_exp.fault_free is small_exp.fault_free

    def test_ff_alias(self, small_exp):
        assert small_exp.run("FF") is small_exp.fault_free

    def test_run_scheme_converges(self, small_exp):
        report = small_exp.run("LI")
        assert report.converged
        assert report.n_faults == 3
        assert report.baseline_iters == small_exp.fault_free.iterations

    def test_run_all(self, small_exp):
        reports = small_exp.run_all(["RD", "F0"])
        assert set(reports) == {"RD", "F0"}

    def test_implied_mtbf(self, small_exp):
        assert small_exp.implied_mtbf_s() == pytest.approx(
            small_exp.fault_free.time_s / 3
        )

    def test_implied_mtbf_without_faults(self):
        a = banded_spd(100, 5, dominance=0.05, seed=0)
        exp = Experiment(ExperimentConfig(matrix="c", nranks=2, n_faults=0), a=a)
        with pytest.raises(ValueError):
            exp.implied_mtbf_s()

    def test_paper_cr_interval(self, small_exp):
        report = small_exp.run("CR-M")
        assert report.details["scheme_details"]["interval_iters"] == PAPER_CR_INTERVAL

    def test_young_cr_interval(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(matrix="c", nranks=4, n_faults=3, cr_interval="young"),
            a=a,
        )
        report = exp.run("CR-M")
        interval = report.details["scheme_details"]["interval_iters"]
        assert interval != PAPER_CR_INTERVAL
        assert interval >= 1

    def test_explicit_cr_interval(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(matrix="c", nranks=4, n_faults=2, cr_interval=17), a=a
        )
        report = exp.run("CR-D")
        assert report.details["scheme_details"]["interval_iters"] == 17

    def test_builds_suite_matrix_by_name(self):
        exp = Experiment(
            ExperimentConfig(matrix="Kuu", nranks=4, n_faults=0, scale=0.3)
        )
        assert exp.a.shape[0] == max(16, round(660 * 0.3))

    def test_deterministic(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        cfg = ExperimentConfig(matrix="c", nranks=4, n_faults=2)
        r1 = Experiment(cfg, a=a).run("F0")
        r2 = Experiment(cfg, a=a).run("F0")
        assert r1.iterations == r2.iterations
        assert r1.energy_j == r2.energy_j


class TestConfigValidation:
    def test_bad_cr_interval_string(self):
        with pytest.raises(ValueError):
            ExperimentConfig(cr_interval="daily")

    def test_bad_cr_interval_int(self):
        with pytest.raises(ValueError):
            ExperimentConfig(cr_interval=0)

    def test_bad_fault_count(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_faults=-1)


class TestSchemeSets:
    def test_iteration_study_matches_figure5(self):
        assert ITERATION_STUDY_SCHEMES == ["RD", "F0", "FI", "LI", "LSI", "CR-D"]

    def test_cost_study_matches_table5(self):
        assert COST_STUDY_SCHEMES == ["RD", "LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"]


class TestRunSuite:
    def test_small_sweep(self):
        out = run_suite(
            matrices=["Kuu"],
            scheme_names=["RD", "F0"],
            base=ExperimentConfig(nranks=4, n_faults=2, scale=0.3),
        )
        assert set(out) == {"Kuu"}
        assert set(out["Kuu"]) == {"FF", "RD", "F0"}
        assert out["Kuu"]["FF"].converged
