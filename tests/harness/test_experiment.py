"""Tests for the experiment driver."""

import pytest

from repro.harness.experiment import (
    COST_STUDY_SCHEMES,
    ITERATION_STUDY_SCHEMES,
    PAPER_CR_INTERVAL,
    Experiment,
    ExperimentConfig,
    run_suite,
)
from repro.matrices.generators import banded_spd


@pytest.fixture(scope="module")
def small_exp():
    """Experiment on a custom small matrix (fast)."""
    a = banded_spd(200, 7, dominance=5e-3, seed=0)
    return Experiment(
        ExperimentConfig(matrix="custom", nranks=4, n_faults=3), a=a
    )


class TestExperiment:
    def test_fault_free_is_cached(self, small_exp):
        assert small_exp.fault_free is small_exp.fault_free

    def test_ff_alias(self, small_exp):
        assert small_exp.run("FF") is small_exp.fault_free

    def test_run_scheme_converges(self, small_exp):
        report = small_exp.run("LI")
        assert report.converged
        assert report.n_faults == 3
        assert report.baseline_iters == small_exp.fault_free.iterations

    def test_run_all(self, small_exp):
        reports = small_exp.run_all(["RD", "F0"])
        assert set(reports) == {"RD", "F0"}

    def test_implied_mtbf(self, small_exp):
        assert small_exp.implied_mtbf_s() == pytest.approx(
            small_exp.fault_free.time_s / 3
        )

    def test_implied_mtbf_without_faults(self):
        a = banded_spd(100, 5, dominance=0.05, seed=0)
        exp = Experiment(ExperimentConfig(matrix="c", nranks=2, n_faults=0), a=a)
        with pytest.raises(ValueError):
            exp.implied_mtbf_s()

    def test_paper_cr_interval(self, small_exp):
        report = small_exp.run("CR-M")
        assert report.details["scheme_details"]["interval_iters"] == PAPER_CR_INTERVAL

    def test_young_cr_interval(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(matrix="c", nranks=4, n_faults=3, cr_interval="young"),
            a=a,
        )
        report = exp.run("CR-M")
        interval = report.details["scheme_details"]["interval_iters"]
        assert interval != PAPER_CR_INTERVAL
        assert interval >= 1

    def test_explicit_cr_interval(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(matrix="c", nranks=4, n_faults=2, cr_interval=17), a=a
        )
        report = exp.run("CR-D")
        assert report.details["scheme_details"]["interval_iters"] == 17

    def test_builds_suite_matrix_by_name(self):
        exp = Experiment(
            ExperimentConfig(matrix="Kuu", nranks=4, n_faults=0, scale=0.3)
        )
        assert exp.a.shape[0] == max(16, round(660 * 0.3))

    def test_deterministic(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        cfg = ExperimentConfig(matrix="c", nranks=4, n_faults=2)
        r1 = Experiment(cfg, a=a).run("F0")
        r2 = Experiment(cfg, a=a).run("F0")
        assert r1.iterations == r2.iterations
        assert r1.energy_j == r2.energy_j


class TestBaselineCache:
    """The FF baseline is keyed by every execution knob: flipping
    engine, fast, or preconditioner must never reuse a stale one."""

    @pytest.fixture()
    def exp(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        return Experiment(
            ExperimentConfig(matrix="custom", nranks=4, n_faults=2), a=a
        )

    def test_flipping_fast_recomputes_the_baseline(self, exp):
        ff_fast = exp.fault_free
        exp.fast = False
        assert not exp.has_baseline
        ff_legacy = exp.fault_free
        assert ff_legacy is not ff_fast
        # fast/legacy are bit-identical, so the reports must agree...
        assert ff_legacy.iterations == ff_fast.iterations
        assert ff_legacy.energy_j == ff_fast.energy_j
        # ...and each knob set keeps its own slot.
        exp.fast = True
        assert exp.fault_free is ff_fast

    def test_flipping_preconditioner_recomputes_the_baseline(self, exp):
        ff_plain = exp.fault_free
        exp.preconditioner = "jacobi"
        assert not exp.has_baseline
        ff_pcg = exp.fault_free
        assert ff_pcg is not ff_plain
        assert ff_pcg.iterations != ff_plain.iterations

    def test_engines_never_share_baselines(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        cfg = ExperimentConfig(matrix="custom", nranks=4, n_faults=2)
        sim = Experiment(cfg, a=a)
        ff_sim = sim.fault_free
        ana = Experiment(
            ExperimentConfig(
                matrix="custom", nranks=4, n_faults=2, engine="analytic"
            ),
            a=a,
        )
        assert ana.fault_free is not ff_sim
        assert ana.fault_free.details["engine"] == "analytic"

    def test_prime_rejects_mismatched_engine_provenance(self, exp):
        ff = exp.fault_free
        ana = Experiment(
            ExperimentConfig(
                matrix="custom", nranks=4, n_faults=2, engine="analytic"
            ),
            a=exp.a,
        )
        with pytest.raises(ValueError, match="produced by the 'sim' engine"):
            ana.prime_baseline(ff)

    def test_prime_treats_unstamped_reports_as_sim(self, exp):
        """v2-era FF payloads predate engine provenance."""
        ff = exp.fault_free
        ff.details.pop("engine")
        fresh = Experiment(exp.config, a=exp.a)
        fresh.prime_baseline(ff)
        assert fresh.fault_free is ff

    def test_prime_rejects_non_ff_reports(self, exp):
        with pytest.raises(ValueError, match="FF report"):
            exp.prime_baseline(exp.run("RD"))

    def test_engine_instance_must_match_config(self, exp):
        from repro.engines import AnalyticEngine

        with pytest.raises(ValueError, match="does not match"):
            Experiment(exp.config, a=exp.a, engine=AnalyticEngine())


class TestFaultScope:
    def test_default_scope_loses_one_rank(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(matrix="custom", nranks=8, n_faults=1), a=a
        )
        assert exp.fault_scope_victims() == 1

    def test_system_scope_loses_every_rank(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(
                matrix="custom", nranks=8, n_faults=1, fault_scope="system"
            ),
            a=a,
        )
        assert exp.fault_scope_victims() == 8

    def test_node_scope_is_capped_by_the_topology(self):
        """30 ranks on 24-core nodes: a node fault takes out at most a
        full node's worth of ranks."""
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(
                matrix="custom", nranks=30, n_faults=1, fault_scope="node"
            ),
            a=a,
        )
        assert exp.fault_scope_victims() == 24

    def test_schedule_events_carry_the_scope(self):
        from repro.faults.events import FaultScope

        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(
                matrix="custom", nranks=8, n_faults=2, fault_scope="node"
            ),
            a=a,
        )
        events = exp.schedule().events(nranks=8, horizon_iters=100)
        assert all(e.scope is FaultScope.NODE for e in events)

    def test_wider_scope_costs_more(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        base = dict(matrix="custom", nranks=8, n_faults=2)
        process = Experiment(ExperimentConfig(**base), a=a).run("LI")
        system = Experiment(
            ExperimentConfig(**base, fault_scope="system"), a=a
        ).run("LI")
        assert system.time_s > process.time_s


class TestConfigValidation:
    def test_bad_cr_interval_string(self):
        with pytest.raises(ValueError):
            ExperimentConfig(cr_interval="daily")

    def test_bad_cr_interval_int(self):
        with pytest.raises(ValueError):
            ExperimentConfig(cr_interval=0)

    def test_bad_fault_count(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_faults=-1)

    def test_bad_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ExperimentConfig(engine="abacus")

    def test_bad_fault_scope(self):
        with pytest.raises(ValueError, match="fault_scope"):
            ExperimentConfig(fault_scope="rack")

    def test_bad_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExperimentConfig(backend="gpu")

    def test_bad_victims_per_fault(self):
        with pytest.raises(ValueError):
            ExperimentConfig(victims_per_fault=0)
        with pytest.raises(ValueError, match="exceeds nranks"):
            ExperimentConfig(nranks=8, victims_per_fault=9)

    def test_victims_per_fault_reaches_the_schedule(self):
        a = banded_spd(200, 7, dominance=5e-3, seed=0)
        exp = Experiment(
            ExperimentConfig(
                matrix="custom", nranks=8, n_faults=2, victims_per_fault=3
            ),
            a=a,
        )
        events = exp.schedule().events(nranks=8, horizon_iters=100)
        assert events
        assert all(len(e.victims) == 3 for e in events)
        assert exp.fault_scope_victims() == 3

    def test_fewer_rows_than_ranks_rejected_with_context(self):
        # the tiny-n edge surfaces at Experiment construction with the
        # matrix/scale/nranks named, not deep inside the first solve
        a = banded_spd(12, 3, dominance=0.01, seed=0)
        with pytest.raises(ValueError, match="only 12 rows"):
            Experiment(
                ExperimentConfig(matrix="custom", nranks=16, n_faults=1), a=a
            )
        with pytest.raises(ValueError, match="lower nranks or raise scale"):
            Experiment(
                ExperimentConfig(matrix="custom", nranks=16, n_faults=1), a=a
            )

    def test_scaled_suite_matrix_below_rank_count_rejected(self):
        # a suite matrix shrunk below the rank count trips the same
        # guard, naming the scale that caused it
        cfg = ExperimentConfig(
            matrix="wathen100", nranks=64, n_faults=1, scale=0.001
        )
        with pytest.raises(ValueError, match="wathen100.*scale 0.001"):
            Experiment(cfg)


class TestSchemeSets:
    def test_iteration_study_matches_figure5(self):
        assert ITERATION_STUDY_SCHEMES == ["RD", "F0", "FI", "LI", "LSI", "CR-D"]

    def test_cost_study_matches_table5(self):
        assert COST_STUDY_SCHEMES == ["RD", "LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"]


class TestRunSuite:
    def test_small_sweep(self):
        out = run_suite(
            matrices=["Kuu"],
            scheme_names=["RD", "F0"],
            base=ExperimentConfig(nranks=4, n_faults=2, scale=0.3),
        )
        assert set(out) == {"Kuu"}
        assert set(out["Kuu"]) == {"FF", "RD", "F0"}
        assert out["Kuu"]["FF"].converged
