"""Tests for the plain-text table/series renderers."""

import pytest

from repro.harness.normalize import NormalizedMetrics
from repro.harness.reporting import format_series, format_table, normalized_rows


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(
            ["scheme", "T", "E"],
            [["FF", 1.0, 1.0], ["RD", 1.0, 2.0]],
            title="Table X",
        )
        lines = out.splitlines()
        assert lines[0] == "Table X"
        assert "scheme" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "RD" in lines[4]
        assert "2.00" in lines[4]

    def test_column_count_enforced(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_precision(self):
        out = format_table(["v"], [[3.14159]], precision=4)
        assert "3.1416" in out

    def test_mixed_types(self):
        out = format_table(["n", "x"], [[256, 0.5]])
        assert "256" in out


class TestFormatSeries:
    def test_render(self):
        out = format_series(
            "N", [10, 20], {"FW": [0.1, 0.2], "CR": [0.3, 0.4]}, title="Fig"
        )
        assert "FW" in out and "CR" in out
        assert "0.400" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("N", [1, 2], {"s": [1.0]})


class TestNormalizedRows:
    def make(self, scheme, t, p, e):
        return NormalizedMetrics(
            scheme=scheme, iterations=1.0, time=t, energy=e, power=p, converged=True
        )

    def test_fixed_order_skips_missing(self):
        normalized = {"FF": self.make("FF", 1, 1, 1), "RD": self.make("RD", 1, 2, 2)}
        rows = normalized_rows(normalized, ["FF", "LI", "RD"])
        assert [r[0] for r in rows] == ["FF", "RD"]

    def test_metric_selection(self):
        normalized = {"FF": self.make("FF", 1.0, 1.5, 2.0)}
        rows = normalized_rows(normalized, ["FF"], metrics=("energy",))
        assert rows == [["FF", 2.0]]
