"""Tests for the structured event-tracing subsystem."""

import numpy as np
import pytest

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver
from repro.faults.schedule import EvenlySpacedSchedule
from repro.harness.tracing import (
    CheckpointWritten,
    EventLog,
    FaultInjected,
    RecoveryApplied,
    SolverRestarted,
)
from repro.matrices.generators import banded_spd
from tests.conftest import quick_config


class TestEventLog:
    def test_record_and_filter(self):
        log = EventLog()
        log.record(FaultInjected(iteration=5, sim_time_s=1.0, victim_rank=2))
        log.record(RecoveryApplied(iteration=5, sim_time_s=1.5, scheme="LI"))
        log.record(SolverRestarted(iteration=5, sim_time_s=1.6))
        assert len(log) == 3
        assert len(log.faults) == 1
        assert len(log.recoveries) == 1
        assert len(log.restarts) == 1
        assert log.checkpoints == []

    def test_rejects_time_travel(self):
        log = EventLog()
        log.record(FaultInjected(iteration=5, sim_time_s=2.0))
        with pytest.raises(ValueError):
            log.record(RecoveryApplied(iteration=5, sim_time_s=1.0))

    def test_to_rows(self):
        log = EventLog()
        log.record(CheckpointWritten(iteration=10, sim_time_s=0.5, duration_s=0.01))
        rows = log.to_rows()
        assert rows[0]["kind"] == "checkpoint"
        assert rows[0]["iteration"] == 10
        assert rows[0]["duration_s"] == 0.01

    def test_recovery_latency(self):
        log = EventLog()
        log.record(FaultInjected(iteration=5, sim_time_s=1.0))
        log.record(RecoveryApplied(iteration=5, sim_time_s=1.4))
        log.record(FaultInjected(iteration=9, sim_time_s=3.0))
        log.record(RecoveryApplied(iteration=9, sim_time_s=3.1))
        lat = log.recovery_latency_s()
        assert lat == [pytest.approx(0.4), pytest.approx(0.1)]

    def test_latency_fault_without_recovery(self):
        # An unrecovered fault (e.g. the run halted) contributes nothing.
        log = EventLog()
        log.record(FaultInjected(iteration=5, sim_time_s=1.0))
        assert log.recovery_latency_s() == []

    def test_latency_two_faults_before_one_recovery(self):
        # A wide-scope outage: both faults land before the single
        # recovery.  The recovery is attributed to the *first* pending
        # fault; the second fault goes unmatched.
        log = EventLog()
        log.record(FaultInjected(iteration=5, sim_time_s=1.0))
        log.record(FaultInjected(iteration=5, sim_time_s=2.0))
        log.record(RecoveryApplied(iteration=5, sim_time_s=3.0))
        assert log.recovery_latency_s() == [pytest.approx(2.0)]

    def test_latency_recovery_before_first_fault_is_skipped(self):
        # A recovery that precedes every fault (stale stream slice)
        # cannot be a response to one and must not produce a negative
        # latency.
        log = EventLog()
        log.record(RecoveryApplied(iteration=3, sim_time_s=0.5))
        log.record(FaultInjected(iteration=5, sim_time_s=1.0))
        log.record(RecoveryApplied(iteration=5, sim_time_s=1.2))
        assert log.recovery_latency_s() == [pytest.approx(0.2)]

    def test_equal_timestamps_tolerated(self):
        # A fault and its zero-cost recovery share one simulated instant.
        log = EventLog()
        log.record(FaultInjected(iteration=5, sim_time_s=1.0))
        log.record(RecoveryApplied(iteration=5, sim_time_s=1.0))
        log.record(SolverRestarted(iteration=5, sim_time_s=1.0 - 1e-13))
        assert len(log) == 3
        assert log.recovery_latency_s() == [pytest.approx(0.0)]

    def test_beyond_slack_still_rejected(self):
        log = EventLog()
        log.record(FaultInjected(iteration=5, sim_time_s=1.0))
        with pytest.raises(ValueError):
            log.record(RecoveryApplied(iteration=5, sim_time_s=1.0 - 1e-9))

    def test_of_kind_index_survives_construction(self):
        # EventLog(events=[...]) must index preloaded events too.
        events = [
            FaultInjected(iteration=1, sim_time_s=1.0),
            RecoveryApplied(iteration=1, sim_time_s=1.1),
        ]
        log = EventLog(events=list(events))
        assert log.of_kind("fault") == [events[0]]
        log.record(FaultInjected(iteration=2, sim_time_s=2.0))
        assert len(log.of_kind("fault")) == 2

    def test_of_kind_returns_fresh_list(self):
        log = EventLog()
        log.record(FaultInjected(iteration=1, sim_time_s=1.0))
        log.of_kind("fault").clear()
        assert len(log.faults) == 1


@pytest.fixture(scope="module")
def traced_run():
    a = banded_spd(300, 7, dominance=5e-3, seed=1)
    b = a @ np.random.default_rng(1).standard_normal(300)
    return ResilientSolver(
        a,
        b,
        scheme=make_scheme("CR-M", interval_iters=10),
        schedule=EvenlySpacedSchedule(n_faults=3),
        config=quick_config(nranks=8, trace=True),
    ).solve()


class TestSolverIntegration:
    def test_trace_present_when_enabled(self, traced_run):
        assert "trace" in traced_run.details

    def test_trace_absent_by_default(self):
        a = banded_spd(100, 5, dominance=0.05, seed=0)
        rep = ResilientSolver(
            a, a @ np.ones(100), config=quick_config(nranks=4)
        ).solve()
        assert "trace" not in rep.details

    def test_fault_events_match_report(self, traced_run):
        trace = traced_run.details["trace"]
        assert len(trace.faults) == traced_run.n_faults == 3
        assert [f.iteration for f in trace.faults] == [
            e.iteration for e in traced_run.faults
        ]

    def test_every_fault_has_a_recovery_and_restart(self, traced_run):
        trace = traced_run.details["trace"]
        assert len(trace.recoveries) == 3
        assert len(trace.restarts) == 3
        assert all(r.scheme == "CR-M" for r in trace.recoveries)

    def test_checkpoints_recorded_with_durations(self, traced_run):
        trace = traced_run.details["trace"]
        assert len(trace.checkpoints) > 0
        assert all(c.duration_s > 0 for c in trace.checkpoints)

    def test_event_times_monotone(self, traced_run):
        times = [e.sim_time_s for e in traced_run.details["trace"].events]
        assert times == sorted(times)

    def test_latencies_small_and_positive(self, traced_run):
        lat = traced_run.details["trace"].recovery_latency_s()
        assert len(lat) == 3
        assert all(v >= 0 for v in lat)

    def test_node_scope_counts_blocks(self):
        from repro.cluster.machine import MachineSpec, NodeSpec
        from repro.core.solver import SolverConfig
        from repro.faults.events import FaultScope
        from repro.faults.schedule import FixedIterationSchedule

        a = banded_spd(300, 7, dominance=5e-3, seed=1)
        b = a @ np.random.default_rng(1).standard_normal(300)
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("F0"),
            schedule=FixedIterationSchedule(
                iterations=[5], victims=[0], scope=FaultScope.NODE
            ),
            config=SolverConfig(
                nranks=8,
                machine=MachineSpec(
                    nodes=2, node=NodeSpec(sockets=1, cores_per_socket=4)
                ),
                trace=True,
            ),
        ).solve()
        trace = rep.details["trace"]
        assert trace.faults[0].n_blocks_lost == 4
        assert len(trace.recoveries) == 4  # block-local scheme: one per block
