"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_cr_interval, main


class TestCli:
    def test_mtbf(self, capsys):
        assert main(["mtbf"]) == 0
        out = capsys.readouterr().out
        assert "petascale" in out
        assert "SNF" in out

    def test_project(self, capsys):
        assert main(["project", "--sizes", "192", "12288", "400000"]) == 0
        out = capsys.readouterr().out
        assert "CR-D" in out
        assert "HALT" in out  # 400k procs is past the halt point

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "--matrix",
                "wathen100",
                "--scheme",
                "F0",
                "--faults",
                "2",
                "--ranks",
                "8",
                "--scale",
                "0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free:" in out
        assert "normalized:" in out

    def test_run_backend_loop_prints_the_same_numbers(self, capsys):
        args = [
            "run", "--matrix", "wathen100", "--scheme", "F0",
            "--faults", "2", "--ranks", "8", "--scale", "0.25",
        ]
        assert main(args + ["--backend", "loop"]) == 0
        loop_out = capsys.readouterr().out
        assert main(args + ["--backend", "batched"]) == 0
        batched_out = capsys.readouterr().out
        # the backends are bit-identical, so every printed figure agrees
        assert loop_out == batched_out

    def test_campaign_backend_axis_doubles_the_grid(self, capsys, tmp_path):
        assert main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "RD",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--store", str(tmp_path / "cache"), "--quiet",
                "--backend", "loop", "batched",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2 backends [loop, batched]" in out
        assert "4 cells" in out  # (FF + RD) x 2 backends

    def test_run_preconditioned(self, capsys):
        code = main(
            [
                "run",
                "--matrix",
                "msc01050",
                "--scheme",
                "LI",
                "--faults",
                "2",
                "--ranks",
                "8",
                "--scale",
                "0.5",
                "--precond",
                "jacobi",
            ]
        )
        assert code == 0

    def test_suite_small(self, capsys):
        code = main(
            [
                "suite",
                "--matrices",
                "wathen100",
                "--schemes",
                "RD",
                "F0",
                "--faults",
                "2",
                "--ranks",
                "8",
                "--scale",
                "0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wathen100" in out

    def test_run_with_seed(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "RD",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--seed", "3",
            ]
        )
        assert code == 0

    def test_suite_seed_and_cr_interval(self, capsys):
        code = main(
            [
                "suite", "--matrices", "wathen100", "--schemes", "CR-D",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--seed", "1", "--cr-interval", "50",
            ]
        )
        assert code == 0
        assert "wathen100" in capsys.readouterr().out

    def test_campaign_runs_then_resumes_from_cache(self, capsys, tmp_path):
        args = [
            "campaign", "--matrices", "wathen100", "--schemes", "RD",
            "--ranks", "8", "--faults", "2", "--scale", "0.25",
            "--store", str(tmp_path / "cache"), "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "per-cell results" in out
        assert "ran" in out
        assert "normalized iterations" in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("cached") >= 2  # FF + RD both served from the store

    def test_campaign_list_presets(self, capsys):
        assert main(["campaign", "--list-presets"]) == 0
        out = capsys.readouterr().out
        assert "iteration-study" in out
        assert "cost-study" in out

    def test_run_trace_prints_latency_summary(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "F0",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry (sim time):" in out
        assert "fault→recovery latency:" in out
        assert "span summary" in out

    def test_campaign_trace_then_trace_subcommand(self, capsys, tmp_path):
        store = str(tmp_path / "cache")
        export = tmp_path / "trace.jsonl"
        assert main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "F0",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--store", store, "--quiet", "--trace",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign telemetry rollup:" in out
        assert "recovery.latency_s{scheme=F0}" in out

        assert main(
            [
                "trace", "--store", store, "--events", "--spans",
                "--export", str(export),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "event stream" in out
        assert "fault" in out
        assert "span summary" in out
        assert "fault→recovery latency by scheme" in out
        assert export.exists()

        from repro.obs.export import load_trace_jsonl

        cells = load_trace_jsonl(export)
        assert "wathen100/r8/f2/x0.25/F0" in cells

    def test_trace_filters_by_scheme_and_kind(self, capsys, tmp_path):
        store = str(tmp_path / "cache")
        main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "F0",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--store", store, "--quiet", "--trace",
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "trace", "--store", store, "--scheme", "F0",
                "--events", "--kind", "fault",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "F0" in out
        assert "/FF" not in out  # baseline filtered out
        # only fault events in the stream: no recovery/phase rows
        assert "needs_restart" not in out
        assert "from_phase" not in out
        assert "victim_rank=" in out

    def test_trace_on_untraced_store_reports_nothing(self, capsys, tmp_path):
        store = str(tmp_path / "cache")
        main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "RD",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--store", store, "--quiet",
            ]
        )
        capsys.readouterr()
        assert main(["trace", "--store", store]) == 1
        assert "no traced cells" in capsys.readouterr().out

    def test_trace_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--store", str(tmp_path / "nope")])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "MAGIC"])

    def test_rejects_unknown_matrix(self):
        with pytest.raises(SystemExit):
            main(["run", "--matrix", "not-a-matrix"])

    def test_cr_interval_parsing(self):
        assert _parse_cr_interval("paper") == "paper"
        assert _parse_cr_interval("young") == "young"
        assert _parse_cr_interval("50") == 50
        with pytest.raises(SystemExit):
            _parse_cr_interval("weekly")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestMultiVictimCli:
    def test_run_victims_per_fault(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "ESR",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--victims-per-fault", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free:" in out
        assert "normalized:" in out

    def test_campaign_victims_axis_multiplies_the_grid(self, capsys, tmp_path):
        assert main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "ESR",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--store", str(tmp_path / "cache"), "--quiet",
                "--victims-per-fault", "1", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2 victim-set sizes [1, 2]" in out
        assert "4 cells" in out  # (FF + ESR) x 2 victim-set sizes

    def test_analytic_run_rejects_unmodelled_scheme_at_parse_time(
        self, capsys
    ):
        """Satellite regression: an analytic-unsupported scheme dies in
        argument handling — before any solve — naming the scheme and
        the full analytic-capable list."""
        with pytest.raises(SystemExit) as exc:
            main(
                [
                    "run", "--matrix", "wathen100", "--scheme", "CR-ML",
                    "--faults", "2", "--ranks", "8", "--scale", "0.25",
                    "--engine", "analytic",
                ]
            )
        msg = str(exc.value)
        assert "CR-ML" in msg
        assert "no closed-form analytic model" in msg
        assert "ESR" in msg and "ABCR" in msg  # the known-schemes list

    def test_sim_run_accepts_unmodelled_scheme(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "CR-ML",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
            ]
        )
        assert code == 0

    def test_analytic_campaign_rejects_unmodelled_scheme(self, tmp_path):
        with pytest.raises(SystemExit, match="no closed-form"):
            main(
                [
                    "campaign", "--matrices", "wathen100",
                    "--schemes", "CR-ML", "--ranks", "8", "--faults", "2",
                    "--scale", "0.25", "--engine", "sim", "analytic",
                    "--store", str(tmp_path / "cache"), "--quiet",
                ]
            )


class TestEngineCli:
    def test_run_analytic_engine(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "LI",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--engine", "analytic",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free:" in out
        assert "normalized:" in out

    def test_run_fault_scope_prints_blast_radius(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "LI",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--fault-scope", "system",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault scope system: up to 8 of 8 ranks lost per fault" in out

    def test_run_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["run", "--engine", "quantum"])

    def test_suite_analytic_engine(self, capsys):
        code = main(
            [
                "suite", "--matrices", "wathen100", "--schemes", "RD", "F0",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--engine", "analytic",
            ]
        )
        assert code == 0
        assert "wathen100" in capsys.readouterr().out

    def test_campaign_sweeps_both_engines(self, capsys, tmp_path):
        assert main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "RD",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--engine", "sim", "analytic",
                "--store", str(tmp_path / "cache"), "--quiet",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2 engines [sim, analytic]" in out
        # both engines' cells land in the normalized tables
        assert out.count("wathen100") >= 4

    def test_validate_passes_on_the_preset_slice(self, capsys):
        code = main(
            ["validate", "--matrices", "wathen100", "--no-store", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK: max normalized drift" in out
        assert "CR-D" in out

    def test_validate_fails_on_a_tight_threshold(self, capsys):
        code = main(
            [
                "validate", "--matrices", "wathen100", "--schemes", "RD",
                "--threshold", "0.001", "--no-store", "--quiet",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_validate_terms_prints_per_term_drift(self, capsys):
        code = main(
            [
                "validate", "--matrices", "wathen100", "--schemes", "RD",
                "--no-store", "--quiet", "--terms",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "term" in out
        assert "T_" in out or "E_" in out  # at least one Section-3 term row

    def test_validate_terms_with_no_pairs_fails(self, capsys):
        # a grid of FF-only cells yields nothing to pair: --terms must
        # still exit 1 with the no-pairs verdict, not crash or pass
        code = main(
            [
                "validate", "--matrices", "wathen100", "--schemes", "FF",
                "--no-store", "--quiet", "--terms",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL: no comparable sim/analytic cell pairs" in out


@pytest.fixture(scope="module")
def traced_store(tmp_path_factory):
    """A small traced campaign persisted to a store, shared read-only."""
    store = str(tmp_path_factory.mktemp("cli-obs") / "cache")
    assert main(
        [
            "campaign", "--matrices", "wathen100", "--schemes", "RD", "F0",
            "--ranks", "8", "--faults", "2", "--scale", "0.25",
            "--store", store, "--quiet", "--trace",
        ]
    ) == 0
    return store


class TestReportCli:
    def test_report_prints_waterfalls_and_critical_path(self, capsys, traced_store):
        assert main(["report", "--store", traced_store]) == 0
        out = capsys.readouterr().out
        assert "source: metrics" in out
        assert "residual" in out
        assert "per-scheme rollup:" in out
        assert "critical path:" in out

    def test_report_filters_by_scheme(self, capsys, traced_store):
        assert main(["report", "--store", traced_store, "--scheme", "RD"]) == 0
        out = capsys.readouterr().out
        assert "[RD]" in out
        assert "[F0]" not in out

    def test_report_no_matching_cells_fails(self, capsys, traced_store):
        assert main(["report", "--store", traced_store, "--matrix", "nope"]) == 1
        assert "no cells match" in capsys.readouterr().out

    def test_report_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no result store"):
            main(["report", "--store", str(tmp_path / "nope")])

    def test_report_diff_two_cells(self, capsys, traced_store):
        assert main(
            [
                "report", "--store", traced_store, "--diff",
                "wathen100/r8/f2/x0.25/RD", "wathen100/r8/f2/x0.25/F0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "diff: A=wathen100/r8/f2/x0.25/RD" in out

    def test_report_diff_unknown_label_lists_known(self, traced_store):
        with pytest.raises(SystemExit, match="no cell labelled") as exc:
            main(["report", "--store", traced_store, "--diff", "x", "y"])
        # the error is actionable: it names the labels that do exist
        assert "wathen100/r8/f2/x0.25/RD" in str(exc.value)

    def test_report_diff_one_bad_label_names_the_bad_one(self, traced_store):
        with pytest.raises(SystemExit, match="no cell labelled 'nope'"):
            main(
                [
                    "report", "--store", traced_store, "--diff",
                    "wathen100/r8/f2/x0.25/RD", "nope",
                ]
            )

    def test_report_writes_html_and_prometheus(self, capsys, tmp_path, traced_store):
        html = tmp_path / "report.html"
        prom = tmp_path / "metrics.prom"
        assert main(
            [
                "report", "--store", traced_store,
                "--html", str(html), "--prometheus", str(prom),
            ]
        ) == 0
        assert html.read_text().startswith("<!DOCTYPE html>")
        assert "Phase attribution" in html.read_text()
        assert "# TYPE" in prom.read_text()

    def test_report_rejects_jsonl_plus_store(self, traced_store, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "report", "--store", traced_store,
                    "--jsonl", str(tmp_path / "t.jsonl"),
                ]
            )


class TestDoctorCli:
    def test_doctor_passes_on_a_clean_store(self, capsys, traced_store):
        assert main(["doctor", "--store", traced_store]) == 0
        out = capsys.readouterr().out
        assert "doctor:" in out
        assert "no findings" in out

    def test_doctor_lists_detectors(self, capsys):
        assert main(["doctor", "--list-detectors"]) == 0
        out = capsys.readouterr().out
        assert "energy_balance" in out
        assert "span_integrity" in out
        assert "[campaign]" in out  # model_divergence scope

    def test_doctor_rejects_unknown_detector(self, traced_store):
        with pytest.raises(SystemExit, match="unknown detectors"):
            main(["doctor", "--store", traced_store, "--detectors", "nope"])

    def test_doctor_named_subset_runs(self, capsys, traced_store):
        assert main(
            [
                "doctor", "--store", traced_store,
                "--detectors", "span_integrity", "energy_balance",
            ]
        ) == 0
        assert "2 detector(s)" in capsys.readouterr().out

    def test_doctor_no_matching_cells_fails(self, capsys, traced_store):
        assert main(["doctor", "--store", traced_store, "--matrix", "nope"]) == 1

    def test_doctor_jsonl_round_trip_is_clean(self, capsys, tmp_path, traced_store):
        export = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "--store", traced_store, "--export", str(export)]
        ) == 0
        capsys.readouterr()
        assert main(["doctor", "--jsonl", str(export)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_doctor_flags_a_corrupted_trace(self, capsys, tmp_path, traced_store):
        """The acceptance case: span gap + energy imbalance -> exit 1."""
        from dataclasses import replace

        from repro.obs.export import load_trace_jsonl, write_trace_jsonl

        export = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "--store", traced_store, "--export", str(export)]
        ) == 0
        capsys.readouterr()
        cells = load_trace_jsonl(export)
        label, tel = next(
            (lbl, t) for lbl, t in cells.items() if lbl.endswith("/RD")
        )
        spans = tel.spans.spans
        root = max(spans, key=lambda s: s.duration_s)
        child = next(i for i, s in enumerate(spans) if s.depth == 1)
        spans[child] = replace(  # a gap: the child escapes the solve span
            spans[child], t_start=root.t_end + 1.0, t_end=root.t_end + 2.0
        )
        tel.metrics.counter("phase.energy_j", phase="solve").inc(1e9)
        corrupted = tmp_path / "corrupted.jsonl"
        write_trace_jsonl(corrupted, cells)

        assert main(["doctor", "--jsonl", str(corrupted)]) == 1
        out = capsys.readouterr().out
        assert "span_integrity" in out
        assert "energy_balance" in out
        assert label in out


class TestServeCli:
    def test_serve_help_lists_every_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for flag in (
            "--host", "--port", "--workers", "--cache-size",
            "--batch-window-ms", "--store", "--no-store",
        ):
            assert flag in out

    def test_serve_appears_in_the_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        assert "serve" in capsys.readouterr().out
