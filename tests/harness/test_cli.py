"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_cr_interval, main


class TestCli:
    def test_mtbf(self, capsys):
        assert main(["mtbf"]) == 0
        out = capsys.readouterr().out
        assert "petascale" in out
        assert "SNF" in out

    def test_project(self, capsys):
        assert main(["project", "--sizes", "192", "12288", "400000"]) == 0
        out = capsys.readouterr().out
        assert "CR-D" in out
        assert "HALT" in out  # 400k procs is past the halt point

    def test_run_small(self, capsys):
        code = main(
            [
                "run",
                "--matrix",
                "wathen100",
                "--scheme",
                "F0",
                "--faults",
                "2",
                "--ranks",
                "8",
                "--scale",
                "0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free:" in out
        assert "normalized:" in out

    def test_run_preconditioned(self, capsys):
        code = main(
            [
                "run",
                "--matrix",
                "msc01050",
                "--scheme",
                "LI",
                "--faults",
                "2",
                "--ranks",
                "8",
                "--scale",
                "0.5",
                "--precond",
                "jacobi",
            ]
        )
        assert code == 0

    def test_suite_small(self, capsys):
        code = main(
            [
                "suite",
                "--matrices",
                "wathen100",
                "--schemes",
                "RD",
                "F0",
                "--faults",
                "2",
                "--ranks",
                "8",
                "--scale",
                "0.25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wathen100" in out

    def test_run_with_seed(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "RD",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--seed", "3",
            ]
        )
        assert code == 0

    def test_suite_seed_and_cr_interval(self, capsys):
        code = main(
            [
                "suite", "--matrices", "wathen100", "--schemes", "CR-D",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--seed", "1", "--cr-interval", "50",
            ]
        )
        assert code == 0
        assert "wathen100" in capsys.readouterr().out

    def test_campaign_runs_then_resumes_from_cache(self, capsys, tmp_path):
        args = [
            "campaign", "--matrices", "wathen100", "--schemes", "RD",
            "--ranks", "8", "--faults", "2", "--scale", "0.25",
            "--store", str(tmp_path / "cache"), "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "per-cell results" in out
        assert "ran" in out
        assert "normalized iterations" in out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert out.count("cached") >= 2  # FF + RD both served from the store

    def test_campaign_list_presets(self, capsys):
        assert main(["campaign", "--list-presets"]) == 0
        out = capsys.readouterr().out
        assert "iteration-study" in out
        assert "cost-study" in out

    def test_run_trace_prints_latency_summary(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "F0",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry (sim time):" in out
        assert "fault→recovery latency:" in out
        assert "span summary" in out

    def test_campaign_trace_then_trace_subcommand(self, capsys, tmp_path):
        store = str(tmp_path / "cache")
        export = tmp_path / "trace.jsonl"
        assert main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "F0",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--store", store, "--quiet", "--trace",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign telemetry rollup:" in out
        assert "recovery.latency_s{scheme=F0}" in out

        assert main(
            [
                "trace", "--store", store, "--events", "--spans",
                "--export", str(export),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "event stream" in out
        assert "fault" in out
        assert "span summary" in out
        assert "fault→recovery latency by scheme" in out
        assert export.exists()

        from repro.obs.export import load_trace_jsonl

        cells = load_trace_jsonl(export)
        assert "wathen100/r8/f2/x0.25/F0" in cells

    def test_trace_filters_by_scheme_and_kind(self, capsys, tmp_path):
        store = str(tmp_path / "cache")
        main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "F0",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--store", store, "--quiet", "--trace",
            ]
        )
        capsys.readouterr()
        assert main(
            [
                "trace", "--store", store, "--scheme", "F0",
                "--events", "--kind", "fault",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "F0" in out
        assert "/FF" not in out  # baseline filtered out
        # only fault events in the stream: no recovery/phase rows
        assert "needs_restart" not in out
        assert "from_phase" not in out
        assert "victim_rank=" in out

    def test_trace_on_untraced_store_reports_nothing(self, capsys, tmp_path):
        store = str(tmp_path / "cache")
        main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "RD",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--store", store, "--quiet",
            ]
        )
        capsys.readouterr()
        assert main(["trace", "--store", store]) == 1
        assert "no traced cells" in capsys.readouterr().out

    def test_trace_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "--store", str(tmp_path / "nope")])

    def test_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["run", "--scheme", "MAGIC"])

    def test_rejects_unknown_matrix(self):
        with pytest.raises(SystemExit):
            main(["run", "--matrix", "not-a-matrix"])

    def test_cr_interval_parsing(self):
        assert _parse_cr_interval("paper") == "paper"
        assert _parse_cr_interval("young") == "young"
        assert _parse_cr_interval("50") == 50
        with pytest.raises(SystemExit):
            _parse_cr_interval("weekly")

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestEngineCli:
    def test_run_analytic_engine(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "LI",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--engine", "analytic",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault-free:" in out
        assert "normalized:" in out

    def test_run_fault_scope_prints_blast_radius(self, capsys):
        code = main(
            [
                "run", "--matrix", "wathen100", "--scheme", "LI",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--fault-scope", "system",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault scope system: up to 8 of 8 ranks lost per fault" in out

    def test_run_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["run", "--engine", "quantum"])

    def test_suite_analytic_engine(self, capsys):
        code = main(
            [
                "suite", "--matrices", "wathen100", "--schemes", "RD", "F0",
                "--faults", "2", "--ranks", "8", "--scale", "0.25",
                "--engine", "analytic",
            ]
        )
        assert code == 0
        assert "wathen100" in capsys.readouterr().out

    def test_campaign_sweeps_both_engines(self, capsys, tmp_path):
        assert main(
            [
                "campaign", "--matrices", "wathen100", "--schemes", "RD",
                "--ranks", "8", "--faults", "2", "--scale", "0.25",
                "--engine", "sim", "analytic",
                "--store", str(tmp_path / "cache"), "--quiet",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "2 engines [sim, analytic]" in out
        # both engines' cells land in the normalized tables
        assert out.count("wathen100") >= 4

    def test_validate_passes_on_the_preset_slice(self, capsys):
        code = main(
            ["validate", "--matrices", "wathen100", "--no-store", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OK: max normalized drift" in out
        assert "CR-D" in out

    def test_validate_fails_on_a_tight_threshold(self, capsys):
        code = main(
            [
                "validate", "--matrices", "wathen100", "--schemes", "RD",
                "--threshold", "0.001", "--no-store", "--quiet",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
