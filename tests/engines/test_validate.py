"""Model-vs-sim drift rows, the Table-6-style gate behind ``repro validate``."""

import pytest

from repro.campaign.runner import run_campaign
from repro.campaign.spec import preset
from repro.engines.validate import (
    DEFAULT_DRIFT_THRESHOLD,
    DriftRow,
    drift_rows,
    format_drift_table,
    max_drift,
)


@pytest.fixture(scope="module")
def validation_result():
    """One matrix of the model-validation preset, both engines."""
    spec = preset("model-validation", matrices=("wathen100",))
    return run_campaign(spec)


class TestDriftRows:
    def test_one_row_per_scheme(self, validation_result):
        rows = drift_rows(validation_result)
        spec = validation_result.spec
        assert {r.scheme for r in rows} == set(spec.schemes)
        assert len(rows) == len(spec.schemes)

    def test_rows_carry_the_grid_point(self, validation_result):
        row = drift_rows(validation_result)[0]
        assert row.matrix == "wathen100"
        assert (row.nranks, row.n_faults, row.seed) == (8, 2, 0)

    def test_drift_within_documented_threshold(self, validation_result):
        """The acceptance criterion: on the paper's small matrices the
        models stay inside the documented envelope."""
        rows = drift_rows(validation_result)
        assert max_drift(rows) <= DEFAULT_DRIFT_THRESHOLD

    def test_rd_power_drift_is_tiny(self, validation_result):
        (rd,) = [r for r in drift_rows(validation_result) if r.scheme == "RD"]
        assert rd.sim[1] == pytest.approx(2.0, abs=0.01)
        assert rd.analytic[1] == pytest.approx(2.0)
        assert rd.drift_p < 0.01

    def test_table_renders_every_row(self, validation_result):
        rows = drift_rows(validation_result)
        table = format_drift_table(rows)
        for row in rows:
            assert row.scheme in table

    def test_sim_only_campaign_yields_no_rows(self):
        spec = preset(
            "model-validation", matrices=("wathen100",), engines=("sim",),
            schemes=("RD",),
        )
        result = run_campaign(spec)
        assert drift_rows(result) == []
        assert "no comparable" in format_drift_table([])


class TestMaxDrift:
    def test_empty_is_zero(self):
        assert max_drift([]) == 0.0

    def test_picks_the_worst_component(self):
        row = DriftRow(
            matrix="m", scheme="LI", nranks=4, n_faults=1, seed=0, scale=1.0,
            sim=(1.0, 1.0, 1.0), analytic=(1.1, 0.7, 1.05),
        )
        assert row.max_drift == pytest.approx(0.3)
        assert max_drift([row]) == pytest.approx(0.3)
