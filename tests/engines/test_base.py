"""Engine registry and interface contract."""

import pytest

from repro.engines import (
    DEFAULT_ENGINE,
    AnalyticEngine,
    ExecutionEngine,
    SimEngine,
    engine_names,
    make_engine,
    register_engine,
)


class TestRegistry:
    def test_builtins_registered_default_first(self):
        names = engine_names()
        assert names[0] == DEFAULT_ENGINE == "sim"
        assert "analytic" in names

    def test_make_engine_builds_each_builtin(self):
        assert isinstance(make_engine("sim"), SimEngine)
        assert isinstance(make_engine("analytic"), AnalyticEngine)

    def test_make_engine_instances_are_fresh(self):
        assert make_engine("sim") is not make_engine("sim")

    def test_unknown_engine_names_the_known_ones(self):
        with pytest.raises(KeyError, match="sim"):
            make_engine("fortran")

    def test_registering_without_a_name_is_rejected(self):
        with pytest.raises(TypeError):

            @register_engine
            class Nameless(ExecutionEngine):
                name = ""

                def solve_fault_free(self, experiment):
                    raise NotImplementedError

                def solve_scheme(self, experiment, scheme_name, baseline):
                    raise NotImplementedError


class TestInterface:
    def test_abstract_methods_enforced(self):
        with pytest.raises(TypeError):
            ExecutionEngine()

    def test_engines_stamp_provenance(self, small_engine_reports):
        for name, (ff, faulty) in small_engine_reports.items():
            assert ff.details["engine"] == name
            assert faulty.details["engine"] == name


@pytest.fixture(scope="module")
def small_engine_reports():
    """(FF, LI) reports from both engines on one tiny experiment."""
    from repro.harness.experiment import Experiment, ExperimentConfig
    from repro.matrices.generators import banded_spd

    a = banded_spd(200, 7, dominance=5e-3, seed=0)
    out = {}
    for name in ("sim", "analytic"):
        exp = Experiment(
            ExperimentConfig(matrix="custom", nranks=4, n_faults=2, engine=name),
            a=a,
        )
        out[name] = (exp.fault_free, exp.run("LI"))
    return out
