"""AnalyticEngine: closed-form reports that mirror the simulator's schema."""

import math

import pytest

from repro.campaign.serialize import report_from_dict, report_to_dict
from repro.engines import AnalyticEngine, AnalyticParams, UnsupportedSchemeError
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.matrices.generators import banded_spd
from repro.power.energy import PhaseTag


@pytest.fixture(scope="module")
def matrix():
    return banded_spd(200, 7, dominance=5e-3, seed=0)


def make_exp(matrix, engine="analytic", **cfg_kw):
    defaults = dict(matrix="custom", nranks=4, n_faults=2)
    defaults.update(cfg_kw)
    return Experiment(ExperimentConfig(engine=engine, **defaults), a=matrix)


@pytest.fixture(scope="module")
def ana(matrix):
    return make_exp(matrix)


@pytest.fixture(scope="module")
def sim(matrix):
    return make_exp(matrix, engine="sim")


class TestFaultFree:
    def test_horizon_matches_the_simulated_baseline(self, ana, sim):
        assert ana.fault_free.iterations == sim.fault_free.iterations

    def test_horizon_is_partition_independent(self, matrix):
        assert (
            make_exp(matrix, nranks=8).fault_free.iterations
            == make_exp(matrix, nranks=4).fault_free.iterations
        )

    def test_account_totals_equal_report_time(self, ana):
        ff = ana.fault_free
        assert ff.account.total_time_s == pytest.approx(ff.time_s)

    def test_converged_with_model_residual_envelope(self, ana):
        ff = ana.fault_free
        assert ff.converged
        assert ff.final_relative_residual == ana.config.tol
        assert len(ff.residual_history) == 2

    def test_baseline_is_cached(self, ana):
        assert ana.fault_free is ana.fault_free


class TestSchemes:
    def test_faults_match_the_sim_schedule(self, ana, sim):
        assert ana.run("LI").faults == sim.run("LI").faults

    def test_rd_doubles_power_exactly(self, ana):
        ff, rd = ana.fault_free, ana.run("RD")
        assert rd.average_power_w == pytest.approx(2 * ff.average_power_w)
        assert rd.resilience_energy_j == pytest.approx(ff.energy_j)
        assert rd.resilience_time_s == 0.0

    def test_checkpoint_charges_checkpoint_and_extra(self, ana):
        cr = ana.run("CR-D")
        assert cr.account.charges[PhaseTag.CHECKPOINT].time_s > 0
        assert cr.account.charges[PhaseTag.EXTRA].time_s > 0
        details = cr.details["scheme_details"]
        assert details["checkpoints_written"] >= 1
        assert details["interval_iters"] >= 1

    def test_forward_charges_reconstruct(self, ana):
        li = ana.run("LI")
        assert li.account.charges[PhaseTag.RECONSTRUCT].time_s > 0
        assert li.details["model"]["t_const_s"] > 0
        assert li.iterations > ana.fault_free.iterations

    def test_fill_schemes_skip_construction(self, ana):
        f0 = ana.run("F0")
        assert PhaseTag.RECONSTRUCT not in f0.account.charges
        assert f0.details["model"]["t_const_s"] == 0.0

    def test_fill_delay_is_the_restart_gap(self, ana):
        """F0's convergence delay redoes the Krylov progress each restart
        discards: with the last fault at iteration i, the gaps sum to i."""
        f0 = ana.run("F0")
        gap_iters = f0.faults[-1].iteration
        assert f0.iterations == ana.fault_free.iterations + gap_iters

    def test_dvfs_variant_reduces_energy_and_counts_transitions(self, ana):
        li, li_dvfs = ana.run("LI"), ana.run("LI-DVFS")
        assert li_dvfs.resilience_energy_j < li.resilience_energy_j
        assert li.details["dvfs_transitions"] == 0
        assert li_dvfs.details["dvfs_transitions"] == (2 * 4 + 1) * 2

    def test_rapl_covers_every_positive_phase(self, ana):
        cr = ana.run("CR-M")
        names = {p.tag for p in cr.rapl.log.phases}
        assert {"iteration", "checkpoint", "extra"} <= names

    def test_multilevel_checkpoint_unsupported(self, ana):
        with pytest.raises(UnsupportedSchemeError, match="sim engine"):
            ana.run("CR-ML")

    def test_zero_faults_add_no_resilience_time(self, matrix):
        exp = make_exp(matrix, n_faults=0)
        li = exp.run("LI")
        assert li.resilience_time_s == 0.0
        assert li.iterations == exp.fault_free.iterations

    def test_node_scope_widens_the_blast_radius(self, matrix):
        li_proc = make_exp(matrix, nranks=8).run("LI")
        li_sys = make_exp(matrix, nranks=8, fault_scope="system").run("LI")
        assert (
            li_sys.details["scheme_details"]["recoveries"]
            > li_proc.details["scheme_details"]["recoveries"]
        )
        assert li_sys.resilience_time_s > li_proc.resilience_time_s

    def test_reports_survive_json_round_trip(self, ana):
        cr = ana.run("CR-D")
        back = report_from_dict(report_to_dict(cr))
        assert back.account.charges == cr.account.charges
        assert back.details["model"] == cr.details["model"]
        assert back.faults == cr.faults


class TestTelemetry:
    @pytest.fixture(scope="class")
    def traced(self, matrix):
        exp = make_exp(matrix, trace=True)
        return exp, exp.run("LI")

    def test_trace_attached(self, traced):
        _, li = traced
        assert "telemetry" in li.details
        assert li.details["trace"] is li.details["telemetry"].events

    def test_one_fault_and_recovery_event_per_fault(self, traced):
        exp, li = traced
        log = li.details["telemetry"].events
        assert len(log.faults) == exp.config.n_faults
        assert len(log.recoveries) == exp.config.n_faults

    def test_phase_metrics_mirror_the_account(self, traced):
        _, li = traced
        m = li.details["telemetry"].metrics
        for tag, charge in li.account.charges.items():
            assert m.counter("phase.time_s", phase=tag.value).value == (
                pytest.approx(charge.time_s)
            )

    def test_event_times_are_monotone(self, traced):
        _, li = traced
        times = [e.sim_time_s for e in li.details["telemetry"].events.events]
        assert times == sorted(times)


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            AnalyticParams(extra_fraction_per_fault=-0.1)
        with pytest.raises(ValueError):
            AnalyticParams(construct_iteration_constant=0.0)

    def test_custom_extra_fraction_scales_the_delay(self, matrix):
        low = Experiment(
            ExperimentConfig(
                matrix="custom", nranks=4, n_faults=2, engine="analytic"
            ),
            a=matrix,
            engine=AnalyticEngine(AnalyticParams(extra_fraction_per_fault=0.01)),
        )
        high = Experiment(
            ExperimentConfig(
                matrix="custom", nranks=4, n_faults=2, engine="analytic"
            ),
            a=matrix,
            engine=AnalyticEngine(AnalyticParams(extra_fraction_per_fault=0.5)),
        )
        assert high.run("LI").resilience_time_s > low.run("LI").resilience_time_s

    def test_params_recorded_in_details(self, ana):
        li = ana.run("LI")
        assert li.details["model"]["extra_fraction_per_fault"] == (
            AnalyticParams().extra_fraction_per_fault
        )
        assert math.isfinite(li.details["model"]["rate_per_s"])
