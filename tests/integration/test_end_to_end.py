"""End-to-end integration tests: the paper's headline behaviours.

Two systems are used: a small fast one for cost/power/energy orderings,
and the crystm02 stand-in under the paper's own protocol (10 evenly
spaced faults, 64 ranks) for the recovery-quality differentiation that
only shows at suite scale (Section 5.2).
"""

import numpy as np
import pytest

from repro.core.recovery import make_scheme, scheme_names
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import EvenlySpacedSchedule, FixedIterationSchedule
from repro.matrices.generators import banded_spd
from repro.matrices.suite import SUITE
from repro.power.energy import PhaseTag
from tests.conftest import quick_config


@pytest.fixture(scope="module")
def system():
    """Small heterogeneous system for fast cost/power checks."""
    a = banded_spd(600, 9, dominance=1e-5, scaling_spread=0.8, seed=3)
    b = a @ np.random.default_rng(1).standard_normal(600)
    return a, b


@pytest.fixture(scope="module")
def ff(system):
    a, b = system
    return ResilientSolver(a, b, config=quick_config(nranks=8)).solve()


def run(system, ff, scheme_name, n_faults=3, **scheme_kw):
    a, b = system
    return ResilientSolver(
        a,
        b,
        scheme=make_scheme(scheme_name, **scheme_kw),
        schedule=EvenlySpacedSchedule(n_faults=n_faults),
        config=quick_config(nranks=8, baseline_iters=ff.iterations),
    ).solve()


@pytest.fixture(scope="module")
def crystm():
    """The paper's Table-4 matrix under its Section-5.2 protocol."""
    a = SUITE["crystm02"].build()
    b = a @ np.random.default_rng(0).standard_normal(a.shape[0])
    ff = ResilientSolver(a, b, config=SolverConfig(nranks=64)).solve()

    def run64(name, schedule=None, **kw):
        return ResilientSolver(
            a,
            b,
            scheme=make_scheme(name, **kw),
            schedule=schedule or EvenlySpacedSchedule(n_faults=10),
            config=SolverConfig(nranks=64, baseline_iters=ff.iterations),
        ).solve()

    return ff, run64


class TestCostAndPowerClaims:
    """Shape checks on the small system."""

    def test_all_schemes_reach_the_same_accuracy(self, system, ff):
        for name in scheme_names():
            report = run(system, ff, name, interval_iters=25)
            assert report.converged, name
            assert report.final_relative_residual <= ff.final_relative_residual * 1.01

    def test_rd_no_iteration_overhead(self, system, ff):
        assert run(system, ff, "RD").iterations == ff.iterations

    def test_f0_fi_identical_for_zero_guess(self, system, ff):
        """F0 and FI overlap when x0 = 0 (Figure 6)."""
        f0 = run(system, ff, "F0")
        fi = run(system, ff, "FI")
        assert f0.iterations == fi.iterations
        assert np.allclose(f0.residual_history, fi.residual_history)

    def test_li_cg_matches_li_lu_iterations_at_tight_tol(self, system, ff):
        """The optimized local-CG construction preserves LI's recovery
        quality (Section 4.1)."""
        cg = run(system, ff, "LI", construct_tol=1e-10)
        lu = run(system, ff, "LI-LU")
        assert abs(cg.iterations - lu.iterations) <= max(3, 0.02 * lu.iterations)

    def test_lsi_cg_cheaper_than_qr(self, system, ff):
        cg = run(system, ff, "LSI")
        qr = run(system, ff, "LSI-QR")
        assert cg.time_s < qr.time_s

    def test_dvfs_reduces_energy_not_time(self, system, ff):
        li = run(system, ff, "LI")
        dvfs = run(system, ff, "LI-DVFS")
        assert dvfs.time_s == pytest.approx(li.time_s, rel=1e-6)
        assert dvfs.energy_j < li.energy_j

    def test_crm_cheaper_than_crd(self, system, ff):
        """Memory checkpoints beat disk in time and energy (Table 5)."""
        crm = run(system, ff, "CR-M", interval_iters=25)
        crd = run(system, ff, "CR-D", interval_iters=25)
        assert crm.time_s < crd.time_s
        assert crm.energy_j < crd.energy_j

    def test_rd_highest_power(self, system, ff):
        """'RD always consumes the most power' (Table 5)."""
        rd = run(system, ff, "RD")
        for other in ("F0", "LI-DVFS", "CR-M", "CR-D"):
            rep = run(system, ff, other, interval_iters=25)
            assert rd.average_power_w > rep.average_power_w

    def test_fw_consumes_least_energy_among_recoveries(self, system, ff):
        """Figure 3: FW beats CR-D and RD on energy."""
        li = run(system, ff, "LI-DVFS")
        rd = run(system, ff, "RD")
        crd = run(system, ff, "CR-D", interval_iters=25)
        assert li.energy_j < rd.energy_j
        assert li.energy_j < crd.energy_j


class TestRecoveryQualityAtSuiteScale:
    """Section-5.2 differentiation on the crystm02 stand-in."""

    def test_fill_worse_than_interpolation(self, crystm):
        """F0/FI take the most iterations; LI/LSI fewer (Figure 5,
        Table 4)."""
        ff, run64 = crystm
        f0 = run64("F0")
        li = run64("LI")
        assert f0.iterations > 1.1 * li.iterations

    def test_rd_overlaps_fault_free(self, crystm):
        ff, run64 = crystm
        rd = run64("RD")
        assert rd.iterations == ff.iterations

    def test_cr_and_interpolation_beat_fill(self, crystm):
        """Table 4: both LI/LSI and CR take far fewer iterations than
        F0/FI (the paper's exact LI-vs-CR order flips per matrix in its
        own Figure 5; what is robust is that both beat the fills)."""
        ff, run64 = crystm
        f0 = run64("F0")
        cr = run64("CR-D", interval_iters=100)
        li = run64("LI")
        assert li.iterations < f0.iterations
        assert cr.iterations < f0.iterations

    def test_li_cg_cheaper_construction_than_lu(self, crystm):
        """Figure 4: CG-based construction takes less time than the
        exact LU on Kuu/crystm02-class matrices (band ~11, where LU's
        fill-driven factorization cost exceeds a few preconditioned CG
        sweeps)."""
        ff, run64 = crystm
        cg = run64("LI")
        lu = run64("LI-LU")
        assert cg.account.time(PhaseTag.RECONSTRUCT) < lu.account.time(
            PhaseTag.RECONSTRUCT
        )

    def test_single_fault_residual_jump(self, crystm):
        """Figure 6a: the residual jumps at the fault; LI/LSI's jump is
        minimal next to F0's; RD overlaps FF."""
        ff, run64 = crystm
        it = ff.iterations // 2

        def jump(name):
            h = run64(
                name,
                schedule=FixedIterationSchedule(iterations=[it], victims=[2]),
            ).residual_history
            return h[it] / h[it - 1]

        assert jump("F0") > 10.0
        assert jump("LI") < jump("F0")
        assert jump("LSI") < jump("F0")
        rd = run64(
            "RD", schedule=FixedIterationSchedule(iterations=[it], victims=[2])
        )
        assert np.allclose(rd.residual_history, ff.residual_history)

    def test_cr_rollback_loses_progress(self, crystm):
        """CR's overhead is the recomputation of lost iterations."""
        ff, run64 = crystm
        cr = run64("CR-D", interval_iters=100)
        lost = cr.details["scheme_details"]["rollback_reexecute_iters"]
        assert lost > 0
        assert cr.iterations > ff.iterations


class TestEnergyConservation:
    @pytest.mark.parametrize("name", ["RD", "CR-D", "LI-DVFS", "F0"])
    def test_account_matches_rapl(self, system, ff, name):
        report = run(system, ff, name, interval_iters=25)
        assert report.energy_j == pytest.approx(report.rapl.energy_j(), rel=1e-9)

    @pytest.mark.parametrize("name", ["CR-M", "LSI"])
    def test_wall_clock_matches_account(self, system, ff, name):
        report = run(system, ff, name, interval_iters=25)
        assert report.time_s == pytest.approx(report.account.total_time_s, rel=1e-9)
