"""Property-based tests (hypothesis) on core data structures and
invariants."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint.interval import daly_interval, young_interval
from repro.cluster.machine import MachineSpec, NodeSpec
from repro.cluster.network import CollectiveCosts, LinkParams, NetworkModel
from repro.cluster.simtime import ClockArray
from repro.cluster.topology import ProcessBinding
from repro.matrices.generators import banded_spd, irregular_spd
from repro.matrices.partition import BlockRowPartition
from repro.power.energy import EnergyAccount, PhaseTag
from repro.power.model import CoreState, PowerModel


class TestPartitionProperties:
    @given(n=st.integers(1, 5000), nranks=st.integers(1, 64))
    def test_blocks_tile_rows_exactly(self, n, nranks):
        if nranks > n:
            return
        p = BlockRowPartition(n, nranks)
        assert int(p.sizes.sum()) == n
        assert p.start_of(0) == 0
        assert p.stop_of(nranks - 1) == n

    @given(n=st.integers(1, 5000), nranks=st.integers(1, 64))
    def test_block_sizes_balanced(self, n, nranks):
        """No block differs from another by more than one row."""
        if nranks > n:
            return
        sizes = BlockRowPartition(n, nranks).sizes
        assert sizes.max() - sizes.min() <= 1

    @given(
        n=st.integers(2, 2000),
        nranks=st.integers(1, 32),
        row=st.integers(0, 1_000_000),
    )
    def test_owner_consistent_with_slice(self, n, nranks, row):
        if nranks > n:
            return
        p = BlockRowPartition(n, nranks)
        row = row % n
        owner = p.owner_of(row)
        assert p.start_of(owner) <= row < p.stop_of(owner)


class TestNetworkProperties:
    @given(
        a=st.floats(0, 1e-3),
        bw=st.floats(0.1, 100),
        n1=st.floats(0, 1e8),
        n2=st.floats(0, 1e8),
    )
    def test_message_time_monotone_and_superadditive(self, a, bw, n1, n2):
        link = LinkParams(latency_s=a, bandwidth_gbps=bw)
        t1, t2 = link.message_time(n1), link.message_time(n2)
        both = link.message_time(n1 + n2)
        assert both <= t1 + t2 + 1e-12  # one message beats two (latency)
        if n1 <= n2:
            assert t1 <= t2 + 1e-15

    @given(p=st.integers(2, 4096), nbytes=st.floats(0, 1e6))
    def test_allreduce_nonnegative_and_grows_with_ranks(self, p, nbytes):
        def cost(nranks):
            machine = MachineSpec(
                nodes=-(-nranks // 24), node=NodeSpec()
            )
            return CollectiveCosts(
                NetworkModel(), ProcessBinding(machine, nranks)
            ).allreduce(nbytes)

        assert cost(p) >= 0
        assert cost(2 * p) >= cost(p)


class TestClockProperties:
    @given(durations=st.lists(st.floats(0, 1e3), min_size=1, max_size=32))
    def test_now_is_max(self, durations):
        c = ClockArray(len(durations))
        c.advance(durations)
        assert c.now == pytest.approx(max(durations))

    @given(
        durations=st.lists(st.floats(0, 1e3), min_size=1, max_size=16),
        extra=st.floats(0, 100),
    )
    def test_synchronize_dominates_every_clock(self, durations, extra):
        c = ClockArray(len(durations))
        c.advance(durations)
        t = c.synchronize(extra)
        assert all(abs(x - t) < 1e-12 for x in c.times)
        assert t >= max(durations)


class TestEnergyAccountProperties:
    @given(
        charges=st.lists(
            st.tuples(
                st.sampled_from(list(PhaseTag)),
                st.floats(0, 1e4),
                st.floats(0, 1e4),
            ),
            max_size=50,
        )
    )
    def test_totals_are_sums(self, charges):
        acc = EnergyAccount()
        expected_t = expected_e = 0.0
        for tag, t, p in charges:
            acc.charge(tag, time_s=t, power_w=p)
            expected_t += t
            expected_e += t * p
        assert acc.total_time_s == pytest.approx(expected_t)
        assert acc.total_energy_j == pytest.approx(expected_e)

    @given(
        charges=st.lists(
            st.tuples(
                st.sampled_from(list(PhaseTag)),
                st.floats(0, 1e3),
                st.floats(0, 1e3),
            ),
            max_size=30,
        )
    )
    def test_solve_plus_resilience_covers_everything(self, charges):
        acc = EnergyAccount()
        for tag, t, p in charges:
            acc.charge(tag, time_s=t, power_w=p)
        assert acc.solve_energy_j + acc.resilience_energy_j == pytest.approx(
            acc.total_energy_j
        )


class TestPowerModelProperties:
    @given(f=st.floats(1.2, 2.3))
    def test_state_ordering_at_any_frequency(self, f):
        pm = PowerModel()
        active = pm.core_power(f, CoreState.ACTIVE)
        idle = pm.core_power(f, CoreState.IDLE)
        sleep = pm.core_power(f, CoreState.SLEEP)
        assert sleep <= idle <= active

    @given(f1=st.floats(1.2, 2.3), f2=st.floats(1.2, 2.3))
    def test_power_monotone_in_frequency(self, f1, f2):
        pm = PowerModel()
        if f1 <= f2:
            assert pm.core_power(f1) <= pm.core_power(f2) + 1e-12


class TestIntervalProperties:
    @given(t_c=st.floats(1e-6, 1e3), mtbf=st.floats(1e-3, 1e7))
    def test_young_positive_and_scales(self, t_c, mtbf):
        i = young_interval(t_c, mtbf)
        assert i > 0
        assert young_interval(4 * t_c, mtbf) == pytest.approx(2 * i, rel=1e-9)

    @given(t_c=st.floats(1e-6, 1e2), mtbf=st.floats(1.0, 1e7))
    def test_daly_never_exceeds_mtbf_plus_young(self, t_c, mtbf):
        d = daly_interval(t_c, mtbf)
        assert 0 < d <= max(mtbf, young_interval(t_c, mtbf) * 1.5)


class TestGeneratorProperties:
    @settings(deadline=None, max_examples=20)
    @given(
        n=st.integers(8, 300),
        nnz=st.integers(3, 15),
        dominance=st.floats(1e-4, 1.0),
        seed=st.integers(0, 1000),
    )
    def test_banded_always_spd_by_gershgorin(self, n, nnz, dominance, seed):
        a = banded_spd(n, nnz, dominance=dominance, seed=seed)
        # symmetric
        assert (abs(a - a.T) > 1e-12).nnz == 0
        # strictly diagonally dominant with positive diagonal => SPD
        d = a.diagonal()
        off = np.abs(a).sum(axis=1).A1 - np.abs(d) if hasattr(
            np.abs(a).sum(axis=1), "A1"
        ) else np.asarray(np.abs(a).sum(axis=1)).ravel() - np.abs(d)
        assert np.all(d > 0)
        assert np.all(d >= off - 1e-9)

    @settings(deadline=None, max_examples=20)
    @given(
        n=st.integers(8, 200),
        nnz=st.integers(3, 11),
        seed=st.integers(0, 1000),
        sigma=st.floats(0.0, 1.5),
    )
    def test_irregular_spd_rayleigh(self, n, nnz, seed, sigma):
        a = irregular_spd(
            n, nnz, dominance=0.01, seed=seed, scaling_spread=sigma
        )
        rng = np.random.default_rng(seed)
        for _ in range(4):
            v = rng.standard_normal(n)
            assert float(v @ (a @ v)) > 0
