"""Property-based tests of the recovery-scheme contract.

Every Table-2 scheme must satisfy, for any fault position and victim:

* post-recovery state is finite (no NaN poison leaks);
* non-victim rows of x are untouched — except for rollback schemes,
  which legitimately rewrite everything with previously *correct* data;
* the solve still converges to tolerance.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cg import DistributedCG
from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver
from repro.faults.events import FaultEvent
from repro.faults.schedule import FixedIterationSchedule
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.generators import banded_spd
from repro.matrices.partition import BlockRowPartition
from tests.conftest import quick_config

N = 120
NRANKS = 6

_A = banded_spd(N, 5, dominance=0.02, seed=7)
_B = _A @ np.random.default_rng(7).standard_normal(N)

LOCAL_SCHEMES = ["F0", "FI", "LI", "LSI", "RD", "TMR"]
GLOBAL_SCHEMES = ["CR-M", "CR-D", "CR-ML"]


def _midsolve_state(steps: int):
    dmat = DistributedMatrix(_A, BlockRowPartition(N, NRANKS))
    cg = DistributedCG(dmat, _B, tol=1e-12)
    for _ in range(steps):
        cg.step()
    return cg


settings_kw = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestLocalSchemeContract:
    @settings(**settings_kw)
    @given(
        scheme_name=st.sampled_from(LOCAL_SCHEMES),
        victim=st.integers(0, NRANKS - 1),
        steps=st.integers(1, 40),
    )
    def test_non_victim_rows_untouched_and_finite(self, scheme_name, victim, steps):
        from tests.core.recovery.conftest import FakeServices

        cg = _midsolve_state(steps)
        services = FakeServices(dmat=cg.dmat, b=_B, x0=np.zeros(N))
        scheme = make_scheme(scheme_name, interval_iters=5)
        scheme.setup(services)
        scheme.on_iteration_end(services, cg.state)
        before = cg.state.x.copy()
        sl = services.partition.slice_of(victim)
        cg.state.x[sl] = np.nan
        cg.state.r[sl] = np.nan
        cg.state.p[sl] = np.nan
        scheme.recover(services, cg.state, FaultEvent(steps, victim))
        mask = np.ones(N, bool)
        mask[sl] = False
        assert np.array_equal(cg.state.x[mask], before[mask])
        assert np.all(np.isfinite(cg.state.x))


class TestGlobalSchemeContract:
    @settings(**settings_kw)
    @given(
        scheme_name=st.sampled_from(GLOBAL_SCHEMES),
        victim=st.integers(0, NRANKS - 1),
        steps=st.integers(6, 40),
    )
    def test_rollback_restores_a_past_exact_state(self, scheme_name, victim, steps):
        from tests.core.recovery.conftest import FakeServices

        cg = _midsolve_state(steps)
        services = FakeServices(dmat=cg.dmat, b=_B, x0=np.zeros(N))
        scheme = make_scheme(scheme_name, interval_iters=5)
        scheme.setup(services)
        # replay checkpoints the solver would have taken
        snapshots = {}
        replay = _midsolve_state(0)
        for k in range(1, steps + 1):
            replay.step()
            scheme.on_iteration_end(services, replay.state)
            snapshots[k] = replay.state.x.copy()
        sl = services.partition.slice_of(victim)
        replay.state.x[sl] = np.nan
        out = scheme.recover(services, replay.state, FaultEvent(steps, victim))
        assert out.needs_restart
        assert np.all(np.isfinite(replay.state.x))
        # the restored x equals some exact earlier iterate (or x0)
        candidates = [np.zeros(N)] + list(snapshots.values())
        assert any(
            np.array_equal(replay.state.x, c) for c in candidates
        )


class TestEndToEndContract:
    @settings(**settings_kw)
    @given(
        scheme_name=st.sampled_from(LOCAL_SCHEMES + GLOBAL_SCHEMES),
        fault_fraction=st.floats(0.1, 0.9),
        victim=st.integers(0, NRANKS - 1),
    )
    def test_converges_for_any_fault_position(
        self, scheme_name, fault_fraction, victim
    ):
        ff_iters = 160  # ~fault-free horizon of this system
        it = max(1, int(fault_fraction * ff_iters))
        report = ResilientSolver(
            _A,
            _B,
            scheme=make_scheme(scheme_name, interval_iters=10),
            schedule=FixedIterationSchedule(iterations=[it], victims=[victim]),
            config=quick_config(nranks=NRANKS),
        ).solve()
        assert report.converged
        assert report.final_relative_residual <= 1e-8
