"""Seeded property tests of recovery-scheme *values* (Section 3.2).

test_recovery_contract.py checks the structural contract (finiteness,
non-victim isolation, convergence).  These tests pin the recovered
values themselves:

* F0 writes exactly zero, FI writes exactly the initial guess;
* LI's local solve and LSI's least-squares reproduce the true block
  (to solver accuracy) whenever the surviving state is consistent —
  the Equation 17/21 systems then have x_true's block as their exact
  solution;
* after any block-local recovery, ``restart()`` re-derives the CG
  residual as exactly ``b - A @ x`` (bitwise, same SpMV kernel).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cg import DistributedCG
from repro.core.recovery import make_scheme
from repro.faults.events import FaultEvent
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.generators import banded_spd
from repro.matrices.partition import BlockRowPartition
from tests.core.recovery.conftest import FakeServices

N = 150
NRANKS = 6

_A = banded_spd(N, 7, dominance=0.02, seed=21)
_X_TRUE = np.random.default_rng(21).standard_normal(N)
_B = _A @ _X_TRUE

settings_kw = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _cg_after(steps: int) -> DistributedCG:
    dmat = DistributedMatrix(_A, BlockRowPartition(N, NRANKS))
    cg = DistributedCG(dmat, _B, tol=1e-12)
    for _ in range(steps):
        cg.step()
    return cg


def _services(cg: DistributedCG, x0: np.ndarray | None = None) -> FakeServices:
    return FakeServices(dmat=cg.dmat, b=_B, x0=x0 if x0 is not None else np.zeros(N))


class TestExactFills:
    @settings(**settings_kw)
    @given(victim=st.integers(0, NRANKS - 1), steps=st.integers(1, 30))
    def test_f0_writes_exactly_zero(self, victim, steps):
        cg = _cg_after(steps)
        services = _services(cg)
        sl = services.partition.slice_of(victim)
        cg.state.x[sl] = np.nan
        make_scheme("F0").recover(services, cg.state, FaultEvent(steps, victim))
        assert np.all(cg.state.x[sl] == 0.0)

    @settings(**settings_kw)
    @given(
        victim=st.integers(0, NRANKS - 1),
        steps=st.integers(1, 30),
        guess_seed=st.integers(0, 1000),
    )
    def test_fi_writes_exactly_the_initial_guess(self, victim, steps, guess_seed):
        cg = _cg_after(steps)
        x0 = np.random.default_rng(guess_seed).standard_normal(N)
        services = _services(cg, x0=x0)
        sl = services.partition.slice_of(victim)
        cg.state.x[sl] = np.nan
        make_scheme("FI").recover(services, cg.state, FaultEvent(steps, victim))
        assert np.array_equal(cg.state.x[sl], x0[sl])


class TestConsistentInterpolation:
    """With the surviving blocks exact, Equations 17/21 are consistent
    linear systems whose solution IS the lost true block — direct-method
    variants must recover it to numerical accuracy."""

    @settings(**settings_kw)
    @given(victim=st.integers(0, NRANKS - 1))
    def test_li_lu_recovers_true_block(self, victim):
        cg = _cg_after(1)
        services = _services(cg)
        cg.state.x[:] = _X_TRUE
        sl = services.partition.slice_of(victim)
        cg.state.x[sl] = np.nan
        make_scheme("LI-LU").recover(services, cg.state, FaultEvent(1, victim))
        err = np.linalg.norm(cg.state.x[sl] - _X_TRUE[sl])
        assert err <= 1e-10 * max(1.0, np.linalg.norm(_X_TRUE[sl]))

    @settings(**settings_kw)
    @given(victim=st.integers(0, NRANKS - 1))
    def test_lsi_qr_recovers_true_block(self, victim):
        cg = _cg_after(1)
        services = _services(cg)
        cg.state.x[:] = _X_TRUE
        sl = services.partition.slice_of(victim)
        cg.state.x[sl] = np.nan
        make_scheme("LSI-QR").recover(services, cg.state, FaultEvent(1, victim))
        err = np.linalg.norm(cg.state.x[sl] - _X_TRUE[sl])
        assert err <= 1e-8 * max(1.0, np.linalg.norm(_X_TRUE[sl]))

    @settings(**settings_kw)
    @given(victim=st.integers(0, NRANKS - 1))
    def test_iterative_li_recovers_to_construct_tol(self, victim):
        cg = _cg_after(1)
        services = _services(cg)
        cg.state.x[:] = _X_TRUE
        sl = services.partition.slice_of(victim)
        cg.state.x[sl] = np.nan
        scheme = make_scheme("LI", construct_tol=1e-10)
        scheme.recover(services, cg.state, FaultEvent(1, victim))
        err = np.linalg.norm(cg.state.x[sl] - _X_TRUE[sl])
        assert err <= 1e-6 * max(1.0, np.linalg.norm(_X_TRUE[sl]))


class TestRestartResidual:
    @settings(**settings_kw)
    @given(
        scheme_name=st.sampled_from(["F0", "FI", "LI", "LI-LU", "LSI", "LSI-QR"]),
        victim=st.integers(0, NRANKS - 1),
        steps=st.integers(1, 30),
    )
    def test_restart_rebuilds_true_residual_bitwise(self, scheme_name, victim, steps):
        cg = _cg_after(steps)
        services = _services(cg)
        sl = services.partition.slice_of(victim)
        cg.state.x[sl] = np.nan
        cg.state.r[sl] = np.nan
        out = make_scheme(scheme_name).recover(
            services, cg.state, FaultEvent(steps, victim)
        )
        assert out.needs_restart
        cg.restart()
        # restart computes r = b - A x with the same SpMV the solver
        # uses, so the equality is exact, not approximate
        assert np.array_equal(cg.state.r, _B - _A @ cg.state.x)
        assert np.array_equal(cg.state.p, cg.state.r)  # plain CG: p = z = r
        assert cg.state.rz == float(cg.state.r @ cg.state.r)
