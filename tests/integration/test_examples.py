"""Smoke tests: the runnable examples must run clean end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "fault-free baseline" in out
        assert "converged to relative residual" in out

    def test_exascale_projection(self):
        out = run_example("exascale_projection.py")
        assert "HALT" in out
        assert "CR-D" in out

    def test_soft_error_study(self):
        out = run_example("soft_error_study.py")
        assert "SDC" in out
        assert "can_outvote_sdc = True" in out

    def test_adaptive_scheme_selection(self):
        out = run_example("adaptive_scheme_selection.py")
        assert "facility power budget" in out
        assert "full ranking" in out

    @pytest.mark.slow
    def test_power_managed_recovery(self):
        out = run_example("power_managed_recovery.py")
        assert "LI-DVFS" in out
        assert "DVFS transitions" in out

    @pytest.mark.slow
    def test_compare_recovery_schemes(self):
        out = run_example("compare_recovery_schemes.py", "wathen100")
        assert "best scheme per optimization target" in out
