"""Cross-cutting invariants tying the metrics together.

The paper's three metrics obey E = P * T by definition (Equation 6);
every report this library produces must satisfy the same identity, and
the normalized ratios it prints must therefore be mutually consistent.
"""

import numpy as np
import pytest

from repro.cluster.machine import FrequencyLadder
from repro.core.recovery import make_scheme, scheme_names
from repro.core.solver import ResilientSolver
from repro.faults.schedule import EvenlySpacedSchedule
from repro.matrices.generators import banded_spd
from repro.power.rapl import RaplMeter
from tests.conftest import quick_config


@pytest.fixture(scope="module")
def reports():
    a = banded_spd(300, 7, dominance=5e-3, seed=1)
    b = a @ np.random.default_rng(1).standard_normal(300)
    ff = ResilientSolver(a, b, config=quick_config(nranks=8)).solve()
    out = {"FF": ff}
    for name in ("RD", "TMR", "CR-M", "CR-D", "CR-ML", "F0", "LI-DVFS", "LSI"):
        out[name] = ResilientSolver(
            a,
            b,
            scheme=make_scheme(name, interval_iters=15),
            schedule=EvenlySpacedSchedule(n_faults=2),
            config=quick_config(nranks=8, baseline_iters=ff.iterations),
        ).solve()
    return out


class TestMetricIdentity:
    def test_energy_equals_power_times_time(self, reports):
        """E = P_avg * T for every report (Equation 6)."""
        for name, rep in reports.items():
            assert rep.energy_j == pytest.approx(
                rep.average_power_w * rep.time_s, rel=1e-9
            ), name

    def test_normalized_ratios_consistent(self, reports):
        """E-ratio = P-ratio * T-ratio for every scheme."""
        ff = reports["FF"]
        for name, rep in reports.items():
            assert rep.normalized_energy(ff) == pytest.approx(
                rep.normalized_power(ff) * rep.normalized_time(ff), rel=1e-9
            ), name

    def test_account_time_is_wall_clock(self, reports):
        for name, rep in reports.items():
            assert rep.account.total_time_s == pytest.approx(
                rep.time_s, rel=1e-9
            ), name

    def test_rapl_counter_matches_account_energy(self, reports):
        for name, rep in reports.items():
            assert rep.rapl.energy_j() == pytest.approx(
                rep.energy_j, rel=1e-9
            ), name

    def test_solve_plus_resilience_partitions_energy(self, reports):
        for name, rep in reports.items():
            total = rep.account.solve_energy_j + rep.resilience_energy_j
            assert total == pytest.approx(rep.energy_j, rel=1e-9), name

    def test_residual_history_length_equals_iterations(self, reports):
        for name, rep in reports.items():
            assert len(rep.residual_history) == rep.iterations, name

    def test_all_schemes_reach_tolerance(self, reports):
        for name, rep in reports.items():
            assert rep.converged, name
            assert rep.final_relative_residual <= 1e-8, name


class TestMiscEdgeCases:
    def test_single_step_frequency_ladder(self):
        ladder = FrequencyLadder(fmin_ghz=2.0, fmax_ghz=2.0, fstep_ghz=0.1)
        assert ladder.steps == (2.0,)
        assert ladder.clamp(1.0) == 2.0

    def test_rapl_trace_respects_t_end(self):
        m = RaplMeter()
        m.record("x", 0.0, 10.0, 100.0)
        times, watts = m.power_trace(1.0, t_end=5.0)
        assert times[-1] <= 5.0 + 1e-9
        assert np.allclose(watts, 100.0)

    def test_all_factory_schemes_share_the_contract(self):
        """Every factory scheme exposes the attributes the solver reads."""
        for name in scheme_names():
            s = make_scheme(name, interval_iters=10)
            assert isinstance(s.name, str) and s.name
            assert s.energy_multiplier >= 1.0
            assert isinstance(s.recovers_globally, bool)
