"""Load generator: percentile math, report shape, a real tiny run."""

from __future__ import annotations

import pytest

from repro.serve.loadgen import LoadReport, percentile, run_load


class TestPercentile:
    def test_nearest_rank_on_a_known_ladder(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.90) == 90.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.0) == 1.0

    def test_single_sample_answers_everything(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_tiny_samples_use_nearest_rank_not_rounding(self):
        # n=4: p50 is the 2nd order statistic (ceil(0.5*4)=2), p90 the
        # 4th (ceil(0.9*4)=4) — banker's rounding gave p90=3rd here
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.90) == 4.0
        assert percentile(values, 0.25) == 1.0
        # n=2: any q <= 0.5 is the 1st sample, above it the 2nd
        assert percentile([10.0, 20.0], 0.5) == 10.0
        assert percentile([10.0, 20.0], 0.51) == 20.0
        assert percentile([10.0, 20.0], 0.99) == 20.0


class TestLoadReport:
    def test_dict_shape_and_rates(self):
        report = LoadReport(
            n_requests=4,
            concurrency=2,
            duration_s=2.0,
            latencies_s=[0.001, 0.002, 0.003, 0.004],
            errors=1,
        )
        d = report.to_dict()
        assert d["req_per_s"] == 2.0
        assert d["p50_ms"] == 2.0
        assert d["max_ms"] == 4.0
        assert d["errors"] == 1
        assert "p50" in report.summary()

    def test_zero_duration_rate_is_zero(self):
        report = LoadReport(
            n_requests=1, concurrency=1, duration_s=0.0, latencies_s=[0.1]
        )
        assert report.req_per_s == 0.0


class TestRunLoad:
    def test_real_run_against_the_server(self, served):
        report = run_load(
            served.server.host,
            served.server.port,
            lambda client, i: client.health(),
            n_requests=20,
            concurrency=3,
        )
        assert report.errors == 0
        assert len(report.latencies_s) == 20
        assert report.concurrency == 3
        assert report.req_per_s > 0
        # the slowest request's server-stamped id is the debug handle
        assert report.worst_request_id is not None
        assert report.to_dict()["worst_request_id"] == report.worst_request_id
        assert f"worst: {report.worst_request_id}" in report.summary()

    def test_failures_count_as_errors_not_crashes(self, served):
        report = run_load(
            served.server.host,
            served.server.port,
            lambda client, i: client.report("no-such-key"),
            n_requests=5,
            concurrency=2,
        )
        assert report.errors == 5
        assert len(report.latencies_s) == 5

    def test_rejects_nonsense_parameters(self, served):
        with pytest.raises(ValueError):
            run_load(served.server.host, served.server.port, lambda c, i: None,
                     n_requests=0)
        with pytest.raises(ValueError):
            run_load(served.server.host, served.server.port, lambda c, i: None,
                     concurrency=0)
