"""Load generator: percentile math, report shape, a real tiny run."""

from __future__ import annotations

import pytest

from repro.serve.loadgen import LoadReport, percentile, run_load


class TestPercentile:
    def test_nearest_rank_on_a_known_ladder(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.90) == 90.0
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.0) == 1.0

    def test_single_sample_answers_everything(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLoadReport:
    def test_dict_shape_and_rates(self):
        report = LoadReport(
            n_requests=4,
            concurrency=2,
            duration_s=2.0,
            latencies_s=[0.001, 0.002, 0.003, 0.004],
            errors=1,
        )
        d = report.to_dict()
        assert d["req_per_s"] == 2.0
        assert d["p50_ms"] == 2.0
        assert d["max_ms"] == 4.0
        assert d["errors"] == 1
        assert "p50" in report.summary()

    def test_zero_duration_rate_is_zero(self):
        report = LoadReport(
            n_requests=1, concurrency=1, duration_s=0.0, latencies_s=[0.1]
        )
        assert report.req_per_s == 0.0


class TestRunLoad:
    def test_real_run_against_the_server(self, served):
        report = run_load(
            served.server.host,
            served.server.port,
            lambda client, i: client.health(),
            n_requests=20,
            concurrency=3,
        )
        assert report.errors == 0
        assert len(report.latencies_s) == 20
        assert report.concurrency == 3
        assert report.req_per_s > 0

    def test_failures_count_as_errors_not_crashes(self, served):
        report = run_load(
            served.server.host,
            served.server.port,
            lambda client, i: client.report("no-such-key"),
            n_requests=5,
            concurrency=2,
        )
        assert report.errors == 5
        assert len(report.latencies_s) == 5

    def test_rejects_nonsense_parameters(self, served):
        with pytest.raises(ValueError):
            run_load(served.server.host, served.server.port, lambda c, i: None,
                     n_requests=0)
        with pytest.raises(ValueError):
            run_load(served.server.host, served.server.port, lambda c, i: None,
                     concurrency=0)
