"""End-to-end API tests: a real server, a real client, real solves.

One BackgroundServer per module (ephemeral port, tmp store); the
acceptance test at the bottom pins the ISSUE guarantee that a served
report is bit-identical JSON to a direct engine call.
"""

from __future__ import annotations

import socket

import pytest

from repro.campaign.serialize import report_to_dict
from repro.campaign.store import cell_key
from repro.harness.experiment import Experiment
from repro.serve import ServeClient, ServeError
from repro.serve.http import MAX_BODY
from tests.serve.conftest import make_cell


def _recv_response(raw: socket.socket) -> bytes:
    """Read until the server closes the connection (it sends
    ``Connection: close`` on errors)."""
    chunks = []
    while True:
        chunk = raw.recv(65536)
        if not chunk:
            return b"".join(chunks)
        chunks.append(chunk)


SOLVE = {
    "matrix": "wathen100",
    "nranks": 8,
    "n_faults": 2,
    "scale": 0.25,
    "engine": "analytic",
}


class TestHealthAndRouting:
    def test_healthz(self, served):
        health = served.client.health()
        assert health["status"] == "ok"
        assert {"sim", "analytic"} <= set(health["engines"])
        assert health["store"] is True
        assert health["uptime_s"] >= 0

    def test_ephemeral_port_was_bound(self, served):
        assert served.server.port != 0

    def test_unknown_route_is_404(self, served):
        with pytest.raises(ServeError) as exc:
            served.client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_malformed_request_line_is_400(self, served):
        with socket.create_connection(
            (served.server.host, served.server.port), timeout=10.0
        ) as raw:
            raw.sendall(b"GARBAGE\r\n\r\n")
            answer = raw.recv(4096)
        assert answer.startswith(b"HTTP/1.1 400 ")

    def test_http_10_defaults_to_connection_close(self, served):
        with socket.create_connection(
            (served.server.host, served.server.port), timeout=10.0
        ) as raw:
            raw.sendall(b"GET /healthz HTTP/1.0\r\n\r\n")
            answer = raw.recv(4096)
        assert answer.startswith(b"HTTP/1.1 200 ")
        assert b"Connection: close" in answer

    def test_oversized_body_is_rejected_before_it_is_read(self, served):
        # the cap is enforced from Content-Length alone: the server
        # answers 400 and hangs up without draining the body
        with socket.create_connection(
            (served.server.host, served.server.port), timeout=10.0
        ) as raw:
            raw.sendall(
                b"POST /v1/solve HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {MAX_BODY + 1}\r\n\r\n".encode()
            )
            answer = raw.recv(4096)
        assert answer.startswith(b"HTTP/1.1 400 ")
        assert b"body too large" in answer
        assert b"Connection: close" in answer

    def test_body_at_the_cap_is_still_read(self, served):
        # exactly MAX_BODY bytes must not trip the cap; the padded JSON
        # then fails validation (unknown field), proving the body was
        # parsed rather than refused
        body = b'{"pad": "' + b"x" * (MAX_BODY - 11) + b'"}'
        assert len(body) == MAX_BODY
        with socket.create_connection(
            (served.server.host, served.server.port), timeout=10.0
        ) as raw:
            raw.sendall(
                b"POST /v1/solve HTTP/1.1\r\n"
                b"Content-Type: application/json\r\n"
                b"Connection: close\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            answer = _recv_response(raw)
        assert answer.startswith(b"HTTP/1.1 400 ")
        assert b"body too large" not in answer
        assert b"unknown fields" in answer


class TestSolve:
    def test_computed_then_lru(self, served):
        first = served.client.solve(**SOLVE, scheme="RD", seed=10)
        second = served.client.solve(**SOLVE, scheme="RD", seed=10)
        assert first["cache"] in ("computed", "store")
        assert second["cache"] == "lru"
        assert second["report"] == first["report"]
        assert second["key"] == first["key"]
        assert first["elapsed_s"] >= second["elapsed_s"] >= 0

    def test_key_matches_the_store_hash(self, served):
        answer = served.client.solve(**SOLVE, scheme="F0", seed=11)
        assert answer["key"] == cell_key(make_cell("F0", seed=11))
        assert answer["label"] == make_cell("F0", seed=11).label

    def test_engine_defaults_to_analytic(self, served):
        fields = {k: v for k, v in SOLVE.items() if k != "engine"}
        answer = served.client.solve(**fields, scheme="RD", seed=12)
        assert answer["report"]["details"]["engine"] == "analytic"

    def test_backend_is_part_of_the_key(self, served):
        batched = served.client.solve(**SOLVE, scheme="RD", seed=14)
        loop = served.client.solve(
            **SOLVE, scheme="RD", seed=14, backend="loop"
        )
        assert loop["key"] != batched["key"]
        assert loop["key"] == cell_key(
            make_cell("RD", seed=14, backend="loop")
        )

    def test_unknown_backend_is_400(self, served):
        with pytest.raises(ServeError) as exc:
            served.client.solve(**SOLVE, scheme="RD", backend="gpu")
        assert exc.value.status == 400
        assert "unknown backend" in exc.value.message

    def test_model_is_an_alias_for_analytic(self, served):
        fields = dict(SOLVE, engine="model")
        answer = served.client.solve(**fields, scheme="RD", seed=13)
        direct = served.client.solve(**SOLVE, scheme="RD", seed=13)
        assert answer["key"] == direct["key"]
        assert answer["report"] == direct["report"]

    @pytest.mark.parametrize(
        "fields, fragment",
        [
            ({"scheme": "BOGUS"}, "unknown scheme"),
            ({"scheme": "RD", "frobnicate": 1}, "unknown fields"),
            ({"scheme": "RD", "engine": "quantum"}, "unknown engine"),
            ({"scheme": "RD", "nranks": "eight"}, ""),
        ],
    )
    def test_invalid_solve_bodies_are_400(self, served, fields, fragment):
        base = {k: v for k, v in SOLVE.items() if k not in fields}
        with pytest.raises(ServeError) as exc:
            served.client.solve(**base, **fields)
        assert exc.value.status == 400
        assert fragment in exc.value.message

    def test_non_object_body_is_400(self, served):
        with pytest.raises(ServeError) as exc:
            served.client._request("POST", "/v1/solve", payload=[1, 2, 3])
        assert exc.value.status == 400

    def test_acceptance_served_json_is_bit_identical_to_direct_run(
        self, served
    ):
        """ISSUE acceptance: /v1/solve returns the exact SolveReport JSON
        a direct engine call serializes to — no float drift, no field
        loss, through whichever cache tier answers."""
        cell = make_cell("LI", seed=14)
        served_report = served.client.solve(**SOLVE, scheme="LI", seed=14)
        direct = Experiment(cell.config).run(cell.scheme)
        assert served_report["report"] == report_to_dict(direct)
        replay = served.client.solve(**SOLVE, scheme="LI", seed=14)
        assert replay["cache"] == "lru"
        assert replay["report"] == report_to_dict(direct)


class TestMetricsAndStats:
    def test_metrics_exposition_reflects_the_cache_tiers(self, served):
        served.client.solve(**SOLVE, scheme="RD", seed=15)
        served.client.solve(**SOLVE, scheme="RD", seed=15)
        text = served.client.metrics_text()
        assert "# TYPE serve_requests_total counter" in text
        assert 'serve_solve_total{engine="analytic",source="lru"}' in text
        assert 'serve_requests_total{endpoint="/v1/solve",status="200"}' in text
        assert "serve_request_latency_s_bucket" in text

    def test_store_stats_counts_bytes_and_lookups(self, served):
        served.client.solve(**SOLVE, scheme="RD", seed=16)
        stats = served.client.store_stats()
        assert stats["store"]["entries"] >= 1
        assert stats["store"]["payload_bytes"] > 0
        assert stats["store"]["misses"] >= 1  # every computed cell missed first
        assert stats["serving"]["lru_capacity"] == served.core.cache_size
        assert stats["serving"]["solved_by_source"]["computed"] >= 1


class TestReports:
    def test_index_report_and_diff(self, served):
        a = served.client.solve(**SOLVE, scheme="RD", seed=17)
        b = served.client.solve(**SOLVE, scheme="LI", seed=17)

        index = served.client.reports()
        keys = {row["key"] for row in index["entries"]}
        assert {a["key"], b["key"]} <= keys
        assert index["count"] == len(index["entries"])

        full = served.client.report(a["key"])
        assert full["report"] == a["report"]
        assert full["elapsed_s"] >= 0

        same = served.client.diff(a["key"], a["key"])
        assert same["identical"] is True
        assert same["n_changes"] == 0

        diff = served.client.diff(a["key"], b["key"])
        assert diff["identical"] is False
        assert diff["n_changes"] > 0
        assert diff["text"]

    def test_unknown_report_key_is_404(self, served):
        with pytest.raises(ServeError) as exc:
            served.client.report("f" * 64)
        assert exc.value.status == 404

    def test_diff_requires_both_keys(self, served):
        with pytest.raises(ServeError) as exc:
            served.client._request("GET", "/v1/reports/diff?a=abc")
        assert exc.value.status == 400


class TestProject:
    def test_projection_points_round_trip(self, served):
        answer = served.client.project([64, 8], schemes=["RD"])
        assert answer["sizes"] == [8, 64]  # sorted
        points = answer["points"]["RD"]
        assert [p["n"] for p in points] == [8, 64]
        for p in points:
            assert set(p) == {
                "n", "system_mtbf_s", "t_res_ratio", "e_res_ratio",
                "power_ratio", "halted",
            }
            if not p["halted"]:
                assert p["t_res_ratio"] is not None

    @pytest.mark.parametrize(
        "payload",
        [
            {"sizes": []},
            {"sizes": [0]},
            {"sizes": ["eight"]},
            {"sizes": [8], "schemes": ["BOGUS"]},
            {"sizes": [8], "frobnicate": 1},
        ],
    )
    def test_invalid_projection_bodies_are_400(self, served, payload):
        with pytest.raises(ServeError) as exc:
            served.client._request("POST", "/v1/project", payload)
        assert exc.value.status == 400


class TestClient:
    def test_client_survives_a_dropped_keepalive(self, served):
        # a second client whose connection the server has never seen:
        # the first request on a fresh connection exercises connect;
        # closing our side forces the retry path on the next call
        with ServeClient(served.server.host, served.server.port) as client:
            assert client.health()["status"] == "ok"
            client._conn.close()
            assert client.health()["status"] == "ok"
