"""Serving-tier fixtures: cell builders and one shared live server."""

from __future__ import annotations

import asyncio
from types import SimpleNamespace

import pytest

from repro.campaign.spec import CampaignCell
from repro.campaign.store import ResultStore
from repro.harness.experiment import ExperimentConfig
from repro.serve import BackgroundServer, ServeApp, ServeClient, ServingCore


def make_cell(scheme: str = "RD", engine: str = "analytic", **overrides):
    """The test cell: small enough that real solves stay in milliseconds."""
    config = ExperimentConfig(
        matrix="wathen100",
        nranks=8,
        n_faults=2,
        scale=0.25,
        engine=engine,
        **overrides,
    )
    return CampaignCell(config, scheme)


def run(coro):
    """Drive one serving-core coroutine on a fresh event loop."""
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A real server on an ephemeral port, with its store and a client.

    Module-scoped: tests share the server (and therefore its metrics and
    store), so each test uses distinct cells (seeds) where counts matter.
    """
    store = ResultStore(tmp_path_factory.mktemp("serve-store"))
    core = ServingCore(store, workers=2)
    app = ServeApp(core)
    server = BackgroundServer(app.handle)
    server.start()
    client = ServeClient(server.host, server.port)
    yield SimpleNamespace(
        store=store, core=core, app=app, server=server, client=client
    )
    client.close()
    server.stop()
    core.close()
    store.close()
