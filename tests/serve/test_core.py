"""ServingCore behaviours: LRU, coalescing, micro-batching, store tiers.

The core is socket-free, so everything here runs on a plain event loop
with injected compute functions; the last class uses real engine runs to
pin the bit-identical guarantee.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.campaign.serialize import report_to_dict
from repro.campaign.store import ResultStore, cell_key
from repro.harness.experiment import Experiment
from repro.serve.core import ServingCore, compute_cell
from tests.serve.conftest import make_cell, run


class Recorder:
    """Injectable compute that records calls and returns sentinels."""

    def __init__(self):
        self.calls = []

    def compute(self, cell):
        self.calls.append(cell)
        return f"report:{cell.scheme}:{cell.config.seed}"

    def compute_batch(self, config, schemes):
        self.calls.append((config, tuple(schemes)))
        return {s: f"report:{s}:{config.seed}" for s in schemes}


class TestLru:
    def test_computed_then_lru(self):
        rec = Recorder()
        core = ServingCore(None, compute=rec.compute, compute_batch=rec.compute_batch)

        async def scenario():
            first = await core.solve_cell(make_cell("RD"))
            second = await core.solve_cell(make_cell("RD"))
            return first, second

        first, second = run(scenario())
        core.close()
        assert first.source == "computed"
        assert second.source == "lru"
        assert second.report is first.report
        assert first.key == cell_key(make_cell("RD"))
        assert len(rec.calls) == 1

    def test_eviction_at_capacity(self):
        rec = Recorder()
        core = ServingCore(
            None, cache_size=1, compute=rec.compute, compute_batch=rec.compute_batch
        )

        async def scenario():
            a = await core.solve_cell(make_cell("RD"))
            b = await core.solve_cell(make_cell("F0"))  # evicts RD
            a2 = await core.solve_cell(make_cell("RD"))
            return a, b, a2

        a, b, a2 = run(scenario())
        core.close()
        assert (a.source, b.source, a2.source) == ("computed",) * 3
        assert len(core._lru) == 1

    def test_cache_size_zero_disables_the_lru(self):
        rec = Recorder()
        core = ServingCore(
            None, cache_size=0, compute=rec.compute, compute_batch=rec.compute_batch
        )

        async def scenario():
            return [
                (await core.solve_cell(make_cell("RD"))).source for _ in range(2)
            ]

        assert run(scenario()) == ["computed", "computed"]
        core.close()

    @pytest.mark.parametrize(
        "kwargs",
        [{"cache_size": -1}, {"workers": 0}, {"batch_max": 0}],
    )
    def test_bad_parameters_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServingCore(None, **kwargs)


class TestCoalescing:
    def test_identical_inflight_cells_share_one_computation(self):
        release = threading.Event()
        calls = []

        def blocking(cell):
            calls.append(cell)
            assert release.wait(timeout=30.0)
            return "the-report"

        # sim engine: the pooled path, where compute genuinely blocks
        cell = make_cell("RD", engine="sim")
        core = ServingCore(None, compute=blocking)

        async def scenario():
            t1 = asyncio.ensure_future(core.solve_cell(cell))
            while cell_key(cell) not in core._inflight:
                await asyncio.sleep(0.001)
            t2 = asyncio.ensure_future(core.solve_cell(cell))
            t3 = asyncio.ensure_future(core.solve_cell(cell))
            await asyncio.sleep(0.01)  # let the followers reach the wait
            release.set()
            return await asyncio.gather(t1, t2, t3)

        first, *followers = run(scenario())
        core.close()
        assert len(calls) == 1
        assert first.source == "computed"
        assert [o.source for o in followers] == ["coalesced", "coalesced"]
        assert all(o.report == "the-report" for o in followers)

    def test_compute_error_reaches_every_waiter_and_is_not_cached(self):
        boom = RuntimeError("engine exploded")
        attempts = []

        def failing(cell):
            attempts.append(cell)
            raise boom

        cell = make_cell("RD", engine="sim")
        core = ServingCore(None, compute=failing)

        async def scenario():
            with pytest.raises(RuntimeError, match="engine exploded"):
                await core.solve_cell(cell)
            with pytest.raises(RuntimeError, match="engine exploded"):
                await core.solve_cell(cell)  # failure was not cached

        run(scenario())
        core.close()
        assert len(attempts) == 2
        assert not core._inflight
        snap = core.metrics.snapshot()
        assert snap["counters"]['serve_errors{stage=solve}'] == 2.0


class TestMicroBatching:
    def test_one_config_burst_becomes_one_batch(self):
        rec = Recorder()
        core = ServingCore(
            None, batch_window_s=0.01, compute_batch=rec.compute_batch
        )
        cells = [make_cell(s) for s in ("RD", "F0", "LI")]

        async def scenario():
            return await asyncio.gather(*(core.solve_cell(c) for c in cells))

        outcomes = run(scenario())
        core.close()
        assert len(rec.calls) == 1
        _, schemes = rec.calls[0]
        assert sorted(schemes) == ["F0", "LI", "RD"]
        for cell, outcome in zip(cells, outcomes):
            assert outcome.source == "computed"
            assert outcome.report == f"report:{cell.scheme}:0"

    def test_full_batch_drains_without_waiting_for_the_window(self):
        rec = Recorder()
        # window far beyond the test timeout: only the batch_max trigger
        # can drain, so completion proves it fired
        core = ServingCore(
            None, batch_window_s=60.0, batch_max=2,
            compute_batch=rec.compute_batch,
        )

        async def scenario():
            return await asyncio.wait_for(
                asyncio.gather(
                    core.solve_cell(make_cell("RD")),
                    core.solve_cell(make_cell("F0")),
                ),
                timeout=10.0,
            )

        outcomes = run(scenario())
        core.close()
        assert [o.source for o in outcomes] == ["computed", "computed"]
        assert len(rec.calls) == 1

    def test_distinct_configs_batch_separately(self):
        rec = Recorder()
        core = ServingCore(
            None, batch_window_s=0.01, compute_batch=rec.compute_batch
        )

        async def scenario():
            return await asyncio.gather(
                core.solve_cell(make_cell("RD", seed=0)),
                core.solve_cell(make_cell("RD", seed=1)),
            )

        outcomes = run(scenario())
        core.close()
        assert len(rec.calls) == 2
        assert {o.report for o in outcomes} == {"report:RD:0", "report:RD:1"}

    def test_sim_cells_bypass_the_batcher(self):
        def no_batch(config, schemes):
            raise AssertionError("sim cells must not be batched")

        rec = Recorder()
        core = ServingCore(None, compute=rec.compute, compute_batch=no_batch)
        outcome = run(core.solve_cell(make_cell("RD", engine="sim")))
        core.close()
        assert outcome.source == "computed"
        assert len(rec.calls) == 1

    def test_batch_failure_reaches_every_member(self):
        def failing(config, schemes):
            raise RuntimeError("batch exploded")

        core = ServingCore(None, batch_window_s=0.01, compute_batch=failing)

        async def scenario():
            results = await asyncio.gather(
                core.solve_cell(make_cell("RD")),
                core.solve_cell(make_cell("F0")),
                return_exceptions=True,
            )
            return results

        results = run(scenario())
        core.close()
        assert all(isinstance(r, RuntimeError) for r in results)


class TestStoreTier:
    @pytest.fixture()
    def store(self, tmp_path):
        with ResultStore(tmp_path / "cache") as s:
            yield s

    def test_write_through_then_read_through(self, store):
        cell = make_cell("LI")
        core = ServingCore(store)
        outcome = run(core.solve_cell(cell))  # real analytic solve
        core.close()
        assert outcome.source == "computed"
        assert store.get(cell) is not None  # write-through persisted it

        fresh = ServingCore(store)  # cold LRU, warm store
        hit = run(fresh.solve_cell(cell))
        again = run(fresh.solve_cell(cell))
        fresh.close()
        assert hit.source == "store"
        assert again.source == "lru"
        assert report_to_dict(hit.report) == report_to_dict(outcome.report)

    def test_storeless_core_always_computes(self):
        rec = Recorder()
        core = ServingCore(
            None, cache_size=0, compute_batch=rec.compute_batch
        )
        run(core.solve_cell(make_cell("RD")))
        run(core.solve_cell(make_cell("RD")))
        core.close()
        assert len(rec.calls) == 2


class TestBitIdentical:
    def test_served_report_equals_a_direct_engine_run(self):
        cell = make_cell("LI", seed=3)
        core = ServingCore(None)  # default compute: the real engines
        outcome = run(core.solve_cell(cell))
        core.close()
        direct = Experiment(cell.config).run(cell.scheme)
        assert report_to_dict(outcome.report) == report_to_dict(direct)

    def test_batched_and_lone_computation_agree(self):
        cells = [make_cell(s, seed=4) for s in ("RD", "F0", "LI")]
        core = ServingCore(None, batch_window_s=0.01)

        async def scenario():
            return await asyncio.gather(*(core.solve_cell(c) for c in cells))

        outcomes = run(scenario())
        core.close()
        for cell, outcome in zip(cells, outcomes):
            assert report_to_dict(outcome.report) == report_to_dict(
                compute_cell(cell)
            )


class TestIntrospection:
    def test_cache_stats_counts_sources(self):
        rec = Recorder()
        core = ServingCore(None, compute_batch=rec.compute_batch)

        async def scenario():
            await core.solve_cell(make_cell("RD"))
            await core.solve_cell(make_cell("RD"))

        run(scenario())
        stats = core.cache_stats()
        core.close()
        assert stats["solved_by_source"] == {"computed": 1, "lru": 1}
        assert stats["lru_entries"] == 1
        assert stats["lru_capacity"] == core.cache_size
        assert stats["inflight"] == 0
        assert stats["pending_batches"] == 0

    def test_drain_returns_once_idle(self):
        rec = Recorder()
        core = ServingCore(None, compute_batch=rec.compute_batch)

        async def scenario():
            task = asyncio.ensure_future(core.solve_cell(make_cell("RD")))
            await core.drain()
            assert not core._inflight and not core._pending
            await task

        run(scenario())
        core.close()
