"""Live observability: request ids end to end, history, SLO, top."""

from __future__ import annotations

import asyncio
import io
import re
import threading

import pytest

from repro.obs.history import MetricsHistory
from repro.obs.logging import (
    MemorySink,
    bound_request_id,
    configure_logging,
    reset_logging,
)
from repro.obs.telemetry import Telemetry
from repro.serve import ServeApp, ServeError, ServingCore
from repro.serve.http import HttpRequest
from repro.serve.top import render, run_top

from tests.serve.conftest import make_cell, run

HEX_ID = re.compile(r"^[0-9a-f]{16}$")


def root_span_ids(report_doc: dict) -> str | None:
    """The request_ids attr on a report JSON's root solve span."""
    for row in report_doc["telemetry"]["spans"]:
        if row["name"] == "solve" and row["depth"] == 0:
            return row["attrs"].get("request_ids")
    return None


class TestRequestIdsOverHttp:
    def test_every_response_carries_a_minted_id(self, served):
        served.client.health()
        rid = served.client.last_request_id
        assert rid is not None and HEX_ID.match(rid)
        served.client.health()
        assert served.client.last_request_id != rid  # one id per request

    def test_inbound_id_is_honored(self, served):
        served.client.solve(
            request_id="caller-chosen-id", scheme="RD", seed=1101, trace=True
        )
        assert served.client.last_request_id == "caller-chosen-id"

    def test_hostile_inbound_id_is_replaced(self, served):
        served.client.solve(request_id="has spaces!", scheme="RD", seed=1102)
        rid = served.client.last_request_id
        assert rid != "has spaces!"
        assert HEX_ID.match(rid)

    def test_error_responses_carry_the_id_too(self, served):
        with pytest.raises(ServeError):
            served.client.solve(request_id="err-rid", scheme="NOPE")
        assert served.client.last_request_id == "err-rid"

    def test_request_id_resolves_to_the_stored_span_tree(self, served):
        """The acceptance demo: id in, same id on the stored trace."""
        answer = served.client.solve(
            request_id="corr-demo-1", scheme="RD", seed=1103, trace=True
        )
        assert answer["cache"] == "computed"
        stored = served.client.report(answer["key"])
        assert root_span_ids(stored["report"]) == "corr-demo-1"
        # the id also rides the solve response itself
        assert root_span_ids(answer["report"]) == "corr-demo-1"

    def test_request_id_lands_in_the_structured_logs(self, served):
        sink = MemorySink()
        configure_logging(level="debug", stderr=False, memory=sink)
        try:
            served.client.solve(
                request_id="log-corr-1", scheme="RD", seed=1104
            )
            records = [
                r for r in sink.records() if r.request_id == "log-corr-1"
            ]
            assert any(r.msg == "request" for r in records)
            assert any(r.msg == "solve answered" for r in records)
        finally:
            reset_logging()

    def test_untraced_solves_have_no_id_annotation(self, served):
        answer = served.client.solve(
            request_id="no-trace-rid", scheme="RD", seed=1105
        )
        assert answer["cache"] == "computed"
        assert answer["report"]["telemetry"] is None


class TestCoalescedIds:
    def test_coalesced_requests_share_compute_but_keep_their_ids(self):
        """Two identical in-flight solves: one computation, both ids on
        the shared trace, each waiter keeps its own identity."""
        gate = threading.Event()
        cell = make_cell(seed=1110)

        def slow_batch(config, schemes):
            gate.wait(timeout=30.0)
            # a minimal traced report: the annotation targets the root
            # solve span of whatever the engine produced
            from types import SimpleNamespace

            tel = Telemetry()
            with tel.spans.span("solve"):
                pass
            report = SimpleNamespace(details={"telemetry": tel})
            return {scheme: report for scheme in schemes}

        async def scenario():
            core = ServingCore(None, compute_batch=slow_batch)
            with core:

                async def one(rid):
                    with bound_request_id(rid):
                        return await core.solve_cell(cell)

                first = asyncio.create_task(one("rid-aaaa"))
                # let the leader register as in-flight before the twin
                while not core._inflight:
                    await asyncio.sleep(0.001)
                second = asyncio.create_task(one("rid-bbbb"))
                while cell_waiters(core) < 2:
                    await asyncio.sleep(0.001)
                gate.set()
                return await asyncio.gather(first, second)

        def cell_waiters(core):
            ids = core._inflight_ids.values()
            return sum(len(v) for v in ids)

        a, b = run(scenario())
        assert {a.source, b.source} == {"computed", "coalesced"}
        assert a.report is b.report  # one computation served both
        tel = a.report.details["telemetry"]
        root = tel.spans.of_name("solve")[0]
        assert dict(root.attrs)["request_ids"] == "rid-aaaa,rid-bbbb"

    def test_microbatched_cells_each_keep_their_own_id(self, served):
        """Distinct schemes of one config share a batch (one Experiment)
        but are distinct cells: each trace gets its own request id."""
        from repro.serve.client import ServeClient

        answers = {}

        def solve(scheme, rid):
            with ServeClient(served.server.host, served.server.port) as c:
                answers[scheme] = c.solve(
                    request_id=rid, scheme=scheme, seed=1111, trace=True
                )

        threads = [
            threading.Thread(target=solve, args=("RD", "rid-batch-rd")),
            threading.Thread(target=solve, args=("F0", "rid-batch-f0")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert answers["RD"]["cache"] == "computed"
        assert answers["F0"]["cache"] == "computed"
        assert root_span_ids(answers["RD"]["report"]) == "rid-batch-rd"
        assert root_span_ids(answers["F0"]["report"]) == "rid-batch-f0"


class TestMetricsHistoryEndpoint:
    def test_history_is_sampled_and_served(self, served):
        for _ in range(3):
            served.client.health()
        # don't wait out the 1 Hz sampler: take one sample directly
        served.app.history.sample(served.core.metrics)
        doc = served.client.metrics_history()
        assert doc["schema"] == 1
        assert len(doc["samples"]) >= 1
        newest = doc["samples"][-1]["metrics"]
        assert any(
            series.startswith("serve_requests")
            for series in newest["counters"]
        )

    def test_window_parameter_filters(self, served):
        served.client.health()
        doc = served.client.metrics_history(window_s=0.001)
        assert len(doc["samples"]) >= 1  # at least the newest survives

    def test_bad_window_is_a_400(self, served):
        with pytest.raises(ServeError) as err:
            served.client._request("GET", "/metrics/history?window=banana")
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            served.client._request("GET", "/metrics/history?window=-5")
        assert err.value.status == 400

    def test_history_capacity_bounds_the_payload(self):
        async def scenario():
            core = ServingCore(None)
            with core:
                app = ServeApp(core, history=MetricsHistory(capacity=3))
                req = HttpRequest(
                    method="GET", path="/healthz", query={}, headers={},
                    body=b"",
                )
                for _ in range(10):
                    await app.handle(req)
                    app.history.sample(core.metrics)
                assert len(app.history) == 3
                app._sampler_task.cancel()

        run(scenario())


class TestSloEndpoint:
    def test_slo_doc_shape(self, served):
        doc = served.client.slo()
        assert set(doc) == {"firing", "slos"}
        names = [s["name"] for s in doc["slos"]]
        assert names == ["availability", "latency"]
        for status in doc["slos"]:
            assert {"fast", "slow"} <= set(status)


class TestLatencyBuckets:
    def test_override_reshapes_the_serve_histograms(self):
        async def scenario():
            core = ServingCore(None, latency_buckets=(0.5, 0.05))
            with core:
                assert core.latency_buckets == (0.05, 0.5)  # sorted
                app = ServeApp(core)
                req = HttpRequest(
                    method="GET", path="/healthz", query={}, headers={},
                    body=b"",
                )
                await app.handle(req)
                snap = core.metrics.snapshot()
                series = [
                    s for s in snap["histograms"]
                    if s.startswith("serve_request_latency_s")
                ]
                assert series
                assert snap["histograms"][series[0]]["buckets"] == [0.05, 0.5]
                app._sampler_task.cancel()

        run(scenario())


class TestTopDashboard:
    def test_run_top_once_against_the_live_server(self, served):
        served.client.health()  # ensure at least one sample exists
        out = io.StringIO()
        code = run_top(
            served.server.host, served.server.port, once=True, out=out
        )
        assert code == 0
        frame = out.getvalue()
        assert "repro top" in frame
        assert "SLO burn" in frame
        assert "traffic" in frame
        assert "\x1b" not in frame  # --once emits no escape codes

    def test_render_flags_a_firing_slo(self):
        health = {"uptime_s": 10.0, "engines": ["analytic"], "store": False}
        history = MetricsHistory()
        history.append(0.0, {"counters": {}, "gauges": {}, "histograms": {}})
        slo_doc = {
            "firing": True,
            "slos": [{
                "name": "availability",
                "fast": {
                    "window_s": 60.0, "burn_rate": 833.3, "threshold": 14.0,
                    "requests": 60, "firing": True,
                },
                "slow": {
                    "window_s": 600.0, "burn_rate": 2.0, "threshold": 6.0,
                    "requests": 60, "firing": False,
                },
            }],
        }
        frame = render(health, history, slo_doc)
        assert "FIRING" in frame
        assert "!!" in frame


class TestLifetimeSummary:
    def test_summary_counts_requests_and_solves(self, served):
        served.client.health()
        summary = served.app.lifetime_summary()
        assert set(summary) == {
            "uptime_s", "requests", "errors_5xx", "solves_by_source",
            "history_samples",
        }
        assert summary["requests"] > 0
        assert summary["history_samples"] == len(served.app.history)
        assert summary["solves_by_source"].get("computed", 0) > 0
