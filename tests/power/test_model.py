"""Unit tests for the calibrated power model."""

import pytest

from repro.power.model import CoreState, PowerModel


class TestCorePower:
    def test_active_at_fmax_is_the_reference(self):
        pm = PowerModel()
        assert pm.core_power(2.3, CoreState.ACTIVE) == pytest.approx(pm.active_w)

    def test_static_plus_dynamic_decomposition(self):
        pm = PowerModel()
        assert pm.static_w + pm.dynamic_w == pytest.approx(pm.active_w)

    def test_idle_is_below_active(self):
        pm = PowerModel()
        assert pm.core_power(2.3, CoreState.IDLE) < pm.core_power(2.3, CoreState.ACTIVE)

    def test_cubic_frequency_scaling(self):
        pm = PowerModel()
        p_half = pm.core_power(1.15, CoreState.ACTIVE)
        expected = pm.static_w + pm.dynamic_w * (1.15 / 2.3) ** 3
        assert p_half == pytest.approx(expected)

    def test_sleep_power_is_flat(self):
        pm = PowerModel()
        assert pm.core_power(1.2, CoreState.SLEEP) == pm.core_power(2.3, CoreState.SLEEP)
        assert pm.core_power(2.3, CoreState.SLEEP) == pytest.approx(pm.sleep_w)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            PowerModel().core_power(0.0)

    def test_rejects_bad_calibration(self):
        with pytest.raises(ValueError):
            PowerModel(active_w=-1.0)
        with pytest.raises(ValueError):
            PowerModel(static_fraction=1.5)
        with pytest.raises(ValueError):
            PowerModel(idle_activity=2.0)


class TestPaperCalibration:
    """The Section-4.2 node-power ratios the defaults were fit to."""

    def test_reconstruct_without_dvfs_is_075x(self):
        pm = PowerModel()
        ratio = pm.reconstruct_node_w(24, dvfs=False) / pm.compute_node_w(24)
        assert ratio == pytest.approx(0.75, abs=0.01)

    def test_reconstruct_with_dvfs_is_045x(self):
        pm = PowerModel()
        ratio = pm.reconstruct_node_w(24, dvfs=True) / pm.compute_node_w(24)
        assert ratio == pytest.approx(0.45, abs=0.01)

    def test_dvfs_power_reduction_during_reconstruction_is_about_40pct(self):
        # "reduces power consumption during reconstructions by 40%"
        pm = PowerModel()
        without = pm.reconstruct_node_w(24, dvfs=False)
        with_ = pm.reconstruct_node_w(24, dvfs=True)
        assert (without - with_) / without == pytest.approx(0.40, abs=0.02)


class TestAggregates:
    def test_node_power_sums_heterogeneous_cores(self):
        pm = PowerModel()
        states = [(2.3, CoreState.ACTIVE), (1.2, CoreState.IDLE)]
        expected = pm.core_power(2.3, CoreState.ACTIVE) + pm.core_power(
            1.2, CoreState.IDLE
        )
        assert pm.node_power(states) == pytest.approx(expected)

    def test_uniform_power_scales_linearly(self):
        pm = PowerModel()
        assert pm.uniform_power(10, 2.3) == pytest.approx(10 * pm.core_power(2.3))

    def test_uniform_power_zero_cores(self):
        assert PowerModel().uniform_power(0, 2.3) == 0.0

    def test_checkpoint_power_below_compute(self):
        pm = PowerModel()
        assert pm.checkpoint_node_w(24) < pm.compute_node_w(24)

    def test_reconstruct_needs_a_core(self):
        with pytest.raises(ValueError):
            PowerModel().reconstruct_node_w(0, dvfs=False)
