"""Unit tests for phase-tagged energy accounting."""

import pytest

from repro.power.energy import EnergyAccount, PhaseTag


class TestPhaseTag:
    def test_resilience_classification(self):
        assert PhaseTag.CHECKPOINT.is_resilience
        assert PhaseTag.RESTORE.is_resilience
        assert PhaseTag.RECONSTRUCT.is_resilience
        assert PhaseTag.EXTRA.is_resilience
        assert PhaseTag.REDUNDANT.is_resilience
        assert not PhaseTag.SOLVE.is_resilience
        assert not PhaseTag.OVERHEAD.is_resilience


class TestEnergyAccount:
    def test_charge_returns_joules(self):
        acc = EnergyAccount()
        assert acc.charge(PhaseTag.SOLVE, time_s=2.0, power_w=50.0) == pytest.approx(100.0)

    def test_totals(self):
        acc = EnergyAccount()
        acc.charge(PhaseTag.SOLVE, time_s=2.0, power_w=50.0)
        acc.charge(PhaseTag.CHECKPOINT, time_s=1.0, power_w=30.0)
        assert acc.total_time_s == pytest.approx(3.0)
        assert acc.total_energy_j == pytest.approx(130.0)

    def test_accumulation_per_tag(self):
        acc = EnergyAccount()
        acc.charge(PhaseTag.SOLVE, time_s=1.0, power_w=10.0)
        acc.charge(PhaseTag.SOLVE, time_s=1.0, power_w=20.0)
        assert acc.time(PhaseTag.SOLVE) == pytest.approx(2.0)
        assert acc.energy(PhaseTag.SOLVE) == pytest.approx(30.0)

    def test_resilience_split(self):
        acc = EnergyAccount()
        acc.charge(PhaseTag.SOLVE, time_s=10.0, power_w=100.0)
        acc.charge(PhaseTag.OVERHEAD, time_s=2.0, power_w=100.0)
        acc.charge(PhaseTag.RECONSTRUCT, time_s=1.0, power_w=50.0)
        acc.charge(PhaseTag.EXTRA, time_s=3.0, power_w=100.0)
        assert acc.solve_time_s == pytest.approx(12.0)
        assert acc.resilience_time_s == pytest.approx(4.0)
        assert acc.solve_energy_j == pytest.approx(1200.0)
        assert acc.resilience_energy_j == pytest.approx(350.0)

    def test_overlapped_energy_has_no_time(self):
        acc = EnergyAccount()
        acc.charge_energy(PhaseTag.REDUNDANT, 500.0)
        assert acc.total_time_s == 0.0
        assert acc.total_energy_j == pytest.approx(500.0)
        assert acc.resilience_energy_j == pytest.approx(500.0)

    def test_average_power(self):
        acc = EnergyAccount()
        acc.charge(PhaseTag.SOLVE, time_s=2.0, power_w=100.0)
        acc.charge(PhaseTag.CHECKPOINT, time_s=2.0, power_w=50.0)
        assert acc.average_power_w == pytest.approx(75.0)

    def test_average_power_empty(self):
        assert EnergyAccount().average_power_w == 0.0

    def test_resilience_ratio(self):
        acc = EnergyAccount()
        acc.charge(PhaseTag.SOLVE, time_s=1.0, power_w=100.0)
        acc.charge(PhaseTag.RECONSTRUCT, time_s=1.0, power_w=50.0)
        assert acc.resilience_ratio() == pytest.approx(0.5)

    def test_resilience_ratio_no_solve(self):
        assert EnergyAccount().resilience_ratio() == 0.0

    def test_merged_with(self):
        a, b = EnergyAccount(), EnergyAccount()
        a.charge(PhaseTag.SOLVE, time_s=1.0, power_w=10.0)
        b.charge(PhaseTag.SOLVE, time_s=1.0, power_w=10.0)
        b.charge(PhaseTag.EXTRA, time_s=1.0, power_w=5.0)
        m = a.merged_with(b)
        assert m.time(PhaseTag.SOLVE) == pytest.approx(2.0)
        assert m.energy(PhaseTag.EXTRA) == pytest.approx(5.0)
        # originals untouched
        assert a.time(PhaseTag.SOLVE) == pytest.approx(1.0)

    def test_rejects_negative(self):
        acc = EnergyAccount()
        with pytest.raises(ValueError):
            acc.charge(PhaseTag.SOLVE, time_s=-1.0, power_w=1.0)
        with pytest.raises(ValueError):
            acc.charge(PhaseTag.SOLVE, time_s=1.0, power_w=-1.0)
        with pytest.raises(ValueError):
            acc.charge_energy(PhaseTag.SOLVE, -1.0)
