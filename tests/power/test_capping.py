"""Tests for RAPL-style power capping."""

import numpy as np
import pytest

from repro.core.solver import ResilientSolver, SolverConfig
from repro.power.capping import (
    PowerCapError,
    frequency_under_cap,
    slowdown_at,
)
from repro.power.model import CoreState, PowerModel
from tests.conftest import quick_config


class TestFrequencyUnderCap:
    def test_generous_cap_runs_at_fmax(self):
        pm = PowerModel()
        op = frequency_under_cap(pm, 24, cap_w=1e6)
        assert op.f_ghz == pytest.approx(pm.ladder.fmax_ghz)
        assert op.headroom_w > 0

    def test_tight_cap_derates(self):
        pm = PowerModel()
        full = pm.uniform_power(24, pm.ladder.fmax_ghz, CoreState.ACTIVE)
        op = frequency_under_cap(pm, 24, cap_w=0.7 * full)
        assert op.f_ghz < pm.ladder.fmax_ghz
        assert op.power_w <= 0.7 * full

    def test_picks_highest_feasible_step(self):
        pm = PowerModel()
        # cap exactly at the power of one ladder step
        f_target = pm.ladder.steps[5]
        cap = pm.uniform_power(16, f_target, CoreState.ACTIVE)
        op = frequency_under_cap(pm, 16, cap_w=cap)
        assert op.f_ghz == pytest.approx(f_target)

    def test_impossible_cap_raises(self):
        pm = PowerModel()
        floor = pm.uniform_power(24, pm.ladder.fmin_ghz, CoreState.ACTIVE)
        with pytest.raises(PowerCapError):
            frequency_under_cap(pm, 24, cap_w=0.5 * floor)

    def test_validation(self):
        pm = PowerModel()
        with pytest.raises(ValueError):
            frequency_under_cap(pm, 0, 100.0)
        with pytest.raises(ValueError):
            frequency_under_cap(pm, 4, 0.0)

    def test_slowdown(self):
        pm = PowerModel()
        assert slowdown_at(pm, pm.ladder.fmax_ghz) == pytest.approx(1.0)
        assert slowdown_at(pm, 1.15) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            slowdown_at(pm, 0.0)


class TestCappedSolver:
    @pytest.fixture(scope="class")
    def system(self):
        from repro.matrices.generators import banded_spd

        a = banded_spd(300, 7, dominance=5e-3, seed=0)
        b = a @ np.random.default_rng(0).standard_normal(300)
        return a, b

    def test_cap_respected_and_numerics_identical(self, system):
        a, b = system
        free = ResilientSolver(a, b, config=quick_config(nranks=8)).solve()
        cap_w = 8 * 10.0 * 0.6
        capped = ResilientSolver(
            a, b, config=quick_config(nranks=8, power_cap_w=cap_w)
        ).solve()
        assert capped.average_power_w <= cap_w * 1.0001
        assert capped.iterations == free.iterations
        assert np.allclose(capped.residual_history, free.residual_history)

    def test_capped_run_is_slower(self, system):
        a, b = system
        free = ResilientSolver(a, b, config=quick_config(nranks=8)).solve()
        capped = ResilientSolver(
            a, b, config=quick_config(nranks=8, power_cap_w=8 * 6.0)
        ).solve()
        assert capped.time_s > free.time_s
        assert capped.details["operating_frequency_ghz"] < 2.3

    def test_energy_performance_tradeoff_monotone(self, system):
        """Tighter caps: monotonically more time, monotonically less
        power (the cubic-vs-linear trade the paper leans on)."""
        a, b = system
        caps = [None, 8 * 9.0, 8 * 7.0, 8 * 5.5]
        times, powers = [], []
        for cap in caps:
            rep = ResilientSolver(
                a, b, config=quick_config(nranks=8, power_cap_w=cap)
            ).solve()
            times.append(rep.time_s)
            powers.append(rep.average_power_w)
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert all(b <= a for a, b in zip(powers, powers[1:]))

    def test_cap_with_recovery_scheme(self, system):
        from repro.core.recovery import make_scheme
        from repro.faults.schedule import EvenlySpacedSchedule

        a, b = system
        rep = ResilientSolver(
            a,
            b,
            scheme=make_scheme("LI-DVFS"),
            schedule=EvenlySpacedSchedule(n_faults=2),
            config=quick_config(nranks=8, power_cap_w=8 * 7.0),
        ).solve()
        assert rep.converged
        assert rep.average_power_w <= 8 * 7.0 * 1.0001

    def test_invalid_cap_config(self):
        with pytest.raises(ValueError):
            SolverConfig(power_cap_w=0.0)
