"""Unit tests for the simulated RAPL meter."""

import numpy as np
import pytest

from repro.power.rapl import RaplDomain, RaplMeter


@pytest.fixture()
def meter() -> RaplMeter:
    m = RaplMeter()
    m.record("compute", 0.0, 2.0, 100.0)
    m.record("checkpoint", 2.0, 3.0, 40.0)
    m.record("compute", 3.0, 5.0, 100.0)
    return m


class TestEnergyCounter:
    def test_total_energy(self, meter):
        assert meter.energy_j() == pytest.approx(200 + 40 + 200)

    def test_energy_up_to_time(self, meter):
        assert meter.energy_j(1.0) == pytest.approx(100.0)
        assert meter.energy_j(2.5) == pytest.approx(220.0)
        assert meter.energy_j(100.0) == pytest.approx(440.0)

    def test_counter_is_microjoules(self, meter):
        assert meter.counter_uj(1.0) == int(100.0 * 1e6)

    def test_counter_wraps_32bit(self):
        m = RaplMeter()
        m.record("x", 0.0, 10_000.0, 1000.0)  # 10 MJ = 1e13 uJ >> 2^32
        assert 0 <= m.counter_uj() < 2**32

    def test_empty_meter(self):
        assert RaplMeter().energy_j() == 0.0


class TestPowerTrace:
    def test_trace_recovers_plateaus(self, meter):
        times, watts = meter.power_trace(0.5)
        assert watts[0] == pytest.approx(100.0)
        # the checkpoint dip is visible
        dip = watts[(times > 2.0) & (times <= 3.0)]
        assert np.allclose(dip, 40.0)

    def test_mean_power_over_window(self, meter):
        assert meter.mean_power_w(0.0, 2.0) == pytest.approx(100.0)
        assert meter.mean_power_w(2.0, 3.0) == pytest.approx(40.0)
        assert meter.mean_power_w() == pytest.approx(440.0 / 5.0)

    def test_trace_empty(self):
        t, w = RaplMeter().power_trace(0.1)
        assert t.size == 0 and w.size == 0

    def test_trace_rejects_bad_period(self, meter):
        with pytest.raises(ValueError):
            meter.power_trace(0.0)

    def test_domain_default(self):
        assert RaplMeter().domain is RaplDomain.PACKAGE
