"""Unit tests for the DVFS controller."""

import numpy as np
import pytest

from repro.power.dvfs import DvfsController, Governor


@pytest.fixture()
def ctl() -> DvfsController:
    return DvfsController(ncores=4)


class TestGovernors:
    def test_starts_at_fmax_performance(self, ctl):
        assert ctl.governor is Governor.PERFORMANCE
        assert np.allclose(ctl.frequencies, 2.3)

    def test_powersave_drops_everything(self, ctl):
        ctl.set_governor(Governor.POWERSAVE)
        assert np.allclose(ctl.frequencies, 1.2)

    def test_performance_restores_fmax(self, ctl):
        ctl.set_governor(Governor.POWERSAVE)
        ctl.set_governor(Governor.PERFORMANCE)
        assert np.allclose(ctl.frequencies, 2.3)

    def test_userspace_required_for_set_frequency(self, ctl):
        with pytest.raises(PermissionError):
            ctl.set_frequency(0, 1.5)
        ctl.set_governor(Governor.USERSPACE)
        assert ctl.set_frequency(0, 1.5) == pytest.approx(1.5)

    def test_ondemand_required_for_utilization(self, ctl):
        with pytest.raises(PermissionError):
            ctl.on_utilization(0, 0.5)


class TestUserspace:
    def test_set_frequency_snaps_to_ladder(self, ctl):
        ctl.set_governor(Governor.USERSPACE)
        assert ctl.set_frequency(1, 1.234) == pytest.approx(1.2)
        assert ctl.frequency_of(1) == pytest.approx(1.2)

    def test_per_core_independence(self, ctl):
        ctl.set_governor(Governor.USERSPACE)
        ctl.set_frequency(0, 1.2)
        assert ctl.frequency_of(0) == pytest.approx(1.2)
        assert ctl.frequency_of(1) == pytest.approx(2.3)

    def test_li_dvfs_schedule(self, ctl):
        """The Section-4.2 pattern: victim at f_max, rest at f_min."""
        ctl.set_governor(Governor.USERSPACE)
        ctl.set_all(1.2)
        ctl.set_frequency(2, 2.3)
        assert ctl.frequency_of(2) == pytest.approx(2.3)
        assert all(
            ctl.frequency_of(c) == pytest.approx(1.2) for c in (0, 1, 3)
        )

    def test_core_out_of_range(self, ctl):
        ctl.set_governor(Governor.USERSPACE)
        with pytest.raises(IndexError):
            ctl.set_frequency(7, 1.5)


class TestOndemand:
    def test_high_utilization_jumps_to_fmax(self, ctl):
        ctl.set_governor(Governor.ONDEMAND)
        ctl._apply(0, 1.2, 0.0)
        assert ctl.on_utilization(0, 0.99) == pytest.approx(2.3)

    def test_low_utilization_scales_down(self, ctl):
        ctl.set_governor(Governor.ONDEMAND)
        f = ctl.on_utilization(0, 0.1)
        assert f < 2.3

    def test_utilization_bounds(self, ctl):
        ctl.set_governor(Governor.ONDEMAND)
        with pytest.raises(ValueError):
            ctl.on_utilization(0, 1.5)


class TestTransitions:
    def test_transitions_are_logged(self, ctl):
        ctl.set_governor(Governor.USERSPACE)
        ctl.set_frequency(0, 1.2, time_s=1.0)
        ctl.set_frequency(0, 2.3, time_s=2.0)
        assert ctl.transition_count(0) == 2
        assert ctl.transitions[0].time_s == 1.0
        assert ctl.transitions[0].f_from_ghz == pytest.approx(2.3)
        assert ctl.transitions[0].f_to_ghz == pytest.approx(1.2)

    def test_noop_set_is_not_a_transition(self, ctl):
        ctl.set_governor(Governor.USERSPACE)
        ctl.set_frequency(0, 2.3)  # already there
        assert ctl.transition_count() == 0

    def test_count_all_cores(self, ctl):
        ctl.set_governor(Governor.USERSPACE)
        ctl.set_all(1.2)
        assert ctl.transition_count() == 4

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            DvfsController(ncores=0)
