"""Unit tests for process-to-core binding."""

import pytest

from repro.cluster.machine import MachineSpec, NodeSpec
from repro.cluster.topology import ProcessBinding


def machine(nodes: int, cores: int) -> MachineSpec:
    return MachineSpec(nodes=nodes, node=NodeSpec(sockets=1, cores_per_socket=cores))


class TestProcessBinding:
    def test_block_placement(self):
        b = ProcessBinding(machine(2, 4), 8)
        assert [b.node_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_core_within_node(self):
        b = ProcessBinding(machine(2, 4), 8)
        assert [b.core_of(r) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_same_node(self):
        b = ProcessBinding(machine(2, 4), 8)
        assert b.same_node(0, 3)
        assert not b.same_node(3, 4)

    def test_ranks_on_node(self):
        b = ProcessBinding(machine(2, 4), 6)
        assert list(b.ranks_on_node(0)) == [0, 1, 2, 3]
        assert list(b.ranks_on_node(1)) == [4, 5]

    def test_nodes_used_partial(self):
        assert ProcessBinding(machine(4, 4), 6).nodes_used == 2
        assert ProcessBinding(machine(4, 4), 4).nodes_used == 1
        assert ProcessBinding(machine(4, 4), 16).nodes_used == 4

    def test_rejects_too_many_ranks(self):
        with pytest.raises(ValueError):
            ProcessBinding(machine(1, 4), 5)

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            ProcessBinding(machine(1, 4), 0)

    def test_rank_out_of_range(self):
        b = ProcessBinding(machine(1, 4), 4)
        with pytest.raises(IndexError):
            b.node_of(4)
        with pytest.raises(IndexError):
            b.core_of(-1)
