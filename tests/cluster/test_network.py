"""Unit tests for the Hockney network model and collective costs."""

import math

import pytest

from repro.cluster.machine import MachineSpec, NodeSpec
from repro.cluster.network import CollectiveCosts, LinkParams, NetworkModel
from repro.cluster.topology import ProcessBinding


def binding(nranks: int, cores_per_node: int = 4) -> ProcessBinding:
    machine = MachineSpec(
        nodes=max(1, -(-nranks // cores_per_node)),
        node=NodeSpec(sockets=1, cores_per_socket=cores_per_node),
    )
    return ProcessBinding(machine, nranks)


class TestLinkParams:
    def test_message_time_is_alpha_plus_beta_n(self):
        link = LinkParams(latency_s=1e-6, bandwidth_gbps=1.0)
        assert link.message_time(0) == pytest.approx(1e-6)
        assert link.message_time(1e9) == pytest.approx(1e-6 + 1.0)

    def test_monotone_in_bytes(self):
        link = LinkParams(latency_s=1e-6, bandwidth_gbps=5.0)
        assert link.message_time(2000) > link.message_time(1000)

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            LinkParams(1e-6, 1.0).message_time(-1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LinkParams(latency_s=-1.0, bandwidth_gbps=1.0)
        with pytest.raises(ValueError):
            LinkParams(latency_s=1e-6, bandwidth_gbps=0.0)


class TestNetworkModel:
    def test_intra_node_is_faster(self):
        net = NetworkModel()
        nbytes = 8192
        assert net.p2p_time(nbytes, same_node=True) < net.p2p_time(
            nbytes, same_node=False
        )

    def test_link_for_uses_binding(self):
        net = NetworkModel()
        b = binding(8, cores_per_node=4)
        assert net.link_for(b, 0, 1) is net.intra
        assert net.link_for(b, 0, 5) is net.inter


class TestCollectiveCosts:
    def test_single_rank_collectives_are_free(self):
        c = CollectiveCosts(NetworkModel(), binding(1))
        assert c.barrier() == 0.0
        assert c.allreduce(8) == 0.0
        assert c.bcast(8) == 0.0
        assert c.allgather(8) == 0.0

    def test_allreduce_scales_logarithmically(self):
        net = NetworkModel()
        t4 = CollectiveCosts(net, binding(4, 1)).allreduce(8)
        t16 = CollectiveCosts(net, binding(16, 1)).allreduce(8)
        t256 = CollectiveCosts(net, binding(256, 1)).allreduce(8)
        # doubling rounds: log2(16)/log2(4) = 2, log2(256)/log2(4) = 4
        assert t16 / t4 == pytest.approx(2.0, rel=1e-6)
        assert t256 / t4 == pytest.approx(4.0, rel=1e-6)

    def test_allreduce_is_two_rounds_of_bcast(self):
        c = CollectiveCosts(NetworkModel(), binding(8, 1))
        assert c.allreduce(64) == pytest.approx(2 * c.bcast(64))

    def test_multinode_uses_inter_level(self):
        net = NetworkModel()
        one_node = CollectiveCosts(net, binding(4, cores_per_node=4))
        two_node = CollectiveCosts(net, binding(8, cores_per_node=4))
        # same round count (log2(4)=2 vs log2(8)=3) — compare per round
        per_round_1 = one_node.bcast(1024) / 2
        per_round_2 = two_node.bcast(1024) / 3
        assert per_round_2 > per_round_1

    def test_allgather_bandwidth_term_covers_all_ranks(self):
        c = CollectiveCosts(NetworkModel(), binding(8, 1))
        small = c.allgather(8)
        big = c.allgather(8 * 1024 * 1024)
        link = NetworkModel().inter
        expected_bw = 7 * 8 * 1024 * 1024 * link.beta_s_per_byte
        assert big - small == pytest.approx(
            expected_bw - 7 * 8 * link.beta_s_per_byte, rel=1e-9
        )

    def test_barrier_has_no_bandwidth_term(self):
        c = CollectiveCosts(NetworkModel(), binding(16, 1))
        rounds = math.ceil(math.log2(16))
        assert c.barrier() == pytest.approx(rounds * NetworkModel().inter.latency_s)

    def test_reduce_equals_bcast(self):
        c = CollectiveCosts(NetworkModel(), binding(8, 1))
        assert c.reduce(512) == pytest.approx(c.bcast(512))

    def test_gather_matches_allgather_shape(self):
        c = CollectiveCosts(NetworkModel(), binding(8, 1))
        assert c.gather(512) == pytest.approx(c.allgather(512))
