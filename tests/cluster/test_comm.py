"""Unit tests for the simulated communicator."""

import numpy as np
import pytest

from repro.cluster.comm import SimComm
from repro.cluster.machine import MachineSpec, NodeSpec


def comm(nranks: int, cores_per_node: int = 4) -> SimComm:
    machine = MachineSpec(
        nodes=max(1, -(-nranks // cores_per_node)),
        node=NodeSpec(sockets=1, cores_per_socket=cores_per_node),
    )
    return SimComm(machine, nranks)


class TestSimCommBasics:
    def test_machine_grows_to_fit(self):
        machine = MachineSpec(nodes=1, node=NodeSpec(sockets=1, cores_per_socket=4))
        c = SimComm(machine, 10)
        assert c.machine.total_cores >= 10

    def test_clocks_start_at_zero(self):
        assert comm(4).now == 0.0


class TestPointToPoint:
    def test_send_recv_synchronises_both_ends(self):
        c = comm(8)
        c.clocks.advance_rank(0, 1.0)
        done = c.send_recv(0, 5, 1024)
        assert c.clocks.times[0] == pytest.approx(done)
        assert c.clocks.times[5] == pytest.approx(done)
        assert done > 1.0

    def test_self_send_is_free(self):
        c = comm(4)
        t = c.send_recv(2, 2, 10_000)
        assert t == 0.0
        assert c.traffic.messages == 0

    def test_intra_node_cheaper(self):
        c1, c2 = comm(8), comm(8)
        t_intra = c1.send_recv(0, 1, 4096)
        t_inter = c2.send_recv(0, 5, 4096)
        assert t_intra < t_inter

    def test_traffic_accounting(self):
        c = comm(4)
        c.send_recv(0, 1, 100)
        c.send_recv(1, 2, 200)
        assert c.traffic.bytes_p2p == pytest.approx(300)
        assert c.traffic.messages == 2


class TestCollectives:
    def test_allreduce_synchronises_all(self):
        c = comm(8)
        c.clocks.advance([0, 1, 2, 3, 0, 1, 2, 3])
        t = c.allreduce(8)
        assert np.allclose(c.clocks.times, t)
        assert t > 3.0

    def test_allreduce_counts_traffic(self):
        c = comm(8)
        c.allreduce(8)
        assert c.traffic.bytes_collective == pytest.approx(64)
        assert c.traffic.collectives == 1

    def test_barrier_advances_to_max(self):
        c = comm(4)
        c.clocks.advance([5, 0, 0, 0])
        t = c.barrier()
        assert t >= 5.0
        assert np.allclose(c.clocks.times, t)

    def test_bcast_single_rank_free(self):
        c = comm(1)
        assert c.bcast(1024) == 0.0


class TestHaloExchange:
    def test_advances_participants_only(self):
        c = comm(8)
        c.halo_exchange({(0, 1): 800.0, (1, 0): 800.0})
        assert c.clocks.times[0] > 0
        assert c.clocks.times[1] > 0
        assert c.clocks.times[2] == 0.0

    def test_ignores_self_pairs(self):
        c = comm(4)
        c.halo_exchange({(2, 2): 1000.0})
        assert c.now == 0.0
        assert c.traffic.messages == 0

    def test_rejects_negative_volume(self):
        c = comm(4)
        with pytest.raises(ValueError):
            c.halo_exchange({(0, 1): -5.0})

    def test_volume_accumulates(self):
        c = comm(4)
        c.halo_exchange({(0, 1): 100.0, (2, 3): 50.0})
        assert c.traffic.bytes_p2p == pytest.approx(150.0)
        assert c.traffic.messages == 2


class TestCompute:
    def test_per_rank_compute(self):
        c = comm(4)
        c.compute([1.0, 2.0, 3.0, 4.0])
        assert c.now == 4.0

    def test_compute_rank(self):
        c = comm(4)
        c.compute_rank(2, 7.0)
        assert c.clocks.times[2] == 7.0
        assert c.clocks.times[0] == 0.0
