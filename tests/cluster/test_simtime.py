"""Unit tests for simulated clocks and phase logs."""

import numpy as np
import pytest

from repro.cluster.simtime import ClockArray, Phase, PhaseLog


class TestClockArray:
    def test_starts_at_zero(self):
        c = ClockArray(4)
        assert c.now == 0.0
        assert c.min == 0.0

    def test_scalar_advance_moves_everyone(self):
        c = ClockArray(3)
        c.advance(2.0)
        assert np.allclose(c.times, 2.0)

    def test_vector_advance(self):
        c = ClockArray(3)
        c.advance([1.0, 2.0, 3.0])
        assert c.now == 3.0
        assert c.min == 1.0

    def test_synchronize_is_barrier(self):
        c = ClockArray(3)
        c.advance([1.0, 2.0, 3.0])
        t = c.synchronize(0.5)
        assert t == pytest.approx(3.5)
        assert np.allclose(c.times, 3.5)

    def test_advance_rank(self):
        c = ClockArray(2)
        c.advance_rank(1, 4.0)
        assert c.times[0] == 0.0
        assert c.times[1] == 4.0

    def test_rejects_negative_durations(self):
        c = ClockArray(2)
        with pytest.raises(ValueError):
            c.advance(-1.0)
        with pytest.raises(ValueError):
            c.advance_rank(0, -0.1)
        with pytest.raises(ValueError):
            c.synchronize(-0.1)

    def test_times_view_is_readonly(self):
        c = ClockArray(2)
        with pytest.raises(ValueError):
            c.times[0] = 5.0

    def test_copy_is_independent(self):
        c = ClockArray(2)
        c.advance(1.0)
        d = c.copy()
        d.advance(1.0)
        assert c.now == 1.0
        assert d.now == 2.0

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            ClockArray(0)


class TestPhase:
    def test_energy_is_power_times_duration(self):
        p = Phase("compute", 1.0, 3.0, 100.0)
        assert p.duration == pytest.approx(2.0)
        assert p.energy_j == pytest.approx(200.0)

    def test_rejects_backwards_interval(self):
        with pytest.raises(ValueError):
            Phase("x", 2.0, 1.0, 10.0)

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            Phase("x", 0.0, 1.0, -5.0)


class TestPhaseLog:
    def test_totals_by_tag(self):
        log = PhaseLog()
        log.add("compute", 0.0, 1.0, 100.0)
        log.add("ckpt", 1.0, 2.0, 50.0)
        log.add("compute", 2.0, 3.0, 100.0)
        assert log.total_energy() == pytest.approx(250.0)
        assert log.total_energy("compute") == pytest.approx(200.0)
        assert log.total_time("ckpt") == pytest.approx(1.0)
        assert log.tags() == {"compute", "ckpt"}
        assert len(log) == 3

    def test_trace_samples_power(self):
        log = PhaseLog()
        log.add("a", 0.0, 1.0, 100.0)
        log.add("b", 1.0, 2.0, 50.0)
        times, watts = log.trace(dt=0.5)
        assert len(times) == 4
        assert watts[0] == pytest.approx(100.0)
        assert watts[-1] == pytest.approx(50.0)

    def test_trace_overlapping_phases_add(self):
        log = PhaseLog()
        log.add("primary", 0.0, 2.0, 100.0)
        log.add("replica", 0.0, 2.0, 100.0)
        _, watts = log.trace(dt=1.0)
        assert np.allclose(watts, 200.0)

    def test_trace_empty(self):
        times, watts = PhaseLog().trace(dt=0.1)
        assert times.size == 0 and watts.size == 0

    def test_trace_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            PhaseLog().trace(dt=0.0)
