"""Unit tests for the machine description."""

import pytest

from repro.cluster.machine import (
    CoreSpec,
    FrequencyLadder,
    MachineSpec,
    NodeSpec,
    paper_machine,
)


class TestFrequencyLadder:
    def test_default_matches_paper_platform(self):
        ladder = FrequencyLadder()
        assert ladder.fmin_ghz == pytest.approx(1.2)
        assert ladder.fmax_ghz == pytest.approx(2.3)

    def test_steps_are_inclusive_and_ascending(self):
        steps = FrequencyLadder().steps
        assert steps[0] == pytest.approx(1.2)
        assert steps[-1] == pytest.approx(2.3)
        assert list(steps) == sorted(steps)

    def test_default_step_count(self):
        # 1.2 .. 2.3 by 0.1 = 12 speeds
        assert len(FrequencyLadder().steps) == 12

    def test_clamp_snaps_to_nearest(self):
        ladder = FrequencyLadder()
        assert ladder.clamp(1.24) == pytest.approx(1.2)
        assert ladder.clamp(1.26) == pytest.approx(1.3)
        assert ladder.clamp(99.0) == pytest.approx(2.3)
        assert ladder.clamp(0.1) == pytest.approx(1.2)

    def test_contains(self):
        ladder = FrequencyLadder()
        assert 1.2 in ladder
        assert 2.3 in ladder
        assert 1.25 not in ladder

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            FrequencyLadder(fmin_ghz=2.3, fmax_ghz=1.2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FrequencyLadder(fmin_ghz=0.0)
        with pytest.raises(ValueError):
            FrequencyLadder(fstep_ghz=0.0)


class TestCoreSpec:
    def test_compute_time_scales_inversely_with_frequency(self):
        core = CoreSpec()
        fast = core.compute_time(1e9, 2.3)
        slow = core.compute_time(1e9, 1.2)
        assert slow > fast
        assert slow / fast == pytest.approx(2.3 / 1.2)

    def test_kinds_have_distinct_rates(self):
        core = CoreSpec()
        spmv = core.compute_time(1e9, 2.3, kind="spmv")
        dense = core.compute_time(1e9, 2.3, kind="dense")
        factor = core.compute_time(1e9, 2.3, kind="factor")
        assert dense < spmv < factor

    def test_zero_flops_take_zero_time(self):
        assert CoreSpec().compute_time(0.0, 2.3) == 0.0

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            CoreSpec().compute_time(-1.0, 2.3)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            CoreSpec().compute_time(1.0, 2.3, kind="quantum")

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            CoreSpec(spmv_gflops=0.0)


class TestNodeAndMachine:
    def test_paper_platform_is_192_cores(self):
        m = paper_machine()
        assert m.nodes == 8
        assert m.node.cores == 24
        assert m.total_cores == 192

    def test_node_core_count(self):
        assert NodeSpec(sockets=2, cores_per_socket=12).cores == 24

    def test_with_nodes_for_grows_exactly(self):
        m = MachineSpec(nodes=1)
        grown = m.with_nodes_for(49)
        assert grown.total_cores >= 49
        assert grown.nodes == 3  # 24-core nodes

    def test_with_nodes_for_exact_fit(self):
        m = MachineSpec(nodes=1)
        assert m.with_nodes_for(24).nodes == 1
        assert m.with_nodes_for(25).nodes == 2

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            MachineSpec(nodes=0)

    def test_rejects_zero_rank_request(self):
        with pytest.raises(ValueError):
            MachineSpec().with_nodes_for(0)
