"""Shared fixtures: small, fast systems for unit/integration tests."""

from __future__ import annotations

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster.machine import MachineSpec, NodeSpec
from repro.core.solver import ResilientSolver, SolverConfig
from repro.matrices import cache as problem_cache
from repro.matrices.generators import banded_spd, irregular_spd, stencil_5pt


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache_dir(tmp_path_factory):
    """Point the persistent cache at a per-session temp dir.

    Keeps the suite hermetic: results must not depend on whatever the
    repo-root ``.repro-cache/`` happens to hold from earlier campaign or
    benchmark runs, and tests must not pollute it.  The disk layer stays
    enabled so it is still exercised; tests that need full control
    (tests/matrices/test_cache.py) override per-test via monkeypatch.
    """
    prior = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if prior is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = prior


@pytest.fixture(scope="session")
def small_banded() -> sp.csr_matrix:
    """96x96 banded SPD, well conditioned (fast CG)."""
    return banded_spd(96, 5, dominance=0.05, seed=0)


@pytest.fixture(scope="session")
def medium_banded() -> sp.csr_matrix:
    """600x600 banded SPD, moderately conditioned."""
    return banded_spd(600, 9, dominance=1e-3, seed=1)


@pytest.fixture(scope="session")
def small_irregular() -> sp.csr_matrix:
    return irregular_spd(120, 7, dominance=0.05, seed=2, value_spread=0.5)


@pytest.fixture(scope="session")
def small_stencil() -> sp.csr_matrix:
    return stencil_5pt(10)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def small_system(small_banded, rng):
    """(DistributedMatrix over 4 ranks, b, x_true) for the small matrix.

    The DistributedMatrix comes from the session-wide problem cache, so
    every test (and every solver built on the same matrix/rank count)
    shares one halo analysis instead of redoing it per test.
    """
    n = small_banded.shape[0]
    x_true = rng.standard_normal(n)
    b = small_banded @ x_true
    dmat = problem_cache.distributed_matrix(small_banded, 4)
    return dmat, b, x_true


def quick_config(nranks: int = 4, **kw) -> SolverConfig:
    """Small machine, loose tolerance — keeps unit tests fast."""
    defaults = dict(
        nranks=nranks,
        tol=1e-8,
        max_iters=20_000,
        machine=MachineSpec(nodes=2, node=NodeSpec(sockets=1, cores_per_socket=4)),
    )
    defaults.update(kw)
    return SolverConfig(**defaults)


@pytest.fixture()
def solver_factory(small_banded, rng):
    """Factory building a ResilientSolver on the small system."""
    n = small_banded.shape[0]
    x_true = rng.standard_normal(n)
    b = small_banded @ x_true

    def build(scheme=None, schedule=None, nranks: int = 4, **cfg_kw):
        return ResilientSolver(
            small_banded,
            b,
            scheme=scheme,
            schedule=schedule,
            config=quick_config(nranks=nranks, **cfg_kw),
        )

    return build
