"""Unit tests for fault injection."""

import numpy as np
import pytest

from repro.faults.events import FaultClass, FaultEvent
from repro.faults.injector import FaultInjector
from repro.matrices.partition import BlockRowPartition


@pytest.fixture()
def injector() -> FaultInjector:
    return FaultInjector(BlockRowPartition(100, 4), seed=0)


class TestHardFaults:
    def test_poisons_victim_block_with_nan(self, injector):
        x = np.ones(100)
        sl = injector.inject(FaultEvent(5, victim_rank=1), x)
        assert np.all(np.isnan(x[sl]))

    def test_leaves_other_blocks_untouched(self, injector):
        x = np.arange(100, dtype=float)
        sl = injector.inject(FaultEvent(5, victim_rank=2), x)
        mask = np.ones(100, bool)
        mask[sl] = False
        assert np.array_equal(x[mask], np.arange(100, dtype=float)[mask])

    def test_damages_all_given_vectors(self, injector):
        x, r, p = np.ones(100), np.ones(100), np.ones(100)
        sl = injector.inject(FaultEvent(5, victim_rank=0), x, r, p)
        for v in (x, r, p):
            assert np.all(np.isnan(v[sl]))

    def test_returned_slice_matches_partition(self, injector):
        sl = injector.inject(FaultEvent(0, victim_rank=3), np.ones(100))
        assert sl == BlockRowPartition(100, 4).slice_of(3)


class TestSoftFaults:
    def test_sdc_corrupts_but_stays_finite(self, injector):
        x = np.ones(100)
        sl = injector.inject(FaultEvent(5, victim_rank=1, fault_class=FaultClass.SDC), x)
        assert np.all(np.isfinite(x[sl]))
        # at least one entry was changed
        assert not np.allclose(x[sl], 1.0)

    def test_sdc_touches_only_victim(self, injector):
        x = np.ones(100)
        sl = injector.inject(FaultEvent(5, victim_rank=1, fault_class=FaultClass.SDC), x)
        mask = np.ones(100, bool)
        mask[sl] = False
        assert np.allclose(x[mask], 1.0)

    def test_sdc_deterministic_given_seed(self):
        part = BlockRowPartition(100, 4)
        xs = []
        for _ in range(2):
            inj = FaultInjector(part, seed=42)
            x = np.ones(100)
            inj.inject(FaultEvent(5, 1, FaultClass.SDC), x)
            xs.append(x)
        assert np.array_equal(xs[0], xs[1])


class TestValidation:
    def test_rejects_wrong_length(self, injector):
        with pytest.raises(ValueError):
            injector.inject(FaultEvent(0, 0), np.ones(99))

    def test_rejects_2d(self, injector):
        with pytest.raises(ValueError):
            injector.inject(FaultEvent(0, 0), np.ones((10, 10)))
