"""Property tests for the adversarial fault-schedule fuzzer.

The fuzzer (:class:`tests.differential.FaultScheduleFuzzer`) feeds the
backend- and fast-path equivalence harnesses; these tests pin the
properties those harnesses rely on — determinism per seed, well-formed
schedules, and actual coverage of the adversarial patterns it claims to
generate (iteration-0 faults, simultaneous-rank pairs, back-to-back
faults, span-boundary hits).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.faults.schedule import FixedIterationSchedule
from tests.differential import FaultScheduleFuzzer

NRANKS = 8
HORIZON = 200
FUZZER = FaultScheduleFuzzer(NRANKS, HORIZON, hook_interval=40)
SEEDS = range(200)


def test_deterministic_per_seed():
    for seed in range(32):
        a = FUZZER.generate(seed)
        b = FUZZER.generate(seed)
        assert a.iterations == b.iterations
        assert a.victims == b.victims


def test_seeds_differ():
    # not a strict guarantee for any pair, but across 32 seeds the
    # generator must not collapse to a constant
    distinct = {
        (FUZZER.generate(s).iterations, FUZZER.generate(s).victims)
        for s in range(32)
    }
    assert len(distinct) > 16


def test_schedules_are_well_formed():
    for seed in SEEDS:
        sched = FUZZER.generate(seed)
        assert isinstance(sched, FixedIterationSchedule)
        evs = sched.events(nranks=NRANKS, horizon_iters=HORIZON)
        assert evs, "every fuzzed schedule injects at least one fault"
        iters = [e.iteration for e in evs]
        assert iters == sorted(iters)
        assert all(0 <= it < HORIZON for it in iters)
        assert all(0 <= e.victim_rank < NRANKS for e in evs)


def test_adversarial_patterns_covered():
    """Across a modest seed pool every claimed pattern must occur."""
    saw_iter0 = saw_pair = saw_back_to_back = saw_boundary = False
    for seed in SEEDS:
        evs = FUZZER.generate(seed).events(nranks=NRANKS, horizon_iters=HORIZON)
        by_iter = Counter(e.iteration for e in evs)
        if 0 in by_iter:
            saw_iter0 = True
        if any(n >= 2 for n in by_iter.values()):
            saw_pair = True
        its = sorted(by_iter)
        if any(b - a == 1 for a, b in zip(its, its[1:])):
            saw_back_to_back = True
        if any(it % FUZZER.hook_interval == 0 for it in by_iter if it > 0):
            saw_boundary = True
    assert saw_iter0, "no seed produced an iteration-0 fault"
    assert saw_pair, "no seed produced a simultaneous-rank pair"
    assert saw_back_to_back, "no seed produced back-to-back faults"
    assert saw_boundary, "no seed hit a hook-cadence span boundary"


def test_simultaneous_pair_uses_distinct_victims():
    for seed in SEEDS:
        evs = FUZZER.generate(seed).events(nranks=NRANKS, horizon_iters=HORIZON)
        by_iter: dict[int, list[int]] = {}
        for e in evs:
            by_iter.setdefault(e.iteration, []).append(e.victim_rank)
        for it, victims in by_iter.items():
            if len(victims) == 2:
                assert victims[0] != victims[1], (
                    f"seed {seed}: same victim twice at iteration {it}"
                )


def test_multivictim_deterministic_per_seed():
    for seed in range(16):
        a = FUZZER.generate_multivictim(seed)
        b = FUZZER.generate_multivictim(seed)
        assert a.iterations == b.iterations
        assert a.victims == b.victims


def test_multivictim_schedules_are_well_formed():
    """Events must materialize — i.e. no duplicate (iteration, victim)
    pair slips past the schedule's rejection — with in-range victims."""
    for seed in SEEDS:
        sched = FUZZER.generate_multivictim(seed)
        evs = sched.events(nranks=NRANKS, horizon_iters=HORIZON)
        assert evs
        iters = [e.iteration for e in evs]
        assert iters == sorted(iters)
        assert all(0 <= it < HORIZON for it in iters)
        for e in evs:
            assert len(set(e.victims)) == len(e.victims)
            assert all(0 <= v < NRANKS for v in e.victims)


def test_multivictim_patterns_guaranteed_every_seed():
    for seed in SEEDS:
        evs = FUZZER.generate_multivictim(seed).events(
            nranks=NRANKS, horizon_iters=HORIZON
        )
        by_iter = {e.iteration: e for e in evs}
        # simultaneous distinct-rank set at iteration 0
        assert 0 in by_iter and len(by_iter[0].victims) >= 2, seed
        # all-ranks-but-one appears somewhere
        assert any(len(e.victims) == NRANKS - 1 for e in evs), seed
        # span-boundary multi-victim (horizon crosses the hook cadence)
        assert any(
            e.iteration % FUZZER.hook_interval == 0 and e.iteration > 0
            and len(e.victims) >= 2
            for e in evs
        ), seed


def test_multivictim_requires_two_ranks():
    with pytest.raises(ValueError):
        FaultScheduleFuzzer(1, 100).generate_multivictim(0)


def test_repro_hint_names_the_seed():
    hint = FUZZER.repro_hint(17)
    assert "generate(17)" in hint
    assert f"nranks={NRANKS}" in hint
    assert f"horizon_iters={HORIZON}" in hint
    assert "generate_multivictim(3)" in FUZZER.repro_hint(
        3, method="generate_multivictim"
    )


def test_constructor_validation():
    with pytest.raises(ValueError):
        FaultScheduleFuzzer(0, 100)
    with pytest.raises(ValueError):
        FaultScheduleFuzzer(4, 1)
