"""Unit tests for fault schedules."""

import numpy as np
import pytest

from repro.faults.events import FaultClass
from repro.faults.schedule import (
    EmptySchedule,
    EvenlySpacedSchedule,
    FixedIterationSchedule,
    PoissonSchedule,
)


class TestEmptySchedule:
    def test_no_events(self):
        assert EmptySchedule().events(nranks=4, horizon_iters=100) == []

    def test_validates_args(self):
        with pytest.raises(ValueError):
            EmptySchedule().events(nranks=0, horizon_iters=10)


class TestFixedIterationSchedule:
    def test_explicit_pairs(self):
        s = FixedIterationSchedule(iterations=[5, 10], victims=[1, 2])
        evs = s.events(nranks=4, horizon_iters=100)
        assert [(e.iteration, e.victim_rank) for e in evs] == [(5, 1), (10, 2)]

    def test_default_victims_round_robin(self):
        s = FixedIterationSchedule(iterations=[1, 2, 3, 4, 5])
        evs = s.events(nranks=3, horizon_iters=10)
        assert [e.victim_rank for e in evs] == [0, 1, 2, 0, 1]

    def test_sorted_output(self):
        s = FixedIterationSchedule(iterations=[30, 10, 20])
        evs = s.events(nranks=2, horizon_iters=100)
        assert [e.iteration for e in evs] == [10, 20, 30]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            FixedIterationSchedule(iterations=[1, 2], victims=[0]).events(
                nranks=2, horizon_iters=10
            )

    def test_victim_out_of_range(self):
        with pytest.raises(ValueError):
            FixedIterationSchedule(iterations=[1], victims=[9]).events(
                nranks=2, horizon_iters=10
            )

    def test_fault_class_propagates(self):
        s = FixedIterationSchedule(iterations=[1], fault_class=FaultClass.SDC)
        assert s.events(nranks=2, horizon_iters=5)[0].fault_class is FaultClass.SDC

    def test_victim_set_entries(self):
        s = FixedIterationSchedule(iterations=[5, 9], victims=[(2, 0), 3])
        evs = s.events(nranks=4, horizon_iters=20)
        assert evs[0].victims == (2, 0)
        assert evs[0].victim_rank == 2  # primary victim is the first
        assert evs[1].victims == (3,)

    def test_victims_per_fault_widens_scalars(self):
        s = FixedIterationSchedule(
            iterations=[5], victims=[2], victims_per_fault=3
        )
        evs = s.events(nranks=4, horizon_iters=20)
        assert evs[0].victims == (2, 3, 0)  # wraps round-robin

    def test_victims_per_fault_exceeding_nranks_rejected(self):
        with pytest.raises(ValueError, match="exceeds nranks"):
            FixedIterationSchedule(
                iterations=[1], victims_per_fault=5
            ).events(nranks=4, horizon_iters=10)

    def test_duplicate_pair_across_events_rejected(self):
        """Satellite regression: the same (iteration, victim) pair may
        appear at most once, whether across two events..."""
        with pytest.raises(ValueError, match="duplicate fault"):
            FixedIterationSchedule(
                iterations=[5, 5], victims=[1, 1]
            ).events(nranks=4, horizon_iters=20)

    def test_duplicate_victim_within_event_rejected(self):
        """...or inside one event's victim set."""
        with pytest.raises(ValueError, match="duplicate fault"):
            FixedIterationSchedule(
                iterations=[5], victims=[(1, 2, 1)]
            ).events(nranks=4, horizon_iters=20)

    def test_duplicate_pair_between_set_and_scalar_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault"):
            FixedIterationSchedule(
                iterations=[5, 5], victims=[(0, 1), 1]
            ).events(nranks=4, horizon_iters=20)

    def test_same_victim_at_different_iterations_allowed(self):
        evs = FixedIterationSchedule(
            iterations=[5, 6], victims=[1, 1]
        ).events(nranks=4, horizon_iters=20)
        assert [(e.iteration, e.victim_rank) for e in evs] == [(5, 1), (6, 1)]

    def test_empty_victim_set_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            FixedIterationSchedule(
                iterations=[5], victims=[()]
            ).events(nranks=4, horizon_iters=20)


class TestEvenlySpacedSchedule:
    def test_count(self):
        evs = EvenlySpacedSchedule(n_faults=10).events(nranks=8, horizon_iters=1000)
        assert len(evs) == 10

    def test_faults_are_interior(self):
        """No fault at iteration 0 and none after the FF horizon."""
        evs = EvenlySpacedSchedule(n_faults=10).events(nranks=4, horizon_iters=500)
        for e in evs:
            assert 1 <= e.iteration <= 499

    def test_even_spacing(self):
        evs = EvenlySpacedSchedule(n_faults=4).events(nranks=4, horizon_iters=100)
        assert [e.iteration for e in evs] == [20, 40, 60, 80]

    def test_victims_rotate(self):
        evs = EvenlySpacedSchedule(n_faults=6, seed=0).events(
            nranks=3, horizon_iters=600
        )
        victims = [e.victim_rank for e in evs]
        # round robin: consecutive victims differ
        assert all(victims[i] != victims[i + 1] for i in range(5))
        assert set(victims) == {0, 1, 2}

    def test_deterministic_given_seed(self):
        a = EvenlySpacedSchedule(n_faults=5, seed=3).events(nranks=7, horizon_iters=300)
        b = EvenlySpacedSchedule(n_faults=5, seed=3).events(nranks=7, horizon_iters=300)
        assert a == b

    def test_zero_faults(self):
        assert EvenlySpacedSchedule(n_faults=0).events(nranks=4, horizon_iters=100) == []

    def test_zero_horizon(self):
        assert EvenlySpacedSchedule(n_faults=5).events(nranks=4, horizon_iters=0) == []

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            EvenlySpacedSchedule(n_faults=-1)

    def test_victims_per_fault_single_is_bitwise_legacy(self):
        """k=1 must reproduce the historical single-victim schedule."""
        legacy = EvenlySpacedSchedule(n_faults=4, seed=2).events(
            nranks=6, horizon_iters=400
        )
        k1 = EvenlySpacedSchedule(
            n_faults=4, seed=2, victims_per_fault=1
        ).events(nranks=6, horizon_iters=400)
        assert legacy == k1
        assert all(len(e.victims) == 1 for e in k1)

    def test_victims_per_fault_sets_are_distinct_consecutive(self):
        evs = EvenlySpacedSchedule(
            n_faults=3, seed=0, victims_per_fault=3
        ).events(nranks=8, horizon_iters=300)
        for e in evs:
            assert len(e.victims) == 3
            assert len(set(e.victims)) == 3
            assert e.victim_rank == e.victims[0]

    def test_victims_per_fault_rejected_at_construction(self):
        with pytest.raises(ValueError):
            EvenlySpacedSchedule(n_faults=1, victims_per_fault=0)


class TestPoissonSchedule:
    def test_deterministic_given_seed(self):
        a = PoissonSchedule(mtbf_iters=50, seed=1).events(nranks=4, horizon_iters=1000)
        b = PoissonSchedule(mtbf_iters=50, seed=1).events(nranks=4, horizon_iters=1000)
        assert a == b

    def test_mean_gap_approximates_mtbf(self):
        evs = PoissonSchedule(mtbf_iters=100, seed=7, horizon_factor=50).events(
            nranks=4, horizon_iters=10_000
        )
        gaps = np.diff([0] + [e.iteration for e in evs])
        assert abs(gaps.mean() - 100) / 100 < 0.15

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_mean_gap_matches_rate_across_seeds(self, seed):
        """Seeded inter-arrival mean ≈ 1/λ for every seed, not one lucky one."""
        mtbf = 60.0
        evs = PoissonSchedule(
            mtbf_iters=mtbf, seed=seed, horizon_factor=50
        ).events(nranks=8, horizon_iters=30_000)
        gaps = np.diff([0] + [e.iteration for e in evs])
        assert len(gaps) > 200
        assert abs(gaps.mean() - mtbf) / mtbf < 0.1

    def test_gaps_look_exponential(self):
        """Exponential inter-arrivals have coefficient of variation ~ 1."""
        evs = PoissonSchedule(mtbf_iters=80, seed=11, horizon_factor=50).events(
            nranks=4, horizon_iters=40_000
        )
        gaps = np.diff([0] + [e.iteration for e in evs]).astype(float)
        cv = gaps.std() / gaps.mean()
        assert 0.8 < cv < 1.2

    def test_events_sorted(self):
        evs = PoissonSchedule(mtbf_iters=20, seed=2).events(nranks=4, horizon_iters=500)
        iters = [e.iteration for e in evs]
        assert iters == sorted(iters)

    def test_horizon_factor_bounds_events(self):
        evs = PoissonSchedule(mtbf_iters=10, seed=0, horizon_factor=2.0).events(
            nranks=4, horizon_iters=100
        )
        assert all(e.iteration <= 200 for e in evs)

    def test_victims_in_range(self):
        evs = PoissonSchedule(mtbf_iters=5, seed=0).events(nranks=3, horizon_iters=100)
        assert all(0 <= e.victim_rank < 3 for e in evs)

    def test_rejects_bad_mtbf(self):
        with pytest.raises(ValueError):
            PoissonSchedule(mtbf_iters=0)

    def test_rejects_bad_horizon_factor(self):
        with pytest.raises(ValueError):
            PoissonSchedule(mtbf_iters=10, horizon_factor=0.5)

    def test_victims_per_fault_single_is_bitwise_legacy(self):
        """k=1 keeps the historical one-draw-per-event RNG stream."""
        legacy = PoissonSchedule(mtbf_iters=30, seed=4).events(
            nranks=5, horizon_iters=300
        )
        k1 = PoissonSchedule(
            mtbf_iters=30, seed=4, victims_per_fault=1
        ).events(nranks=5, horizon_iters=300)
        assert legacy == k1

    def test_victims_per_fault_draws_distinct_ranks(self):
        evs = PoissonSchedule(
            mtbf_iters=20, seed=3, victims_per_fault=3
        ).events(nranks=6, horizon_iters=400)
        assert evs
        for e in evs:
            assert len(e.victims) == 3
            assert len(set(e.victims)) == 3
            assert all(0 <= v < 6 for v in e.victims)
