"""Unit tests for the fault taxonomy."""

import pytest

from repro.faults.events import FaultClass, FaultEvent, FaultKind


class TestFaultClass:
    def test_soft_hard_split_matches_paper(self):
        softs = {c for c in FaultClass if c.is_soft}
        hards = {c for c in FaultClass if c.is_hard}
        assert softs == {FaultClass.DCE, FaultClass.DUE, FaultClass.SDC}
        assert hards == {FaultClass.SWO, FaultClass.SNF, FaultClass.LNF}

    def test_kinds_are_exclusive(self):
        for c in FaultClass:
            assert c.is_soft != c.is_hard

    def test_dce_needs_no_recovery(self):
        assert not FaultClass.DCE.needs_recovery
        for c in FaultClass:
            if c is not FaultClass.DCE:
                assert c.needs_recovery

    def test_labels(self):
        assert FaultClass.SNF.label == "SNF"
        assert FaultClass.SDC.kind is FaultKind.SOFT


class TestFaultEvent:
    def test_construction(self):
        e = FaultEvent(iteration=10, victim_rank=3)
        assert e.iteration == 10
        assert e.victim_rank == 3
        assert e.fault_class is FaultClass.SNF

    def test_rejects_negative_iteration(self):
        with pytest.raises(ValueError):
            FaultEvent(iteration=-1, victim_rank=0)

    def test_rejects_negative_victim(self):
        with pytest.raises(ValueError):
            FaultEvent(iteration=0, victim_rank=-2)

    def test_is_hashable_and_frozen(self):
        e = FaultEvent(1, 1)
        assert hash(e) == hash(FaultEvent(1, 1))
        with pytest.raises(AttributeError):
            e.iteration = 5
