"""Unit tests for the Figure-1 MTBF estimator."""

import pytest

from repro.faults.events import FaultClass
from repro.faults.mtbf import (
    EXASCALE,
    PETASCALE,
    MtbfEstimator,
    SystemClass,
)

HOURS_PER_DAY = 24.0


@pytest.fixture()
def est() -> MtbfEstimator:
    return MtbfEstimator()


class TestSystemClasses:
    def test_paper_machine_sizes(self):
        assert PETASCALE.nodes == 20_000
        assert EXASCALE.nodes == 1_000_000

    def test_exascale_technology_degrades_every_class(self):
        for cls in FaultClass:
            assert EXASCALE.factor(cls) > 1.0

    def test_default_factor_is_one(self):
        s = SystemClass("test", nodes=10)
        assert s.factor(FaultClass.SNF) == 1.0

    def test_rejects_empty_system(self):
        with pytest.raises(ValueError):
            SystemClass("bad", nodes=0)


class TestEstimates:
    def test_system_mtbf_scales_inversely_with_nodes(self, est):
        small = SystemClass("s", nodes=100)
        large = SystemClass("l", nodes=10_000)
        ratio = est.system_mtbf(FaultClass.SNF, small) / est.system_mtbf(
            FaultClass.SNF, large
        )
        assert ratio == pytest.approx(100.0)

    def test_petascale_mtbf_is_days(self, est):
        """The paper's 1-7 day band for petascale systems."""
        for cls in FaultClass:
            mtbf_days = est.system_mtbf(cls, PETASCALE) / HOURS_PER_DAY
            assert 1.0 <= mtbf_days <= 7.5, f"{cls.label}: {mtbf_days:.2f} days"

    def test_exascale_mtbf_within_an_hour(self, est):
        """'the MTBF of an exascale system is within an hour'."""
        for cls in FaultClass:
            assert est.system_mtbf(cls, EXASCALE) <= 4.0
        assert est.combined_system_mtbf(EXASCALE) < 1.0

    def test_rate_is_reciprocal(self, est):
        r = est.system_rate_per_hour(FaultClass.SNF, PETASCALE)
        assert r * est.system_mtbf(FaultClass.SNF, PETASCALE) == pytest.approx(1.0)

    def test_combined_rates_add(self, est):
        combined = est.combined_system_mtbf(
            PETASCALE, [FaultClass.SNF, FaultClass.LNF]
        )
        r = est.system_rate_per_hour(
            FaultClass.SNF, PETASCALE
        ) + est.system_rate_per_hour(FaultClass.LNF, PETASCALE)
        assert combined == pytest.approx(1.0 / r)

    def test_combined_below_any_single(self, est):
        combined = est.combined_system_mtbf(PETASCALE)
        singles = [est.system_mtbf(c, PETASCALE) for c in FaultClass]
        assert combined < min(singles)

    def test_figure1_table_structure(self, est):
        table = est.figure1_table()
        assert set(table) == {"petascale", "exascale"}
        assert set(table["petascale"]) == {c.label for c in FaultClass}
        for cls in FaultClass:
            assert table["exascale"][cls.label] < table["petascale"][cls.label]

    def test_rejects_nonpositive_mtbf(self):
        with pytest.raises(ValueError):
            MtbfEstimator(node_mtbf_h={FaultClass.SNF: -1.0})

    def test_combined_requires_classes(self, est):
        with pytest.raises(ValueError):
            est.combined_system_mtbf(PETASCALE, [])
