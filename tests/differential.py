"""Shared differential-testing helpers (DESIGN.md §5e, §5j).

One module feeds every "two executions must agree" harness in the
suite:

* ``tests/core/test_fast_equivalence.py`` — span-batched fast path vs
  the legacy per-iteration loop (``SolverConfig.fast``);
* ``tests/core/test_backend_equivalence.py`` — the ``batched`` vs
  ``loop`` CG kernel backends (``SolverConfig.backend``);
* ``tests/faults`` — the property-based fault-schedule fuzzer.

The helpers compare *every* seed-visible observable of a solve —
report scalars, residual history, phase-tagged energy charges, the
RAPL log, traffic counters, fault lists, scheme details, and (traced)
the metrics snapshot plus the full exported trace JSONL — under a
per-field tolerance policy pinned by a golden file.  The default (and,
today, universal) tolerance is **bitwise**: both execution axes share
their reduction operators, so no accumulation order differs anywhere.
The ulp-bounded mechanism exists for the day a backend legitimately
reorders a reduction; loosening a field requires editing the golden
policy file, which is exactly the review speed bump it should be.

Failure artifacts: the comparison entry points accept a ``context``
string (fuzz seeds print reproduction instructions through it) and
``dump_divergence`` writes a JSON diff artifact for CI upload.
"""

from __future__ import annotations

import json
import math
import random
from pathlib import Path

import numpy as np

from repro.core.backends import DEFAULT_BACKEND
from repro.core.recovery.factory import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import EvenlySpacedSchedule, FixedIterationSchedule
from repro.matrices.generators import banded_spd, irregular_spd, stencil_5pt

#: The matrix classes every differential matrix sweep runs over: a
#: well-conditioned band, an irregular sparsity pattern (uneven per-rank
#: work and halos), and the classic 5-point stencil.
MATRICES = {
    "banded": lambda: banded_spd(300, 7, dominance=0.01, seed=11),
    "irregular": lambda: irregular_spd(260, 9, dominance=0.02, seed=7),
    "stencil": lambda: stencil_5pt(17),
}

_built: dict[str, object] = {}


def build(name):
    """Memoized matrix construction (the builds dominate suite time)."""
    if name not in _built:
        _built[name] = MATRICES[name]()
    return _built[name]


def run_solver(matrix_name: str, scheme_name: str | None, *,
               fast: bool = True, backend: str = DEFAULT_BACKEND,
               trace: bool = False, schedule=None, nranks: int = 8,
               **cfg_kw):
    """One deterministic resilient solve on a differential fixture.

    ``fast`` and ``backend`` are the two execution axes under test;
    everything else (matrix, rhs, scheme cadence, fault schedule) is
    pinned so that two calls differing only in an execution axis are
    comparable observable for observable.
    """
    a = build(matrix_name)
    rng = np.random.default_rng(42)
    b = a @ rng.standard_normal(a.shape[0])
    cfg = SolverConfig(
        nranks=nranks, tol=1e-8, seed=5, trace=trace, fast=fast,
        backend=backend, **cfg_kw
    )
    scheme = (
        make_scheme(scheme_name, interval_iters=40) if scheme_name else None
    )
    if schedule is None and scheme is not None:
        schedule = EvenlySpacedSchedule(n_faults=3)
    solver = ResilientSolver(a, b, scheme=scheme, schedule=schedule, config=cfg)
    return solver.solve()


# ----------------------------------------------------------------------
# tolerance policy (golden-pinned)
# ----------------------------------------------------------------------

#: The golden per-field tolerance policy for backend equivalence.
GOLDEN_TOLERANCE_PATH = (
    Path(__file__).parent / "core" / "golden" / "backend_tolerance.json"
)


def load_tolerance_policy(path: Path = GOLDEN_TOLERANCE_PATH) -> dict:
    """``{field: {"mode": "bitwise"} | {"mode": "ulp", "max_ulp": N}}``.

    Fields absent from the policy default to bitwise — loosening is
    always an explicit, reviewed edit of the golden file.
    """
    return json.loads(path.read_text())["fields"]


def ulp_distance(a: float, b: float) -> int:
    """Units-in-the-last-place distance between two float64 values."""
    if a == b:
        return 0
    if math.isnan(a) or math.isnan(b):
        return 2**62
    # map the sign-magnitude float bit pattern onto a monotone integer
    # line, so |ia - ib| counts representable doubles between a and b
    ia, ib = (
        i if i >= 0 else -(2**63) - i
        for i in (int(np.float64(v).view(np.int64)) for v in (a, b))
    )
    return abs(ia - ib)


def _check_scalar(name: str, a, b, policy: dict, context: str) -> None:
    rule = policy.get(name, {"mode": "bitwise"})
    if rule["mode"] == "bitwise":
        assert a == b, f"{name}: {a!r} != {b!r} (bitwise){context}"
    else:
        dist = ulp_distance(float(a), float(b))
        assert dist <= rule["max_ulp"], (
            f"{name}: {a!r} vs {b!r} differ by {dist} ulp "
            f"(max {rule['max_ulp']}){context}"
        )


def _check_array(name: str, a, b, policy: dict, context: str) -> None:
    rule = policy.get(name, {"mode": "bitwise"})
    assert len(a) == len(b), f"{name}: length {len(a)} != {len(b)}{context}"
    if rule["mode"] == "bitwise":
        assert np.array_equal(a, b), (
            f"{name}: arrays differ bitwise at indices "
            f"{np.flatnonzero(np.asarray(a) != np.asarray(b))[:8]}{context}"
        )
    else:
        worst = max(
            (ulp_distance(float(x), float(y)) for x, y in zip(a, b)),
            default=0,
        )
        assert worst <= rule["max_ulp"], (
            f"{name}: arrays differ by {worst} ulp "
            f"(max {rule['max_ulp']}){context}"
        )


# ----------------------------------------------------------------------
# report comparison
# ----------------------------------------------------------------------

def assert_reports_identical(fast, legacy, *, context: str = "",
                             policy: dict | None = None):
    """Per-field equality on every seed-visible field of a SolveReport.

    With no ``policy`` every field is compared exactly (``==`` on
    floats, not allclose); a policy loaded from the golden file may
    relax named numeric fields to a ulp bound.
    """
    policy = policy or {}
    if context:
        context = f"  [{context}]"
    assert fast.scheme == legacy.scheme, context
    assert fast.converged == legacy.converged, context
    assert fast.iterations == legacy.iterations, context
    assert fast.baseline_iters == legacy.baseline_iters, context
    # sim time and residuals: exact unless the policy says otherwise
    _check_scalar("time_s", fast.time_s, legacy.time_s, policy, context)
    _check_scalar(
        "final_relative_residual",
        fast.final_relative_residual,
        legacy.final_relative_residual,
        policy,
        context,
    )
    assert fast.residual_history.dtype == legacy.residual_history.dtype
    _check_array(
        "residual_history",
        fast.residual_history,
        legacy.residual_history,
        policy,
        context,
    )
    # phase-tagged energy account, charge by charge
    assert set(fast.account.charges) == set(legacy.account.charges), context
    for tag, c_legacy in legacy.account.charges.items():
        c_fast = fast.account.charges[tag]
        _check_scalar(
            f"account.{tag}.time_s", c_fast.time_s, c_legacy.time_s,
            policy, context,
        )
        _check_scalar(
            f"account.{tag}.energy_j", c_fast.energy_j, c_legacy.energy_j,
            policy, context,
        )
    # RAPL log: same phases, same boundaries, same powers (Phase is a
    # frozen dataclass — equality is exact field equality)
    assert fast.rapl.log.phases == legacy.rapl.log.phases, context
    assert fast.traffic == legacy.traffic, context
    assert fast.faults == legacy.faults, context
    d_fast = {k: v for k, v in fast.details.items()
              if k not in ("trace", "telemetry")}
    d_legacy = {k: v for k, v in legacy.details.items()
                if k not in ("trace", "telemetry")}
    assert d_fast == d_legacy, context


def assert_telemetry_identical(a, b, *, context: str = ""):
    """Traced runs: byte-identical metrics snapshot and trace JSONL."""
    from repro.obs.export import trace_jsonl_lines

    if context:
        context = f"  [{context}]"
    t_a = a.details["telemetry"]
    t_b = b.details["telemetry"]
    assert t_a.metrics.snapshot() == t_b.metrics.snapshot(), context
    assert (
        trace_jsonl_lines({"c": t_a}) == trace_jsonl_lines({"c": t_b})
    ), context


def report_divergence(a, b) -> dict:
    """Field-by-field diff of two reports (for the CI diff artifact)."""
    out: dict = {}
    for name in ("scheme", "converged", "iterations", "baseline_iters",
                 "time_s", "final_relative_residual"):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            out[name] = {"a": va, "b": vb}
    if not np.array_equal(a.residual_history, b.residual_history):
        idx = [
            int(i)
            for i in np.flatnonzero(
                np.asarray(a.residual_history[: len(b.residual_history)])
                != np.asarray(b.residual_history[: len(a.residual_history)])
            )[:16]
        ]
        out["residual_history"] = {
            "len_a": len(a.residual_history),
            "len_b": len(b.residual_history),
            "first_divergent_indices": idx,
        }
    tags = set(a.account.charges) | set(b.account.charges)
    for tag in sorted(tags, key=str):
        ca = a.account.charges.get(tag)
        cb = b.account.charges.get(tag)
        if ca is None or cb is None or (ca.time_s, ca.energy_j) != (
            cb.time_s, cb.energy_j
        ):
            out[f"account.{tag}"] = {
                "a": None if ca is None else [ca.time_s, ca.energy_j],
                "b": None if cb is None else [cb.time_s, cb.energy_j],
            }
    if a.traffic != b.traffic:
        out["traffic"] = {"a": repr(a.traffic), "b": repr(b.traffic)}
    if a.faults != b.faults:
        out["faults"] = {"a": repr(a.faults), "b": repr(b.faults)}
    return out


def dump_divergence(a, b, *, label: str,
                    directory: str | Path = "backend-equivalence-diff") -> Path:
    """Write the divergence of two reports as a JSON artifact.

    The CI ``backend-equivalence`` job uploads this directory on
    failure, so a red run ships the exact field-level disagreement.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{label}.json"
    path.write_text(
        json.dumps({"label": label, "divergence": report_divergence(a, b)},
                   indent=2, default=str)
    )
    return path


# ----------------------------------------------------------------------
# property-based fault-schedule fuzzing (stdlib random, no new deps)
# ----------------------------------------------------------------------

class FaultScheduleFuzzer:
    """Seeded generator of adversarial fault schedules.

    Every draw mixes the patterns that historically break span-batched
    or backend-restructured execution:

    * an **iteration-0 fault** (damage before any progress);
    * a **simultaneous-rank pair** (two victims at the same iteration,
      exercising the multi-victim neutralise-then-recover path);
    * **back-to-back faults** (the second lands in the first one's
      recovery window, right after a restart);
    * a fault pinned to a **span boundary** (the scheme hook cadence or
      the baseline→EXTRA crossover);
    * plain **mid-span** faults.

    Deterministic per seed: ``generate(seed)`` is a pure function, so a
    failing seed printed by a test reproduces the exact schedule.

    :meth:`generate_multivictim` is the victim-*set* counterpart: every
    event strikes several ranks at once, covering the simultaneous-loss
    patterns (iteration-0 sets, all-ranks-but-one, span-boundary sets)
    that only multi-loss-tolerant schemes can survive.
    """

    def __init__(self, nranks: int, horizon_iters: int, *,
                 hook_interval: int = 40) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        if horizon_iters < 2:
            raise ValueError("horizon too short to place interior faults")
        self.nranks = nranks
        self.horizon_iters = horizon_iters
        self.hook_interval = hook_interval

    def generate(self, seed: int) -> FixedIterationSchedule:
        rng = random.Random(seed)
        h = self.horizon_iters
        events: list[tuple[int, int]] = []

        def victim() -> int:
            return rng.randrange(self.nranks)

        if rng.random() < 0.5:
            events.append((0, victim()))
        if rng.random() < 0.7:
            it = rng.randint(1, h - 1)
            v = victim()
            w = (
                (v + 1 + rng.randrange(self.nranks - 1)) % self.nranks
                if self.nranks > 1
                else v
            )
            events += [(it, v), (it, w)]
        if rng.random() < 0.7:
            it = rng.randint(1, max(h - 2, 1))
            events += [(it, victim()), (it + 1, victim())]
        if rng.random() < 0.6 and h > self.hook_interval:
            k = rng.randint(1, (h - 1) // self.hook_interval)
            events.append((k * self.hook_interval, victim()))
        if rng.random() < 0.4:
            events.append((h - 1, victim()))
        for _ in range(rng.randint(0, 2)):
            events.append((rng.randint(1, h - 1), victim()))
        if not events:
            events.append((rng.randint(1, h - 1), victim()))
        events.sort()
        return FixedIterationSchedule(
            iterations=tuple(it for it, _ in events),
            victims=tuple(v for _, v in events),
        )

    def generate_multivictim(self, seed: int) -> FixedIterationSchedule:
        """Adversarial schedules whose events strike victim *sets*.

        Guarantees, for every seed (``nranks >= 2``):

        * a simultaneous distinct-rank set at **iteration 0** (multiple
          blocks lost before any progress);
        * an **all-ranks-but-one** event (the maximum loss a joint
          reconstruction can still recover from);
        * a **span-boundary** multi-victim event whenever the horizon
          crosses the hook cadence;

        plus up to two random multi-victim fillers.  Victim sets are
        deduplicated per iteration so no ``(iteration, victim)`` pair
        repeats — the schedules stay valid under
        :class:`FixedIterationSchedule`'s duplicate rejection.
        """
        if self.nranks < 2:
            raise ValueError("multi-victim schedules need at least two ranks")
        rng = random.Random(seed)
        h = self.horizon_iters
        used: dict[int, set[int]] = {}
        events: list[tuple[int, tuple[int, ...]]] = []

        def pick_set(size: int) -> tuple[int, ...]:
            return tuple(rng.sample(range(self.nranks), min(size, self.nranks)))

        def add(it: int, vs: tuple[int, ...]) -> None:
            taken = used.setdefault(it, set())
            fresh = tuple(v for v in vs if v not in taken)
            if fresh:
                taken.update(fresh)
                events.append((it, fresh))

        # simultaneous distinct-rank set at iteration 0
        add(0, pick_set(2 + rng.randrange(2)))
        # all-ranks-but-one: one survivor carries the reconstruction
        spare = rng.randrange(self.nranks)
        add(
            rng.randint(1, h - 1),
            tuple(r for r in range(self.nranks) if r != spare),
        )
        # multi-victim event pinned to a hook-cadence span boundary
        if h > self.hook_interval:
            k = rng.randint(1, (h - 1) // self.hook_interval)
            add(k * self.hook_interval, pick_set(2))
        for _ in range(rng.randint(0, 2)):
            add(rng.randint(1, h - 1), pick_set(2))
        events.sort(key=lambda e: e[0])
        return FixedIterationSchedule(
            iterations=tuple(it for it, _ in events),
            victims=tuple(vs for _, vs in events),
        )

    def repro_hint(self, seed: int, *, method: str = "generate") -> str:
        """The reproduction one-liner printed with failing seeds."""
        return (
            f"fuzz seed {seed}: FaultScheduleFuzzer(nranks={self.nranks}, "
            f"horizon_iters={self.horizon_iters}, "
            f"hook_interval={self.hook_interval}).{method}({seed})"
        )
