"""Unit tests for the SPD generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.generators import (
    banded_spd,
    irregular_spd,
    is_spd_sample,
    stencil_5pt,
    tridiagonal_spd,
)


def smallest_eig(a: sp.spmatrix) -> float:
    return float(np.linalg.eigvalsh(a.toarray()).min())


class TestTridiagonal:
    def test_spd(self):
        a = tridiagonal_spd(50)
        assert is_spd_sample(a)
        assert smallest_eig(a) > 0

    def test_pattern(self):
        a = tridiagonal_spd(10)
        assert a.nnz == 10 + 2 * 9

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            tridiagonal_spd(1)


class TestStencil:
    def test_is_exact_poisson(self):
        a = stencil_5pt(4)
        d = a.diagonal()
        assert np.allclose(d, 4.0)
        assert a.shape == (16, 16)

    def test_spd(self):
        assert is_spd_sample(stencil_5pt(8))
        assert smallest_eig(stencil_5pt(6)) > 0

    def test_rectangular_grid(self):
        a = stencil_5pt(4, 6)
        assert a.shape == (24, 24)

    def test_symmetry(self):
        a = stencil_5pt(7)
        assert (a != a.T).nnz == 0

    def test_nnz_per_row_near_5(self):
        a = stencil_5pt(20)
        assert 4.5 < a.nnz / a.shape[0] <= 5.0

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            stencil_5pt(1)


class TestBanded:
    def test_spd_with_and_without_scaling(self):
        for sigma in (0.0, 0.5):
            a = banded_spd(80, 7, dominance=0.01, scaling_spread=sigma, seed=0)
            assert is_spd_sample(a)
            assert smallest_eig(a) > 0

    def test_contiguous_band_structure(self):
        a = banded_spd(60, 9, dominance=0.1, seed=1).tocoo()
        width = np.abs(a.row - a.col).max()
        assert width == 4  # (9-1)/2 contiguous diagonals

    def test_nnz_per_row_close_to_target(self):
        a = banded_spd(200, 11, dominance=0.1, seed=2)
        assert abs(a.nnz / a.shape[0] - 11) < 1.0

    def test_deterministic(self):
        a = banded_spd(50, 5, dominance=0.1, seed=3)
        b = banded_spd(50, 5, dominance=0.1, seed=3)
        assert (a != b).nnz == 0

    def test_seed_changes_values(self):
        a = banded_spd(50, 5, dominance=0.1, seed=3)
        b = banded_spd(50, 5, dominance=0.1, seed=4)
        assert (a != b).nnz > 0

    def test_smaller_dominance_is_worse_conditioned(self):
        tight = banded_spd(80, 5, dominance=1e-4, seed=0)
        loose = banded_spd(80, 5, dominance=1.0, seed=0)
        def cond(m):
            return np.linalg.cond(m.toarray())

        assert cond(tight) > cond(loose)

    def test_scaling_spread_preserves_pattern(self):
        a = banded_spd(60, 7, dominance=0.1, scaling_spread=0.0, seed=5)
        b = banded_spd(60, 7, dominance=0.1, scaling_spread=0.8, seed=5)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.indptr, b.indptr)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            banded_spd(2, 5)
        with pytest.raises(ValueError):
            banded_spd(50, 1)
        with pytest.raises(ValueError):
            banded_spd(50, 5, dominance=0.0)


class TestIrregular:
    def test_spd(self):
        a = irregular_spd(100, 9, dominance=0.05, seed=0, value_spread=1.0)
        assert is_spd_sample(a)
        assert smallest_eig(a) > 0

    def test_has_backbone(self):
        a = irregular_spd(50, 5, dominance=0.1, seed=1).tocoo()
        pairs = set(zip(a.row.tolist(), a.col.tolist()))
        assert all((i, i + 1) in pairs for i in range(49))

    def test_has_longrange_entries(self):
        a = irregular_spd(200, 9, dominance=0.1, seed=2).tocoo()
        assert np.any(np.abs(a.row - a.col) > 3)

    def test_symmetry(self):
        a = irregular_spd(120, 7, dominance=0.1, seed=3)
        assert (abs(a - a.T) > 1e-12).nnz == 0

    def test_deterministic(self):
        a = irregular_spd(60, 5, dominance=0.1, seed=4)
        b = irregular_spd(60, 5, dominance=0.1, seed=4)
        assert (a != b).nnz == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            irregular_spd(100, 2)
        with pytest.raises(ValueError):
            irregular_spd(100, 5, dominance=0.1, value_spread=-1.0)
        with pytest.raises(ValueError):
            irregular_spd(100, 5, dominance=0.1, longrange_scale=0.0)


class TestSpdSample:
    def test_detects_asymmetry(self):
        a = sp.random(20, 20, density=0.2, random_state=0).tocsr()
        a.setdiag(10.0)
        assert not is_spd_sample(a)

    def test_detects_indefiniteness(self):
        a = sp.diags([-100.0] + [0.1] * 9).tocsr()
        assert not is_spd_sample(a, trials=64)
