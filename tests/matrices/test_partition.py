"""Unit tests for block-row partitioning."""

import numpy as np
import pytest

from repro.matrices.partition import BlockRowPartition


class TestBasicLayout:
    def test_even_split(self):
        p = BlockRowPartition(100, 4)
        assert [p.size_of(r) for r in range(4)] == [25, 25, 25, 25]
        assert [p.start_of(r) for r in range(4)] == [0, 25, 50, 75]

    def test_uneven_split_front_loads_extras(self):
        p = BlockRowPartition(10, 3)
        assert [p.size_of(r) for r in range(3)] == [4, 3, 3]
        assert [p.start_of(r) for r in range(3)] == [0, 4, 7]

    def test_blocks_cover_everything_exactly(self):
        p = BlockRowPartition(103, 7)
        covered = []
        for sl in p:
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(103))

    def test_single_rank(self):
        p = BlockRowPartition(10, 1)
        assert p.slice_of(0) == slice(0, 10)

    def test_nranks_equals_n(self):
        p = BlockRowPartition(5, 5)
        assert all(p.size_of(r) == 1 for r in range(5))

    def test_more_ranks_than_rows_rejected(self):
        # empty partitions are never valid (no diagonal block to
        # recover, zero-flop SpMV the cost model cannot price), so the
        # tiny-n edge fails loudly at construction
        with pytest.raises(ValueError, match="empty partitions"):
            BlockRowPartition(5, 6)

    def test_more_ranks_than_rows_message_counts_the_gap(self):
        with pytest.raises(ValueError, match=r"3 ranks would own empty"):
            BlockRowPartition(13, 16)
        with pytest.raises(ValueError, match=r"use nranks <= 13"):
            BlockRowPartition(13, 16)


class TestOwnership:
    def test_owner_of_is_inverse_of_ranges(self):
        p = BlockRowPartition(53, 6)
        for r in range(6):
            for row in p.range_of(r):
                assert p.owner_of(row) == r

    def test_owners_of_vectorised_matches_scalar(self):
        p = BlockRowPartition(97, 5)
        rows = np.arange(97)
        owners = p.owners_of(rows)
        assert [p.owner_of(int(i)) for i in rows] == owners.tolist()

    def test_owner_out_of_range(self):
        p = BlockRowPartition(10, 2)
        with pytest.raises(IndexError):
            p.owner_of(10)
        with pytest.raises(IndexError):
            p.owners_of(np.array([0, 10]))


class TestArrays:
    def test_starts_and_sizes_consistent(self):
        p = BlockRowPartition(77, 9)
        starts, sizes = p.starts, p.sizes
        assert starts[0] == 0
        assert np.array_equal(starts[1:], (starts + sizes)[:-1])
        assert sizes.sum() == 77

    def test_max_block(self):
        assert BlockRowPartition(10, 3).max_block == 4


class TestValidation:
    def test_rejects_more_ranks_than_rows(self):
        with pytest.raises(ValueError):
            BlockRowPartition(3, 4)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            BlockRowPartition(0, 1)
        with pytest.raises(ValueError):
            BlockRowPartition(5, 0)

    def test_rank_bounds(self):
        p = BlockRowPartition(10, 2)
        with pytest.raises(IndexError):
            p.slice_of(2)
