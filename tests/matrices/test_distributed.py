"""Unit tests for the distributed matrix view."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrices.distributed import BYTES_PER_ENTRY, DistributedMatrix
from repro.matrices.generators import banded_spd
from repro.matrices.partition import BlockRowPartition


@pytest.fixture()
def dmat(small_banded) -> DistributedMatrix:
    n = small_banded.shape[0]
    return DistributedMatrix(small_banded, BlockRowPartition(n, 4))


class TestBlocks:
    def test_row_blocks_tile_the_matrix(self, dmat, small_banded):
        stacked = sp.vstack([dmat.row_block(r) for r in range(4)]).tocsr()
        assert (stacked != small_banded.tocsr()).nnz == 0

    def test_diag_block_is_square_principal_submatrix(self, dmat, small_banded):
        sl = dmat.partition.slice_of(1)
        diag = dmat.diag_block(1)
        assert diag.shape == (sl.stop - sl.start, sl.stop - sl.start)
        assert (diag != small_banded[sl, sl]).nnz == 0

    def test_col_block_is_row_block_transpose_for_spd(self, dmat):
        col = dmat.col_block(2)
        rows_t = dmat.row_block(2).T.tocsr()
        assert (abs(col - rows_t) > 1e-12).nnz == 0

    def test_blocks_are_cached(self, dmat):
        assert dmat.blocks(0) is dmat.blocks(0)

    def test_matvec_matches_global(self, dmat, small_banded, rng):
        x = rng.standard_normal(small_banded.shape[0])
        assert np.allclose(dmat.matvec(x), small_banded @ x)


class TestHaloStructure:
    def test_banded_halo_is_neighbour_only(self):
        """A narrow band partitioned into fat blocks only talks to
        adjacent ranks."""
        a = banded_spd(400, 5, dominance=0.1, seed=0)
        d = DistributedMatrix(a, BlockRowPartition(400, 4))
        for (src, dst) in d.halo_pair_bytes:
            assert abs(src - dst) == 1

    def test_halo_counts_match_structure(self):
        a = banded_spd(100, 3, dominance=0.1, seed=0)  # tridiagonal band
        d = DistributedMatrix(a, BlockRowPartition(100, 4))
        # each interior rank needs exactly 1 entry from each neighbour
        assert d.halo_pair_bytes[(0, 1)] == BYTES_PER_ENTRY
        assert d.halo_pair_bytes[(1, 0)] == BYTES_PER_ENTRY

    def test_halo_total(self, dmat):
        assert dmat.halo_bytes_total == pytest.approx(
            sum(dmat.halo_pair_bytes.values())
        )

    def test_single_rank_has_no_halo(self, small_banded):
        d = DistributedMatrix(small_banded, BlockRowPartition(96, 1))
        assert d.halo_pair_bytes == {}


class TestCostInputs:
    def test_local_nnz_sums_to_total(self, dmat, small_banded):
        assert dmat.local_nnz.sum() == small_banded.nnz

    def test_spmv_flops(self, dmat):
        assert np.array_equal(dmat.spmv_flops, 2 * dmat.local_nnz)

    def test_rank_of_row(self, dmat):
        assert dmat.rank_of_row(0) == 0
        assert dmat.rank_of_row(95) == 3


class TestValidation:
    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            DistributedMatrix(sp.random(4, 6, format="csr"), BlockRowPartition(4, 2))

    def test_rejects_partition_mismatch(self, small_banded):
        with pytest.raises(ValueError):
            DistributedMatrix(small_banded, BlockRowPartition(97, 4))
