"""Unit tests for the content-keyed problem-setup cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import cache
from repro.matrices import suite
from repro.matrices.cache import _LRU, _MISS, matrix_fingerprint
from repro.matrices.generators import banded_spd


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Each test gets empty in-process caches and a private disk root."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_PROBLEM_CACHE", raising=False)
    cache.clear_memory_caches()
    yield
    cache.clear_memory_caches()


class TestFingerprint:
    def test_equal_content_equal_fingerprint(self):
        a = banded_spd(64, 5, dominance=0.05, seed=3)
        b = banded_spd(64, 5, dominance=0.05, seed=3)
        assert a is not b
        assert matrix_fingerprint(a) == matrix_fingerprint(b)

    def test_different_values_different_fingerprint(self):
        a = banded_spd(64, 5, dominance=0.05, seed=3)
        b = banded_spd(64, 5, dominance=0.05, seed=4)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_different_structure_different_fingerprint(self):
        a = banded_spd(64, 5, dominance=0.05, seed=3)
        b = banded_spd(64, 7, dominance=0.05, seed=3)
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_cached_on_instance(self):
        a = banded_spd(64, 5, dominance=0.05, seed=3)
        fp = matrix_fingerprint(a)
        assert getattr(a, "_repro_fingerprint") == fp
        assert matrix_fingerprint(a) is fp

    def test_format_independent(self):
        a = banded_spd(64, 5, dominance=0.05, seed=3)
        assert matrix_fingerprint(a.tocoo()) == matrix_fingerprint(a)


class TestLRU:
    def test_hit_miss_counters(self):
        lru = _LRU(4)
        assert lru.get("a") is _MISS
        lru.put("a", 1)
        assert lru.get("a") == 1
        assert lru.hits == 1 and lru.misses == 1

    def test_evicts_least_recently_used(self):
        lru = _LRU(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")          # refresh a; b is now oldest
        lru.put("c", 3)
        assert lru.get("b") is _MISS
        assert lru.get("a") == 1
        assert lru.get("c") == 3

    def test_clear_resets_everything(self):
        lru = _LRU(2)
        lru.put("a", 1)
        lru.get("a")
        lru.get("missing")
        lru.clear()
        assert len(lru) == 0 and lru.hits == 0 and lru.misses == 0


class TestSuiteBuildCache:
    def test_memory_hit_returns_same_instance(self):
        a = suite.build("Kuu", scale=0.2)
        b = suite.build("Kuu", scale=0.2)
        assert a is b
        assert cache.cache_stats()["matrices"]["hits"] >= 1

    def test_disk_round_trip_bit_identical(self):
        a = suite.build("Kuu", scale=0.2)
        files = list(cache.problems_dir().glob("Kuu-*.npz"))
        assert files, "disk entry not written"
        cache.clear_memory_caches()
        b = suite.build("Kuu", scale=0.2)
        assert a is not b
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)  # exact, not approx

    def test_corrupt_disk_entry_rebuilt(self):
        a = suite.build("Kuu", scale=0.2)
        (path,) = cache.problems_dir().glob("Kuu-*.npz")
        path.write_bytes(b"not an npz")
        cache.clear_memory_caches()
        b = suite.build("Kuu", scale=0.2)
        assert np.array_equal(a.data, b.data)

    def test_cache_false_gives_private_copy(self):
        a = suite.build("Kuu", scale=0.2)
        b = suite.build("Kuu", scale=0.2, cache=False)
        assert a is not b
        assert np.array_equal(a.data, b.data)

    def test_disk_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        suite.build("Kuu", scale=0.2)
        assert not cache.problems_dir().exists()

    def test_memory_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBLEM_CACHE", "0")
        a = suite.build("Kuu", scale=0.2)
        b = suite.build("Kuu", scale=0.2)
        assert a is not b  # served from disk, not shared memory
        assert cache.cache_stats()["matrices"]["entries"] == 0


class TestDistributedCache:
    def test_same_matrix_same_view(self):
        a = suite.build("Kuu", scale=0.2)
        d1 = cache.distributed_matrix(a, 4)
        d2 = cache.distributed_matrix(a, 4)
        assert d1 is d2

    def test_keyed_by_content_not_identity(self):
        a = banded_spd(64, 5, dominance=0.05, seed=3)
        b = banded_spd(64, 5, dominance=0.05, seed=3)
        assert cache.distributed_matrix(a, 4) is cache.distributed_matrix(b, 4)

    def test_rank_count_in_key(self):
        a = suite.build("Kuu", scale=0.2)
        assert cache.distributed_matrix(a, 4) is not cache.distributed_matrix(a, 8)

    def test_view_comes_back_warm(self):
        a = suite.build("Kuu", scale=0.2)
        d = cache.distributed_matrix(a, 4)
        assert len(d._blocks) == 4
        assert "halo_pair_bytes" in d.__dict__  # cached_property computed

    def test_memory_disabled_builds_fresh(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBLEM_CACHE", "0")
        a = suite.build("Kuu", scale=0.2, cache=False)
        assert cache.distributed_matrix(a, 4) is not cache.distributed_matrix(a, 4)


class TestIterationCostsCache:
    @staticmethod
    def _comm(nranks=4):
        from repro.cluster.comm import SimComm
        from repro.core.solver import SolverConfig

        cfg = SolverConfig(nranks=nranks)
        return SimComm(cfg.machine, cfg.nranks, cfg.network)

    def test_memory_hit(self):
        a = suite.build("Kuu", scale=0.2)
        dmat = cache.distributed_matrix(a, 4)
        comm = self._comm()
        c1 = cache.iteration_costs(dmat, comm, preconditioned=False)
        c2 = cache.iteration_costs(dmat, comm, preconditioned=False)
        assert c1 is c2

    def test_preconditioned_flag_in_key(self):
        a = suite.build("Kuu", scale=0.2)
        dmat = cache.distributed_matrix(a, 4)
        comm = self._comm()
        plain = cache.iteration_costs(dmat, comm, preconditioned=False)
        precond = cache.iteration_costs(dmat, comm, preconditioned=True)
        assert plain is not precond

    def test_disk_round_trip_exact(self):
        a = suite.build("Kuu", scale=0.2)
        dmat = cache.distributed_matrix(a, 4)
        comm = self._comm()
        c1 = cache.iteration_costs(dmat, comm, preconditioned=False)
        cache.clear_memory_caches()
        dmat = cache.distributed_matrix(a, 4)
        c2 = cache.iteration_costs(dmat, comm, preconditioned=False)
        assert c1 is not c2
        assert np.array_equal(c1.compute_s, c2.compute_s)
        assert c1.halo_s == c2.halo_s
        assert c1.allreduce_s == c2.allreduce_s
        assert c1.bytes_per_iter == c2.bytes_per_iter


class TestSolverIntegration:
    def test_repeat_solver_construction_shares_setup(self):
        from repro.core.solver import ResilientSolver, SolverConfig

        a = suite.build("Kuu", scale=0.2)
        rng = np.random.default_rng(0)
        b = a @ rng.standard_normal(a.shape[0])
        s1 = ResilientSolver(a, b, config=SolverConfig(nranks=4))
        before = cache.cache_stats()["distributed"]["hits"]
        s2 = ResilientSolver(a, b, config=SolverConfig(nranks=4))
        after = cache.cache_stats()["distributed"]["hits"]
        assert after > before
        assert s1.cg.dmat is s2.cg.dmat
