"""Unit tests for the Table-3 matrix suite registry."""

import pytest

from repro.matrices import suite
from repro.matrices.generators import is_spd_sample
from repro.matrices.suite import SUITE


class TestRegistry:
    def test_fourteen_matrices_in_paper_order(self):
        names = suite.names()
        assert len(names) == 14
        assert names[0] == "bcsstk06"
        assert names[-1] == "stencil5"

    def test_all_paper_columns_present(self):
        for spec in SUITE.values():
            assert spec.paper_rows > 0
            assert spec.paper_nnz_per_row > 0
            assert spec.paper_iters > 0
            assert spec.kind

    def test_spec_lookup(self):
        assert suite.spec("Kuu").kind == "structural"
        with pytest.raises(KeyError):
            suite.spec("nonexistent")

    def test_build_unknown_raises(self):
        with pytest.raises(KeyError):
            suite.build("nope")

    def test_regularity_classification(self):
        assert suite.spec("crystm02").is_regular
        assert suite.spec("stencil5").is_regular
        assert not suite.spec("x104").is_regular


class TestBuild:
    @pytest.mark.parametrize("name", ["Kuu", "ex15", "stencil5"])
    def test_built_matrices_are_spd(self, name):
        a = suite.build(name, scale=0.2)
        assert a.shape[0] == a.shape[1]
        assert is_spd_sample(a)

    def test_scale_changes_size(self):
        small = suite.build("crystm02", scale=0.1)
        full = suite.build("crystm02", scale=1.0)
        assert small.shape[0] < full.shape[0]
        assert full.shape[0] == SUITE["crystm02"].rows

    def test_stencil_scale_is_quadratic_in_edge(self):
        a = suite.build("stencil5", scale=0.25)
        # rows*scale = 2500 -> 50x50 grid
        assert a.shape[0] == 2500

    def test_scale_floor(self):
        a = suite.build("Kuu", scale=1e-9)
        assert a.shape[0] >= 16

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            suite.build("Kuu", scale=0.0)

    def test_nnz_per_row_near_target(self):
        for name in ("crystm02", "wathen100"):
            spec = SUITE[name]
            a = spec.build()
            measured = a.nnz / a.shape[0]
            assert abs(measured - spec.nnz_per_row) / spec.nnz_per_row < 0.2

    def test_deterministic(self):
        a = suite.build("ex15")
        b = suite.build("ex15")
        assert (a != b).nnz == 0


class TestConvergenceClasses:
    """The calibrated stand-ins must preserve Table 3's ordering of
    convergence speed (fast / medium / slow classes)."""

    @pytest.mark.slow
    def test_class_ordering(self):
        import numpy as np

        from repro.core.cg import DistributedCG
        from repro.matrices.distributed import DistributedMatrix
        from repro.matrices.partition import BlockRowPartition

        def iters(name):
            a = suite.build(name)
            n = a.shape[0]
            b = a @ np.random.default_rng(0).standard_normal(n)
            d = DistributedMatrix(a, BlockRowPartition(n, 1))
            return DistributedCG(d, b, tol=1e-8, max_iters=30_000).solve_fault_free()

        fast = iters("Andrews")
        medium = iters("Kuu")
        slow = iters("t2dahe")
        assert fast < medium < slow
        assert fast < 500
        assert slow > 3000
