"""Public API surface: the imports a downstream user relies on."""

import importlib

import pytest


class TestTopLevelExports:
    def test_core_entry_points(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        major, *_ = repro.__version__.split(".")
        assert int(major) >= 1

    def test_scheme_names_cover_table2(self):
        from repro import scheme_names

        names = set(scheme_names())
        # Table 2 of the paper
        assert {"CR-D", "CR-M", "RD", "F0", "FI", "LI", "LSI"} <= names
        # our extensions
        assert {"TMR", "CR-ML", "LI-DVFS", "LSI-DVFS"} <= names


SUBPACKAGES = [
    "repro.cluster",
    "repro.power",
    "repro.faults",
    "repro.checkpoint",
    "repro.matrices",
    "repro.core",
    "repro.core.backends",
    "repro.core.recovery",
    "repro.core.models",
    "repro.harness",
    "repro.obs",
    "repro.campaign",
    "repro.serve",
    "repro.cli",
]


class TestSubpackages:
    @pytest.mark.parametrize("module", SUBPACKAGES)
    def test_importable(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [m for m in SUBPACKAGES if m not in ("repro.cli",)],
    )
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_every_public_symbol_documented(self):
        """Every __all__ entry carries a docstring (library hygiene)."""
        import inspect

        for module in SUBPACKAGES:
            if module == "repro.cli":
                continue
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert obj.__doc__, f"{module}.{name} lacks a docstring"
