"""Simulated time: per-rank clocks and phase logging.

The solver executes in BSP super-steps.  Each rank owns a clock that
advances by its local compute time; collectives synchronise the clocks to
their common completion time (the straggler's arrival plus the collective
cost).  Phase logs record what the machine was doing over which simulated
interval and at what power, which is exactly what the simulated-RAPL power
traces (Figure 7a) and the phase-tagged energy accounts are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class ClockArray:
    """Per-rank simulated clocks (seconds), vectorised over ranks."""

    def __init__(self, nranks: int) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        self._t = np.zeros(nranks, dtype=np.float64)

    @property
    def nranks(self) -> int:
        return self._t.size

    @property
    def times(self) -> np.ndarray:
        """Read-only view of the per-rank clocks."""
        v = self._t.view()
        v.flags.writeable = False
        return v

    @property
    def now(self) -> float:
        """Global time: the furthest-ahead rank."""
        return float(self._t.max())

    @property
    def min(self) -> float:
        return float(self._t.min())

    def advance(self, durations) -> None:
        """Advance every rank by its own duration (scalar broadcasts)."""
        d = np.asarray(durations, dtype=np.float64)
        if np.any(d < 0):
            raise ValueError("durations must be non-negative")
        self._t += d

    def advance_rank(self, rank: int, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._t[rank] += duration

    def synchronize(self, extra: float = 0.0) -> float:
        """Barrier semantics: set all clocks to ``max + extra``; return it."""
        if extra < 0:
            raise ValueError("extra must be non-negative")
        t = self.now + extra
        self._t[:] = t
        return t

    def jump_to(self, t: float) -> float:
        """Set every clock to the absolute time ``t`` (barrier semantics,
        like :meth:`synchronize`, but with a precomputed target).  Used by
        span-batched execution, which replays a span's clock advance as a
        scalar accumulation and lands all ranks on the result."""
        if t < self.now:
            raise ValueError("clocks cannot move backwards")
        self._t[:] = t
        return t

    def copy(self) -> "ClockArray":
        c = ClockArray(self.nranks)
        c._t[:] = self._t
        return c


@dataclass(frozen=True)
class Phase:
    """One homogeneous interval of machine activity.

    ``tag`` names what was happening (``"compute"``, ``"comm"``,
    ``"checkpoint"``, ``"reconstruct"``, ...); ``power_w`` is the total
    machine power over the interval.
    """

    tag: str
    t_start: float
    t_end: float
    power_w: float

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError("phase must not end before it starts")
        if self.power_w < 0:
            raise ValueError("power must be non-negative")

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def energy_j(self) -> float:
        return self.duration * self.power_w


@dataclass
class PhaseLog:
    """Append-only log of :class:`Phase` records."""

    phases: list[Phase] = field(default_factory=list)

    def add(self, tag: str, t_start: float, t_end: float, power_w: float) -> Phase:
        ph = Phase(tag, t_start, t_end, power_w)
        self.phases.append(ph)
        return ph

    def total_energy(self, tag: str | None = None) -> float:
        """Total energy, optionally restricted to one tag."""
        return sum(p.energy_j for p in self.phases if tag is None or p.tag == tag)

    def total_time(self, tag: str | None = None) -> float:
        return sum(p.duration for p in self.phases if tag is None or p.tag == tag)

    def tags(self) -> set[str]:
        return {p.tag for p in self.phases}

    def trace(self, dt: float, t_end: float | None = None):
        """Sample the log into a (times, watts) power trace with step ``dt``.

        Overlapping phases add their power (e.g. the redundant replica in
        DMR runs concurrently with the primary).  Returns two numpy arrays.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not self.phases and t_end is None:
            return np.array([]), np.array([])
        horizon = t_end if t_end is not None else max(p.t_end for p in self.phases)
        n = max(1, int(np.ceil(horizon / dt)))
        times = (np.arange(n) + 0.5) * dt
        watts = np.zeros(n)
        for p in self.phases:
            mask = (times >= p.t_start) & (times < p.t_end)
            watts[mask] += p.power_w
        return times, watts

    def __len__(self) -> int:
        return len(self.phases)
