"""Simulated cluster substrate.

The paper ran on a real 8-node, 192-core Xeon cluster.  This package
provides the stand-in: a machine description (nodes, sockets, cores,
per-core DVFS frequency ladders), a two-level Hockney communication model
with the usual collective algorithms, per-rank simulated clocks, and a
BSP-style communicator (:class:`~repro.cluster.comm.SimComm`) whose
operations advance those clocks and record traffic volumes.

The substrate is deliberately explicit: every time increment comes from a
documented cost formula so the "experimental" measurements that feed the
paper's analytical models are themselves reproducible and testable.
"""

from repro.cluster.machine import CoreSpec, FrequencyLadder, MachineSpec, NodeSpec
from repro.cluster.network import NetworkModel, CollectiveCosts
from repro.cluster.simtime import ClockArray, Phase, PhaseLog
from repro.cluster.topology import ProcessBinding
from repro.cluster.comm import SimComm

__all__ = [
    "CoreSpec",
    "FrequencyLadder",
    "MachineSpec",
    "NodeSpec",
    "NetworkModel",
    "CollectiveCosts",
    "ClockArray",
    "Phase",
    "PhaseLog",
    "ProcessBinding",
    "SimComm",
]
