"""Two-level Hockney communication model and collective cost formulas.

Message time is ``alpha + beta * nbytes`` with distinct (alpha, beta)
pairs for intra-node (shared memory) and inter-node (interconnect)
transfers.  Collectives use the standard algorithm costs (binomial-tree
broadcast, recursive-doubling allreduce/allgather), which is what MPI
implementations select for the small-to-medium messages CG produces
(8-byte dot products, kilobyte halo exchanges).

These formulas are the simulated counterpart of the communication time the
paper measures on its cluster and models after Xu & Hwang [40].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.topology import ProcessBinding


@dataclass(frozen=True)
class LinkParams:
    """Hockney parameters of one fabric level."""

    latency_s: float
    bandwidth_gbps: float  # gigabytes per second

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def beta_s_per_byte(self) -> float:
        return 1.0 / (self.bandwidth_gbps * 1e9)

    def message_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes * self.beta_s_per_byte


@dataclass(frozen=True)
class NetworkModel:
    """Two-level network: shared memory inside a node, interconnect across.

    Defaults approximate a 2015-era FDR InfiniBand cluster like the
    paper's: ~1.5 us MPI latency and ~6 GB/s per link inter-node, ~0.4 us
    and ~12 GB/s intra-node.
    """

    inter: LinkParams = LinkParams(latency_s=1.5e-6, bandwidth_gbps=6.0)
    intra: LinkParams = LinkParams(latency_s=0.4e-6, bandwidth_gbps=12.0)

    def p2p_time(self, nbytes: float, *, same_node: bool) -> float:
        """Point-to-point message time."""
        link = self.intra if same_node else self.inter
        return link.message_time(nbytes)

    def link_for(self, binding: ProcessBinding, src: int, dst: int) -> LinkParams:
        return self.intra if binding.same_node(src, dst) else self.inter


@dataclass(frozen=True)
class CollectiveCosts:
    """Collective operation costs over ``nranks`` ranks.

    When a :class:`ProcessBinding` spans several nodes the inter-node link
    parameters dominate, so collectives conservatively use the slower
    level as soon as more than one node participates.
    """

    network: NetworkModel
    binding: ProcessBinding

    def _level(self) -> LinkParams:
        return (
            self.network.intra
            if self.binding.nodes_used <= 1
            else self.network.inter
        )

    def _rounds(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.binding.nranks)))) if self.binding.nranks > 1 else 0

    def barrier(self) -> float:
        """Dissemination barrier: ``ceil(log2 p)`` zero-payload rounds."""
        if self.binding.nranks == 1:
            return 0.0
        return self._rounds() * self._level().latency_s

    def bcast(self, nbytes: float) -> float:
        """Binomial-tree broadcast of ``nbytes`` from one root."""
        if self.binding.nranks == 1:
            return 0.0
        return self._rounds() * self._level().message_time(nbytes)

    def reduce(self, nbytes: float) -> float:
        """Binomial-tree reduction; same cost shape as broadcast."""
        return self.bcast(nbytes)

    def allreduce(self, nbytes: float) -> float:
        """Recursive-doubling allreduce: ``2 ceil(log2 p)`` exchange rounds.

        This is the per-iteration synchronisation cost of CG's two dot
        products (``nbytes`` is 8 or 16).
        """
        if self.binding.nranks == 1:
            return 0.0
        return 2.0 * self._rounds() * self._level().message_time(nbytes)

    def allgather(self, nbytes_per_rank: float) -> float:
        """Recursive-doubling allgather.

        Latency is logarithmic but each rank ultimately receives the
        concatenation, so the bandwidth term covers ``(p-1) * nbytes``.
        """
        p = self.binding.nranks
        if p == 1:
            return 0.0
        link = self._level()
        return self._rounds() * link.latency_s + (p - 1) * nbytes_per_rank * link.beta_s_per_byte

    def gather(self, nbytes_per_rank: float) -> float:
        """Gather to a root; bandwidth bound by the root's inbound traffic."""
        p = self.binding.nranks
        if p == 1:
            return 0.0
        link = self._level()
        return self._rounds() * link.latency_s + (p - 1) * nbytes_per_rank * link.beta_s_per_byte
