"""``SimComm``: a simulated MPI communicator.

Provides the communication operations the resilient CG solver needs —
halo exchange, allreduce, broadcast, barrier, point-to-point — with MPI
cost semantics: each call advances the per-rank simulated clocks by the
modelled transfer time and collectives synchronise the participants.
Traffic (bytes, message counts) is recorded so experiments can report
communication volume alongside time.

This is the stand-in for mpi4py's ``COMM_WORLD`` on the paper's cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.cluster.network import CollectiveCosts, NetworkModel
from repro.cluster.simtime import ClockArray
from repro.cluster.topology import ProcessBinding


@dataclass
class TrafficCounters:
    """Cumulative communication statistics."""

    bytes_p2p: float = 0.0
    bytes_collective: float = 0.0
    messages: int = 0
    collectives: int = 0

    @property
    def bytes_total(self) -> float:
        return self.bytes_p2p + self.bytes_collective


@dataclass
class SimComm:
    """A communicator over ``nranks`` simulated processes.

    Parameters
    ----------
    machine:
        Cluster description; grown automatically if it cannot host
        ``nranks`` (one rank per core).
    nranks:
        Number of MPI ranks.
    network:
        Hockney parameters for both fabric levels.
    """

    machine: MachineSpec
    nranks: int
    network: NetworkModel = field(default_factory=NetworkModel)

    def __post_init__(self) -> None:
        if self.nranks > self.machine.total_cores:
            self.machine = self.machine.with_nodes_for(self.nranks)
        self.binding = ProcessBinding(self.machine, self.nranks)
        self.collectives = CollectiveCosts(self.network, self.binding)
        self.clocks = ClockArray(self.nranks)
        self.traffic = TrafficCounters()

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send_recv(self, src: int, dst: int, nbytes: float) -> float:
        """Blocking transfer ``src -> dst``; both ranks complete together.

        Returns the completion time.
        """
        if src == dst:
            return float(self.clocks.times[src])
        same = self.binding.same_node(src, dst)
        cost = self.network.p2p_time(nbytes, same_node=same)
        start = max(self.clocks.times[src], self.clocks.times[dst])
        done = start + cost
        self.clocks.advance_rank(src, done - self.clocks.times[src])
        self.clocks.advance_rank(dst, done - self.clocks.times[dst])
        self.traffic.bytes_p2p += nbytes
        self.traffic.messages += 1
        return done

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> float:
        t = self.clocks.synchronize(self.collectives.barrier())
        self.traffic.collectives += 1
        return t

    def allreduce(self, nbytes: float) -> float:
        """Allreduce of ``nbytes`` per rank; synchronises all clocks."""
        t = self.clocks.synchronize(self.collectives.allreduce(nbytes))
        self.traffic.bytes_collective += nbytes * self.nranks
        self.traffic.collectives += 1
        return t

    def bcast(self, nbytes: float) -> float:
        t = self.clocks.synchronize(self.collectives.bcast(nbytes))
        self.traffic.bytes_collective += nbytes * max(0, self.nranks - 1)
        self.traffic.collectives += 1
        return t

    def allgather(self, nbytes_per_rank: float) -> float:
        t = self.clocks.synchronize(self.collectives.allgather(nbytes_per_rank))
        self.traffic.bytes_collective += nbytes_per_rank * self.nranks * max(0, self.nranks - 1)
        self.traffic.collectives += 1
        return t

    def halo_exchange(self, pair_bytes: dict[tuple[int, int], float]) -> None:
        """Neighbourhood exchange used by the SpMV.

        ``pair_bytes`` maps directed pairs ``(src, dst)`` to payload bytes.
        Each rank's clock advances by the sum of its own message costs
        (sends and receives overlap pairwise in real MPI; charging the sum
        per rank is the conservative non-overlapping bound, consistent
        with the paper treating SpMV communication as serialised per
        iteration).
        """
        per_rank = np.zeros(self.nranks)
        for (src, dst), nbytes in pair_bytes.items():
            if src == dst:
                continue
            if nbytes < 0:
                raise ValueError("payload must be non-negative")
            same = self.binding.same_node(src, dst)
            cost = self.network.p2p_time(nbytes, same_node=same)
            per_rank[src] += cost
            per_rank[dst] += cost
            self.traffic.bytes_p2p += nbytes
            self.traffic.messages += 1
        self.clocks.advance(per_rank)

    # ------------------------------------------------------------------
    # local work
    # ------------------------------------------------------------------
    def compute(self, durations) -> None:
        """Advance each rank by its own local compute duration."""
        self.clocks.advance(durations)

    def compute_rank(self, rank: int, duration: float) -> None:
        self.clocks.advance_rank(rank, duration)

    @property
    def now(self) -> float:
        return self.clocks.now
