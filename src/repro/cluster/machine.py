"""Machine description: nodes, sockets, cores, and DVFS frequency ladders.

Mirrors the paper's experimental platform (Section 5.1): 8 dual-socket
nodes, two 12-core Xeon E5-2670v3 per node, per-core DVFS from 1.2 GHz to
2.3 GHz in 0.1 GHz steps.  All values are configurable; the defaults are
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default DVFS limits of the Xeon E5-2670v3 (paper, Section 5.1), in GHz.
DEFAULT_FMIN_GHZ = 1.2
DEFAULT_FMAX_GHZ = 2.3
DEFAULT_FSTEP_GHZ = 0.1


@dataclass(frozen=True)
class FrequencyLadder:
    """Discrete set of CPU frequencies a core may run at.

    Frequencies are stored in GHz.  The ladder is inclusive of both
    endpoints, e.g. the default ladder is ``1.2, 1.3, ..., 2.3``.
    """

    fmin_ghz: float = DEFAULT_FMIN_GHZ
    fmax_ghz: float = DEFAULT_FMAX_GHZ
    fstep_ghz: float = DEFAULT_FSTEP_GHZ

    def __post_init__(self) -> None:
        if self.fmin_ghz <= 0 or self.fmax_ghz <= 0:
            raise ValueError("frequencies must be positive")
        if self.fmin_ghz > self.fmax_ghz:
            raise ValueError("fmin must not exceed fmax")
        if self.fstep_ghz <= 0:
            raise ValueError("frequency step must be positive")

    @property
    def steps(self) -> tuple[float, ...]:
        """All available frequencies, ascending, in GHz."""
        out = []
        # Use integer stepping to avoid float accumulation drift.
        nsteps = int(round((self.fmax_ghz - self.fmin_ghz) / self.fstep_ghz))
        for i in range(nsteps + 1):
            out.append(round(self.fmin_ghz + i * self.fstep_ghz, 6))
        if out[-1] < self.fmax_ghz - 1e-9:
            out.append(self.fmax_ghz)
        return tuple(out)

    def clamp(self, f_ghz: float) -> float:
        """Snap ``f_ghz`` to the nearest available ladder step."""
        steps = self.steps
        return min(steps, key=lambda s: abs(s - f_ghz))

    def __contains__(self, f_ghz: float) -> bool:
        return any(abs(f_ghz - s) < 1e-9 for s in self.steps)


@dataclass(frozen=True)
class CoreSpec:
    """A single CPU core.

    Effective rates at ``ladder.fmax_ghz`` per workload kind:

    * ``spmv_gflops`` — streaming sparse matrix-vector products
      (memory-bound, hence far below peak);
    * ``dense_gflops`` — dense BLAS-1/2 work (dots, axpys);
    * ``factor_gflops`` — sparse factorization (LU/QR): irregular,
      fill-allocating, latency-bound — the slowest of the three, which
      is why the paper's prior-work LI/LSI constructions are expensive
      ("LU factorization requires a large amount of memory [24], and
      incurs high time and energy costs", Section 4.1).

    Rates scale linearly with frequency, matching the paper's DVFS
    assumption that compute phases slow proportionally with the clock.
    """

    ladder: FrequencyLadder = field(default_factory=FrequencyLadder)
    spmv_gflops: float = 2.0
    dense_gflops: float = 4.0
    factor_gflops: float = 0.5

    def __post_init__(self) -> None:
        if min(self.spmv_gflops, self.dense_gflops, self.factor_gflops) <= 0:
            raise ValueError("compute rates must be positive")

    def rate_gflops(self, kind: str) -> float:
        try:
            return {
                "spmv": self.spmv_gflops,
                "dense": self.dense_gflops,
                "factor": self.factor_gflops,
            }[kind]
        except KeyError:
            raise ValueError(f"unknown workload kind {kind!r}") from None

    def compute_time(self, flops: float, f_ghz: float, *, kind: str = "spmv") -> float:
        """Seconds to execute ``flops`` of ``kind`` work at ``f_ghz``."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        rate = self.rate_gflops(kind) * 1e9
        scale = f_ghz / self.ladder.fmax_ghz
        if scale <= 0:
            raise ValueError("frequency must be positive")
        return flops / (rate * scale)


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: ``sockets`` sockets of ``cores_per_socket`` cores."""

    sockets: int = 2
    cores_per_socket: int = 12
    core: CoreSpec = field(default_factory=CoreSpec)
    dram_gb: float = 128.0

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("node must have at least one socket and core")

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket


@dataclass(frozen=True)
class MachineSpec:
    """A cluster of identical nodes.

    The paper's platform is ``MachineSpec(nodes=8)`` with the default
    :class:`NodeSpec`: 8 x 24 = 192 cores.
    """

    nodes: int = 8
    node: NodeSpec = field(default_factory=NodeSpec)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("machine must have at least one node")

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores

    def with_nodes_for(self, ranks: int) -> "MachineSpec":
        """A machine with just enough identical nodes to host ``ranks``
        one-rank-per-core processes."""
        if ranks < 1:
            raise ValueError("ranks must be positive")
        need = -(-ranks // self.node.cores)  # ceil division
        return MachineSpec(nodes=need, node=self.node)


def paper_machine() -> MachineSpec:
    """The experimental platform of Section 5.1 (8 nodes, 192 cores)."""
    return MachineSpec()
