"""Process-to-core binding.

The paper binds processes to cores one-to-one ("Process-core binding is a
common resource management technique and typically a one-to-one mapping is
adopted", Section 4.2).  :class:`ProcessBinding` realises that mapping on a
:class:`~repro.cluster.machine.MachineSpec` and answers the locality
questions the network model needs (same node? which node?).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.machine import MachineSpec


@dataclass(frozen=True)
class ProcessBinding:
    """One-to-one block mapping of MPI ranks onto cores.

    Rank ``r`` lives on node ``r // cores_per_node``, i.e. ranks fill one
    node completely before spilling onto the next — the usual block
    placement of `mpiexec` on a cluster.
    """

    machine: MachineSpec
    nranks: int

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("need at least one rank")
        if self.nranks > self.machine.total_cores:
            raise ValueError(
                f"{self.nranks} ranks exceed {self.machine.total_cores} cores; "
                "grow the machine with MachineSpec.with_nodes_for()"
            )

    @property
    def cores_per_node(self) -> int:
        return self.machine.node.cores

    def node_of(self, rank: int) -> int:
        """Index of the node hosting ``rank``."""
        self._check(rank)
        return rank // self.cores_per_node

    def core_of(self, rank: int) -> int:
        """Core index within its node for ``rank``."""
        self._check(rank)
        return rank % self.cores_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def ranks_on_node(self, node: int) -> range:
        """Ranks bound to cores of ``node`` (may be empty for tail nodes)."""
        lo = node * self.cores_per_node
        hi = min(lo + self.cores_per_node, self.nranks)
        return range(lo, max(lo, hi))

    @property
    def nodes_used(self) -> int:
        """Number of nodes that host at least one rank."""
        return -(-self.nranks // self.cores_per_node)

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
