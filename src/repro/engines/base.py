"""The execution-engine interface.

The paper runs its study twice: once as *measurement* (a real faulty CG
on a real cluster, here the :class:`~repro.core.solver.ResilientSolver`
co-simulation) and once as *prediction* (the Section-3 closed-form
models, validated against the measurements in Table 6 and then trusted
alone for the Section-6 projection).  An :class:`ExecutionEngine` is the
seam between the two: given an :class:`~repro.harness.experiment.Experiment`
it produces schema-compatible :class:`~repro.core.report.SolveReport`
objects, so every consumer downstream of the harness — campaigns, the
result store, telemetry tooling, normalization — works identically
whether a cell was simulated numerically or evaluated in closed form.

Engines are stateless with respect to the experiment: all problem
parameters live in :class:`~repro.harness.experiment.ExperimentConfig`
(plus the experiment's execution knobs), so an engine is fully described
by its registry name and campaign workers rebuild one from
``config.engine`` without pickling anything.

Every report an engine returns carries provenance in
``details["engine"]`` so baselines are never silently reused across
engines and stored cells can be audited.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar

from repro.core.report import SolveReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.experiment import Experiment

#: Engine used when a config does not name one: the numeric simulator,
#: which is what every pre-engine config implicitly meant.
DEFAULT_ENGINE = "sim"

_REGISTRY: dict[str, type["ExecutionEngine"]] = {}


def register_engine(cls: type["ExecutionEngine"]) -> type["ExecutionEngine"]:
    """Class decorator: make ``cls`` constructible via :func:`make_engine`."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise TypeError("engines must define a non-empty string `name`")
    _REGISTRY[name] = cls
    return cls


def engine_names() -> list[str]:
    """All engine names :func:`make_engine` accepts (registration order)."""
    return list(_REGISTRY)


def make_engine(name: str, **kwargs) -> "ExecutionEngine":
    """Build an engine by its registry name (``"sim"``, ``"analytic"``)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


class UnsupportedSchemeError(ValueError):
    """The engine has no way to execute the requested scheme."""


class ExecutionEngine(abc.ABC):
    """Produces :class:`SolveReport` objects for an experiment's cells."""

    #: Registry name; also the provenance stamp in ``details["engine"]``
    #: and the value of :class:`ExperimentConfig.engine` that selects it.
    name: ClassVar[str]

    @abc.abstractmethod
    def solve_fault_free(self, experiment: "Experiment") -> SolveReport:
        """The experiment's fault-free baseline (scheme ``"FF"``)."""

    @abc.abstractmethod
    def solve_scheme(
        self,
        experiment: "Experiment",
        scheme_name: str,
        baseline: SolveReport,
    ) -> SolveReport:
        """One scheme under the experiment's fault load, normalized
        against ``baseline`` (a fault-free report from this engine)."""

    def _stamp(self, report: SolveReport) -> SolveReport:
        """Record provenance; every engine path must return through here."""
        report.details["engine"] = self.name
        return report

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
