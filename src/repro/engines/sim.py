"""The numeric co-simulation engine.

This is the original execution path — :class:`ResilientSolver` running a
real distributed CG under injected faults — extracted from
``harness.experiment`` so the harness no longer assumes numeric
execution.  The experiment still owns problem construction and protocol
policy (CR cadence, fault schedule, solver knobs); this engine only
assembles them into solver runs.  Reports are bit-identical to the
pre-engine code path apart from the ``details["engine"]`` stamp.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.recovery import make_scheme
from repro.core.report import SolveReport
from repro.core.solver import ResilientSolver
from repro.engines.base import ExecutionEngine, register_engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.experiment import Experiment


@register_engine
class SimEngine(ExecutionEngine):
    """Execute cells by numerically simulating the faulty solve."""

    name = "sim"

    def solve_fault_free(self, experiment: "Experiment") -> SolveReport:
        solver = ResilientSolver(
            experiment.a, experiment.b, config=experiment.solver_config(None)
        )
        return self._stamp(solver.solve())

    def solve_scheme(
        self,
        experiment: "Experiment",
        scheme_name: str,
        baseline: SolveReport,
    ) -> SolveReport:
        scheme = make_scheme(
            scheme_name,
            construct_tol=experiment.config.construct_tol,
            **(
                experiment.cr_kwargs()
                if scheme_name.startswith("CR") or scheme_name == "ABCR"
                else {}
            ),
        )
        solver = ResilientSolver(
            experiment.a,
            experiment.b,
            scheme=scheme,
            schedule=experiment.schedule(),
            config=experiment.solver_config(baseline.iterations),
        )
        return self._stamp(solver.solve())
