"""Pluggable execution engines (numeric simulation vs closed form).

Importing this package registers both built-in engines; everything else
resolves them by name through :func:`make_engine`.
"""

from repro.engines.base import (
    DEFAULT_ENGINE,
    ExecutionEngine,
    UnsupportedSchemeError,
    engine_names,
    make_engine,
    register_engine,
)

# Import order is registration order: the default engine lists first.
from repro.engines.sim import SimEngine
from repro.engines.analytic import AnalyticEngine, AnalyticParams

__all__ = [
    "DEFAULT_ENGINE",
    "AnalyticEngine",
    "AnalyticParams",
    "ExecutionEngine",
    "SimEngine",
    "UnsupportedSchemeError",
    "engine_names",
    "make_engine",
    "register_engine",
]
