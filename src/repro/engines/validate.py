"""Model-vs-sim drift: Table 6 as a standing gate.

The paper validates its Section-3 models by comparing predicted and
measured ``T_res``, average ``P`` and ``E_res``, each normalized to the
fault-free run.  With both execution engines speaking the same report
schema, that comparison becomes mechanical: run the same campaign grid
under ``engines=("sim", "analytic")``, pair up cells that differ only in
engine, and diff the three normalized quantities — each engine
normalized against *its own* fault-free baseline, exactly as Table 6
normalizes model and measurement independently.

``repro validate`` prints the resulting table and exits non-zero when
the worst drift exceeds a threshold, which is what the CI smoke job
pins: the models may only drift from the simulator within the documented
envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.report import SolveReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.runner import CampaignResult

#: Acceptance envelope for normalized |model - sim| drift on the
#: validation preset (worst observed there: ~0.14, on CR-D's expected-
#: vs-actual rollback positions).  The residual drift comes from the
#: models' a-priori stand-ins for measured quantities — mid-interval
#: rollback expectations, the restart-gap convergence-delay bound — the
#: same deliberate approximations behind Table 6's "over estimates T_res
#: and E_res" caveat.  Structural divergence (wrong power fractions,
#: broken interval policy, mis-parameterised t_C) blows well past it.
DEFAULT_DRIFT_THRESHOLD = 0.25


@dataclass(frozen=True)
class DriftRow:
    """One grid point's model-vs-sim comparison (Table-6 style)."""

    matrix: str
    scheme: str
    nranks: int
    n_faults: int
    seed: int
    scale: float
    #: Normalized (T_res/T_ff, P/P_ff, E_res/E_ff) per engine.
    sim: tuple[float, float, float]
    analytic: tuple[float, float, float]

    @property
    def drift_t(self) -> float:
        return abs(self.analytic[0] - self.sim[0])

    @property
    def drift_p(self) -> float:
        return abs(self.analytic[1] - self.sim[1])

    @property
    def drift_e(self) -> float:
        return abs(self.analytic[2] - self.sim[2])

    @property
    def max_drift(self) -> float:
        return max(self.drift_t, self.drift_p, self.drift_e)


@dataclass(frozen=True)
class TermDrift:
    """One Section-3 *term's* model-vs-sim comparison at one grid point.

    Where :class:`DriftRow` diffs the aggregate ``T_res``/``P``/``E_res``
    ratios, a term row localizes the divergence to a single phase of the
    decomposition — e.g. ``T_checkpoint`` (Eq. 7's checkpoint-commit
    time) or ``E_extra`` (the convergence-delay energy) — each
    normalized by the engine's own fault-free total, so "the model is
    off" becomes "the model's *rollback* term is off".
    """

    matrix: str
    scheme: str
    nranks: int
    n_faults: int
    term: str
    sim: float
    analytic: float

    @property
    def drift(self) -> float:
        return abs(self.analytic - self.sim)


def _normalized(ff: SolveReport, faulty: SolveReport) -> tuple[float, float, float]:
    """The three Table-6 ratios for one faulty run vs its baseline."""
    return (
        faulty.resilience_time_s / ff.time_s,
        faulty.average_power_w / ff.average_power_w,
        faulty.resilience_energy_j / ff.energy_j,
    )


def _paired_points(groups) -> list[tuple[object, dict, dict]]:
    """``(point, sim_reports, analytic_reports)`` for every grid point
    present under both engines with an FF baseline each.

    ``groups`` is ``[(config, {scheme: report})]`` — the shape
    :meth:`CampaignResult.groups` returns, but accepted raw so analysis
    code can pair arbitrary record collections the same way.
    """
    by_point: dict = {}
    for config, reports in groups:
        point = replace(config, engine="sim")
        by_point.setdefault(point, {})[config.engine] = reports
    out = []
    for point in sorted(
        by_point, key=lambda c: (c.matrix, c.nranks, c.n_faults, c.seed)
    ):
        engines = by_point[point]
        sim = engines.get("sim")
        analytic = engines.get("analytic")
        if not sim or not analytic or "FF" not in sim or "FF" not in analytic:
            continue
        out.append((point, sim, analytic))
    return out


def drift_rows_from_groups(groups) -> list[DriftRow]:
    """Aggregate drift rows from raw ``(config, {scheme: report})`` groups."""
    rows: list[DriftRow] = []
    for point, sim, analytic in _paired_points(groups):
        for scheme in [s for s in sim if s != "FF" and s in analytic]:
            rows.append(
                DriftRow(
                    matrix=point.matrix,
                    scheme=scheme,
                    nranks=point.nranks,
                    n_faults=point.n_faults,
                    seed=point.seed,
                    scale=point.scale,
                    sim=_normalized(sim["FF"], sim[scheme]),
                    analytic=_normalized(analytic["FF"], analytic[scheme]),
                )
            )
    return rows


def drift_rows(result: "CampaignResult") -> list[DriftRow]:
    """Pair sim/analytic cells of one campaign into drift rows.

    Only grid points present under *both* engines (with an FF baseline
    each) produce rows; anything else is skipped, so a partially failed
    campaign still yields the comparisons it can support.
    """
    return drift_rows_from_groups(result.groups())


def term_drift_rows_from_groups(groups) -> list[TermDrift]:
    """Per-phase drift terms from raw ``(config, {scheme: report})``
    groups: one ``T_<phase>``/``E_<phase>`` row per resilience phase
    either engine charged, normalized against each engine's own FF run."""
    from repro.power.energy import PhaseTag

    rows: list[TermDrift] = []
    for point, sim, analytic in _paired_points(groups):
        sim_ff, ana_ff = sim["FF"], analytic["FF"]
        for scheme in [s for s in sim if s != "FF" and s in analytic]:
            sim_rep, ana_rep = sim[scheme], analytic[scheme]
            for tag in PhaseTag:
                if not tag.is_resilience:
                    continue
                if (
                    tag not in sim_rep.account.charges
                    and tag not in ana_rep.account.charges
                ):
                    continue
                for term, sim_v, ana_v in (
                    (
                        f"T_{tag.value}",
                        sim_rep.account.time(tag) / sim_ff.time_s,
                        ana_rep.account.time(tag) / ana_ff.time_s,
                    ),
                    (
                        f"E_{tag.value}",
                        sim_rep.account.energy(tag) / sim_ff.energy_j,
                        ana_rep.account.energy(tag) / ana_ff.energy_j,
                    ),
                ):
                    rows.append(
                        TermDrift(
                            matrix=point.matrix,
                            scheme=scheme,
                            nranks=point.nranks,
                            n_faults=point.n_faults,
                            term=term,
                            sim=sim_v,
                            analytic=ana_v,
                        )
                    )
    return rows


def term_drift_rows(result: "CampaignResult") -> list[TermDrift]:
    """Per-term drift rows for a finished campaign."""
    return term_drift_rows_from_groups(result.groups())


def max_drift(rows: list[DriftRow]) -> float:
    """Worst normalized drift over the whole table (0.0 when empty)."""
    return max((r.max_drift for r in rows), default=0.0)


def format_drift_table(rows: list[DriftRow]) -> str:
    """Render drift rows as the Table-6-style text block the CLI prints."""
    if not rows:
        return "no comparable sim/analytic cell pairs"
    header = (
        f"{'matrix':<14} {'scheme':<9} {'r':>4} {'f':>3} "
        f"{'T_res s/a':>15} {'P s/a':>15} {'E_res s/a':>15} {'drift':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.matrix:<14} {r.scheme:<9} {r.nranks:>4} {r.n_faults:>3} "
            f"{r.sim[0]:>7.3f}/{r.analytic[0]:<7.3f} "
            f"{r.sim[1]:>7.3f}/{r.analytic[1]:<7.3f} "
            f"{r.sim[2]:>7.3f}/{r.analytic[2]:<7.3f} "
            f"{r.max_drift:>7.3f}"
        )
    return "\n".join(lines)


def format_term_drift_table(rows: list[TermDrift]) -> str:
    """Render per-term drift rows, worst terms first."""
    if not rows:
        return "no comparable sim/analytic cell pairs"
    header = (
        f"{'matrix':<14} {'scheme':<9} {'r':>4} {'f':>3} "
        f"{'term':<14} {'sim':>9} {'analytic':>9} {'drift':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in sorted(rows, key=lambda r: -r.drift):
        lines.append(
            f"{r.matrix:<14} {r.scheme:<9} {r.nranks:>4} {r.n_faults:>3} "
            f"{r.term:<14} {r.sim:>9.4f} {r.analytic:>9.4f} {r.drift:>7.3f}"
        )
    return "\n".join(lines)
