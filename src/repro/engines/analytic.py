"""The closed-form engine: Section-3 models as an execution path.

Where :class:`~repro.engines.sim.SimEngine` prices every CG iteration by
numerically stepping the faulty solve, this engine evaluates the paper's
Equations 2-16 once per cell.  It parameterises the per-scheme models
(:class:`CheckpointModel`, :class:`RedundancyModel`,
:class:`ForwardRecoveryModel`) from the *same* substrate the simulator
uses — the measured :class:`~repro.core.cg.IterationCosts`, the
:class:`~repro.power.model.PowerModel` core powers, the checkpoint store
cost models — so model-vs-sim drift (``repro validate``) measures model
fidelity, not parameter skew.

The one numeric quantity the models cannot produce is the fault-free
convergence horizon ``H`` (a property of the matrix, not of the cost
model).  It comes from the primed baseline when a campaign provides one,
and otherwise from one memoized CG probe
(:func:`repro.matrices.cache.fault_free_horizon`) shared across every
rank count of the same matrix.  Everything after that probe is
arithmetic, which is what makes ``--engine analytic`` sweeps of 10^5-10^6
processes feasible: a primed scheme cell costs microseconds, not solver
minutes.

Reports are schema-compatible with the simulator's — phase-tagged
account, RAPL log, fault list (the *same* schedule events the simulator
would inject), traffic counters, telemetry when tracing — but aggregate:
the RAPL log has one phase per model term rather than per-iteration
structure, and the residual history is the two-point ``[1, tol]``
envelope the model assumes.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.checkpoint.store import DiskStore, MemoryStore
from repro.cluster.comm import SimComm, TrafficCounters
from repro.cluster.machine import paper_machine
from repro.cluster.network import NetworkModel
from repro.core.models.general import GeneralModel, WorkloadParams
from repro.core.models.validation import DEFAULT_EXTRA_FRACTION_PER_FAULT
from repro.core.report import SolveReport
from repro.engines.base import (
    ExecutionEngine,
    UnsupportedSchemeError,
    register_engine,
)
from repro.faults.events import FaultEvent, FaultScope
from repro.matrices import cache as problem_cache
from repro.power.energy import Charge, EnergyAccount, PhaseTag
from repro.power.model import CoreState, PowerModel
from repro.power.rapl import RaplMeter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.harness.experiment import Experiment

#: Forward-recovery schemes the engine can model (Table 2's FW family).
FW_SCHEMES = frozenset(
    {"F0", "FI", "LI", "LI-LU", "LI-DVFS", "LSI", "LSI-QR", "LSI-DVFS"}
)


def analytic_scheme_names() -> list[str]:
    """Every scheme :meth:`AnalyticEngine.solve_scheme` can evaluate, in
    factory order.  Anything else raises :class:`UnsupportedSchemeError`
    at solve time; CLI entry points that know the analytic engine will
    run use this list to reject such schemes at argument-parse time
    instead of mid-campaign.
    """
    from repro.core.recovery import scheme_names

    supported = set(FW_SCHEMES) | {"RD", "TMR", "CR-M", "CR-D", "ESR", "ABCR"}
    return [s for s in scheme_names() if s in supported]


@dataclass(frozen=True)
class AnalyticParams:
    """A-priori inputs of the closed-form models.

    ``extra_fraction_per_fault`` is the Section-6 suite-average
    convergence delay per fault; ``construct_iteration_constant`` is the
    ``C`` in the local-CG iteration estimate ``N ~= C sqrt(m) ln(2/tol)``
    (the classic CG bound with the block dimension standing in for its
    condition number).
    """

    extra_fraction_per_fault: float = DEFAULT_EXTRA_FRACTION_PER_FAULT
    construct_iteration_constant: float = 0.5

    def __post_init__(self) -> None:
        if self.extra_fraction_per_fault < 0:
            raise ValueError("extra fraction must be non-negative")
        if self.construct_iteration_constant <= 0:
            raise ValueError("construction constant must be positive")


class _Substrate:
    """The machine/cost parameters one cell's models are built from.

    Mirrors the simulator's setup (same problem cache, same communicator
    growth, same power model) without constructing a solver.
    """

    def __init__(self, experiment: "Experiment") -> None:
        cfg = experiment.config
        self.nranks = cfg.nranks
        self.comm = SimComm(paper_machine(), cfg.nranks, NetworkModel())
        self.machine = self.comm.machine  # grown if nranks > 192
        self.power = PowerModel()
        self.dmat = problem_cache.distributed_matrix(experiment.a, cfg.nranks)
        self.preconditioned = experiment.preconditioner is not None
        self.costs = problem_cache.iteration_costs(
            self.dmat, self.comm, preconditioned=self.preconditioned
        )
        pm = self.power
        self.fmax_ghz = pm.ladder.fmax_ghz
        self.p_active = pm.core_power(self.fmax_ghz, CoreState.ACTIVE)
        self.p_idle_fmax = pm.core_power(self.fmax_ghz, CoreState.IDLE)
        self.p_idle_fmin = pm.core_power(pm.ladder.fmin_ghz, CoreState.IDLE)
        c = self.costs
        n = cfg.nranks
        sum_compute = float(c.compute_s.sum())
        # Same straggler accounting as the solver: laggards idle at f_max
        # until the busiest rank finishes its local work.
        self.iter_compute_energy = self.p_active * sum_compute + self.p_idle_fmax * (
            n * c.compute_max_s - sum_compute
        )
        self.iter_comm_energy = n * self.p_active * c.comm_s
        self.iter_energy = self.iter_compute_energy + self.iter_comm_energy
        self.iter_power_avg = self.iter_energy / c.wall_s if c.wall_s > 0 else 0.0

    def expand_victims(self, event: FaultEvent) -> list[int]:
        """The event's blast radius, identically to the solver."""
        if event.scope is FaultScope.PROCESS:
            return list(event.victims)
        if event.scope is FaultScope.SYSTEM:
            return list(range(self.nranks))
        out: list[int] = []
        seen: set[int] = set()
        for v in event.victims:  # NODE
            node = self.comm.binding.node_of(v)
            for r in self.comm.binding.ranks_on_node(node):
                if r not in seen:
                    seen.add(r)
                    out.append(r)
        return out


@dataclass
class _SchemeTerms:
    """One scheme's model output, ready to assemble into a report."""

    phases: list[tuple[PhaseTag, float, float]]  # (tag, seconds, joules)
    extra_iters: int = 0
    restarts: int = 0
    dvfs_transitions: int = 0
    energy_multiplier: float = 1.0  # RAPL power scale during execution
    construct_per_fault_s: float = 0.0
    scheme_details: dict | None = None
    model_params: dict | None = None


@register_engine
class AnalyticEngine(ExecutionEngine):
    """Evaluate cells with the Section-3 closed-form models."""

    name = "analytic"

    def __init__(self, params: AnalyticParams | None = None) -> None:
        self.params = params or AnalyticParams()
        # One substrate per experiment (a cell evaluates many schemes
        # against the same matrix/partition); rebuilt if the experiment's
        # preconditioner knob is flipped, dropped when it is collected.
        self._substrates: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()

    def _substrate(self, experiment: "Experiment") -> _Substrate:
        preconditioned = experiment.preconditioner is not None
        cached = self._substrates.get(experiment)
        if cached is None or cached.preconditioned != preconditioned:
            cached = _Substrate(experiment)
            self._substrates[experiment] = cached
        return cached

    # ------------------------------------------------------------------
    def solve_fault_free(self, experiment: "Experiment") -> SolveReport:
        sub = self._substrate(experiment)
        cfg = experiment.config
        horizon = problem_cache.fault_free_horizon(
            sub.dmat,
            experiment.b,
            tol=cfg.tol,
            max_iters=cfg.max_iters,
            preconditioner=experiment.preconditioner,
            seed=cfg.seed,
        )
        return self._assemble(
            experiment,
            sub,
            scheme="FF",
            horizon=horizon,
            terms=_SchemeTerms(phases=[]),
            events=[],
            victim_lists=[],
            baseline_iters=None,
        )

    def solve_scheme(
        self,
        experiment: "Experiment",
        scheme_name: str,
        baseline: SolveReport,
    ) -> SolveReport:
        cfg = experiment.config
        sub = self._substrate(experiment)
        horizon = baseline.iterations
        gm = self._general_model(baseline, cfg.nranks)
        rate = cfg.n_faults / baseline.time_s if cfg.n_faults else 0.0
        events = experiment.schedule().events(
            nranks=cfg.nranks, horizon_iters=horizon
        )
        victim_lists = [sub.expand_victims(e) for e in events]

        if scheme_name in ("RD", "TMR"):
            terms = self._redundancy_terms(scheme_name, gm)
        elif scheme_name == "ESR":
            terms = self._esr_terms(sub, gm, rate, horizon, events, victim_lists)
        elif scheme_name == "ABCR":
            terms = self._abcr_terms(experiment, sub, gm, rate, events)
        elif scheme_name.startswith("CR"):
            terms = self._checkpoint_terms(
                experiment, sub, scheme_name, gm, rate, events
            )
        elif scheme_name in FW_SCHEMES:
            terms = self._forward_terms(
                experiment, sub, scheme_name, gm, rate, events, victim_lists
            )
        else:
            raise UnsupportedSchemeError(
                f"no closed-form model for scheme {scheme_name!r}; "
                "use the sim engine"
            )
        return self._assemble(
            experiment,
            sub,
            scheme=scheme_name,
            horizon=horizon,
            terms=terms,
            events=events,
            victim_lists=victim_lists,
            baseline_iters=horizon,
        )

    # ------------------------------------------------------------------
    # per-family model terms
    # ------------------------------------------------------------------
    @staticmethod
    def _general_model(ff: SolveReport, nranks: int) -> GeneralModel:
        """Equations 2-8 parameterised exactly as Table 6 does: SOLVE
        time is T_solve, OVERHEAD time is T_O(N), P_1 is the per-core
        share of the baseline's average power."""
        return GeneralModel(
            WorkloadParams(
                t_solve_s=max(ff.account.time(PhaseTag.SOLVE), 1e-12),
                p1_w=ff.average_power_w / nranks,
            ),
            n_cores=nranks,
            parallel_overhead_s=ff.account.time(PhaseTag.OVERHEAD),
        )

    def _redundancy_terms(self, name: str, gm: GeneralModel) -> _SchemeTerms:
        from repro.core.models.schemes import RedundancyModel

        replicas = 3 if name == "TMR" else 2
        m = RedundancyModel(gm, replicas=replicas)
        return _SchemeTerms(
            phases=[(PhaseTag.REDUNDANT, 0.0, m.e_res_j())],
            energy_multiplier=float(replicas),
            scheme_details={"recoveries": 0},
            model_params={"family": "redundancy", "replicas": replicas},
        )

    def _esr_terms(
        self,
        sub: _Substrate,
        gm: GeneralModel,
        rate: float,
        horizon: int,
        events: list[FaultEvent],
        victim_lists: list[list[int]],
    ) -> _SchemeTerms:
        """ESR (arXiv:1907.13077): exact multi-loss reconstruction.

        Priced from the *same* shared formulas the simulated scheme uses
        (:func:`repro.core.recovery.esr.rebuild_flops` /
        :func:`~repro.core.recovery.esr.retention_bytes`): the per-
        iteration redundant p/r streaming overlaps execution (REDUNDANT
        energy, no wall-clock), and each fault pays the victims' copy-
        back transfers (RESTORE) plus one recurrence replay over the lost
        row panels (RECONSTRUCT).  The reconstruction is exact, so there
        are no extra iterations and no restarts — CG stays on the
        fault-free trajectory.
        """
        from repro.core.models.schemes import ExactReconstructionModel
        from repro.core.recovery.esr import rebuild_flops, retention_bytes

        core = sub.machine.node.core
        sizes = sub.dmat.partition.sizes
        p2p = sub.comm.network.p2p_time
        p_core = sub.p_active  # power_compute_w() / nranks
        ov_per_iter = sum(
            p2p(retention_bytes(int(sizes[r])), same_node=False) * p_core
            for r in range(sub.nranks)
        )
        t_xfer_tot = 0.0
        t_rebuild_tot = 0.0
        total_blocks = 0
        for victims in victim_lists:
            total_blocks += len(victims)
            for v in victims:
                m_rows = int(sizes[v])
                t_xfer_tot += p2p(retention_bytes(m_rows), same_node=False)
                t_rebuild_tot += core.compute_time(
                    rebuild_flops(sub.dmat.row_block(v).nnz, m_rows),
                    sub.fmax_ghz,
                )
        p_rebuild = sub.p_active + (sub.nranks - 1) * sub.p_idle_fmax
        n_events = len(events)
        model = ExactReconstructionModel(
            gm,
            retention_power_w=(
                ov_per_iter / sub.costs.wall_s if sub.costs.wall_s > 0 else 0.0
            ),
            t_xfer_s=t_xfer_tot / n_events if n_events else 0.0,
            t_rebuild_s=t_rebuild_tot / n_events if n_events else 0.0,
            n_faults=n_events,
            rebuild_power_w=p_rebuild,
        )
        phases: list[tuple[PhaseTag, float, float]] = [
            (PhaseTag.REDUNDANT, 0.0, horizon * ov_per_iter)
        ]
        if t_xfer_tot > 0:
            phases.append(
                (PhaseTag.RESTORE, t_xfer_tot, t_xfer_tot * sub.p_active * sub.nranks)
            )
        if t_rebuild_tot > 0:
            phases.append(
                (PhaseTag.RECONSTRUCT, t_rebuild_tot, t_rebuild_tot * p_rebuild)
            )
        return _SchemeTerms(
            phases=phases,
            construct_per_fault_s=model.t_rebuild_s,
            scheme_details={"recoveries": total_blocks},
            model_params={
                "family": "exact-reconstruction",
                "retention_power_w": model.retention_power_w,
                "t_xfer_s": model.t_xfer_s,
                "t_rebuild_s": model.t_rebuild_s,
                "rate_per_s": rate,
                "blocks_per_fault": (
                    total_blocks / n_events if n_events else 1.0
                ),
            },
        )

    def _abcr_terms(
        self,
        experiment: "Experiment",
        sub: _Substrate,
        gm: GeneralModel,
        rate: float,
        events: list[FaultEvent],
    ) -> _SchemeTerms:
        """ABCR (arXiv:2007.04066): checkpoint timing over in-memory
        retention, with reconstruction replacing the store read.

        The write/read cost is the neighbour transfer of the retained
        blocks (:func:`repro.core.recovery.abcr.retention_transfer_s`'s
        critical path, computed from the same partition), the rollback
        term is the exact event sum like :meth:`_checkpoint_terms`, and
        each fault adds one restart-equivalent recurrence rebuild.
        """
        from repro.core.models.schemes import ABCRModel, CheckpointModel
        from repro.core.recovery.abcr import RETAINED_VECTORS
        from repro.matrices.distributed import BYTES_PER_ENTRY

        sizes = sub.dmat.partition.sizes
        p2p = sub.comm.network.p2p_time
        t_c = max(
            p2p(
                RETAINED_VECTORS * int(sizes[r]) * BYTES_PER_ENTRY,
                same_node=False,
            )
            for r in range(sub.nranks)
        )
        kwargs = experiment.cr_kwargs()
        wall = sub.costs.wall_s
        interval_iters = kwargs.get("interval_iters")
        if interval_iters is None:
            from repro.core.recovery.factory import DEFAULT_CR_INTERVAL_ITERS

            interval_iters = DEFAULT_CR_INTERVAL_ITERS
        frac = min(max(sub.p_idle_fmax / sub.p_active, 1e-6), 1.0)
        checkpoint = CheckpointModel(
            gm,
            t_c_s=max(t_c, 1e-12),
            rate_per_s=rate,
            interval_s=interval_iters * wall,
            checkpoint_power_fraction=frac,
        )
        interval_eff = checkpoint.effective_interval_s
        t_lost = sum((e.iteration * wall) % interval_eff for e in events)
        n_events = len(events)
        t_rebuild_tot = n_events * wall  # one recurrence replay per fault
        model = ABCRModel(
            checkpoint,
            t_rebuild_s=wall,
            n_faults=n_events,
            rebuild_power_w=gm.power_execution_w(),
        )
        total = gm.time_fault_free_s() + t_lost
        t_chkpt = checkpoint.t_chkpt_s(total)
        phases: list[tuple[PhaseTag, float, float]] = []
        if t_chkpt > 0:
            phases.append(
                (PhaseTag.CHECKPOINT, t_chkpt, t_chkpt * checkpoint.p_res_w())
            )
        if t_lost > 0:
            phases.append(
                (PhaseTag.EXTRA, t_lost, t_lost * gm.power_execution_w())
            )
        if n_events:
            phases.append(
                (PhaseTag.RESTORE, n_events * t_c, n_events * t_c * checkpoint.p_res_w())
            )
            phases.append(
                (
                    PhaseTag.RECONSTRUCT,
                    t_rebuild_tot,
                    t_rebuild_tot * gm.power_execution_w(),
                )
            )
        writes = int(total / interval_eff)
        return _SchemeTerms(
            phases=phases,
            extra_iters=int(round(t_lost / wall)) if wall > 0 else 0,
            restarts=n_events,
            construct_per_fault_s=wall,
            scheme_details={
                "checkpoints_written": writes,
                "interval_iters": int(interval_iters),
                "recoveries": n_events,
            },
            model_params={
                "family": "abcr",
                "t_c_s": t_c,
                "interval_s": interval_eff,
                "t_rebuild_s": model.t_rebuild_s,
                "rate_per_s": rate,
                "checkpoint_power_fraction": frac,
            },
        )

    def _checkpoint_terms(
        self,
        experiment: "Experiment",
        sub: _Substrate,
        name: str,
        gm: GeneralModel,
        rate: float,
        events: list[FaultEvent],
    ) -> _SchemeTerms:
        from repro.core.models.schemes import CheckpointModel

        if name not in ("CR-M", "CR-D"):
            raise UnsupportedSchemeError(
                f"no closed-form model for scheme {name!r} (the multi-level "
                "manager has no Section-3 counterpart); use the sim engine"
            )
        cfg = experiment.config
        store = MemoryStore() if name == "CR-M" else DiskStore()
        # The solver snapshots x: n rows of float64.
        t_c = store.write_time_s(experiment.a.shape[0] * 8.0, cfg.nranks)
        kwargs = experiment.cr_kwargs()
        wall = sub.costs.wall_s
        if "interval_iters" in kwargs:
            interval_s: float | None = kwargs["interval_iters"] * wall
        else:
            # Young's interval from the implied MTBF; the model computes
            # it from ``rate`` (= 1/MTBF by construction of the load).
            interval_s = None
        frac = min(max(sub.p_idle_fmax / sub.p_active, 1e-6), 1.0)
        model = CheckpointModel(
            gm,
            t_c_s=max(t_c, 1e-12),
            rate_per_s=rate,
            interval_s=interval_s,
            checkpoint_power_fraction=frac,
        )
        # Equations 10-11 evaluated at the *exact* injected load rather
        # than the Poisson fixed point: the experiment schedules exactly
        # ``n_faults`` at known iterations, so T_lost is the sum of each
        # fault's rollback to its last checkpoint (expected value
        # I_C/2 per fault — Eq. 11 — when the horizon spans many
        # intervals).  The asymptotic fixed point T = T_ff/(1 - waste)
        # diverges on short horizons where I_C is a sizeable fraction of
        # T_ff, which is a property of the renewal approximation, not of
        # checkpointing; the exact sum stays faithful at every scale.
        interval_eff = model.effective_interval_s
        if math.isinf(interval_eff):
            t_lost = 0.0
        else:
            t_lost = sum(
                (e.iteration * wall) % interval_eff for e in events
            )
        total = gm.time_fault_free_s() + t_lost
        t_chkpt = model.t_chkpt_s(total)  # Eq. 10 at the actual total time
        phases = []
        if t_chkpt > 0:
            phases.append(
                (PhaseTag.CHECKPOINT, t_chkpt, t_chkpt * model.p_res_w())
            )
        if t_lost > 0:
            phases.append(
                (PhaseTag.EXTRA, t_lost, t_lost * gm.power_execution_w())
            )
        writes = (
            0 if math.isinf(interval_eff) else int(total / interval_eff)
        )
        return _SchemeTerms(
            phases=phases,
            extra_iters=int(round(t_lost / wall)) if wall > 0 else 0,
            restarts=cfg.n_faults,
            scheme_details={
                "checkpoints_written": writes,
                "interval_iters": (
                    0
                    if math.isinf(interval_eff) or wall <= 0
                    else max(1, int(round(interval_eff / wall)))
                ),
            },
            model_params={
                "family": "checkpoint",
                "t_c_s": t_c,
                "interval_s": interval_eff,
                "rate_per_s": rate,
                "checkpoint_power_fraction": frac,
            },
        )

    def _forward_terms(
        self,
        experiment: "Experiment",
        sub: _Substrate,
        name: str,
        gm: GeneralModel,
        rate: float,
        events: list[FaultEvent],
        victim_lists: list[list[int]],
    ) -> _SchemeTerms:
        from repro.core.models.schemes import ForwardRecoveryModel

        cfg = experiment.config
        dvfs = name.endswith("-DVFS")
        constructs = name not in ("F0", "FI")
        n_events = len(events)
        total_blocks = sum(len(v) for v in victim_lists)
        k_avg = total_blocks / n_events if n_events else 1.0
        wall = sub.costs.wall_s
        if constructs and n_events:
            t_const_tot = sum(
                sum(self._construct_time_s(sub, cfg, name, r) for r in victims)
                for victims in victim_lists
            )
        else:
            t_const_tot = 0.0
        t_const = t_const_tot / n_events if n_events else 0.0
        # Convergence delay per fault (the model's t_extra), evaluated at
        # the exact injected load like the CR terms.  Every FW recovery
        # restarts CG, discarding the Krylov space built since the
        # previous restart:
        #  * F0/FI repair with a full-magnitude perturbation (zeros / the
        #    initial guess), so the restart redoes essentially all of
        #    that discarded progress — the inter-fault gap, in closed
        #    form from the schedule.  An upper estimate (Table 6's "over
        #    estimates T_res and E_res" caveat).
        #  * The interpolating schemes repair close to the lost state, so
        #    their delay is the paper's a-priori suite-average fraction
        #    per fault, scaled by blocks lost (wider blast radii
        #    reintroduce more error; PROCESS scope k=1 reduces to the
        #    paper's term).
        t_extra_tot = 0.0
        prev_iter = 0
        for event, victims in zip(events, victim_lists):
            if constructs:
                t_extra_tot += (
                    self.params.extra_fraction_per_fault
                    * gm.time_fault_free_s()
                    * len(victims)
                )
            else:
                t_extra_tot += (event.iteration - prev_iter) * wall
            prev_iter = event.iteration
        t_extra = t_extra_tot / n_events if n_events else 0.0
        idle_frac = (sub.p_idle_fmin if dvfs else sub.p_idle_fmax) / sub.p_active
        idle_frac = min(max(idle_frac, 0.0), 1.0)
        # The model instance carries the power side (Eq. 15) and the
        # per-fault parameterisation; the totals above are Eq. 14's
        # lambda*T*t terms evaluated at the exact fault count.
        model = ForwardRecoveryModel(
            gm,
            rate_per_s=rate,
            t_const_s=t_const,
            t_extra_s=t_extra,
            n_active=1,
            idle_power_fraction=idle_frac,
        )
        phases = []
        if t_const_tot > 0:
            phases.append(
                (PhaseTag.RECONSTRUCT, t_const_tot, t_const_tot * model.p_const_w())
            )
        if t_extra_tot > 0:
            phases.append(
                (PhaseTag.EXTRA, t_extra_tot, t_extra_tot * gm.power_execution_w())
            )
        n = cfg.nranks
        return _SchemeTerms(
            phases=phases,
            extra_iters=int(round(t_extra_tot / wall)) if wall > 0 else 0,
            restarts=n_events,
            # One governor grab, every core down, every core back up.
            dvfs_transitions=(2 * n + 1) * n_events if dvfs else 0,
            construct_per_fault_s=t_const,
            scheme_details={
                "constructions": total_blocks if constructs else 0,
                "recoveries": total_blocks,
            },
            model_params={
                "family": "forward",
                "t_const_s": t_const,
                "t_extra_s": t_extra,
                "rate_per_s": rate,
                "idle_power_fraction": idle_frac,
                "blocks_per_fault": k_avg,
            },
        )

    def _construct_time_s(
        self, sub: _Substrate, cfg, name: str, rank: int
    ) -> float:
        """A-priori per-block construction estimate for one victim.

        Matches the *pricing* the simulated schemes use (flops through
        the core's rate table) with an estimated iteration count instead
        of a measured one — the Table-6 caveat that the FW model works
        from a-priori parameters applies here too.
        """
        core = sub.machine.node.core
        m_rows = int(sub.dmat.partition.sizes[rank])
        if m_rows == 0:
            return 0.0
        n_it = min(
            m_rows,
            int(
                math.ceil(
                    self.params.construct_iteration_constant
                    * math.sqrt(m_rows)
                    * math.log(2.0 / cfg.construct_tol)
                )
            ),
        )
        if name in ("LI", "LI-DVFS"):
            diag_nnz = sub.dmat.diag_block(rank).nnz
            flops = n_it * (2.0 * diag_nnz + 10.0 * m_rows)
            return core.compute_time(flops, sub.fmax_ghz)
        if name in ("LSI", "LSI-DVFS"):
            rows_nnz = sub.dmat.row_block(rank).nnz
            flops = n_it * (4.0 * rows_nnz + 10.0 * m_rows)
            return core.compute_time(flops, sub.fmax_ghz)
        if name == "LI-LU":
            # Banded-equivalent LU fill estimate: w ~= sqrt(m).
            w = max(1.0, math.sqrt(m_rows))
            return core.compute_time(
                2.0 * m_rows * w * w, sub.fmax_ghz, kind="factor"
            ) + core.compute_time(8.0 * m_rows * w, sub.fmax_ghz)
        if name == "LSI-QR":
            # Parallel LSQR to machine precision: ~m communication rounds.
            rows_nnz = sub.dmat.row_block(rank).nnz
            per_round = core.compute_time(
                4.0 * rows_nnz / sub.nranks, sub.fmax_ghz
            ) + 2.0 * sub.comm.collectives.allreduce(m_rows * 8.0)
            return m_rows * per_round
        return 0.0

    # ------------------------------------------------------------------
    # report assembly
    # ------------------------------------------------------------------
    def _assemble(
        self,
        experiment: "Experiment",
        sub: _Substrate,
        *,
        scheme: str,
        horizon: int,
        terms: _SchemeTerms,
        events: list[FaultEvent],
        victim_lists: list[list[int]],
        baseline_iters: int | None,
    ) -> SolveReport:
        cfg = experiment.config
        c = sub.costs
        t_solve = horizon * c.compute_max_s
        t_overhead = horizon * c.comm_s
        account = EnergyAccount()
        account.charges[PhaseTag.SOLVE] = Charge(
            t_solve, horizon * sub.iter_compute_energy
        )
        if t_overhead > 0:
            account.charges[PhaseTag.OVERHEAD] = Charge(
                t_overhead, horizon * sub.iter_comm_energy
            )
        for tag, time_s, energy_j in terms.phases:
            ch = account.charges.setdefault(tag, Charge())
            ch.time_s += time_s
            ch.energy_j += energy_j
        time_s = account.total_time_s

        rapl = RaplMeter()
        t_exec = t_solve + t_overhead
        if t_exec > 0:
            rapl.record(
                "iteration",
                0.0,
                t_exec,
                sub.iter_power_avg * terms.energy_multiplier,
            )
        cursor = t_exec
        for tag, phase_t, phase_e in terms.phases:
            if phase_t <= 0:
                continue
            rapl.record(tag.value, cursor, cursor + phase_t, phase_e / phase_t)
            cursor += phase_t

        iters = horizon + terms.extra_iters
        traffic = TrafficCounters(
            bytes_p2p=iters * c.bytes_per_iter,
            messages=iters * max(0, len(sub.dmat.halo_pair_bytes)),
            collectives=2 * iters,
        )
        details: dict = {
            "restarts": terms.restarts,
            "iteration_wall_s": c.wall_s,
            "dvfs_transitions": terms.dvfs_transitions,
            "operating_frequency_ghz": sub.fmax_ghz,
            "model": {
                "horizon_iters": horizon,
                "extra_fraction_per_fault": self.params.extra_fraction_per_fault,
                **(terms.model_params or {}),
            },
        }
        if terms.scheme_details is not None:
            details["scheme_details"] = terms.scheme_details
        report = SolveReport(
            scheme=scheme,
            converged=True,
            iterations=iters,
            final_relative_residual=cfg.tol,
            residual_history=np.array([1.0, cfg.tol]),
            time_s=time_s,
            account=account,
            rapl=rapl,
            faults=list(events),
            traffic=traffic,
            baseline_iters=baseline_iters,
            details=details,
        )
        if cfg.trace:
            self._attach_telemetry(report, sub, terms, events, victim_lists)
        return self._stamp(report)

    def _attach_telemetry(
        self,
        report: SolveReport,
        sub: _Substrate,
        terms: _SchemeTerms,
        events: list[FaultEvent],
        victim_lists: list[list[int]],
    ) -> None:
        """Aggregate telemetry synthesised from the model terms.

        Events carry modeled sim timestamps (faults at their scheduled
        iteration on the fault-free clock, recoveries one modeled
        construction later); phase metrics mirror the account exactly, so
        rollups and exports work identically on analytic cells.  Unlike
        the simulator there are no per-checkpoint events — the stream
        stays bounded by the fault count at any scale.
        """
        from repro.harness.tracing import (
            FaultInjected,
            PhaseEntered,
            RecoveryApplied,
        )
        from repro.obs.telemetry import Telemetry

        clock = {"now": 0.0}
        tel = Telemetry.for_solver(clock=lambda: clock["now"])
        with tel.spans.span("solve", scheme=report.scheme):
            clock["now"] = report.time_s

        for tag, time_s, energy_j in terms.phases:
            if tag.is_resilience and (time_s > 0 or energy_j > 0):
                tel.events.record(
                    PhaseEntered(
                        iteration=0,
                        sim_time_s=0.0,
                        phase=tag.value,
                        from_phase=PhaseTag.SOLVE.value,
                    )
                )
        m = tel.metrics
        wall = sub.costs.wall_s
        now = 0.0
        for event, victims in zip(events, victim_lists):
            t_fault = max(event.iteration * wall, now)
            tel.events.record(
                FaultInjected(
                    iteration=event.iteration,
                    sim_time_s=t_fault,
                    victim_rank=event.victim_rank,
                    fault_class=event.fault_class.label,
                    scope=event.scope.value,
                    n_blocks_lost=len(victims),
                )
            )
            t_recover = t_fault + terms.construct_per_fault_s
            tel.events.record(
                RecoveryApplied(
                    iteration=event.iteration,
                    sim_time_s=t_recover,
                    scheme=report.scheme,
                    victim_rank=event.victim_rank,
                    needs_restart=True,
                    construct_time_s=terms.construct_per_fault_s,
                )
            )
            now = t_recover
            m.counter(
                "solver.faults",
                fault_class=event.fault_class.label,
                scope=event.scope.value,
            ).inc()
            m.counter("solver.recoveries", scheme=report.scheme).inc(
                float(len(victims))
            )
            m.histogram("recovery.construct_s", scheme=report.scheme).observe(
                terms.construct_per_fault_s
            )
            tel.recovery_latency_histogram(report.scheme).observe(
                terms.construct_per_fault_s
            )
        for tag, charge in report.account.charges.items():
            m.counter("phase.time_s", phase=tag.value).inc(charge.time_s)
            m.counter("phase.energy_j", phase=tag.value).inc(charge.energy_j)
        m.counter("solver.iterations").inc(float(report.iterations))
        if terms.restarts:
            m.counter("solver.restarts").inc(float(terms.restarts))
        m.gauge("solver.sim_time_s").set(report.time_s)
        m.gauge("solver.energy_j").set(report.energy_j)
        m.gauge("solver.relative_residual").set(report.final_relative_residual)
        m.gauge("solver.converged").set(1.0)
        report.details["telemetry"] = tel
        report.details["trace"] = tel.events

    # ------------------------------------------------------------------
    @staticmethod
    def project(sizes, config=None):
        """Section-6 weak-scaling projection (Figure 9/10), the pure-model
        sweep this engine generalises.  Thin wrapper so the CLI's
        ``project`` subcommand runs through the engine layer."""
        from repro.core.models.projection import ProjectionConfig, project

        return project(sorted(sizes), config or ProjectionConfig())


def describe_params(params: AnalyticParams) -> dict:
    """JSON-safe dump of the engine parameterization (for reports/docs)."""
    return asdict(params)
