"""Simulated RAPL: energy counters and power traces.

The real Running Average Power Limit interface exposes monotonically
increasing energy counters per package; tools sample them and difference
to get power.  :class:`RaplMeter` reproduces that contract on simulated
time: phases of constant power are pushed in, the counter integrates, and
:meth:`RaplMeter.power_trace` samples the result exactly like a RAPL
polling loop would — this is what draws Figure 7(a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.simtime import PhaseLog


class RaplDomain(enum.Enum):
    """RAPL measurement domain."""

    PACKAGE = "package"
    PP0 = "pp0"      # cores
    DRAM = "dram"


#: RAPL energy counters wrap at 2^32 microjoules on Haswell.
_COUNTER_WRAP_UJ = 2 ** 32


@dataclass
class RaplMeter:
    """Energy counter for one domain, fed by constant-power phases."""

    domain: RaplDomain = RaplDomain.PACKAGE
    log: PhaseLog = field(default_factory=PhaseLog)

    def record(self, tag: str, t_start: float, t_end: float, power_w: float) -> None:
        """Record a constant-power interval."""
        self.log.add(tag, t_start, t_end, power_w)

    def energy_j(self, t_until: float | None = None) -> float:
        """Total joules accumulated up to ``t_until`` (default: everything)."""
        if t_until is None:
            return self.log.total_energy()
        total = 0.0
        for p in self.log.phases:
            if p.t_start >= t_until:
                continue
            end = min(p.t_end, t_until)
            total += (end - p.t_start) * p.power_w
        return total

    def counter_uj(self, t_until: float | None = None) -> int:
        """The raw RAPL register view: microjoules, wrapped at 32 bits."""
        return int(self.energy_j(t_until) * 1e6) % _COUNTER_WRAP_UJ

    def power_trace(self, sample_period_s: float, t_end: float | None = None):
        """Sample average power like a RAPL polling loop.

        Returns ``(times, watts)``; each sample is the mean power over the
        preceding period (counter difference / period), which is exactly
        what RAPL-based measurement reports.
        """
        if sample_period_s <= 0:
            raise ValueError("sample period must be positive")
        if not self.log.phases and t_end is None:
            return np.array([]), np.array([])
        horizon = t_end if t_end is not None else max(p.t_end for p in self.log.phases)
        edges = np.arange(0.0, horizon + sample_period_s, sample_period_s)
        if self.log.phases:
            starts = np.array([p.t_start for p in self.log.phases])
            ends = np.array([p.t_end for p in self.log.phases])
            powers = np.array([p.power_w for p in self.log.phases])
            # cumulative energy at each edge: overlap of every phase
            # [t_start, t_end) with [0, edge), times its power — one
            # (edges x phases) product instead of a Python loop per edge
            overlap = np.minimum(ends[None, :], edges[:, None]) - starts[None, :]
            energies = np.clip(overlap, 0.0, None) @ powers
        else:
            energies = np.zeros_like(edges)
        watts = np.diff(energies) / sample_period_s
        times = edges[1:]
        return times, watts

    def mean_power_w(self, t_start: float = 0.0, t_end: float | None = None) -> float:
        """Average power over a window (counter difference / duration)."""
        if t_end is None:
            t_end = max((p.t_end for p in self.log.phases), default=0.0)
        dur = t_end - t_start
        if dur <= 0:
            return 0.0
        return (self.energy_j(t_end) - self.energy_j(t_start)) / dur
