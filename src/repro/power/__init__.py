"""Energy substrate: power models, DVFS control, simulated RAPL.

The paper measures processor power with Intel RAPL and drives DVFS through
CPUfreq (Section 5.1).  Neither is available here, so this package
provides the simulated equivalents:

* :mod:`repro.power.model` — per-core power as a function of frequency and
  activity state, calibrated so the paper's reported node-power ratios
  hold (compute = 1.0x, one-active/23-idle = 0.75x, DVFS-throttled =
  0.45x; Section 4.2).
* :mod:`repro.power.dvfs` — a CPUfreq-like controller with
  ``performance``, ``ondemand`` and ``userspace`` governors.
* :mod:`repro.power.rapl` — energy counters that integrate power over
  simulated time and produce power traces (Figure 7a).
* :mod:`repro.power.energy` — phase-tagged energy accounts
  (solve / overhead / checkpoint / reconstruct / extra iterations).
"""

from repro.power.model import CoreState, PowerModel
from repro.power.dvfs import DvfsController, Governor
from repro.power.rapl import RaplDomain, RaplMeter
from repro.power.energy import EnergyAccount, PhaseTag

__all__ = [
    "CoreState",
    "PowerModel",
    "DvfsController",
    "Governor",
    "RaplDomain",
    "RaplMeter",
    "EnergyAccount",
    "PhaseTag",
]
