"""Machine power capping (RAPL-limit style).

The paper's opening problem is a fixed facility budget: "to deliver the
promised performance within the given power budget" (Section 1), and
Section 2.3 observes that "the additional power required to provide
resilience reduces the power available for computation and thus impacts
the application's performance".  Real RAPL enforces such budgets by
clamping the package power; the processor then settles at the highest
sustainable frequency.

:func:`frequency_under_cap` computes that operating point on the
simulated machine: the highest ladder frequency at which the requested
core population stays within the cap.  The solver uses it to derate the
whole run when :class:`~repro.core.solver.SolverConfig` carries a
``power_cap_w`` — compute slows proportionally to the clock (the
paper's DVFS assumption) while power drops cubically, the classic
energy/performance trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.model import CoreState, PowerModel


class PowerCapError(ValueError):
    """The cap cannot be met even at the lowest frequency."""


@dataclass(frozen=True)
class CapOperatingPoint:
    """The sustainable operating point under a cap."""

    f_ghz: float
    power_w: float
    cap_w: float

    @property
    def headroom_w(self) -> float:
        """Unused budget at the chosen frequency."""
        return self.cap_w - self.power_w


def frequency_under_cap(
    model: PowerModel, ncores: int, cap_w: float
) -> CapOperatingPoint:
    """Highest ladder frequency keeping ``ncores`` active cores <= cap.

    Raises :class:`PowerCapError` when even f_min exceeds the cap (the
    machine cannot host the job within the budget).
    """
    if ncores < 1:
        raise ValueError("need at least one core")
    if cap_w <= 0:
        raise ValueError("power cap must be positive")
    best = None
    for f in model.ladder.steps:
        p = model.uniform_power(ncores, f, CoreState.ACTIVE)
        if p <= cap_w:
            best = (f, p)
    if best is None:
        floor = model.uniform_power(
            ncores, model.ladder.fmin_ghz, CoreState.ACTIVE
        )
        raise PowerCapError(
            f"cap {cap_w:.1f} W below the {floor:.1f} W floor of "
            f"{ncores} cores at {model.ladder.fmin_ghz} GHz"
        )
    f, p = best
    return CapOperatingPoint(f_ghz=f, power_w=p, cap_w=cap_w)


def slowdown_at(model: PowerModel, f_ghz: float) -> float:
    """Compute-time slowdown at ``f_ghz`` vs f_max (rates scale with f)."""
    if f_ghz <= 0:
        raise ValueError("frequency must be positive")
    return model.ladder.fmax_ghz / f_ghz
