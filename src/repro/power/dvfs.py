"""DVFS controller mirroring the Linux CPUfreq interface.

The paper drives per-core frequencies through CPUfreq (Section 5.1) and
compares two governors (Section 5.3):

* ``ondemand`` — the OS policy: frequency tracks utilisation;
* ``userspace`` — explicit control, used by LI-DVFS/LSI-DVFS to pin the
  reconstructing core at f_max and every other core at f_min.

:class:`DvfsController` keeps one frequency per core, validates requested
frequencies against the ladder, and logs every transition (useful both
for tests and for explaining power traces).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import FrequencyLadder


class Governor(enum.Enum):
    """CPUfreq governor."""

    PERFORMANCE = "performance"  # always f_max
    POWERSAVE = "powersave"      # always f_min
    ONDEMAND = "ondemand"        # tracks utilisation
    USERSPACE = "userspace"      # explicit set_frequency calls


@dataclass(frozen=True)
class Transition:
    """One frequency change on one core."""

    time_s: float
    core: int
    f_from_ghz: float
    f_to_ghz: float


#: Utilisation above which ``ondemand`` jumps to f_max (Linux default ~95%).
ONDEMAND_UP_THRESHOLD = 0.95


@dataclass
class DvfsController:
    """Per-core frequency control for ``ncores`` cores.

    All cores start at f_max under the ``performance`` governor, matching
    the paper's compute-phase configuration.
    """

    ncores: int
    ladder: FrequencyLadder = field(default_factory=FrequencyLadder)
    governor: Governor = Governor.PERFORMANCE
    transition_latency_s: float = 10e-6  # typical Haswell P-state switch

    def __post_init__(self) -> None:
        if self.ncores < 1:
            raise ValueError("need at least one core")
        self._freq = np.full(self.ncores, self.ladder.fmax_ghz)
        self.transitions: list[Transition] = []

    # ------------------------------------------------------------------
    def frequency_of(self, core: int) -> float:
        self._check(core)
        return float(self._freq[core])

    @property
    def frequencies(self) -> np.ndarray:
        v = self._freq.view()
        v.flags.writeable = False
        return v

    def set_governor(self, governor: Governor, *, time_s: float = 0.0) -> None:
        """Switch governor; fixed-policy governors apply immediately."""
        self.governor = governor
        if governor is Governor.PERFORMANCE:
            self.set_all(self.ladder.fmax_ghz, time_s=time_s)
        elif governor is Governor.POWERSAVE:
            self.set_all(self.ladder.fmin_ghz, time_s=time_s)

    def set_frequency(self, core: int, f_ghz: float, *, time_s: float = 0.0) -> float:
        """Pin ``core`` to ``f_ghz`` (snapped to the ladder).

        Only legal under the ``userspace`` governor, like CPUfreq's
        ``scaling_setspeed``.  Returns the actually applied frequency.
        """
        if self.governor is not Governor.USERSPACE:
            raise PermissionError(
                f"set_frequency requires the userspace governor, not {self.governor.value}"
            )
        return self._apply(core, f_ghz, time_s)

    def set_all(self, f_ghz: float, *, time_s: float = 0.0) -> None:
        for c in range(self.ncores):
            self._apply(c, f_ghz, time_s)

    def on_utilization(self, core: int, utilization: float, *, time_s: float = 0.0) -> float:
        """``ondemand`` policy step: scale with observed utilisation.

        High utilisation jumps straight to f_max; otherwise the governor
        picks the lowest frequency that keeps predicted utilisation below
        the threshold (the Linux ondemand heuristic).
        """
        if self.governor is not Governor.ONDEMAND:
            raise PermissionError("on_utilization requires the ondemand governor")
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        if utilization >= ONDEMAND_UP_THRESHOLD:
            target = self.ladder.fmax_ghz
        else:
            cur = self.frequency_of(core)
            needed = utilization * cur / ONDEMAND_UP_THRESHOLD
            candidates = [f for f in self.ladder.steps if f >= needed]
            target = candidates[0] if candidates else self.ladder.fmax_ghz
        return self._apply(core, target, time_s)

    def transition_count(self, core: int | None = None) -> int:
        if core is None:
            return len(self.transitions)
        return sum(1 for t in self.transitions if t.core == core)

    # ------------------------------------------------------------------
    def _apply(self, core: int, f_ghz: float, time_s: float) -> float:
        self._check(core)
        target = self.ladder.clamp(f_ghz)
        current = float(self._freq[core])
        if abs(target - current) > 1e-12:
            self.transitions.append(Transition(time_s, core, current, target))
            self._freq[core] = target
        return target

    def _check(self, core: int) -> None:
        if not 0 <= core < self.ncores:
            raise IndexError(f"core {core} out of range [0, {self.ncores})")
