"""Phase-tagged energy accounting.

The paper separates the energy spent making problem progress
(``E_solve``) from the energy spent on resilience (``E_res``) and reports
their ratio (Figure 7b).  :class:`EnergyAccount` accumulates (time,
energy) per phase tag so every experiment can report that breakdown.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


def repeat_add(base: float, inc: float, n: int) -> float:
    """``base`` after ``n`` repetitions of ``base += inc``.

    Floating-point addition is not associative, so ``base + n * inc`` is
    *not* the same value; the span-batched fast solve path uses this to
    replay per-iteration accumulation float-faithfully.  The loop is
    bookkeeping-only (no arrays), so even O(n) trivial adds are orders of
    magnitude cheaper than the per-iteration charging they replace.
    """
    for _ in range(n):
        base += inc
    return base


class PhaseTag(enum.Enum):
    """What the machine was doing during a charged interval."""

    #: Useful CG iterations that a fault-free run would also execute.
    SOLVE = "solve"
    #: Communication / synchronisation of those iterations.
    OVERHEAD = "overhead"
    #: Writing checkpoints (CR).
    CHECKPOINT = "checkpoint"
    #: Rolling back / re-reading a checkpoint (CR).
    RESTORE = "restore"
    #: Constructing an approximation of lost data (FW: LI/LSI).
    RECONSTRUCT = "reconstruct"
    #: Extra CG iterations caused by faults (re-computation after CR
    #: rollback, or convergence delay after FW).
    EXTRA = "extra"
    #: Redundant replica execution (RD/DMR).
    REDUNDANT = "redundant"

    @property
    def is_resilience(self) -> bool:
        """True for phases that only exist because of faults/resilience."""
        return self in _RESILIENCE_TAGS


_RESILIENCE_TAGS = {
    PhaseTag.CHECKPOINT,
    PhaseTag.RESTORE,
    PhaseTag.RECONSTRUCT,
    PhaseTag.EXTRA,
    PhaseTag.REDUNDANT,
}


@dataclass
class Charge:
    """Accumulated time and energy under one tag."""

    time_s: float = 0.0
    energy_j: float = 0.0


@dataclass
class EnergyAccount:
    """Running totals of time and energy per :class:`PhaseTag`.

    Overlapped phases (DMR's replica) charge energy with zero wall-clock
    time so total time remains the critical-path time while total energy
    includes everything that drew power.

    ``on_charge`` is an optional observability tap: when set, every
    charge also invokes ``on_charge(tag, time_s, energy_j)`` (with
    ``time_s=0`` for overlapped charges).  The solver uses it to feed
    phase metrics and phase-transition events without the account
    knowing about the telemetry layer.  It is excluded from equality
    and never pickled with the account.
    """

    charges: dict[PhaseTag, Charge] = field(default_factory=dict)
    on_charge: object = field(default=None, repr=False, compare=False)

    def charge(self, tag: PhaseTag, *, time_s: float, power_w: float) -> float:
        """Charge ``time_s`` seconds at ``power_w`` watts; returns joules."""
        if time_s < 0:
            raise ValueError("time must be non-negative")
        if power_w < 0:
            raise ValueError("power must be non-negative")
        energy = time_s * power_w
        c = self.charges.setdefault(tag, Charge())
        c.time_s += time_s
        c.energy_j += energy
        if self.on_charge is not None:
            self.on_charge(tag, time_s, energy)
        return energy

    def charge_span(
        self, tag: PhaseTag, *, time_s: float, power_w: float, n: int
    ) -> float:
        """Charge ``n`` identical ``(time_s, power_w)`` charges.

        Bit-identical to calling :meth:`charge` ``n`` times (the
        accumulator is replayed add-by-add, see :func:`repeat_add`), but
        without per-charge call overhead.  Returns the per-charge energy.

        Unlike :meth:`charge`, this does **not** invoke the ``on_charge``
        tap: span-batching callers replay their observability at span
        granularity themselves (the solver's fast path stamps phase
        metrics and transition events explicitly).
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        if time_s < 0:
            raise ValueError("time must be non-negative")
        if power_w < 0:
            raise ValueError("power must be non-negative")
        energy = time_s * power_w
        if n == 0:
            return energy
        c = self.charges.setdefault(tag, Charge())
        c.time_s = repeat_add(c.time_s, time_s, n)
        c.energy_j = repeat_add(c.energy_j, energy, n)
        return energy

    def charge_energy_span(self, tag: PhaseTag, energy_j: float, n: int) -> None:
        """``n`` identical overlapped charges; bit-identical to calling
        :meth:`charge_energy` ``n`` times.  Skips the ``on_charge`` tap,
        like :meth:`charge_span`."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        if n == 0:
            return
        c = self.charges.setdefault(tag, Charge())
        c.energy_j = repeat_add(c.energy_j, energy_j, n)

    def charge_energy(self, tag: PhaseTag, energy_j: float) -> None:
        """Charge energy with no wall-clock time (overlapped phases)."""
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        self.charges.setdefault(tag, Charge()).energy_j += energy_j
        if self.on_charge is not None:
            self.on_charge(tag, 0.0, energy_j)

    # The tap may close over a live solver; it must not travel with the
    # account when reports cross process boundaries as pickles.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["on_charge"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    def time(self, tag: PhaseTag) -> float:
        return self.charges.get(tag, Charge()).time_s

    def energy(self, tag: PhaseTag) -> float:
        return self.charges.get(tag, Charge()).energy_j

    @property
    def total_time_s(self) -> float:
        return sum(c.time_s for c in self.charges.values())

    @property
    def total_energy_j(self) -> float:
        return sum(c.energy_j for c in self.charges.values())

    @property
    def solve_time_s(self) -> float:
        """Time a fault-free execution would also spend."""
        return self.time(PhaseTag.SOLVE) + self.time(PhaseTag.OVERHEAD)

    @property
    def solve_energy_j(self) -> float:
        return self.energy(PhaseTag.SOLVE) + self.energy(PhaseTag.OVERHEAD)

    @property
    def resilience_time_s(self) -> float:
        """T_res: total time overhead attributable to resilience."""
        return sum(c.time_s for t, c in self.charges.items() if t.is_resilience)

    @property
    def resilience_energy_j(self) -> float:
        """E_res: total energy overhead attributable to resilience."""
        return sum(c.energy_j for t, c in self.charges.items() if t.is_resilience)

    @property
    def average_power_w(self) -> float:
        """Energy / wall-clock time, the paper's whole-run average power."""
        t = self.total_time_s
        return self.total_energy_j / t if t > 0 else 0.0

    def resilience_ratio(self) -> float:
        """E_res / E_solve, as plotted in Figure 7(b)."""
        solve = self.solve_energy_j
        return self.resilience_energy_j / solve if solve > 0 else 0.0

    def merged_with(self, other: "EnergyAccount") -> "EnergyAccount":
        out = EnergyAccount()
        for src in (self, other):
            for tag, c in src.charges.items():
                dst = out.charges.setdefault(tag, Charge())
                dst.time_s += c.time_s
                dst.energy_j += c.energy_j
        return out
