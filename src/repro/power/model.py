"""Per-core power model, calibrated to the paper's measured ratios.

Model
-----
A core in activity state *s* at frequency *f* draws

    P(f, s) = P_static + u(s) * P_dyn * (f / f_max)^3

where ``u(ACTIVE) = 1``, ``u(IDLE) = gamma < 1`` (an idle core still
clocks its caches and snoops), and ``u(SLEEP) = 0`` with an extra static
reduction for deep C-states.

Calibration
-----------
Section 4.2 reports, for a 24-core node running LI reconstruction (one
core active, 23 idle):

* without DVFS (idle cores stay at f_max): node power = 0.75x compute;
* with DVFS (idle cores at f_min = 1.2 GHz): node power = 0.45x compute.

With f_min/f_max = 1.2/2.3 ((f_min/f_max)^3 = 0.142) these two equations
pin the defaults: ``P_static = 0.374 * P_core``, ``P_dyn = 0.626 *
P_core``, ``gamma = 0.583``, where ``P_core = P(f_max, ACTIVE)``.  The
absolute scale is set to 10 W/core (a 120 W TDP / 12-core Haswell Xeon).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.machine import FrequencyLadder


class CoreState(enum.Enum):
    """Activity state of a simulated core."""

    ACTIVE = "active"
    IDLE = "idle"
    SLEEP = "sleep"


#: Active core power at f_max, watts (E5-2670v3: 120 W TDP / 12 cores).
DEFAULT_ACTIVE_W = 10.0
#: Static (leakage + always-on) fraction of active power at f_max.
DEFAULT_STATIC_FRACTION = 0.374
#: Idle dynamic activity factor (fraction of active dynamic power).
DEFAULT_IDLE_ACTIVITY = 0.583
#: Sleeping cores power-gate most of the static power too.
DEFAULT_SLEEP_W = 1.0


@dataclass(frozen=True)
class PowerModel:
    """Power of cores and nodes as a function of frequency and state."""

    ladder: FrequencyLadder = FrequencyLadder()
    active_w: float = DEFAULT_ACTIVE_W
    static_fraction: float = DEFAULT_STATIC_FRACTION
    idle_activity: float = DEFAULT_IDLE_ACTIVITY
    sleep_w: float = DEFAULT_SLEEP_W

    def __post_init__(self) -> None:
        if self.active_w <= 0:
            raise ValueError("active power must be positive")
        if not 0 <= self.static_fraction < 1:
            raise ValueError("static fraction must be in [0, 1)")
        if not 0 <= self.idle_activity <= 1:
            raise ValueError("idle activity must be in [0, 1]")
        if not 0 <= self.sleep_w <= self.active_w:
            raise ValueError("sleep power must be in [0, active_w]")

    @property
    def static_w(self) -> float:
        return self.active_w * self.static_fraction

    @property
    def dynamic_w(self) -> float:
        """Dynamic power of an active core at f_max."""
        return self.active_w - self.static_w

    def core_power(self, f_ghz: float, state: CoreState = CoreState.ACTIVE) -> float:
        """Watts drawn by one core at ``f_ghz`` in ``state``."""
        if f_ghz <= 0:
            raise ValueError("frequency must be positive")
        if state is CoreState.SLEEP:
            return self.sleep_w
        scale = (f_ghz / self.ladder.fmax_ghz) ** 3
        u = 1.0 if state is CoreState.ACTIVE else self.idle_activity
        return self.static_w + u * self.dynamic_w * scale

    def node_power(self, core_states: list[tuple[float, CoreState]]) -> float:
        """Watts drawn by a node given ``(f_ghz, state)`` per core."""
        return sum(self.core_power(f, s) for f, s in core_states)

    def uniform_power(self, ncores: int, f_ghz: float, state: CoreState = CoreState.ACTIVE) -> float:
        """Watts for ``ncores`` identical cores."""
        if ncores < 0:
            raise ValueError("ncores must be non-negative")
        return ncores * self.core_power(f_ghz, state)

    # ------------------------------------------------------------------
    # Named operating points used throughout the experiments
    # ------------------------------------------------------------------
    def compute_node_w(self, ncores: int) -> float:
        """All cores active at f_max (the paper's 1.0x baseline)."""
        return self.uniform_power(ncores, self.ladder.fmax_ghz, CoreState.ACTIVE)

    def reconstruct_node_w(self, ncores: int, *, dvfs: bool) -> float:
        """One core active at f_max, the rest idle.

        With ``dvfs`` the idle cores sit at f_min (the LI-DVFS/LSI-DVFS
        schedule); without, they idle at f_max (the plain LI/LSI case).
        """
        if ncores < 1:
            raise ValueError("need at least one core")
        f_idle = self.ladder.fmin_ghz if dvfs else self.ladder.fmax_ghz
        return self.core_power(self.ladder.fmax_ghz, CoreState.ACTIVE) + (
            ncores - 1
        ) * self.core_power(f_idle, CoreState.IDLE)

    def checkpoint_node_w(self, ncores: int) -> float:
        """All cores idle-waiting on I/O at f_max.

        "CPUs are not highly utilized during checkpointing and thus
        consume less power than in computation phase" (Section 3.2).
        """
        return self.uniform_power(ncores, self.ladder.fmax_ghz, CoreState.IDLE)
