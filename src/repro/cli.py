"""Command-line interface.

The subcommands mirror the library's main entry points::

    python -m repro.cli run --matrix crystm02 --scheme LI-DVFS --faults 5
    python -m repro.cli suite --schemes RD F0 LI CR-D --matrices Kuu ex15
    python -m repro.cli campaign --preset iteration-study --workers 8 --resume
    python -m repro.cli validate --threshold 0.25
    python -m repro.cli trace --store .repro-cache --export trace.jsonl
    python -m repro.cli report --store .repro-cache --html report.html
    python -m repro.cli doctor --store .repro-cache
    python -m repro.cli project --sizes 192 1536 12288 98304
    python -m repro.cli mtbf
    python -m repro.cli serve --port 8030 --workers 2
    python -m repro.cli top --port 8030 --once

``run``, ``suite`` and ``campaign`` accept ``--engine`` to evaluate
cells with the numeric simulator (default) or the Section-3 closed-form
models; ``validate`` runs the same grid under both and gates on their
drift.  ``report`` renders phase-attribution waterfalls (plus run
diffs, Prometheus text and static HTML) from stored or exported
telemetry, and ``doctor`` runs the anomaly detectors over the same
inputs, exiting non-zero on findings.  ``serve`` stands up the async
HTTP tier (`repro.serve`) over the store and the engines — solve and
projection queries, stored-report retrieval and Prometheus
``/metrics``.  Everything prints plain text;
only ``campaign``/``validate`` write files (their result store,
``.repro-cache/`` by default), ``trace --export`` (the combined
telemetry JSONL) and ``report --html``/``--prometheus``.
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.campaign import spec as campaign_presets
from repro.core.models.projection import FIGURE9_SCHEMES
from repro.core.recovery import scheme_names
from repro.core.backends import DEFAULT_BACKEND, backend_names
from repro.engines import engine_names
from repro.faults.events import FaultClass
from repro.faults.mtbf import EXASCALE, PETASCALE, MtbfEstimator
from repro.harness.experiment import FAULT_SCOPES, Experiment, ExperimentConfig
from repro.harness.normalize import normalize_reports
from repro.harness.reporting import format_table
from repro.matrices import suite


def _build_parser() -> argparse.ArgumentParser:
    from repro.obs.logging import LOG_LEVELS

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Resilient, energy-aware CG on a simulated cluster "
            "(CLUSTER 2018 reproduction)"
        ),
    )
    parser.add_argument(
        "--log-level", choices=LOG_LEVELS, default=None,
        help="structured-log threshold on stderr (default: warning; "
        "'serve' defaults to info so every request is narrated)",
    )
    parser.add_argument(
        "--log-file", default=None, metavar="PATH",
        help="also append structured JSONL logs to this rotating file",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one faulty solve vs its fault-free baseline")
    run.add_argument("--matrix", default="crystm02", choices=suite.names())
    run.add_argument("--scheme", default="LI-DVFS", choices=scheme_names())
    run.add_argument("--faults", type=int, default=5)
    run.add_argument("--ranks", type=int, default=64)
    run.add_argument("--tol", type=float, default=1e-8)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument("--seed", type=int, default=0, help="experiment RNG seed")
    run.add_argument(
        "--engine", choices=engine_names(), default="sim",
        help="numeric simulation (sim) or Section-3 closed-form models "
        "(analytic)",
    )
    run.add_argument(
        "--fault-scope", choices=list(FAULT_SCOPES), default="process",
        help="blast radius per fault: one rank (process, the paper's "
        "protocol), every rank on the victim's node, or all ranks",
    )
    run.add_argument(
        "--victims-per-fault", type=int, default=1, metavar="K",
        help="ranks lost simultaneously per fault event (default 1, the "
        "paper's protocol; >1 exercises multi-loss recovery)",
    )
    run.add_argument(
        "--precond", choices=["jacobi"], default=None, help="optional preconditioner"
    )
    run.add_argument(
        "--cr-interval",
        default="paper",
        help="CR cadence: 'paper' (100 iters), 'young', or an integer",
    )
    run.add_argument(
        "--trace", action="store_true",
        help="record per-solve telemetry and print the fault→recovery "
        "latency summary",
    )
    run.add_argument(
        "--fast", action=argparse.BooleanOptionalAction, default=True,
        help="span-batched solve engine (default; bit-identical to the "
        "per-iteration --no-fast path, just faster)",
    )
    run.add_argument(
        "--backend", choices=backend_names(), default=DEFAULT_BACKEND,
        help="CG kernel backend: vectorized across ranks (batched, the "
        "default) or the rank-by-rank reference (loop); bit-identical",
    )

    sweep = sub.add_parser("suite", help="Figure-5-style sweep over matrices")
    sweep.add_argument("--matrices", nargs="+", default=None, choices=suite.names())
    sweep.add_argument(
        "--schemes", nargs="+", default=["RD", "F0", "LI", "CR-D"],
        choices=scheme_names(),
    )
    sweep.add_argument("--faults", type=int, default=10)
    sweep.add_argument("--ranks", type=int, default=64)
    sweep.add_argument("--scale", type=float, default=1.0)
    sweep.add_argument("--seed", type=int, default=0, help="experiment RNG seed")
    sweep.add_argument(
        "--engine", choices=engine_names(), default="sim",
        help="numeric simulation (sim) or Section-3 closed-form models "
        "(analytic)",
    )
    sweep.add_argument(
        "--cr-interval",
        default="paper",
        help="CR cadence: 'paper' (100 iters), 'young', or an integer",
    )
    sweep.add_argument(
        "--victims-per-fault", type=int, default=1, metavar="K",
        help="ranks lost simultaneously per fault event (default 1)",
    )
    sweep.add_argument(
        "--fast", action=argparse.BooleanOptionalAction, default=True,
        help="span-batched solve engine (default; bit-identical to the "
        "per-iteration --no-fast path, just faster)",
    )
    sweep.add_argument(
        "--backend", choices=backend_names(), default=DEFAULT_BACKEND,
        help="CG kernel backend: vectorized across ranks (batched, the "
        "default) or the rank-by-rank reference (loop); bit-identical",
    )

    camp = sub.add_parser(
        "campaign",
        help="orchestrated sweep with a persistent, resumable result store",
    )
    camp.add_argument(
        "--preset",
        choices=campaign_presets.preset_names(),
        default=None,
        help="named study grid; omit to build a custom grid from the flags below",
    )
    camp.add_argument(
        "--matrices", nargs="+", default=None, choices=suite.names(),
        help="restrict (or, without --preset, define) the matrix set",
    )
    camp.add_argument(
        "--schemes", nargs="+", default=None, choices=scheme_names(),
        help="restrict (or, without --preset, define) the scheme set",
    )
    camp.add_argument("--ranks", nargs="+", type=int, default=None)
    camp.add_argument("--faults", nargs="+", type=int, default=None)
    camp.add_argument("--seeds", nargs="+", type=int, default=None)
    camp.add_argument(
        "--engine", nargs="+", choices=engine_names(), default=None,
        dest="engines", metavar="ENGINE",
        help="execution engine(s) to sweep; pass both to build a "
        "model-vs-sim comparison grid",
    )
    camp.add_argument(
        "--backend", nargs="+", choices=backend_names(), default=None,
        dest="backends", metavar="BACKEND",
        help="CG kernel backend(s) to sweep; pass both to compare the "
        "batched and loop executions cell by cell (bit-identical)",
    )
    camp.add_argument(
        "--victims-per-fault", nargs="+", type=int, default=None,
        dest="victims_per_fault", metavar="K",
        help="victim-set size(s) to sweep: ranks lost simultaneously "
        "per fault event (default 1)",
    )
    camp.add_argument("--scale", type=float, default=None)
    camp.add_argument("--tol", type=float, default=None)
    camp.add_argument("--cr-interval", default=None)
    camp.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; 1 = serial in-process execution",
    )
    camp.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default .repro-cache)",
    )
    camp.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="serve cells already in the store from cache (default on; "
        "--no-resume recomputes everything and overwrites)",
    )
    camp.add_argument(
        "--no-store", action="store_true",
        help="run fully in memory: nothing read from or written to disk",
    )
    camp.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget (default: none)",
    )
    camp.add_argument(
        "--retries", type=int, default=1,
        help="retries per cell on crash or error (default 1)",
    )
    camp.add_argument("--quiet", action="store_true", help="suppress progress lines")
    camp.add_argument(
        "--trace", action="store_true",
        help="record per-cell telemetry (events, spans, metrics), persist "
        "it in the store, and print the campaign rollup",
    )
    camp.add_argument(
        "--watch", action="store_true",
        help="live fleet dashboard on stderr while the campaign runs "
        "(per-worker state, cells/s, ETA, queue-wait vs compute)",
    )
    camp.add_argument(
        "--once", action="store_true",
        help="with --watch: suppress the live repaint and print one "
        "plain escape-free closing frame to stdout (CI artifact mode)",
    )
    camp.add_argument(
        "--json-progress", default=None, metavar="PATH",
        help="write one machine-readable JSONL cell lifecycle event "
        "(queued/started/finished/failed/cached) per line to this file "
        "('-' for stderr)",
    )
    camp.add_argument(
        "--heartbeat-interval", type=float, default=1.0, metavar="SECONDS",
        help="worker heartbeat cadence on the fleet telemetry channel "
        "(default 1.0; 0 disables heartbeats)",
    )
    camp.add_argument(
        "--list-presets", action="store_true",
        help="print the preset grids and exit",
    )

    val = sub.add_parser(
        "validate",
        help="model-vs-sim drift gate: run the validation grid under "
        "both engines and compare normalized T_res / P / E_res",
    )
    val.add_argument(
        "--matrices", nargs="+", default=None, choices=suite.names(),
        help="restrict the validation grid's matrix set",
    )
    val.add_argument(
        # "FF" is accepted (the grid then has nothing to pair and the
        # command fails with the no-pairs verdict) so the degenerate
        # restriction errors loudly instead of being unrepresentable
        "--schemes", nargs="+", default=None,
        choices=[*scheme_names(), "FF"],
        help="restrict the validation grid's scheme set",
    )
    val.add_argument(
        "--threshold", type=float, default=None,
        help="max allowed normalized drift (default: the documented "
        "envelope, repro.engines.validate.DEFAULT_DRIFT_THRESHOLD)",
    )
    val.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the underlying campaign",
    )
    val.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default .repro-cache)",
    )
    val.add_argument(
        "--no-store", action="store_true",
        help="run fully in memory: nothing read from or written to disk",
    )
    val.add_argument("--quiet", action="store_true", help="suppress progress lines")
    val.add_argument(
        "--terms", action="store_true",
        help="also print per-term drift (which Section-3 phase term "
        "diverges, not just the aggregate ratios)",
    )

    trace = sub.add_parser(
        "trace",
        help="inspect/export the telemetry a traced campaign persisted",
    )
    trace.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default .repro-cache)",
    )
    trace.add_argument(
        "--matrix", default=None, choices=suite.names(),
        help="only cells of this matrix",
    )
    trace.add_argument(
        "--scheme", default=None,
        help="only cells of this scheme (FF for baselines)",
    )
    trace.add_argument(
        "--kind", default=None,
        choices=["fault", "recovery", "checkpoint", "restart", "phase"],
        help="only events of this kind in the event streams",
    )
    trace.add_argument(
        "--events", action="store_true",
        help="print each cell's full event stream",
    )
    trace.add_argument(
        "--spans", action="store_true",
        help="print each cell's span summary (flamegraph-style aggregate)",
    )
    trace.add_argument(
        "--export", default=None, metavar="PATH",
        help="write the selected cells' telemetry as combined JSONL",
    )

    rep = sub.add_parser(
        "report",
        help="phase attribution (+ optional diff, HTML, Prometheus) "
        "from stored or exported telemetry",
    )
    rep.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default .repro-cache)",
    )
    rep.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="read a 'repro trace --export' JSONL file instead of a store",
    )
    rep.add_argument(
        "--matrix", default=None,
        help="only cells whose label contains this matrix name",
    )
    rep.add_argument(
        "--scheme", default=None,
        help="only cells of this scheme (FF for baselines)",
    )
    rep.add_argument(
        "--diff", nargs=2, default=None, metavar=("LABEL_A", "LABEL_B"),
        help="structural diff of two cells by label",
    )
    rep.add_argument(
        "--html", default=None, metavar="PATH",
        help="also write a self-contained static HTML report",
    )
    rep.add_argument(
        "--prometheus", default=None, metavar="PATH",
        help="also write the merged metrics as Prometheus text exposition",
    )
    rep.add_argument(
        "--campaign", nargs="?", const="latest", default=None,
        metavar="RUN_ID",
        help="also render a campaign run manifest from the store: worker "
        "fleet, per-cell timings, queue-wait vs compute (default: the "
        "most recent run)",
    )

    doc = sub.add_parser(
        "doctor",
        help="run anomaly detectors over a trace or a whole result "
        "store; exits non-zero on findings",
    )
    doc.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default .repro-cache)",
    )
    doc.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="read a 'repro trace --export' JSONL file instead of a store",
    )
    doc.add_argument(
        "--matrix", default=None,
        help="only cells whose label contains this matrix name",
    )
    doc.add_argument(
        "--scheme", default=None,
        help="only cells of this scheme (FF for baselines)",
    )
    doc.add_argument(
        "--detectors", nargs="+", default=None, metavar="NAME",
        help="run only these detectors (default: all registered)",
    )
    doc.add_argument(
        "--list-detectors", action="store_true",
        help="print the registered detectors and exit",
    )
    doc.add_argument(
        "--history", default=None, metavar="PATH",
        help="metrics-history JSON (repro serve --history-out) to run "
        "the serving SLO burn detectors over",
    )
    doc.add_argument(
        "--run-id", default=None, metavar="RUN_ID",
        help="run the fleet detectors over this campaign manifest "
        "(default: the store's most recent run, when one exists)",
    )

    proj = sub.add_parser("project", help="Section-6 weak-scaling projection")
    proj.add_argument(
        "--sizes", nargs="+", type=int,
        default=[192, 1536, 12_288, 49_152, 98_304],
    )

    sub.add_parser("mtbf", help="Figure-1 MTBF estimates")

    srv = sub.add_parser(
        "serve",
        help="async HTTP serving tier over the result store and the "
        "execution engines (solve/project/report queries, /metrics)",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument(
        "--port", type=int, default=8030,
        help="bind port (0 picks an ephemeral port and prints it)",
    )
    srv.add_argument(
        "--workers", type=int, default=2,
        help="worker threads for CPU-bound simulation cells and store I/O",
    )
    srv.add_argument(
        "--cache-size", type=int, default=256,
        help="entries in the in-memory LRU hot-cache over store lookups",
    )
    srv.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="micro-batch collection window for analytic-engine cells",
    )
    srv.add_argument(
        "--store", default=None, metavar="DIR",
        help="result store directory (default .repro-cache)",
    )
    srv.add_argument(
        "--no-store", action="store_true",
        help="serve without a persistent store (LRU + compute only)",
    )
    srv.add_argument(
        "--backend", choices=backend_names(), default=DEFAULT_BACKEND,
        help="default CG kernel backend for solve requests that do not "
        "specify one",
    )
    srv.add_argument(
        "--latency-buckets", nargs="+", type=float, default=None,
        metavar="SECONDS",
        help="override the serve latency histograms' bucket upper "
        "bounds (ascending seconds)",
    )
    srv.add_argument(
        "--sample-interval", type=float, default=1.0, metavar="SECONDS",
        help="metrics-history sampling interval",
    )
    srv.add_argument(
        "--history-capacity", type=int, default=600,
        help="metrics-history ring-buffer capacity (samples)",
    )
    srv.add_argument(
        "--history-out", default=None, metavar="PATH",
        help="flush the metrics history to this JSON file on shutdown",
    )

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running 'repro serve' "
        "(req/s, cache hits, latency percentiles, SLO burn)",
    )
    top.add_argument("--host", default="127.0.0.1", help="server address")
    top.add_argument("--port", type=int, default=8030, help="server port")
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh seconds"
    )
    top.add_argument(
        "--window", type=float, default=60.0,
        help="trailing window (s) for rates and percentiles",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one plain snapshot and exit (CI artifact mode)",
    )
    return parser


def _parse_cr_interval(raw: str):
    if raw in ("paper", "young"):
        return raw
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(f"--cr-interval must be 'paper', 'young' or an int, got {raw!r}")


def _check_analytic_schemes(schemes) -> None:
    """Fail fast (at argument-parse time) on schemes the analytic engine
    cannot model.

    Argparse ``choices`` accepts every registered scheme, but the
    closed-form engine only models a subset — without this gate a
    ``campaign --engine analytic --schemes CR-ML`` would burn through
    the grid before dying mid-run on ``UnsupportedSchemeError``.
    """
    from repro.engines.analytic import analytic_scheme_names

    supported = analytic_scheme_names()
    bad = [s for s in schemes if s != "FF" and s not in supported]
    if bad:
        raise SystemExit(
            f"scheme(s) {', '.join(sorted(bad))} have no closed-form "
            "analytic model (sim engine only); analytic-capable schemes: "
            f"{', '.join(supported)}"
        )


def _print_trace_summary(report) -> None:
    """The ``--trace`` wrap-up: fault→recovery latencies plus top spans."""
    tel = report.details.get("telemetry")
    if tel is None:
        print("\n(no telemetry recorded)")
        return
    log = tel.events
    latencies = log.recovery_latency_s()
    print(
        f"\ntelemetry ({tel.timebase} time): {len(log)} events, "
        f"{len(tel.spans)} spans | {len(log.faults)} faults, "
        f"{len(log.recoveries)} recoveries, "
        f"{len(log.checkpoints)} checkpoints, {len(log.restarts)} restarts"
    )
    if latencies:
        print(
            f"fault→recovery latency: mean {sum(latencies) / len(latencies):.3g}s  "
            f"max {max(latencies):.3g}s  ({len(latencies)} recovered)"
        )
    from repro.obs.analysis import format_span_tree

    if tel.spans.spans:
        print("span summary (simulated seconds):")
        print(format_span_tree(tel.spans.spans))


def cmd_run(args) -> int:
    if args.engine == "analytic":
        _check_analytic_schemes([args.scheme])
    cfg = ExperimentConfig(
        matrix=args.matrix,
        nranks=args.ranks,
        n_faults=args.faults,
        tol=args.tol,
        seed=args.seed,
        scale=args.scale,
        cr_interval=_parse_cr_interval(args.cr_interval),
        trace=args.trace,
        engine=args.engine,
        fault_scope=args.fault_scope,
        backend=args.backend,
        victims_per_fault=args.victims_per_fault,
    )
    exp = Experiment(cfg, fast=args.fast, preconditioner=args.precond)
    if args.fault_scope != "process":
        print(
            f"fault scope {args.fault_scope}: up to "
            f"{exp.fault_scope_victims()} of {args.ranks} ranks lost per fault"
        )
    ff = exp.fault_free
    report = exp.run(args.scheme)
    print("fault-free:")
    print(ff.summary())
    print(f"\n{args.scheme} with {args.faults} faults:")
    print(report.summary())
    print(
        f"\nnormalized: iters {report.normalized_iterations(ff):.2f}x  "
        f"time {report.normalized_time(ff):.2f}x  "
        f"energy {report.normalized_energy(ff):.2f}x  "
        f"power {report.normalized_power(ff):.2f}x"
    )
    if args.trace:
        _print_trace_summary(report)
    return 0 if report.converged else 1


def cmd_suite(args) -> int:
    if args.engine == "analytic":
        _check_analytic_schemes(args.schemes)
    matrices = args.matrices or suite.names()
    rows = []
    for name in matrices:
        exp = Experiment(
            ExperimentConfig(
                matrix=name,
                nranks=args.ranks,
                n_faults=args.faults,
                seed=args.seed,
                scale=args.scale,
                cr_interval=_parse_cr_interval(args.cr_interval),
                engine=args.engine,
                backend=args.backend,
                victims_per_fault=args.victims_per_fault,
            ),
            fast=args.fast,
        )
        reports = {"FF": exp.fault_free, **exp.run_all(args.schemes)}
        norm = normalize_reports(reports)
        rows.append([name, *(norm[s].iterations for s in args.schemes)])
    print(
        format_table(
            ["matrix", *args.schemes],
            rows,
            title=(
                f"normalized iterations ({args.ranks} ranks, "
                f"{args.faults} faults, FF=1)"
            ),
        )
    )
    return 0


def _campaign_spec(args):
    """Resolve the campaign grid from --preset plus overrides."""
    overrides = {}
    if args.matrices:
        overrides["matrices"] = tuple(args.matrices)
    if args.schemes:
        overrides["schemes"] = tuple(args.schemes)
    if args.ranks:
        overrides["nranks"] = tuple(args.ranks)
    if args.faults:
        overrides["fault_loads"] = tuple(args.faults)
    if args.seeds:
        overrides["seeds"] = tuple(args.seeds)
    if args.engines:
        overrides["engines"] = tuple(args.engines)
    if args.backends:
        overrides["backends"] = tuple(args.backends)
    if args.victims_per_fault:
        overrides["victims_per_fault"] = tuple(args.victims_per_fault)
    if args.scale is not None:
        overrides["scale"] = args.scale
    if args.tol is not None:
        overrides["tol"] = args.tol
    if args.cr_interval is not None:
        overrides["cr_interval"] = _parse_cr_interval(args.cr_interval)
    if args.trace:
        overrides["trace"] = True
    spec = (
        campaign_presets.preset(args.preset, **overrides)
        if args.preset
        else campaign_presets.CampaignSpec(**overrides)
    )
    if "analytic" in spec.engines:
        _check_analytic_schemes(spec.schemes)
    return spec


def cmd_campaign(args) -> int:
    from repro.campaign import (
        CampaignWatch,
        FleetMonitor,
        ProgressReporter,
        ResultStore,
        cell_event_to_line,
        format_attribution_summary,
        format_normalized_tables,
        format_summary,
        format_telemetry_summary,
        run_campaign,
    )
    from repro.campaign.store import DEFAULT_ROOT

    if args.list_presets:
        for name in campaign_presets.preset_names():
            print(campaign_presets.preset(name).describe())
        return 0
    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.once and not args.watch:
        raise SystemExit("--once requires --watch")
    if args.heartbeat_interval < 0:
        raise SystemExit("--heartbeat-interval must be >= 0")
    spec = _campaign_spec(args)
    store = None if args.no_store else ResultStore(args.store or DEFAULT_ROOT)
    print(spec.describe())

    # machine-readable progress: one schema'd JSONL cell event per line
    event_sink = None
    progress_file = None
    if args.json_progress:
        if args.json_progress == "-":
            progress_stream = sys.stderr
        else:
            progress_file = open(args.json_progress, "w", encoding="utf-8")
            progress_stream = progress_file

        def event_sink(doc, _stream=progress_stream):
            print(cell_event_to_line(doc), file=_stream, flush=True)

    monitor = FleetMonitor(
        workers=args.workers,
        heartbeat_interval_s=args.heartbeat_interval,
        event_sink=event_sink,
    )
    # a live --watch repaint owns stderr; per-cell progress lines would
    # tear it, so they stay on only for --once (and plain) runs
    progress = ProgressReporter(
        len(spec),
        workers=args.workers,
        enabled=not args.quiet and not (args.watch and not args.once),
    )
    watch = CampaignWatch(monitor, once=args.once).start() if args.watch else None
    try:
        result = run_campaign(
            spec,
            store=store,
            max_workers=args.workers,
            timeout_s=args.timeout,
            retries=args.retries,
            resume=args.resume,
            progress=progress,
            monitor=monitor,
        )
    finally:
        if watch is not None:
            watch.stop()
        if progress_file is not None:
            progress_file.close()
    if watch is not None:
        print()
        print(watch.final_frame())
    print()
    print(format_summary(result))
    print()
    print(format_normalized_tables(result))
    if args.trace:
        print()
        print(format_telemetry_summary(result))
        print()
        print(format_attribution_summary(result))
    if store is not None:
        print(
            f"\nrun manifest {result.run_id} persisted — inspect with "
            f"'repro report --campaign {result.run_id}'"
        )
    return 0 if result.n_failed == 0 else 1


def cmd_validate(args) -> int:
    """Run the model-validation grid under both engines and gate on the
    worst normalized drift (Table 6 as a standing check)."""
    from repro.campaign import ProgressReporter, ResultStore, run_campaign
    from repro.campaign.store import DEFAULT_ROOT
    from repro.engines.validate import (
        DEFAULT_DRIFT_THRESHOLD,
        drift_rows,
        format_drift_table,
        format_term_drift_table,
        max_drift,
        term_drift_rows,
    )

    overrides = {}
    if args.matrices:
        overrides["matrices"] = tuple(args.matrices)
    if args.schemes:
        overrides["schemes"] = tuple(args.schemes)
        # The grid runs under both engines: reject schemes the analytic
        # engine cannot model before any cell executes.
        _check_analytic_schemes(args.schemes)
    spec = campaign_presets.preset("model-validation", **overrides)
    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_DRIFT_THRESHOLD
    )
    store = None if args.no_store else ResultStore(args.store or DEFAULT_ROOT)
    print(spec.describe())
    progress = ProgressReporter(
        len(spec), workers=args.workers, enabled=not args.quiet
    )
    result = run_campaign(
        spec, store=store, max_workers=args.workers, progress=progress
    )
    print()
    rows = drift_rows(result)
    print(format_drift_table(rows))
    if args.terms:
        print()
        print(format_term_drift_table(term_drift_rows(result)))
    if result.n_failed:
        print(f"\nFAIL: {result.n_failed} campaign cells failed")
        return 1
    if not rows:
        print("\nFAIL: no comparable sim/analytic cell pairs")
        return 1
    worst = max_drift(rows)
    verdict = "OK" if worst <= threshold else "FAIL"
    print(
        f"\n{verdict}: max normalized drift {worst:.3f} "
        f"(threshold {threshold:.3f}, {len(rows)} comparisons)"
    )
    return 0 if worst <= threshold else 1


def cmd_trace(args) -> int:
    """Walk a result store's traced cells: event streams, span
    summaries, per-scheme recovery-latency tables, JSONL export."""
    from pathlib import Path

    from repro.campaign import ResultStore
    from repro.campaign.store import DEFAULT_ROOT
    from repro.obs.export import event_to_row, write_trace_jsonl

    root = Path(args.store or DEFAULT_ROOT)
    if not (root / "index.db").exists():
        raise SystemExit(f"no result store at {root}")

    cells = {}  # label -> telemetry (store order; last writer wins)
    schemes = {}  # label -> scheme
    with ResultStore(root) as store:
        for entry in store.entries():
            if args.matrix and entry.cell.config.matrix != args.matrix:
                continue
            if args.scheme and entry.cell.scheme != args.scheme:
                continue
            tel = entry.report.details.get("telemetry")
            if tel is None:
                continue
            cells[entry.cell.label] = tel
            schemes[entry.cell.label] = entry.cell.scheme
    if not cells:
        print(f"no traced cells in {root} match the filters")
        return 1

    if args.export:
        n = write_trace_jsonl(args.export, cells)
        print(f"wrote {n} JSONL lines ({len(cells)} cells) to {args.export}")

    if args.events:
        for label, tel in cells.items():
            events = (
                tel.events.of_kind(args.kind) if args.kind else tel.events.events
            )
            rows = []
            for e in events:
                row = event_to_row(e)
                detail = " ".join(
                    f"{k}={v}"
                    for k, v in row.items()
                    if k not in ("kind", "iteration", "sim_time_s")
                )
                rows.append(
                    [row["kind"], row["iteration"], f"{row['sim_time_s']:.6g}", detail]
                )
            print(
                format_table(
                    ["kind", "iter", "sim_time_s", "detail"],
                    rows or [["-", "-", "-", "(no events)"]],
                    title=f"{label}: event stream",
                )
            )
            print()

    if args.spans:
        from repro.obs.analysis import format_span_tree

        for label, tel in cells.items():
            print(f"{label}: span summary ({tel.timebase} seconds)")
            print(format_span_tree(tel.spans.spans))
            print()

    # per-scheme fault→recovery latency rollup (always printed)
    by_scheme: dict[str, list[float]] = {}
    fault_counts: dict[str, int] = {}
    for label, tel in cells.items():
        scheme = schemes[label]
        by_scheme.setdefault(scheme, []).extend(tel.events.recovery_latency_s())
        fault_counts[scheme] = fault_counts.get(scheme, 0) + len(tel.events.faults)
    rows = []
    for scheme in sorted(by_scheme):
        lat = by_scheme[scheme]
        rows.append(
            [
                scheme,
                fault_counts[scheme],
                len(lat),
                f"{sum(lat) / len(lat):.3g}" if lat else "-",
                f"{max(lat):.3g}" if lat else "-",
            ]
        )
    print(
        format_table(
            ["scheme", "faults", "recovered", "mean_latency_s", "max_latency_s"],
            rows,
            title=f"fault→recovery latency by scheme ({len(cells)} traced cells)",
        )
    )
    return 0


def _load_records(args) -> list:
    """Records for report/doctor: a JSONL trace or a result store."""
    from pathlib import Path

    from repro.obs.analysis import (
        records_from_jsonl,
        records_from_store,
        select_records,
    )

    if args.jsonl and args.store:
        raise SystemExit("--jsonl and --store are mutually exclusive")
    if args.jsonl:
        records = records_from_jsonl(args.jsonl)
    else:
        from repro.campaign import ResultStore
        from repro.campaign.store import DEFAULT_ROOT

        root = Path(args.store or DEFAULT_ROOT)
        if not (root / "index.db").exists():
            raise SystemExit(f"no result store at {root}")
        with ResultStore(root) as store:
            records = records_from_store(store)
    return select_records(records, matrix=args.matrix, scheme=args.scheme)


def cmd_report(args) -> int:
    """Phase attribution waterfalls (+ rollup, diff, HTML, Prometheus)."""
    from pathlib import Path

    from repro.obs.analysis import (
        attribute_record,
        build_span_tree,
        critical_path,
        diff_runs,
        format_attribution,
        format_attribution_rollup,
        format_critical_path,
        format_run_diff,
        html_report,
        prometheus_text,
        scheme_rollup,
    )
    from repro.obs.metrics import MetricsRegistry

    manifest = None
    if args.campaign:
        from repro.campaign import ResultStore
        from repro.campaign.store import DEFAULT_ROOT

        if args.jsonl:
            raise SystemExit("--campaign reads a result store, not --jsonl")
        root = Path(args.store or DEFAULT_ROOT)
        if not (root / "index.db").exists():
            raise SystemExit(f"no result store at {root}")
        with ResultStore(root) as mstore:
            manifest = (
                mstore.latest_manifest()
                if args.campaign == "latest"
                else mstore.get_manifest(args.campaign)
            )
        if manifest is None:
            raise SystemExit(
                "no campaign manifest stored yet"
                if args.campaign == "latest"
                else f"no campaign manifest for run id {args.campaign!r}"
            )

    records = _load_records(args)
    if not records and manifest is None:
        print("no cells match the filters")
        return 1

    attributions = [attribute_record(r) for r in records]
    for attr in attributions:
        print(format_attribution(attr))
        print()
    rollup = {}
    if len(records) > 1:
        rollup = scheme_rollup(attributions)
        print("per-scheme rollup:")
        print(format_attribution_rollup(rollup))
        print()
    traced = [r for r in records if r.telemetry is not None]
    if traced:
        longest = max(
            traced,
            key=lambda r: sum(s.duration_s for s in r.telemetry.spans.spans),
        )
        print(f"{longest.label}:")
        print(
            format_critical_path(
                critical_path(build_span_tree(longest.telemetry.spans.spans))
            )
        )

    diff_text = None
    if args.diff:
        by_label = {r.label: r for r in records}
        missing = [label for label in args.diff if label not in by_label]
        if missing:
            known = "\n  ".join(sorted(by_label))
            raise SystemExit(
                f"no cell labelled {missing[0]!r}; have:\n  {known}"
            )
        diff_text = format_run_diff(
            diff_runs(by_label[args.diff[0]], by_label[args.diff[1]])
        )
        print()
        print(diff_text)

    if manifest is not None:
        from repro.campaign.manifest import format_manifest

        print()
        print(format_manifest(manifest))

    if args.prometheus:
        merged = MetricsRegistry()
        for r in traced:
            merged.merge(r.telemetry.metrics)
        Path(args.prometheus).write_text(prometheus_text(merged))
        print(f"\nwrote Prometheus exposition to {args.prometheus}")

    if args.html:
        from repro.campaign.manifest import manifest_to_doc

        html = html_report(
            title="repro report",
            attributions=attributions + list(rollup.values()),
            span_trees={
                r.label: r.telemetry.spans.spans for r in traced
            },
            diff_text=diff_text,
            manifest=manifest_to_doc(manifest) if manifest is not None else None,
        )
        Path(args.html).write_text(html)
        print(f"wrote HTML report to {args.html}")
    return 0


def cmd_doctor(args) -> int:
    """Anomaly detectors over a trace or store; non-zero on findings."""
    from pathlib import Path

    from repro.obs.analysis import detectors, format_findings, run_detectors

    if args.list_detectors:
        for det in detectors():
            print(f"{det.name:<22} [{det.scope}] {det.description}")
        return 0
    history = None
    if args.history:
        from repro.obs.history import MetricsHistory

        if not Path(args.history).exists():
            raise SystemExit(f"no metrics history at {args.history}")
        history = MetricsHistory.load(args.history)
    # with only --history given (no trace/store around), doctor the
    # serving evidence alone instead of demanding a result store
    from repro.campaign.store import DEFAULT_ROOT

    have_trace_source = bool(
        args.jsonl or args.store or (Path(DEFAULT_ROOT) / "index.db").exists()
    )
    records = _load_records(args) if have_trace_source else []
    # fleet evidence: the campaign run manifest (latest, or --run-id)
    manifest = None
    if not args.jsonl:
        root = Path(args.store or DEFAULT_ROOT)
        if (root / "index.db").exists():
            from repro.campaign import ResultStore

            with ResultStore(root) as mstore:
                manifest = (
                    mstore.get_manifest(args.run_id)
                    if args.run_id
                    else mstore.latest_manifest()
                )
            if args.run_id and manifest is None:
                raise SystemExit(
                    f"no campaign manifest for run id {args.run_id!r}"
                )
    # an explicit cell filter that matches nothing is still an error —
    # the implicitly-loaded manifest must not mask a typo'd --matrix
    filtered = bool(args.matrix or args.scheme)
    if not records and (
        (filtered and have_trace_source)
        or (history is None and manifest is None)
    ):
        print("no cells match the filters")
        return 1
    try:
        findings = run_detectors(
            records, args.detectors, history=history, manifest=manifest
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    n_det = len(args.detectors) if args.detectors else len(detectors())
    extra = f", history {len(history)} sample(s)" if history is not None else ""
    if manifest is not None:
        extra += f", manifest {manifest.run_id}"
    print(
        f"doctor: {len(records)} cell(s), {n_det} detector(s){extra}"
    )
    print(format_findings(findings))
    return 1 if findings else 0


def cmd_project(args) -> int:
    from repro.engines import AnalyticEngine

    data = AnalyticEngine.project(args.sizes)

    def fmt(x):
        return "HALT" if (math.isinf(x) or math.isnan(x)) else round(x, 3)

    rows = []
    for i, n in enumerate(sorted(args.sizes)):
        row = [n]
        for s in FIGURE9_SCHEMES:
            p = data[s][i]
            row += [fmt(p.t_res_ratio), fmt(p.e_res_ratio)]
        rows.append(row)
    headers = ["procs"]
    for s in FIGURE9_SCHEMES:
        headers += [f"{s} T", f"{s} E"]
    print(format_table(headers, rows, title="projected resilience overhead"))
    return 0


def cmd_serve(args) -> int:
    """Stand up the async serving tier (DESIGN.md §5h, §5i)."""
    import asyncio
    import contextlib
    import signal as signal_mod

    from repro.campaign import ResultStore
    from repro.campaign.store import DEFAULT_ROOT
    from repro.obs.history import MetricsHistory
    from repro.obs.logging import get_logger
    from repro.serve import ServeApp, ServeServer, ServingCore

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.cache_size < 0:
        raise SystemExit("--cache-size must be >= 0")
    if args.sample_interval <= 0:
        raise SystemExit("--sample-interval must be > 0")
    if args.history_capacity < 1:
        raise SystemExit("--history-capacity must be >= 1")
    if args.latency_buckets is not None and (
        not args.latency_buckets
        or sorted(args.latency_buckets) != args.latency_buckets
    ):
        raise SystemExit("--latency-buckets must be ascending seconds")
    log = get_logger("cli.serve")
    store = None if args.no_store else ResultStore(args.store or DEFAULT_ROOT)
    core = ServingCore(
        store,
        cache_size=args.cache_size,
        workers=args.workers,
        batch_window_s=args.batch_window_ms / 1e3,
        latency_buckets=(
            tuple(args.latency_buckets) if args.latency_buckets else None
        ),
    )
    history = MetricsHistory(
        capacity=args.history_capacity, interval_s=args.sample_interval
    )
    app = ServeApp(core, history=history, default_backend=args.backend)
    server = ServeServer(app.handle, host=args.host, port=args.port)

    async def _main() -> None:
        await server.start()
        where = "no store" if store is None else store.root
        print(
            f"repro serve listening on http://{server.host}:{server.port} "
            f"({args.workers} workers, LRU {args.cache_size}, {where})",
            flush=True,
        )
        print(
            "endpoints: GET /healthz /metrics /metrics/history /slo "
            "/v1/store/stats /v1/reports  POST /v1/solve /v1/project",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal_mod.SIGINT, signal_mod.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, stop.set)
        serve_task = asyncio.create_task(server.serve_forever())
        stop_task = asyncio.create_task(stop.wait())
        await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        serve_task.cancel()
        stop_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await serve_task
        await server.stop()

    exit_via_interrupt = False
    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # platforms without add_signal_handler
        exit_via_interrupt = True
    finally:
        # graceful-shutdown flush: one last sample, one final structured
        # log line with lifetime counters, and the history artifact
        history.sample(core.metrics)
        log.info("shutdown", **app.lifetime_summary())
        if args.history_out:
            history.save(args.history_out)
            print(f"metrics history -> {args.history_out}", flush=True)
        core.close()
        if store is not None:
            store.close()
    if exit_via_interrupt:
        print("\nshutting down")
    return 0


def cmd_top(args) -> int:
    """Live dashboard against a running serve instance."""
    from repro.serve.top import run_top

    if args.interval <= 0:
        raise SystemExit("--interval must be > 0")
    if args.window <= 0:
        raise SystemExit("--window must be > 0")
    try:
        return run_top(
            args.host,
            args.port,
            interval_s=args.interval,
            window_s=args.window,
            once=args.once,
        )
    except ConnectionRefusedError:
        raise SystemExit(
            f"no server at {args.host}:{args.port} — start one with "
            "'repro serve'"
        )


def cmd_mtbf(args) -> int:
    est = MtbfEstimator()
    rows = [
        [
            cls.label,
            cls.kind.value,
            est.system_mtbf(cls, PETASCALE) / 24.0,
            est.system_mtbf(cls, EXASCALE),
        ]
        for cls in FaultClass
    ]
    print(
        format_table(
            ["class", "kind", "petascale MTBF (days)", "exascale MTBF (h)"],
            rows,
            title="Figure-1 MTBF estimates",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.obs.logging import configure_logging

    # structured logs go to stderr (and an optional rotating file);
    # stdout stays reserved for the human-facing tables and JSON
    level = args.log_level or ("info" if args.command == "serve" else None)
    if level is not None or args.log_file is not None:
        configure_logging(level=level, file=args.log_file)
    return {
        "run": cmd_run,
        "suite": cmd_suite,
        "campaign": cmd_campaign,
        "validate": cmd_validate,
        "trace": cmd_trace,
        "report": cmd_report,
        "doctor": cmd_doctor,
        "project": cmd_project,
        "mtbf": cmd_mtbf,
        "serve": cmd_serve,
        "top": cmd_top,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
