"""Command-line interface.

Four subcommands mirror the library's main entry points::

    python -m repro.cli run --matrix crystm02 --scheme LI-DVFS --faults 5
    python -m repro.cli suite --schemes RD F0 LI CR-D --matrices Kuu ex15
    python -m repro.cli project --sizes 192 1536 12288 98304
    python -m repro.cli mtbf

Everything prints plain text; no files are written.
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.core.models.projection import FIGURE9_SCHEMES, ProjectionConfig, project
from repro.core.recovery import scheme_names
from repro.faults.events import FaultClass
from repro.faults.mtbf import EXASCALE, PETASCALE, MtbfEstimator
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.harness.normalize import normalize_reports
from repro.harness.reporting import format_table
from repro.matrices import suite


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Resilient, energy-aware CG on a simulated cluster "
            "(CLUSTER 2018 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one faulty solve vs its fault-free baseline")
    run.add_argument("--matrix", default="crystm02", choices=suite.names())
    run.add_argument("--scheme", default="LI-DVFS", choices=scheme_names())
    run.add_argument("--faults", type=int, default=5)
    run.add_argument("--ranks", type=int, default=64)
    run.add_argument("--tol", type=float, default=1e-8)
    run.add_argument("--scale", type=float, default=1.0)
    run.add_argument(
        "--precond", choices=["jacobi"], default=None, help="optional preconditioner"
    )
    run.add_argument(
        "--cr-interval",
        default="paper",
        help="CR cadence: 'paper' (100 iters), 'young', or an integer",
    )

    sweep = sub.add_parser("suite", help="Figure-5-style sweep over matrices")
    sweep.add_argument("--matrices", nargs="+", default=None, choices=suite.names())
    sweep.add_argument(
        "--schemes", nargs="+", default=["RD", "F0", "LI", "CR-D"],
        choices=scheme_names(),
    )
    sweep.add_argument("--faults", type=int, default=10)
    sweep.add_argument("--ranks", type=int, default=64)
    sweep.add_argument("--scale", type=float, default=1.0)

    proj = sub.add_parser("project", help="Section-6 weak-scaling projection")
    proj.add_argument(
        "--sizes", nargs="+", type=int,
        default=[192, 1536, 12_288, 49_152, 98_304],
    )

    sub.add_parser("mtbf", help="Figure-1 MTBF estimates")
    return parser


def _parse_cr_interval(raw: str):
    if raw in ("paper", "young"):
        return raw
    try:
        return int(raw)
    except ValueError:
        raise SystemExit(f"--cr-interval must be 'paper', 'young' or an int, got {raw!r}")


def cmd_run(args) -> int:
    cfg = ExperimentConfig(
        matrix=args.matrix,
        nranks=args.ranks,
        n_faults=args.faults,
        tol=args.tol,
        scale=args.scale,
        cr_interval=_parse_cr_interval(args.cr_interval),
    )
    exp = Experiment(cfg)
    if args.precond:
        # the Experiment driver runs plain CG; preconditioned runs go
        # through the solver directly
        from repro.core.recovery import make_scheme
        from repro.core.solver import ResilientSolver, SolverConfig

        scfg = lambda **kw: SolverConfig(
            nranks=args.ranks, tol=args.tol, preconditioner=args.precond, **kw
        )
        ff = ResilientSolver(exp.a, exp.b, config=scfg()).solve()
        report = ResilientSolver(
            exp.a,
            exp.b,
            scheme=make_scheme(args.scheme),
            schedule=exp.schedule(),
            config=scfg(baseline_iters=ff.iterations),
        ).solve()
    else:
        ff = exp.fault_free
        report = exp.run(args.scheme)
    print("fault-free:")
    print(ff.summary())
    print(f"\n{args.scheme} with {args.faults} faults:")
    print(report.summary())
    print(
        f"\nnormalized: iters {report.normalized_iterations(ff):.2f}x  "
        f"time {report.normalized_time(ff):.2f}x  "
        f"energy {report.normalized_energy(ff):.2f}x  "
        f"power {report.normalized_power(ff):.2f}x"
    )
    return 0 if report.converged else 1


def cmd_suite(args) -> int:
    matrices = args.matrices or suite.names()
    rows = []
    for name in matrices:
        exp = Experiment(
            ExperimentConfig(
                matrix=name,
                nranks=args.ranks,
                n_faults=args.faults,
                scale=args.scale,
            )
        )
        reports = {"FF": exp.fault_free, **exp.run_all(args.schemes)}
        norm = normalize_reports(reports)
        rows.append([name, *(norm[s].iterations for s in args.schemes)])
    print(
        format_table(
            ["matrix", *args.schemes],
            rows,
            title=(
                f"normalized iterations ({args.ranks} ranks, "
                f"{args.faults} faults, FF=1)"
            ),
        )
    )
    return 0


def cmd_project(args) -> int:
    data = project(sorted(args.sizes), ProjectionConfig())
    fmt = lambda x: "HALT" if (math.isinf(x) or math.isnan(x)) else round(x, 3)
    rows = []
    for i, n in enumerate(sorted(args.sizes)):
        row = [n]
        for s in FIGURE9_SCHEMES:
            p = data[s][i]
            row += [fmt(p.t_res_ratio), fmt(p.e_res_ratio)]
        rows.append(row)
    headers = ["procs"]
    for s in FIGURE9_SCHEMES:
        headers += [f"{s} T", f"{s} E"]
    print(format_table(headers, rows, title="projected resilience overhead"))
    return 0


def cmd_mtbf(args) -> int:
    est = MtbfEstimator()
    rows = [
        [
            cls.label,
            cls.kind.value,
            est.system_mtbf(cls, PETASCALE) / 24.0,
            est.system_mtbf(cls, EXASCALE),
        ]
        for cls in FaultClass
    ]
    print(
        format_table(
            ["class", "kind", "petascale MTBF (days)", "exascale MTBF (h)"],
            rows,
            title="Figure-1 MTBF estimates",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return {
        "run": cmd_run,
        "suite": cmd_suite,
        "project": cmd_project,
        "mtbf": cmd_mtbf,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
