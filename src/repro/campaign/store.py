"""Persistent, content-addressed result store.

Layout (default root ``.repro-cache/``)::

    .repro-cache/
        index.db            # SQLite: one row per cell, queryable metadata
        payloads/ab/abcd… .json   # full SolveReport, JSON-encoded

Every cell is keyed by a SHA-256 **content hash** over the complete
:class:`~repro.harness.experiment.ExperimentConfig`, the scheme name,
and the code-relevant versions (store format, ``repro``, ``numpy`` and
``scipy``).  Any change to any of those — a different seed, tolerance,
CR cadence, or a library upgrade that could perturb the numerics —
yields a different key, so a cache hit is only ever served for a cell
that would reproduce bit-identically.

Writes are atomic (payload to a temp file + ``os.replace``, then the
index row), so a killed campaign never leaves a row pointing at a
half-written payload; a payload missing its row (or vice versa) is
treated as a miss and repaired on the next ``put``.  SQLite runs in WAL
mode with a busy timeout so several processes may share one store.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np
import scipy

import repro
from repro.campaign.serialize import report_from_dict, report_to_dict
from repro.campaign.spec import CampaignCell
from repro.core.report import SolveReport

#: Bump when the payload schema or hashed key material changes shape.
#: 2: telemetry payload field + ExperimentConfig.trace in the key.
#: 3: ExperimentConfig.engine + fault_scope in the key.
#: 4: ExperimentConfig.backend in the key.
#: 5: ExperimentConfig.victims_per_fault in the key.
STORE_FORMAT = 5

#: Config fields format 2 did not know about.  A v2 store can only hold
#: cells at these fields' defaults, which is what makes the read-side
#: migration in :meth:`ResultStore.get_entry` safe.
_V3_CONFIG_FIELDS = {"engine": "sim", "fault_scope": "process"}
#: Config fields format 3 did not know about (same migration contract:
#: a v3 store only ever held cells at the default backend, and the
#: backends are bit-identical, so serving a v3 result for a default
#: cell is exact).
_V4_CONFIG_FIELDS = {"backend": "batched"}
#: Config fields format 4 did not know about: a v4 store only ever held
#: single-victim cells, and the single-victim fault path is bitwise
#: unchanged, so serving a v4 result for a ``victims_per_fault=1`` cell
#: is exact.
_V5_CONFIG_FIELDS = {"victims_per_fault": 1}

DEFAULT_ROOT = Path(".repro-cache")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key          TEXT PRIMARY KEY,
    matrix       TEXT NOT NULL,
    scheme       TEXT NOT NULL,
    nranks       INTEGER NOT NULL,
    n_faults     INTEGER NOT NULL,
    seed         INTEGER NOT NULL,
    scale        REAL NOT NULL,
    cr_interval  TEXT NOT NULL,
    tol          REAL NOT NULL,
    converged    INTEGER NOT NULL,
    iterations   INTEGER NOT NULL,
    time_s       REAL NOT NULL,
    energy_j     REAL NOT NULL,
    elapsed_s    REAL NOT NULL,
    created_at   REAL NOT NULL,
    payload      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_cell ON results (matrix, scheme, nranks);
CREATE TABLE IF NOT EXISTS manifests (
    run_id       TEXT PRIMARY KEY,
    name         TEXT NOT NULL,
    created_at   REAL NOT NULL,
    doc          TEXT NOT NULL
);
"""


def _hash_material(store_format: int, config: dict, scheme: str) -> str:
    material = {
        "store_format": store_format,
        "versions": {
            "repro": repro.__version__,
            "numpy": np.__version__,
            "scipy": scipy.__version__,
        },
        "config": config,
        "scheme": scheme,
    }
    blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def cell_key(cell: CampaignCell) -> str:
    """Content hash identifying one cell's result."""
    return _hash_material(STORE_FORMAT, asdict(cell.config), cell.scheme)


def legacy_cell_keys(cell: CampaignCell) -> list[str]:
    """The cell's identities in older store formats, newest first.

    Each step of the chain is only reachable while every config field
    the older format did not know about sits at its default: a cell on
    the ``loop`` backend never existed in a v3 store, an analytic cell
    never existed in a v2 store.  :meth:`ResultStore.get_entry` probes
    these after a miss on the current key.
    """
    keys: list[str] = []
    config = asdict(cell.config)
    for name, default in _V5_CONFIG_FIELDS.items():
        if config.pop(name) != default:
            return keys
    keys.append(_hash_material(4, config, cell.scheme))
    for name, default in _V4_CONFIG_FIELDS.items():
        if config.pop(name) != default:
            return keys
    keys.append(_hash_material(3, config, cell.scheme))
    for name, default in _V3_CONFIG_FIELDS.items():
        if config.pop(name) != default:
            return keys
    keys.append(_hash_material(2, config, cell.scheme))
    return keys


def legacy_cell_key(cell: CampaignCell) -> str | None:
    """The format-2 key this cell would have had, or ``None``.

    Only cells expressible under format 2 — every post-v2 config field
    at its default — have a legacy identity; anything else (an analytic
    cell, a node-scope fault load, a loop-backend cell) never existed
    in a v2 store.
    """
    config = asdict(cell.config)
    for fields in (_V5_CONFIG_FIELDS, _V4_CONFIG_FIELDS, _V3_CONFIG_FIELDS):
        for name, default in fields.items():
            if config.pop(name) != default:
                return None
    return _hash_material(2, config, cell.scheme)


@dataclass(frozen=True)
class StoreEntry:
    """One indexed result plus the bookkeeping the summary reports."""

    key: str
    cell: CampaignCell
    report: SolveReport
    elapsed_s: float
    created_at: float


class ResultStore:
    """SQLite-indexed JSON store of solved cells."""

    def __init__(self, root: str | Path = DEFAULT_ROOT) -> None:
        self.root = Path(root)
        self.payload_dir = self.root / "payloads"
        self.payload_dir.mkdir(parents=True, exist_ok=True)
        # One connection shared across threads: the serving tier reads
        # and writes from worker-pool threads, so the connection is
        # opened with check_same_thread=False and every statement runs
        # under _lock (sqlite3 objects are not themselves thread-safe).
        # WAL + busy_timeout handle concurrent *processes* on the same
        # store; the lock handles concurrent threads on this handle.
        self._lock = threading.RLock()
        self._db = sqlite3.connect(
            self.root / "index.db", timeout=30.0, check_same_thread=False
        )
        self._db.executescript(_SCHEMA)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA busy_timeout=30000")
        self._db.commit()
        #: Lookup counters since open: ``hits`` counts get_entry() calls
        #: served a report, ``misses`` the rest.  Surfaced by stats()
        #: and the serving tier's /v1/store/stats endpoint.
        self.hits = 0
        self.misses = 0
        #: put() calls since open that replaced an existing row — i.e.
        #: compute repeated for a cell the store already held.  The
        #: ``cache_stampede`` fleet detector alerts when a campaign's
        #: delta on this counter gets large.
        self.overwrites = 0

    # ------------------------------------------------------------------
    def key(self, cell: CampaignCell) -> str:
        return cell_key(cell)

    def _payload_path(self, key: str) -> Path:
        return self.payload_dir / key[:2] / f"{key}.json"

    def __contains__(self, cell: CampaignCell) -> bool:
        return self.get_entry(cell) is not None

    def get_entry(self, cell: CampaignCell) -> StoreEntry | None:
        """Full entry for a cell, or ``None`` on a miss.

        A miss under the current key walks the cell's legacy identity
        chain (formats 4, 3, then 2, where the cell has them), so stores
        written before the victim-set / backend / engine / fault-scope
        axes keep serving their banked results.
        """
        key = cell_key(cell)
        with self._lock:
            row = self._db.execute(
                "SELECT elapsed_s, created_at FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                for legacy in legacy_cell_keys(cell):
                    row = self._db.execute(
                        "SELECT elapsed_s, created_at FROM results WHERE key = ?",
                        (legacy,),
                    ).fetchone()
                    if row is not None:
                        key = legacy
                        break
        if row is None:
            with self._lock:
                self.misses += 1
            return None
        path = self._payload_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            # stale index row (payload pruned or corrupted): self-heal
            with self._lock:
                self._db.execute("DELETE FROM results WHERE key = ?", (key,))
                self._db.commit()
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return StoreEntry(
            key=key,
            cell=cell,
            report=report_from_dict(payload["report"]),
            elapsed_s=row[0],
            created_at=row[1],
        )

    def get(self, cell: CampaignCell) -> SolveReport | None:
        entry = self.get_entry(cell)
        return entry.report if entry else None

    def put(
        self, cell: CampaignCell, report: SolveReport, *, elapsed_s: float = 0.0
    ) -> str:
        """Persist one result; returns its key.  Last writer wins."""
        key = cell_key(cell)
        path = self._payload_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "cell": {"config": asdict(cell.config), "scheme": cell.scheme},
            "report": report_to_dict(report),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
        cfg = cell.config
        with self._lock:
            if (
                self._db.execute(
                    "SELECT 1 FROM results WHERE key = ?", (key,)
                ).fetchone()
                is not None
            ):
                self.overwrites += 1
            self._db.execute(
                "INSERT OR REPLACE INTO results VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    cfg.matrix,
                    cell.scheme,
                    cfg.nranks,
                    cfg.n_faults,
                    cfg.seed,
                    cfg.scale,
                    str(cfg.cr_interval),
                    cfg.tol,
                    int(report.converged),
                    report.iterations,
                    report.time_s,
                    report.energy_j,
                    elapsed_s,
                    time.time(),
                    str(path.relative_to(self.root)),
                ),
            )
            self._db.commit()
        return key

    # ------------------------------------------------------------------
    def put_manifest(self, manifest) -> str:
        """Persist a campaign :class:`~repro.campaign.manifest.
        RunManifest`, keyed by its run id; returns the run id.

        Manifests live in their own table beside the results — execution
        evidence about a campaign, fully separate from the
        content-addressed payloads, so storing one can never perturb a
        stored report.
        """
        from repro.campaign.manifest import manifest_to_doc

        doc = json.dumps(
            manifest_to_doc(manifest), sort_keys=True, separators=(",", ":")
        )
        with self._lock:
            self._db.execute(
                "INSERT OR REPLACE INTO manifests VALUES (?, ?, ?, ?)",
                (manifest.run_id, manifest.name, manifest.finished_at, doc),
            )
            self._db.commit()
        return manifest.run_id

    def get_manifest(self, run_id: str):
        """The stored manifest for one run id, or ``None``."""
        from repro.campaign.manifest import manifest_from_doc

        with self._lock:
            row = self._db.execute(
                "SELECT doc FROM manifests WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        return manifest_from_doc(json.loads(row[0]))

    def latest_manifest(self):
        """The most recently finished campaign's manifest, or ``None``."""
        from repro.campaign.manifest import manifest_from_doc

        with self._lock:
            row = self._db.execute(
                "SELECT doc FROM manifests ORDER BY created_at DESC, run_id "
                "LIMIT 1"
            ).fetchone()
        if row is None:
            return None
        return manifest_from_doc(json.loads(row[0]))

    def manifests(self) -> list[tuple[str, str, float]]:
        """``(run_id, campaign name, finished_at)`` rows, newest first."""
        with self._lock:
            return self._db.execute(
                "SELECT run_id, name, created_at FROM manifests "
                "ORDER BY created_at DESC, run_id"
            ).fetchall()

    # ------------------------------------------------------------------
    def entries(self):
        """Iterate every stored entry, oldest first (then by key).

        Cells are rebuilt from the payload's own config record, so the
        iterator works on any store without knowing the spec that filled
        it — this is what ``repro trace`` walks.
        """
        from repro.harness.experiment import ExperimentConfig

        with self._lock:
            rows = self._db.execute(
                "SELECT key, elapsed_s, created_at FROM results "
                "ORDER BY created_at, key"
            ).fetchall()
        for key, elapsed_s, created_at in rows:
            path = self._payload_path(key)
            try:
                payload = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # stale row; get_entry() would self-heal it
            cell = CampaignCell(
                config=ExperimentConfig(**payload["cell"]["config"]),
                scheme=payload["cell"]["scheme"],
            )
            yield StoreEntry(
                key=key,
                cell=cell,
                report=report_from_dict(payload["report"]),
                elapsed_s=elapsed_s,
                created_at=created_at,
            )

    def __len__(self) -> int:
        with self._lock:
            return self._db.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def payload_bytes(self) -> int:
        """Total on-disk size of every payload file, in bytes."""
        total = 0
        for sub in self.payload_dir.iterdir():
            if sub.is_dir():
                for f in sub.glob("*.json"):
                    try:
                        total += f.stat().st_size
                    except OSError:
                        continue  # pruned between listing and stat
        return total

    def stats(self) -> dict:
        """Store-wide counters: index totals, on-disk payload bytes and
        the hit/miss counters since open (the serving tier's
        ``/v1/store/stats`` payload)."""
        with self._lock:
            n, elapsed = self._db.execute(
                "SELECT COUNT(*), COALESCE(SUM(elapsed_s), 0) FROM results"
            ).fetchone()
            hits, misses, overwrites = self.hits, self.misses, self.overwrites
        return {
            "entries": n,
            "compute_seconds_banked": elapsed,
            "payload_bytes": self.payload_bytes(),
            "hits": hits,
            "misses": misses,
            "overwrites": overwrites,
            "root": str(self.root),
        }

    def clear(self) -> None:
        """Drop every entry (index, payloads and manifests)."""
        with self._lock:
            self._db.execute("DELETE FROM results")
            self._db.execute("DELETE FROM manifests")
            self._db.commit()
        for sub in self.payload_dir.iterdir():
            if sub.is_dir():
                for f in sub.glob("*.json"):
                    f.unlink()

    def close(self) -> None:
        with self._lock:
            self._db.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
