"""Campaign execution: a fault-tolerant worker pool over cells.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` into a
:class:`CampaignResult` in three stages:

1. **cache probe** — with ``resume`` on, every cell already in the
   :class:`~repro.campaign.store.ResultStore` is served from disk;
2. **baselines** — each experiment group's fault-free cell runs (in
   parallel across groups), because every scheme cell of the group
   normalizes against it and needs its iteration horizon;
3. **scheme cells** — run in parallel with the group's baseline report
   shipped along, so no worker ever repeats a baseline solve.

Workers are ``ProcessPoolExecutor`` processes executing
:func:`execute_cell`, a pure function of (cell, baseline): given the
explicit seeds in :class:`~repro.harness.experiment.ExperimentConfig`
the result is deterministic, so serial (``max_workers=1``, which
degrades to plain in-process loops — no pool, no pickling) and parallel
campaigns produce identical reports.

Fault tolerance: each cell gets a wall-clock timeout (SIGALRM inside
the worker, so the pool survives) and bounded retries; a worker crash
(``BrokenProcessPool``) rebuilds the pool and re-queues the affected
cells with their retry budgets decremented.

Observability rides side-band (:mod:`repro.campaign.fleet`): every pool
is built with an initializer that wires its workers into a shared
telemetry queue — forwarded structured logs, per-cell lifecycle events
and heartbeats — which a :class:`~repro.campaign.fleet.FleetMonitor`
folds into the live ``--watch`` view and the persisted
:class:`~repro.campaign.manifest.RunManifest`.  None of it touches the
reports, so serial and parallel campaigns stay bit-identical with the
channel active.
"""

from __future__ import annotations

import multiprocessing
import signal
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.campaign.fleet import (
    DEFAULT_HEARTBEAT_S,
    ChannelDrainer,
    FleetMonitor,
    LocalChannel,
    annotate_cell_id,
    cell_correlation_id,
    init_worker,
    worker_channel,
)
from repro.campaign.manifest import RunManifest
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import ResultStore
from repro.core.report import SolveReport
from repro.harness.experiment import Experiment
from repro.obs.logging import bound_request_id, get_logger, root_manager

_log = get_logger("campaign.runner")


class CellTimeout(Exception):
    """A cell exceeded its per-cell wall-clock budget.

    Both constructor arguments live in ``args`` so the exception —
    elapsed included — survives pickling back from a pool worker.
    """

    def __init__(self, message: str, elapsed_s: float = 0.0) -> None:
        super().__init__(message, elapsed_s)
        self.message = message
        #: Compute seconds burned before the abort (wasted work).
        self.elapsed_s = elapsed_s

    def __str__(self) -> str:
        return self.message


class CellExecutionError(Exception):
    """A cell's solve raised; carries the elapsed seconds it wasted.

    :func:`execute_cell` wraps worker-side failures in this type so the
    time a failed attempt burned crosses the process boundary with the
    exception (``args`` carries both fields through pickling) and the
    run manifest can attribute wasted compute.
    """

    def __init__(self, message: str, elapsed_s: float = 0.0) -> None:
        super().__init__(message, elapsed_s)
        self.message = message
        #: Compute seconds burned before the failure (wasted work).
        self.elapsed_s = elapsed_s

    def __str__(self) -> str:
        return self.message


def _error_string(exc: BaseException) -> str:
    """The campaign-facing error string for a cell failure."""
    if isinstance(exc, (CellTimeout, CellExecutionError)):
        return str(exc)
    return f"{type(exc).__name__}: {exc}"


def _wasted_s(exc: BaseException) -> float:
    """Elapsed seconds an exception carries (0 for foreign types)."""
    try:
        return float(getattr(exc, "elapsed_s", 0.0))
    except (TypeError, ValueError):
        return 0.0


def execute_cell(
    cell: CampaignCell,
    baseline: SolveReport | None = None,
    timeout_s: float | None = None,
) -> tuple[SolveReport, float]:
    """Run one cell to completion; the unit of work a pool worker executes.

    Returns ``(report, elapsed_seconds)``.  ``baseline`` primes the
    experiment's fault-free report so scheme cells skip the baseline
    solve.  ``timeout_s`` arms a SIGALRM timer (POSIX) that aborts the
    cell with :class:`CellTimeout` without killing the worker.  Failures
    re-raise with the attempt's elapsed seconds attached
    (:class:`CellTimeout` / :class:`CellExecutionError`) so wasted
    compute is attributable even across the pool's pickle boundary.
    """
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    if use_alarm:

        def _on_alarm(signum, frame):
            raise CellTimeout(f"{cell.label} exceeded {timeout_s:g}s")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    t0 = time.perf_counter()
    try:
        experiment = Experiment(cell.config)
        if baseline is not None and not cell.is_baseline:
            experiment.prime_baseline(baseline)
        report = experiment.run(cell.scheme)
    except CellTimeout as exc:
        raise CellTimeout(str(exc), time.perf_counter() - t0) from None
    except Exception as exc:
        raise CellExecutionError(
            f"{type(exc).__name__}: {exc}", time.perf_counter() - t0
        ) from exc
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    return report, time.perf_counter() - t0


def run_cell_in_worker(
    worker_fn,
    cell: CampaignCell,
    baseline: SolveReport | None,
    timeout_s: float | None,
    cell_id: str,
    attempt: int,
    channel=None,
):
    """Telemetry-wrapped cell execution; what the pool actually submits.

    Binds the ``<run_id>.<cell_id>`` request correlation id for the
    duration of the cell (every worker log record carries it), emits
    started/finished/failed lifecycle events over the channel, and
    otherwise behaves exactly like ``worker_fn`` — same return, same
    exceptions.  ``channel=None`` picks up the worker process's
    channel installed by the pool initializer; a worker invoked outside
    any campaign (no channel at all) degrades to a plain call.
    """
    if channel is None:
        channel = worker_channel()
    if channel is None:
        return worker_fn(cell, baseline, timeout_s)
    log = get_logger("campaign.worker")
    with bound_request_id(f"{channel.run_id}.{cell_id}"):
        channel.cell_started(cell.label, cell_id, attempt)
        try:
            report, elapsed = worker_fn(cell, baseline, timeout_s)
        except BaseException as exc:
            wasted = _wasted_s(exc)
            log.warning(
                "cell attempt failed",
                cell=cell.label,
                attempt=attempt,
                error=_error_string(exc),
                elapsed_s=round(wasted, 6),
            )
            channel.cell_finished(
                cell.label, cell_id, attempt, wasted, error=_error_string(exc)
            )
            raise
        log.debug(
            "cell computed",
            cell=cell.label,
            attempt=attempt,
            elapsed_s=round(elapsed, 6),
        )
        channel.cell_finished(cell.label, cell_id, attempt, elapsed)
        return report, elapsed


@dataclass(frozen=True)
class CellResult:
    """Outcome of one cell within a campaign."""

    cell: CampaignCell
    status: str  # "ran" | "cached" | "failed"
    report: SolveReport | None = None
    #: Compute seconds: measured for ran cells, banked (the original
    #: run's cost) for cached ones, total wasted seconds for failed ones.
    elapsed_s: float = 0.0
    attempts: int = 1
    error: str | None = None
    #: Compute seconds burned by failed attempts *before* the attempt
    #: that succeeded (0 unless the cell was retried).
    wasted_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ran", "cached")


@dataclass
class CampaignResult:
    """Everything a finished campaign knows about itself."""

    spec: CampaignSpec
    results: list[CellResult]
    wall_s: float
    workers: int
    #: The campaign run id (correlates logs, progress events, manifest).
    run_id: str = ""
    #: The fleet execution record persisted at campaign end.
    manifest: RunManifest | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        self._by_cell = {r.cell: r for r in self.results}

    def __getitem__(self, cell: CampaignCell) -> CellResult:
        return self._by_cell[cell]

    @property
    def n_ran(self) -> int:
        return sum(r.status == "ran" for r in self.results)

    @property
    def n_cached(self) -> int:
        return sum(r.status == "cached" for r in self.results)

    @property
    def n_failed(self) -> int:
        return sum(r.status == "failed" for r in self.results)

    @property
    def compute_s(self) -> float:
        """Total compute seconds represented, including banked cache time."""
        return sum(r.elapsed_s for r in self.results if r.ok)

    def groups(self):
        """``(config, {scheme: report})`` per experiment group, in spec
        order, with only successful cells included."""
        out: dict = {}
        for r in self.results:
            if r.ok and r.report is not None:
                out.setdefault(r.cell.config, {})[r.cell.scheme] = r.report
        return list(out.items())

    def cell_telemetry(self) -> dict:
        """``{cell label: Telemetry}`` for every cell that recorded one."""
        out: dict = {}
        for r in self.results:
            if r.report is None:
                continue
            tel = r.report.details.get("telemetry")
            if tel is not None:
                out[r.cell.label] = tel
        return out

    def telemetry_rollup(self):
        """Campaign-level metrics registry (wall timebase).

        Merges every worker-side registry that came back inside a cell's
        report with the campaign's own counters: cells by status, cache
        hits/misses, retries, and throughput.  Worker metrics (sim-time
        recovery-latency histograms, per-phase energy counters, …) sum
        across cells; the campaign counters describe this run.
        """
        from repro.obs.metrics import MetricsRegistry

        rollup = MetricsRegistry()
        for r in self.results:
            rollup.counter("campaign.cells", status=r.status).inc()
            rollup.counter("campaign.retries").inc(max(0, r.attempts - 1))
            if r.status == "cached":
                rollup.counter("campaign.cache.hits").inc()
            elif r.status == "ran":
                rollup.counter("campaign.cache.misses").inc()
        if self.wall_s > 0:
            rollup.gauge("campaign.cells_per_sec").set(
                len(self.results) / self.wall_s
            )
        # Problem-setup cache traffic (matrix builds, halo analyses,
        # measured iteration costs).  The counters are process-local:
        # serial campaigns show the cross-cell reuse directly; with a
        # worker pool each worker keeps its own cache and only this
        # process's (mostly idle) counters appear here.
        from repro.matrices.cache import cache_stats

        for layer, stats in cache_stats().items():
            rollup.counter("problem_cache.hits", layer=layer).inc(stats["hits"])
            rollup.counter("problem_cache.misses", layer=layer).inc(stats["misses"])
        for tel in self.cell_telemetry().values():
            rollup.merge(tel.metrics)
        return rollup

    def run_records(self):
        """Successful cells as analysis :class:`~repro.obs.analysis.
        records.RunRecord` objects (label + report + telemetry + config)."""
        from repro.obs.analysis.records import records_from_campaign

        return records_from_campaign(self)

    def attribution_summary(self):
        """``{scheme: PhaseAttribution}`` rollup: per-phase time/energy
        summed across every successful cell of each scheme, with the
        reconciliation residual carried along."""
        from repro.obs.analysis.attribution import attribute_record, scheme_rollup

        return scheme_rollup(attribute_record(r) for r in self.run_records())

    def anomalies(self, names=None):
        """Detector findings over every successful cell plus — when the
        run produced a manifest — the fleet-scoped detectors (see
        :mod:`repro.obs.analysis.detectors`); empty means healthy."""
        from repro.obs.analysis.detectors import run_detectors

        return run_detectors(self.run_records(), names, manifest=self.manifest)


class CampaignRunner:
    """Executes a spec against a store with a bounded-retry worker pool."""

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        store: ResultStore | None = None,
        max_workers: int = 1,
        timeout_s: float | None = None,
        retries: int = 1,
        resume: bool = True,
        progress=None,
        worker=execute_cell,
        run_id: str | None = None,
        monitor: FleetMonitor | None = None,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_S,
        event_sink=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        #: The cell-executing callable; injectable for tests and
        #: extensions, must be picklable for parallel runs.
        self.worker = worker
        self.spec = spec
        self.store = store
        self.max_workers = max_workers
        self.timeout_s = timeout_s
        self.retries = retries
        self.resume = resume
        self.progress = progress
        #: The fleet telemetry fold; build one unless the caller (the
        #: ``--watch`` CLI path) brought its own to render live.
        self.monitor = (
            monitor
            if monitor is not None
            else FleetMonitor(
                run_id,
                workers=max_workers,
                heartbeat_interval_s=heartbeat_interval_s,
                event_sink=event_sink,
            )
        )
        self._queue = None

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        t0 = time.perf_counter()
        cells = self.spec.cells()
        done: dict[CampaignCell, CellResult] = {}
        self.monitor.begin(
            total=len(cells), name=self.spec.name, workers=self.max_workers
        )
        overwrites0 = (
            self.store.stats().get("overwrites", 0)
            if self.store is not None
            else 0
        )
        drainer = None
        if self.max_workers > 1:
            self._queue = multiprocessing.Queue()
            drainer = ChannelDrainer(self._queue, self.monitor)
            drainer.start()
        try:
            # stage 1: cache probe
            if self.resume and self.store is not None:
                for cell in cells:
                    entry = self.store.get_entry(cell)
                    if entry is not None:
                        done[cell] = self._emit(
                            CellResult(
                                cell,
                                "cached",
                                report=entry.report,
                                elapsed_s=entry.elapsed_s,
                            )
                        )

            # stage 2: fault-free baselines, one per experiment group
            baseline_tasks = [
                (cell, None)
                for cell in cells
                if cell.is_baseline and cell not in done
            ]
            done.update(self._run_batch(baseline_tasks))
            baselines = {
                cell.config: done[cell].report
                for cell in cells
                if cell.is_baseline and done[cell].ok
            }

            # stage 3: scheme cells, primed with their group's baseline
            scheme_tasks = []
            for cell in cells:
                if cell.is_baseline or cell in done:
                    continue
                baseline = baselines.get(cell.config)
                if baseline is None:
                    ff = next(
                        c for c in cells if c.is_baseline and c.config == cell.config
                    )
                    done[cell] = self._emit(
                        CellResult(
                            cell,
                            "failed",
                            error=f"baseline failed: {done[ff].error}",
                        )
                    )
                    continue
                scheme_tasks.append((cell, baseline))
            done.update(self._run_batch(scheme_tasks))
        finally:
            if drainer is not None:
                drainer.stop()
                self._queue = None

        wall = time.perf_counter() - t0
        self.monitor.finalize(wall)
        overwrites = (
            self.store.stats().get("overwrites", 0) - overwrites0
            if self.store is not None
            else 0
        )
        manifest = self.monitor.manifest(store_overwrites=overwrites)
        if self.store is not None:
            self.store.put_manifest(manifest)
        return CampaignResult(
            spec=self.spec,
            results=[done[cell] for cell in cells],
            wall_s=wall,
            workers=self.max_workers,
            run_id=self.monitor.run_id,
            manifest=manifest,
        )

    # ------------------------------------------------------------------
    def _emit(self, result: CellResult) -> CellResult:
        if result.status == "failed":
            _log.warning(
                "cell failed",
                cell=result.cell.label,
                attempts=result.attempts,
                error=result.error or "",
            )
        else:
            _log.debug(
                "cell done",
                cell=result.cell.label,
                status=result.status,
                elapsed_s=round(result.elapsed_s or 0.0, 6),
            )
        self.monitor.cell_done(result)
        if self.progress is not None:
            self.progress.cell_done(result)
        return result

    def _finish(
        self,
        cell: CampaignCell,
        report,
        elapsed: float,
        attempts: int,
        wasted_s: float = 0.0,
    ):
        """Persist a fresh result and normalize it through the store.

        Reading the result back means a cell served from cache tomorrow
        is byte-for-byte the object this campaign returned today.  The
        deterministic cell correlation id is stamped onto the traced
        telemetry *before* the store write — same code path serial and
        parallel, so the annotation cannot perturb bit-identity.
        """
        annotate_cell_id(report, cell_correlation_id(cell))
        if self.store is not None:
            self.store.put(cell, report, elapsed_s=elapsed)
            report = self.store.get(cell)
        return self._emit(
            CellResult(
                cell,
                "ran",
                report=report,
                elapsed_s=elapsed,
                attempts=attempts,
                wasted_s=wasted_s,
            )
        )

    def _pool(self, workers: int) -> ProcessPoolExecutor:
        """A worker pool wired into the telemetry channel."""
        if self._queue is None:
            return ProcessPoolExecutor(max_workers=workers)
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=init_worker,
            initargs=(
                self._queue,
                self.monitor.run_id,
                root_manager().level,
                self.monitor.heartbeat_interval_s,
            ),
        )

    def _run_batch(self, tasks) -> dict[CampaignCell, CellResult]:
        if not tasks:
            return {}
        if self.max_workers == 1:
            return self._run_serial(tasks)
        return self._run_parallel(tasks)

    def _run_serial(self, tasks) -> dict[CampaignCell, CellResult]:
        out: dict[CampaignCell, CellResult] = {}
        channel = LocalChannel(self.monitor)
        for cell, baseline in tasks:
            cell_id = cell_correlation_id(cell)
            attempt = 1
            wasted = 0.0
            while True:
                self.monitor.cell_queued(cell, attempt)
                try:
                    report, elapsed = run_cell_in_worker(
                        self.worker,
                        cell,
                        baseline,
                        self.timeout_s,
                        cell_id,
                        attempt,
                        channel=channel,
                    )
                    out[cell] = self._finish(
                        cell, report, elapsed, attempt, wasted_s=wasted
                    )
                    break
                except CellTimeout as exc:  # timeouts are not retried
                    out[cell] = self._emit(
                        CellResult(
                            cell,
                            "failed",
                            attempts=attempt,
                            elapsed_s=wasted + _wasted_s(exc),
                            error=str(exc),
                        )
                    )
                    break
                except Exception as exc:
                    wasted += _wasted_s(exc)
                    if attempt > self.retries:
                        out[cell] = self._emit(
                            CellResult(
                                cell,
                                "failed",
                                attempts=attempt,
                                elapsed_s=wasted,
                                error=_error_string(exc),
                            )
                        )
                        break
                    attempt += 1
        return out

    def _run_parallel(self, tasks) -> dict[CampaignCell, CellResult]:
        """Pooled rounds with crash recovery.

        A dead worker breaks the whole pool: every in-flight future
        raises ``BrokenProcessPool`` and the crasher is indistinguishable
        from its innocent pool-mates.  So crashes never consume a cell's
        *error* retry budget in pooled mode — the pool is rebuilt and
        everyone unfinished re-queued.  After ``retries + 1`` broken
        rounds the survivors move to an exact-attribution endgame: each
        runs alone in a single-worker pool, where a crash provably
        belongs to that cell and is bounded by its own retry budget.
        """
        out: dict[CampaignCell, CellResult] = {}
        queue = [(cell, baseline, 1, 0.0) for cell, baseline in tasks]
        broken_rounds = 0
        while queue and broken_rounds <= self.retries:
            requeue: list = []
            round_broke = False
            workers = min(self.max_workers, len(queue))
            with self._pool(workers) as pool:
                futures = {}
                for cell, baseline, attempt, wasted in queue:
                    self.monitor.cell_queued(cell, attempt)
                    future = pool.submit(
                        run_cell_in_worker,
                        self.worker,
                        cell,
                        baseline,
                        self.timeout_s,
                        cell_correlation_id(cell),
                        attempt,
                    )
                    futures[future] = (cell, baseline, attempt, wasted)
                for future in as_completed(futures):
                    cell, baseline, attempt, wasted = futures[future]
                    try:
                        report, elapsed = future.result()
                        out[cell] = self._finish(
                            cell, report, elapsed, attempt, wasted_s=wasted
                        )
                    except CellTimeout as exc:
                        out[cell] = self._emit(
                            CellResult(
                                cell,
                                "failed",
                                attempts=attempt,
                                elapsed_s=wasted + _wasted_s(exc),
                                error=str(exc),
                            )
                        )
                    except BrokenProcessPool:
                        round_broke = True
                        requeue.append((cell, baseline, attempt + 1, wasted))
                    except Exception as exc:
                        wasted += _wasted_s(exc)
                        if attempt > self.retries:
                            out[cell] = self._emit(
                                CellResult(
                                    cell,
                                    "failed",
                                    attempts=attempt,
                                    elapsed_s=wasted,
                                    error=_error_string(exc),
                                )
                            )
                        else:
                            requeue.append((cell, baseline, attempt + 1, wasted))
            broken_rounds += round_broke
            queue = requeue
        for cell, baseline, attempt, wasted in queue:
            out[cell] = self._run_isolated(cell, baseline, attempt, wasted)
        return out

    def _run_isolated(self, cell, baseline, attempt, wasted=0.0) -> CellResult:
        """Run one cell in its own single-worker pool (crash endgame)."""
        crashes = 0
        while True:
            self.monitor.cell_queued(cell, attempt)
            with self._pool(1) as pool:
                future = pool.submit(
                    run_cell_in_worker,
                    self.worker,
                    cell,
                    baseline,
                    self.timeout_s,
                    cell_correlation_id(cell),
                    attempt,
                )
                try:
                    report, elapsed = future.result()
                    return self._finish(
                        cell, report, elapsed, attempt, wasted_s=wasted
                    )
                except CellTimeout as exc:
                    return self._emit(
                        CellResult(
                            cell,
                            "failed",
                            attempts=attempt,
                            elapsed_s=wasted + _wasted_s(exc),
                            error=str(exc),
                        )
                    )
                except BrokenProcessPool:
                    crashes += 1
                    if crashes > self.retries:
                        return self._emit(
                            CellResult(
                                cell,
                                "failed",
                                attempts=attempt,
                                elapsed_s=wasted,
                                error="worker process crashed",
                            )
                        )
                except Exception as exc:
                    wasted += _wasted_s(exc)
                    if attempt > self.retries:
                        return self._emit(
                            CellResult(
                                cell,
                                "failed",
                                attempts=attempt,
                                elapsed_s=wasted,
                                error=_error_string(exc),
                            )
                        )
            attempt += 1


def run_campaign(
    spec: CampaignSpec,
    *,
    store: ResultStore | None = None,
    max_workers: int = 1,
    timeout_s: float | None = None,
    retries: int = 1,
    resume: bool = True,
    progress=None,
    worker=execute_cell,
    run_id: str | None = None,
    monitor: FleetMonitor | None = None,
    heartbeat_interval_s: float = DEFAULT_HEARTBEAT_S,
    event_sink=None,
) -> CampaignResult:
    """One-call façade over :class:`CampaignRunner`."""
    return CampaignRunner(
        spec,
        store=store,
        max_workers=max_workers,
        timeout_s=timeout_s,
        retries=retries,
        resume=resume,
        progress=progress,
        worker=worker,
        run_id=run_id,
        monitor=monitor,
        heartbeat_interval_s=heartbeat_interval_s,
        event_sink=event_sink,
    ).run()
