"""The persisted campaign run manifest.

A :class:`RunManifest` is the fleet-level record of one campaign
execution: per-cell timings (queue-wait vs compute, wasted attempts),
attempt counts, the worker that solved each cell, and per-worker
aggregates (cells done, busy seconds, heartbeat health, peak RSS).  It
is assembled by the :class:`~repro.campaign.fleet.FleetMonitor` at
campaign end, written into the :class:`~repro.campaign.store.
ResultStore` keyed by the campaign run id, and read back by ``repro
report --campaign`` and the fleet-scoped detectors behind ``repro
doctor``.

The manifest is **side-band evidence only**: it describes how the
campaign executed, never what the cells computed, so persisting it can
never perturb the stored reports' bit-identity contract.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.harness.reporting import format_table
from repro.obs.term import fmt_bytes, hms

#: Bump when the manifest document schema changes shape.
MANIFEST_SCHEMA = 1

#: Terminal cell statuses a finished manifest may carry.  ``running``
#: marks a cell that never finished (worker hang or crash at shutdown)
#: — exactly the evidence the fleet detectors look for.
CELL_STATUSES = ("ran", "cached", "failed", "running", "queued")


class ManifestError(ValueError):
    """A document that does not parse as a run manifest."""


@dataclass(frozen=True)
class ManifestCell:
    """One cell's execution record within a campaign run."""

    label: str
    cell_id: str
    scheme: str
    status: str
    attempts: int = 1
    worker: int | None = None
    queued_ts: float | None = None
    started_ts: float | None = None
    finished_ts: float | None = None
    #: Seconds spent waiting between submission and a worker picking
    #: the cell up, summed over attempts.
    queue_wait_s: float = 0.0
    #: Compute seconds of the successful attempt (banked cost for
    #: cached cells).
    compute_s: float = 0.0
    #: Compute seconds burned by failed attempts (wasted work).
    wasted_s: float = 0.0
    error: str | None = None


@dataclass(frozen=True)
class ManifestWorker:
    """One worker process's aggregate record within a campaign run."""

    worker: int
    cells_done: int = 0
    failed_attempts: int = 0
    busy_s: float = 0.0
    heartbeats: int = 0
    #: Longest observed silence between heartbeats while the worker had
    #: a cell in flight (plus the final gap if it never finished one).
    max_heartbeat_gap_s: float = 0.0
    max_rss_bytes: int = 0
    last_cell: str | None = None


@dataclass(frozen=True)
class RunManifest:
    """Everything a finished campaign recorded about its own execution."""

    run_id: str
    name: str
    workers: int
    heartbeat_interval_s: float
    started_at: float
    finished_at: float
    wall_s: float
    counters: dict = field(default_factory=dict)
    cells: tuple[ManifestCell, ...] = ()
    worker_rows: tuple[ManifestWorker, ...] = ()
    schema: int = MANIFEST_SCHEMA

    @property
    def retries(self) -> int:
        """Total retry attempts across every cell."""
        return sum(max(0, c.attempts - 1) for c in self.cells)

    def cell(self, label: str) -> ManifestCell | None:
        """The row for one cell label, or ``None``."""
        for c in self.cells:
            if c.label == label:
                return c
        return None


def manifest_to_doc(manifest: RunManifest) -> dict:
    """Encode a manifest as a JSON-shaped document."""
    doc = asdict(manifest)
    doc["cells"] = [asdict(c) for c in manifest.cells]
    doc["worker_rows"] = [asdict(w) for w in manifest.worker_rows]
    return doc


def manifest_from_doc(doc: dict) -> RunManifest:
    """Invert :func:`manifest_to_doc`; raises :class:`ManifestError` on
    anything that is not a conformant manifest document."""
    if not isinstance(doc, dict):
        raise ManifestError("manifest document is not an object")
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise ManifestError(
            f"unsupported manifest schema {doc.get('schema')!r} "
            f"(expected {MANIFEST_SCHEMA})"
        )
    required = {
        "run_id", "name", "workers", "heartbeat_interval_s",
        "started_at", "finished_at", "wall_s", "counters",
        "cells", "worker_rows",
    }
    missing = required - set(doc)
    if missing:
        raise ManifestError(f"missing keys: {', '.join(sorted(missing))}")
    try:
        cells = tuple(ManifestCell(**c) for c in doc["cells"])
        workers = tuple(ManifestWorker(**w) for w in doc["worker_rows"])
    except TypeError as exc:
        raise ManifestError(f"malformed manifest row: {exc}") from None
    for c in cells:
        if c.status not in CELL_STATUSES:
            raise ManifestError(f"unknown cell status {c.status!r}")
    return RunManifest(
        run_id=doc["run_id"],
        name=doc["name"],
        workers=doc["workers"],
        heartbeat_interval_s=doc["heartbeat_interval_s"],
        started_at=doc["started_at"],
        finished_at=doc["finished_at"],
        wall_s=doc["wall_s"],
        counters=dict(doc["counters"]),
        cells=cells,
        worker_rows=workers,
        schema=doc["schema"],
    )


def _opt(value: float | None, fmt: str = "{:.2f}") -> str:
    return "-" if value is None else fmt.format(value)


def format_manifest(manifest: RunManifest) -> str:
    """Terminal rendering: header, worker table, per-cell table."""
    c = manifest.counters
    header = [
        f"run manifest {manifest.run_id} — campaign {manifest.name!r}, "
        f"{manifest.workers} worker(s), wall {hms(manifest.wall_s)}",
        f"  cells: {c.get('cells', len(manifest.cells))} total — "
        f"{c.get('ran', 0)} ran, {c.get('cached', 0)} cached, "
        f"{c.get('failed', 0)} failed, {c.get('retries', 0)} retries, "
        f"{c.get('store_overwrites', 0)} store overwrites",
        f"  attribution: queue-wait {c.get('queue_wait_s', 0.0):.2f}s, "
        f"compute {c.get('compute_s', 0.0):.2f}s, "
        f"wasted {c.get('wasted_s', 0.0):.2f}s, "
        f"banked {c.get('banked_s', 0.0):.2f}s",
    ]
    blocks = ["\n".join(header)]
    if manifest.worker_rows:
        rows = [
            [
                w.worker,
                w.cells_done,
                w.failed_attempts,
                f"{w.busy_s:.2f}",
                w.heartbeats,
                f"{w.max_heartbeat_gap_s:.2f}",
                fmt_bytes(w.max_rss_bytes),
                w.last_cell or "-",
            ]
            for w in manifest.worker_rows
        ]
        blocks.append(
            format_table(
                [
                    "pid", "cells", "fails", "busy_s", "beats",
                    "max_gap_s", "rss", "last_cell",
                ],
                rows,
                title="workers",
            )
        )
    if manifest.cells:
        rows = [
            [
                m.label,
                m.status,
                m.attempts,
                m.worker if m.worker is not None else "-",
                _opt(None if m.queued_ts is None else m.queue_wait_s),
                f"{m.compute_s:.2f}",
                f"{m.wasted_s:.2f}" if m.wasted_s else "-",
                (m.error or "")[:40] or "-",
            ]
            for m in manifest.cells
        ]
        blocks.append(
            format_table(
                [
                    "cell", "status", "tries", "pid", "wait_s",
                    "compute_s", "wasted_s", "error",
                ],
                rows,
                title="cells",
            )
        )
    return "\n\n".join(blocks)
