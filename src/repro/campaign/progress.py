"""Campaign progress reporting and summaries.

:class:`ProgressReporter` prints one line per finished cell with a
running count and an ETA extrapolated from the measured per-cell cost
and the worker count.  :func:`format_summary` renders the structured
wrap-up the CLI prints: a per-cell status table (cache status included)
plus aggregate counters — cells run / cached / failed, wall time, and
the aggregate speedup (compute seconds represented per wall second,
counting the banked cost of cached cells).
"""

from __future__ import annotations

import sys

from repro.campaign.runner import CampaignResult, CellResult
from repro.harness.normalize import normalize_reports
from repro.harness.reporting import format_table
from repro.obs.term import hms as _hms


class ProgressReporter:
    """Streams one status line per finished cell."""

    def __init__(
        self,
        total: int,
        *,
        workers: int = 1,
        stream=None,
        enabled: bool = True,
    ) -> None:
        self.total = total
        self.workers = max(1, workers)
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.finished = 0
        self._ran_elapsed: list[float] = []

    def eta_s(self) -> float | None:
        """Remaining wall-clock estimate from measured cell costs."""
        if not self._ran_elapsed:
            return None
        remaining = self.total - self.finished
        avg = sum(self._ran_elapsed) / len(self._ran_elapsed)
        return remaining * avg / self.workers

    def cell_done(self, result: CellResult) -> None:
        self.finished += 1
        if result.status == "ran":
            self._ran_elapsed.append(result.elapsed_s)
        if not self.enabled:
            return
        eta = self.eta_s()
        width = len(str(self.total))
        line = (
            f"[{self.finished:>{width}}/{self.total}] "
            f"{result.status:<6} {result.cell.label}"
        )
        if result.status == "ran":
            line += f" ({result.elapsed_s:.2f}s)"
            if result.attempts > 1:
                line += f" [attempt {result.attempts}]"
        elif result.status == "failed":
            if result.elapsed_s:
                line += f" ({result.elapsed_s:.2f}s wasted)"
            line += f" — {result.error}"
        if eta is not None and self.finished < self.total:
            line += f"  eta {_hms(eta)}"
        print(line, file=self.stream, flush=True)


# ----------------------------------------------------------------------
def summary_counters(result: CampaignResult) -> dict:
    """The campaign's aggregate counters as a plain dict."""
    wall = result.wall_s
    return {
        "cells": len(result.results),
        "ran": result.n_ran,
        "cached": result.n_cached,
        "failed": result.n_failed,
        "wall_s": wall,
        "compute_s": result.compute_s,
        "speedup": (result.compute_s / wall) if wall > 0 else 0.0,
    }


def format_summary(result: CampaignResult) -> str:
    """Per-cell status table plus aggregate counters."""
    rows = []
    for r in result.results:
        c = r.cell.config
        rep = r.report
        rows.append(
            [
                c.matrix,
                c.nranks,
                c.n_faults,
                c.seed,
                r.cell.scheme,
                r.status,
                r.attempts,
                rep.iterations if rep is not None else "-",
                f"{rep.time_s:.3f}" if rep is not None else "-",
                # failed cells show the compute they wasted before giving
                # up (elapsed_s carries it since the fleet-telemetry PR)
                f"{r.elapsed_s:.2f}" if r.ok or r.elapsed_s else "-",
            ]
        )
    table = format_table(
        [
            "matrix",
            "ranks",
            "faults",
            "seed",
            "scheme",
            "status",
            "tries",
            "iters",
            "sim_time_s",
            "cell_s",
        ],
        rows,
        title=f"campaign {result.spec.name!r}: per-cell results",
    )
    s = summary_counters(result)
    totals = (
        f"{s['cells']} cells: {s['ran']} ran, {s['cached']} cached, "
        f"{s['failed']} failed | wall {s['wall_s']:.1f}s, compute "
        f"{s['compute_s']:.1f}s, aggregate speedup {s['speedup']:.1f}x "
        f"({result.workers} workers)"
    )
    return f"{table}\n\n{totals}"


def format_telemetry_summary(result: CampaignResult) -> str:
    """Render the campaign's merged telemetry rollup.

    Campaign counters (cells by status, cache hits/misses, retries,
    throughput) followed by the worker-side metrics summed across every
    traced cell — most usefully the per-scheme recovery-latency
    histograms, rendered as one count/mean/max-bucket row per series.
    """
    rollup = result.telemetry_rollup()
    snap = rollup.snapshot()
    lines = ["campaign telemetry rollup:"]
    for series, value in snap["counters"].items():
        lines.append(f"  {series} = {value:g}")
    for series, value in snap["gauges"].items():
        lines.append(f"  {series} = {value:.4g}")
    hists = snap["histograms"]
    if hists:
        rows = []
        for series, data in hists.items():
            n = data["n"]
            mean = data["total"] / n if n else 0.0
            bounds = [*data["buckets"], float("inf")]
            occupied = [b for b, c in zip(bounds, data["counts"]) if c]
            le_max = f"{occupied[-1]:g}" if occupied else "-"
            rows.append([series, n, f"{mean:.3g}", le_max])
        lines.append("")
        lines.append(
            format_table(
                ["histogram", "n", "mean", "max_le"],
                rows,
                title="latency/cost histograms (seconds)",
            )
        )
    return "\n".join(lines)


def format_attribution_summary(result: CampaignResult) -> str:
    """Per-scheme phase waterfalls plus anomaly flags for the wrap-up.

    Renders :meth:`CampaignResult.attribution_summary` and appends any
    detector findings, so an anomalous cell is flagged right where the
    campaign summary is read.
    """
    from repro.obs.analysis.render import format_attribution_rollup, format_findings

    blocks = [format_attribution_rollup(result.attribution_summary())]
    findings = result.anomalies()
    if findings:
        blocks.append("anomalies:")
        blocks.append(format_findings(findings))
    else:
        blocks.append("anomalies: none")
    return "\n\n".join(blocks)


def format_normalized_tables(result: CampaignResult) -> str:
    """The paper-style normalized tables for every finished group.

    One table per metric (iterations / time / energy), matrices as rows
    and schemes as columns, each cell normalized to its group's
    fault-free baseline — the acceptance surface for serial-vs-parallel
    equality.
    """
    groups = [
        (config, reports)
        for config, reports in result.groups()
        if "FF" in reports and len(reports) > 1
    ]
    if not groups:
        return "(no complete experiment groups to normalize)"
    schemes = [s for s in result.spec.schemes if s != "FF"]
    blocks = []
    for metric in ("iterations", "time", "energy"):
        rows = []
        for config, reports in groups:
            norm = normalize_reports(reports)
            label = config.matrix
            if len(result.spec.nranks) > 1:
                label += f" r{config.nranks}"
            if len(result.spec.fault_loads) > 1:
                label += f" f{config.n_faults}"
            if len(result.spec.seeds) > 1:
                label += f" s{config.seed}"
            rows.append(
                [
                    label,
                    *(
                        round(getattr(norm[s], metric), 6) if s in norm else "-"
                        for s in schemes
                    ),
                ]
            )
        blocks.append(
            format_table(
                ["matrix", *schemes],
                rows,
                title=f"normalized {metric} (FF = 1)",
                precision=3,
            )
        )
    return "\n\n".join(blocks)
