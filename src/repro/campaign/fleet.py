"""Fleet telemetry: the worker → parent side-band channel.

The campaign runner's worker pool is instrumented the way the serving
tier is (DESIGN.md §5i), but across process boundaries: every pool
worker is initialized with the parent's log configuration and a shared
``multiprocessing`` queue, over which it forwards

* **structured log records** — worker-side :mod:`repro.obs.logging`
  lines, re-emitted through the parent's own sinks (stderr, rotating
  file), stamped with ``<run_id>.<cell_id>`` request correlation ids;
* **cell lifecycle events** — queued / started / finished / failed /
  cached, with attempt counts, the schema'd JSONL stream behind
  ``repro campaign --json-progress``;
* **heartbeats** — pid, RSS, current cell and its elapsed age, from a
  daemon thread per worker, so a hung or killed worker is visible as a
  widening heartbeat gap.

The parent-side :class:`FleetMonitor` folds all three into one
thread-safe state (per-cell queue-wait vs compute split, per-worker
liveness) that the ``--watch`` dashboard renders live and the
:class:`~repro.campaign.manifest.RunManifest` snapshots at campaign
end.

**The channel is side-band only.**  Cell correlation ids are
*deterministic* — a prefix of the cell's content hash — so stamping
them into stored traced telemetry preserves the serial↔parallel and
fresh↔cached bit-identity contracts; the random campaign run id only
ever reaches log records and the manifest, never a stored payload.
"""

from __future__ import annotations

import os
import threading
import time
import json

from repro.obs.logging import new_request_id, root_manager

#: Default heartbeat cadence, seconds; 0 disables the heartbeat thread.
DEFAULT_HEARTBEAT_S = 1.0

#: The cell lifecycle event kinds, in the order a cell meets them.
CELL_EVENTS = ("queued", "started", "finished", "failed", "cached")

_EVENT_REQUIRED = ("ts", "run_id", "event", "cell", "cell_id", "worker", "attempt")
_EVENT_OPTIONAL = ("elapsed_s", "error")

#: Cell statuses that mean the parent has spoken: no further state
#: transitions are accepted for the cell (late worker events only
#: update worker aggregates).
_TERMINAL = ("ran", "cached", "failed")


class ProgressEventError(ValueError):
    """A line that does not parse as a cell lifecycle event."""


def cell_correlation_id(cell) -> str:
    """Deterministic per-cell correlation id: a 16-hex prefix of the
    cell's content hash, so re-running the cell (serial, parallel, or
    from cache) always yields the same id and stored telemetry stays
    bit-identical."""
    from repro.campaign.store import cell_key

    return cell_key(cell)[:16]


def annotate_cell_id(report, cell_id: str) -> None:
    """Stamp the correlation id onto a traced report's root solve span.

    Mirrors the serving tier's request-id annotation: the id rides as a
    span attr, persists with the stored telemetry and round-trips
    through the JSONL trace export.  Untraced reports are left
    byte-identical.
    """
    from dataclasses import replace

    details = getattr(report, "details", None)
    tel = details.get("telemetry") if isinstance(details, dict) else None
    if tel is None:
        return
    spans = tel.spans.spans
    for i, s in enumerate(spans):
        if s.name == "solve" and s.depth == 0:
            attrs = dict(s.attrs)
            attrs["cell_id"] = cell_id
            spans[i] = replace(s, attrs=tuple(sorted(attrs.items())))
            return


# ----------------------------------------------------------------------
# the cell-event wire format (--json-progress)
# ----------------------------------------------------------------------
def cell_event(
    run_id: str,
    event: str,
    cell: str,
    cell_id: str,
    worker: int,
    attempt: int,
    *,
    ts: float | None = None,
    elapsed_s: float | None = None,
    error: str | None = None,
) -> dict:
    """One canonical cell lifecycle event document."""
    doc: dict = {
        "ts": time.time() if ts is None else ts,
        "run_id": run_id,
        "event": event,
        "cell": cell,
        "cell_id": cell_id,
        "worker": worker,
        "attempt": attempt,
    }
    if elapsed_s is not None:
        doc["elapsed_s"] = elapsed_s
    if error is not None:
        doc["error"] = error
    return doc


def _check_event(doc: dict) -> dict:
    if not isinstance(doc, dict):
        raise ProgressEventError("event is not a JSON object")
    missing = set(_EVENT_REQUIRED) - set(doc)
    if missing:
        raise ProgressEventError(f"missing keys: {', '.join(sorted(missing))}")
    unknown = set(doc) - set(_EVENT_REQUIRED) - set(_EVENT_OPTIONAL)
    if unknown:
        raise ProgressEventError(f"unknown keys: {', '.join(sorted(unknown))}")
    if not isinstance(doc["ts"], (int, float)) or isinstance(doc["ts"], bool):
        raise ProgressEventError("'ts' must be a number")
    if doc["event"] not in CELL_EVENTS:
        raise ProgressEventError(f"unknown event {doc['event']!r}")
    for key in ("run_id", "cell", "cell_id"):
        if not isinstance(doc[key], str):
            raise ProgressEventError(f"{key!r} must be a string")
    for key in ("worker", "attempt"):
        if not isinstance(doc[key], int) or isinstance(doc[key], bool):
            raise ProgressEventError(f"{key!r} must be an integer")
    if "elapsed_s" in doc and (
        not isinstance(doc["elapsed_s"], (int, float))
        or isinstance(doc["elapsed_s"], bool)
    ):
        raise ProgressEventError("'elapsed_s' must be a number")
    if "error" in doc and not isinstance(doc["error"], str):
        raise ProgressEventError("'error' must be a string")
    return doc


def cell_event_to_line(doc: dict) -> str:
    """Serialize one event as its canonical JSON line (no newline)."""
    return json.dumps(_check_event(doc), sort_keys=True, separators=(",", ":"))


def cell_event_from_line(line: str) -> dict:
    """Invert :func:`cell_event_to_line` exactly; raises
    :class:`ProgressEventError` on anything non-conformant."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProgressEventError(f"not JSON: {exc}") from None
    return _check_event(doc)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _rss_bytes() -> int:
    """Peak RSS of this process in bytes (0 where unsupported)."""
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


class WorkerChannel:
    """Worker-side handle on the telemetry queue.

    Every ``put`` is best-effort: the channel is side-band, so a full
    or torn-down queue (parent already gone) must never fail a cell.
    """

    def __init__(
        self,
        queue,
        run_id: str,
        *,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_S,
    ) -> None:
        self.queue = queue
        self.run_id = run_id
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._cell: tuple[str, str, float] | None = None
        self._stop = threading.Event()
        if heartbeat_interval_s > 0:
            thread = threading.Thread(
                target=self._beat,
                args=(heartbeat_interval_s,),
                name="repro-heartbeat",
                daemon=True,
            )
            thread.start()

    def _put(self, kind: str, payload) -> None:
        try:
            self.queue.put((kind, payload))
        except Exception:
            pass  # side-band only: never let telemetry fail a cell

    def emit_log(self, line: str) -> None:
        self._put("log", line)

    def cell_started(self, label: str, cell_id: str, attempt: int) -> None:
        now = time.time()
        with self._lock:
            self._cell = (label, cell_id, now)
        self._put(
            "event",
            cell_event(
                self.run_id, "started", label, cell_id, self.pid, attempt, ts=now
            ),
        )

    def cell_finished(
        self,
        label: str,
        cell_id: str,
        attempt: int,
        elapsed_s: float,
        error: str | None = None,
    ) -> None:
        with self._lock:
            self._cell = None
        self._put(
            "event",
            cell_event(
                self.run_id,
                "failed" if error is not None else "finished",
                label,
                cell_id,
                self.pid,
                attempt,
                elapsed_s=elapsed_s,
                error=error,
            ),
        )

    def _beat(self, interval_s: float) -> None:
        while not self._stop.wait(interval_s):
            with self._lock:
                cell = self._cell
            now = time.time()
            self._put(
                "hb",
                {
                    "ts": now,
                    "run_id": self.run_id,
                    "worker": self.pid,
                    "rss_bytes": _rss_bytes(),
                    "cell": cell[0] if cell else None,
                    "cell_id": cell[1] if cell else None,
                    "cell_elapsed_s": (now - cell[2]) if cell else None,
                },
            )

    def close(self) -> None:
        self._stop.set()


class LocalChannel:
    """In-process stand-in for :class:`WorkerChannel` in serial runs.

    Serial campaigns (``max_workers=1``) have no pool and no queue, so
    lifecycle events feed the monitor directly; there are no heartbeats
    (the "worker" is the parent itself) and log records already reach
    the parent's sinks.
    """

    def __init__(self, monitor: "FleetMonitor") -> None:
        self.monitor = monitor
        self.run_id = monitor.run_id
        self.pid = os.getpid()

    def cell_started(self, label: str, cell_id: str, attempt: int) -> None:
        self.monitor.on_event(
            cell_event(self.run_id, "started", label, cell_id, self.pid, attempt)
        )

    def cell_finished(
        self,
        label: str,
        cell_id: str,
        attempt: int,
        elapsed_s: float,
        error: str | None = None,
    ) -> None:
        self.monitor.on_event(
            cell_event(
                self.run_id,
                "failed" if error is not None else "finished",
                label,
                cell_id,
                self.pid,
                attempt,
                elapsed_s=elapsed_s,
                error=error,
            )
        )


class _ChannelLogSink:
    """A log sink that forwards each line over the worker channel."""

    def __init__(self, channel: WorkerChannel) -> None:
        self.channel = channel

    def emit(self, line: str) -> None:
        self.channel.emit_log(line)


#: The worker process's channel, installed by :func:`init_worker`.
_CHANNEL: WorkerChannel | None = None


def worker_channel() -> WorkerChannel | None:
    """This process's channel (``None`` outside an initialized worker)."""
    return _CHANNEL


def init_worker(
    queue, run_id: str, log_level: str, heartbeat_interval_s: float
) -> None:
    """Pool initializer: wire this worker into the telemetry channel.

    Re-applies the parent's log threshold with a single queue-forwarding
    sink (worker records surface through the parent's sinks instead of
    racing it for stderr/file handles) and starts the heartbeat thread.
    """
    global _CHANNEL
    _CHANNEL = WorkerChannel(
        queue, run_id, heartbeat_interval_s=heartbeat_interval_s
    )
    manager = root_manager()
    manager.level = log_level
    manager.sinks = [_ChannelLogSink(_CHANNEL)]


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
def _new_cell(label: str, cell_id: str) -> dict:
    return {
        "label": label,
        "cell_id": cell_id,
        "scheme": label.rsplit("/", 1)[-1],
        "status": "queued",
        "queued_ts": None,
        "started_ts": None,
        "finished_ts": None,
        "attempts": 0,
        "worker": None,
        "queue_wait_s": 0.0,
        "compute_s": 0.0,
        "wasted_s": 0.0,
        "error": None,
        "counted": False,
        "final": False,
    }


def _new_worker(pid: int) -> dict:
    return {
        "worker": pid,
        "cell": None,
        "cell_id": None,
        "cell_started_ts": None,
        "last_hb_ts": None,
        "heartbeats": 0,
        "rss_bytes": 0,
        "max_rss_bytes": 0,
        "done": 0,
        "failed_attempts": 0,
        "busy_s": 0.0,
        "max_gap_s": 0.0,
        "last_cell": None,
    }


class FleetMonitor:
    """Thread-safe parent-side fold of the fleet telemetry stream.

    Fed from three directions — the queue drainer thread (worker
    events, heartbeats, forwarded logs), the runner's main thread
    (queued cells, authoritative cell outcomes) and the ``--watch``
    repaint thread (snapshots) — so every method takes the one lock.

    ``event_sink`` (when given) receives each cell lifecycle event
    document exactly once, in emission order; it backs
    ``--json-progress``.  Terminal events (finished / failed / cached)
    are emitted from the parent's authoritative outcome so each cell
    gets exactly one, even across retries, crashes and worker/parent
    races; ``started`` events are forwarded from workers and may trail
    their cell's terminal line for very fast parallel cells (sort by
    ``ts`` when order matters).
    """

    def __init__(
        self,
        run_id: str | None = None,
        *,
        workers: int = 1,
        heartbeat_interval_s: float = DEFAULT_HEARTBEAT_S,
        event_sink=None,
        clock=time.time,
    ) -> None:
        self.run_id = run_id or new_request_id()
        self.workers = max(1, workers)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.event_sink = event_sink
        self.clock = clock
        self.name = ""
        self.total = 0
        self.started_at = clock()
        self.finished_at: float | None = None
        self.wall_s = 0.0
        self.log_lines = 0
        self._cells: dict[str, dict] = {}
        self._workers: dict[int, dict] = {}
        self._ran_elapsed: list[float] = []
        self._lock = threading.Lock()

    # -- ingestion -----------------------------------------------------
    def begin(self, *, total: int, name: str, workers: int | None = None) -> None:
        """Open the run: record the grid size and reset the wall clock."""
        with self._lock:
            self.total = total
            self.name = name
            if workers is not None:
                self.workers = max(1, workers)
            self.started_at = self.clock()

    def handle(self, message) -> None:
        """Dispatch one channel message (the drainer's entry point)."""
        kind, payload = message
        if kind == "log":
            self.on_log(payload)
        elif kind == "event":
            self.on_event(payload)
        elif kind == "hb":
            self.on_heartbeat(payload)

    def on_log(self, line: str) -> None:
        """Re-emit one forwarded worker log line through the parent's
        sinks (level filtering already happened worker-side)."""
        with self._lock:
            self.log_lines += 1
        for sink in root_manager().sinks:
            sink.emit(line)

    def _emit_event(self, doc: dict) -> None:
        # caller holds the lock: sink writes are serialized
        if self.event_sink is not None:
            self.event_sink(doc)

    def cell_queued(self, cell, attempt: int) -> None:
        """Parent-side: the cell was submitted (or is about to run)."""
        now = self.clock()
        label = cell.label
        with self._lock:
            st = self._cells.setdefault(
                label, _new_cell(label, cell_correlation_id(cell))
            )
            if not st["final"]:
                st["status"] = "queued"
                st["queued_ts"] = now
                st["attempts"] = max(st["attempts"], attempt)
            self._emit_event(
                cell_event(
                    self.run_id, "queued", label, st["cell_id"],
                    os.getpid(), attempt, ts=now,
                )
            )

    def on_event(self, doc: dict) -> None:
        """One worker-side lifecycle event (started / finished / failed)."""
        label, pid, kind = doc["cell"], doc["worker"], doc["event"]
        with self._lock:
            st = self._cells.setdefault(label, _new_cell(label, doc["cell_id"]))
            w = self._workers.setdefault(pid, _new_worker(pid))
            if kind == "started":
                if not st["final"]:
                    st["status"] = "running"
                    st["started_ts"] = doc["ts"]
                    st["worker"] = pid
                    st["attempts"] = max(st["attempts"], doc["attempt"])
                    if st["queued_ts"] is not None:
                        st["queue_wait_s"] += max(0.0, doc["ts"] - st["queued_ts"])
                w["cell"] = label
                w["cell_id"] = doc["cell_id"]
                w["cell_started_ts"] = doc["ts"]
                w["last_cell"] = label
                self._emit_event(doc)
            elif kind in ("finished", "failed"):
                elapsed = float(doc.get("elapsed_s") or 0.0)
                w["cell"] = None
                w["cell_id"] = None
                w["cell_started_ts"] = None
                w["busy_s"] += elapsed
                if kind == "finished":
                    w["done"] += 1
                    if not st["counted"]:
                        st["counted"] = True
                        self._ran_elapsed.append(elapsed)
                    if not st["final"]:
                        st["status"] = "ran"
                        st["worker"] = pid
                        st["compute_s"] = elapsed
                        st["finished_ts"] = doc["ts"]
                else:
                    w["failed_attempts"] += 1
                    if not st["final"]:
                        st["status"] = "failed"
                        st["worker"] = pid
                        st["wasted_s"] += elapsed
                        st["finished_ts"] = doc["ts"]
                        st["error"] = doc.get("error")
                # terminal json-progress lines come from cell_done (the
                # parent's authoritative outcome), not from here: the
                # worker's event and the future's completion race, and
                # the sink must see exactly one terminal line per cell

    def on_heartbeat(self, doc: dict) -> None:
        """One worker heartbeat: liveness, RSS, current cell age."""
        with self._lock:
            w = self._workers.setdefault(doc["worker"], _new_worker(doc["worker"]))
            last = w["last_hb_ts"]
            if last is not None and w["cell"] is not None:
                w["max_gap_s"] = max(w["max_gap_s"], doc["ts"] - last)
            w["last_hb_ts"] = doc["ts"]
            w["heartbeats"] += 1
            rss = int(doc.get("rss_bytes") or 0)
            w["rss_bytes"] = rss
            w["max_rss_bytes"] = max(w["max_rss_bytes"], rss)

    def cell_done(self, result) -> None:
        """Parent-side authoritative outcome for one cell.

        Reconciles whatever the worker stream reported (possibly
        nothing, for cache hits, crashes and parent-level failures) and
        emits the cell's single terminal event.
        """
        now = self.clock()
        cell = result.cell
        label = cell.label
        with self._lock:
            st = self._cells.setdefault(
                label, _new_cell(label, cell_correlation_id(cell))
            )
            if st["final"]:
                return
            st["final"] = True
            st["status"] = result.status
            st["attempts"] = max(st["attempts"], result.attempts)
            if result.error:
                st["error"] = result.error
            if st["finished_ts"] is None:
                st["finished_ts"] = now
            if result.status == "cached":
                st["compute_s"] = result.elapsed_s  # banked original cost
            elif result.status == "ran":
                st["compute_s"] = result.elapsed_s
                st["wasted_s"] = max(st["wasted_s"], getattr(result, "wasted_s", 0.0))
                if not st["counted"]:
                    st["counted"] = True
                    self._ran_elapsed.append(result.elapsed_s)
            else:  # failed: elapsed_s is the total wasted compute
                st["wasted_s"] = max(st["wasted_s"], result.elapsed_s)
            self._emit_event(
                cell_event(
                    self.run_id,
                    {"ran": "finished", "cached": "cached"}.get(
                        result.status, "failed"
                    ),
                    label,
                    st["cell_id"],
                    st["worker"] if st["worker"] is not None else os.getpid(),
                    max(1, st["attempts"]),
                    ts=now,
                    elapsed_s=result.elapsed_s,
                    error=result.error,
                )
            )

    def finalize(self, wall_s: float | None = None) -> None:
        """Close the run: stamp the end time and the final heartbeat
        gap of any worker that still holds an unfinished cell."""
        with self._lock:
            self.finished_at = self.clock()
            self.wall_s = (
                wall_s if wall_s is not None else self.finished_at - self.started_at
            )
            for w in self._workers.values():
                if w["cell"] is not None and w["last_hb_ts"] is not None:
                    w["max_gap_s"] = max(
                        w["max_gap_s"], self.finished_at - w["last_hb_ts"]
                    )

    # -- derived views -------------------------------------------------
    def _counters(self) -> dict:
        # caller holds the lock
        by_status = {"ran": 0, "cached": 0, "failed": 0}
        retries = queue_wait = compute = wasted = banked = 0.0
        for st in self._cells.values():
            if st["status"] in by_status and st["final"]:
                by_status[st["status"]] += 1
            retries += max(0, st["attempts"] - 1)
            queue_wait += st["queue_wait_s"]
            wasted += st["wasted_s"]
            if st["status"] == "cached":
                banked += st["compute_s"]
            else:
                compute += st["compute_s"]
        return {
            "cells": self.total,
            "ran": by_status["ran"],
            "cached": by_status["cached"],
            "failed": by_status["failed"],
            "retries": int(retries),
            "queue_wait_s": queue_wait,
            "compute_s": compute,
            "wasted_s": wasted,
            "banked_s": banked,
            "log_lines": self.log_lines,
        }

    def snapshot(self) -> dict:
        """One consistent view of the fleet for rendering."""
        now = self.clock()
        with self._lock:
            counters = self._counters()
            done = sum(st["final"] for st in self._cells.values())
            wall = (
                self.wall_s
                if self.finished_at is not None
                else now - self.started_at
            )
            remaining = max(0, self.total - done)
            if remaining == 0 and self.total > 0:
                eta = 0.0
            elif self._ran_elapsed:
                avg = sum(self._ran_elapsed) / len(self._ran_elapsed)
                eta = remaining * avg / self.workers
            else:
                eta = None
            worker_rows = []
            for pid in sorted(self._workers):
                w = self._workers[pid]
                worker_rows.append(
                    {
                        "worker": pid,
                        "state": "busy" if w["cell"] is not None else "idle",
                        "cell": w["cell"],
                        "cell_age_s": (
                            now - w["cell_started_ts"]
                            if w["cell_started_ts"] is not None
                            else None
                        ),
                        "hb_age_s": (
                            now - w["last_hb_ts"]
                            if w["last_hb_ts"] is not None
                            else None
                        ),
                        "heartbeats": w["heartbeats"],
                        "done": w["done"],
                        "failed_attempts": w["failed_attempts"],
                        "rss_bytes": w["rss_bytes"],
                    }
                )
            last_error = None
            for st in self._cells.values():
                if st["error"] is not None:
                    last_error = {
                        "cell": st["label"],
                        "error": st["error"],
                        "attempts": st["attempts"],
                    }
        return {
            "run_id": self.run_id,
            "name": self.name,
            "workers": self.workers,
            "total": self.total,
            "done": done,
            "ran": counters["ran"],
            "cached": counters["cached"],
            "failed": counters["failed"],
            "retries": counters["retries"],
            "wall_s": wall,
            "cells_per_sec": done / wall if wall > 0 else 0.0,
            "eta_s": eta,
            "queue_wait_s": counters["queue_wait_s"],
            "compute_s": counters["compute_s"],
            "wasted_s": counters["wasted_s"],
            "banked_s": counters["banked_s"],
            "log_lines": counters["log_lines"],
            "worker_rows": worker_rows,
            "last_error": last_error,
        }

    def manifest(self, *, store_overwrites: int = 0):
        """Snapshot the fleet state as a persistable
        :class:`~repro.campaign.manifest.RunManifest`."""
        from repro.campaign.manifest import (
            ManifestCell,
            ManifestWorker,
            RunManifest,
        )

        with self._lock:
            if self.finished_at is None:
                finished = self.clock()
                wall = finished - self.started_at
            else:
                finished, wall = self.finished_at, self.wall_s
            counters = self._counters()
            counters["store_overwrites"] = store_overwrites
            cells = tuple(
                ManifestCell(
                    label=st["label"],
                    cell_id=st["cell_id"],
                    scheme=st["scheme"],
                    status=st["status"] if st["final"] else (
                        "running" if st["status"] == "running" else "queued"
                    ),
                    attempts=max(1, st["attempts"]),
                    worker=st["worker"],
                    queued_ts=st["queued_ts"],
                    started_ts=st["started_ts"],
                    finished_ts=st["finished_ts"],
                    queue_wait_s=st["queue_wait_s"],
                    compute_s=st["compute_s"],
                    wasted_s=st["wasted_s"],
                    error=st["error"],
                )
                for st in self._cells.values()
            )
            workers = tuple(
                ManifestWorker(
                    worker=pid,
                    cells_done=w["done"],
                    failed_attempts=w["failed_attempts"],
                    busy_s=w["busy_s"],
                    heartbeats=w["heartbeats"],
                    max_heartbeat_gap_s=w["max_gap_s"],
                    max_rss_bytes=w["max_rss_bytes"],
                    last_cell=w["last_cell"],
                )
                for pid in sorted(self._workers)
                for w in (self._workers[pid],)
            )
            return RunManifest(
                run_id=self.run_id,
                name=self.name,
                workers=self.workers,
                heartbeat_interval_s=self.heartbeat_interval_s,
                started_at=self.started_at,
                finished_at=finished,
                wall_s=wall,
                counters=counters,
                cells=cells,
                worker_rows=workers,
            )


class ChannelDrainer(threading.Thread):
    """Parent-side daemon thread pumping the queue into the monitor.

    Runs until :meth:`stop` *and* the queue has gone quiet, so events a
    worker managed to enqueue before exiting are never dropped.
    """

    def __init__(self, queue, monitor: FleetMonitor) -> None:
        super().__init__(name="repro-fleet-drain", daemon=True)
        self.queue = queue
        self.monitor = monitor
        self._stop_event = threading.Event()

    def run(self) -> None:
        import queue as queue_mod

        while True:
            try:
                message = self.queue.get(timeout=0.2)
            except queue_mod.Empty:
                if self._stop_event.is_set():
                    return
                continue
            except (EOFError, OSError):
                return
            try:
                self.monitor.handle(message)
            except Exception:
                continue  # a torn message must not kill the drain loop

    def stop(self, timeout_s: float = 10.0) -> None:
        """Signal shutdown and wait for the backlog to drain."""
        self._stop_event.set()
        self.join(timeout=timeout_s)
