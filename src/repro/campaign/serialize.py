"""JSON codec for :class:`~repro.core.report.SolveReport`.

The result store persists reports as JSON so payloads are greppable,
diffable and stable across Python versions (unlike pickles).  Floats
survive the round trip exactly (``json`` emits ``repr``-style shortest
decimals, which parse back to the identical double), so a report loaded
from cache is numerically indistinguishable from a fresh run.

Telemetry (the solver's event stream, spans and metrics, attached at
``details["telemetry"]`` with the event log aliased at
``details["trace"]``) is encoded as a first-class ``telemetry`` field
and reconstructed on load, so a traced cell round-trips its full
observability bundle through the store.  The only lossy corner is the
rest of ``details``: values that are not JSON-shaped are dropped and
recorded under ``details["_dropped"]``, and tuples come back as lists.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import TrafficCounters
from repro.core.report import SolveReport
from repro.faults.events import FaultClass, FaultEvent, FaultScope
from repro.obs.export import telemetry_from_dict, telemetry_to_dict
from repro.power.energy import Charge, EnergyAccount, PhaseTag
from repro.power.rapl import RaplDomain, RaplMeter


def _sanitize(value, dropped: list[str], path: str):
    """Best-effort conversion of ``details`` entries to JSON values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_sanitize(v, dropped, f"{path}[]") for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_sanitize(v, dropped, f"{path}[]") for v in value]
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                dropped.append(f"{path}.{k!r}")
                continue
            out[k] = _sanitize(v, dropped, f"{path}.{k}")
        return out
    dropped.append(path)
    return None


def _details_to_json(details: dict) -> dict:
    dropped: list[str] = []
    out = {}
    for key, value in details.items():
        sanitized = _sanitize(value, dropped, key)
        if sanitized is None and value is not None and key in dropped:
            continue  # the whole value was unserializable
        out[key] = sanitized
    if dropped:
        out["_dropped"] = sorted(dropped)
    return out


def report_to_dict(report: SolveReport) -> dict:
    """Encode a report as a JSON-shaped dict."""
    telemetry = report.details.get("telemetry")
    details = {
        k: v for k, v in report.details.items() if k not in ("telemetry", "trace")
    }
    return {
        "scheme": report.scheme,
        "converged": report.converged,
        "iterations": report.iterations,
        "final_relative_residual": report.final_relative_residual,
        "residual_history": np.asarray(
            report.residual_history, dtype=np.float64
        ).tolist(),
        "time_s": report.time_s,
        "baseline_iters": report.baseline_iters,
        # charges as an ordered list, not a mapping: totals like
        # ``energy_j`` sum the charges in dict insertion order, and JSON
        # objects don't guarantee it survives (sort_keys would reorder),
        # which would perturb the sums by an ulp
        "account": [
            [tag.value, c.time_s, c.energy_j]
            for tag, c in report.account.charges.items()
        ],
        "rapl": {
            "domain": report.rapl.domain.value,
            "phases": [
                [p.tag, p.t_start, p.t_end, p.power_w]
                for p in report.rapl.log.phases
            ],
        },
        "faults": [
            {
                "iteration": ev.iteration,
                "victim_rank": ev.victim_rank,
                "fault_class": ev.fault_class.name,
                "scope": ev.scope.value,
                # Single-victim events keep the pre-victim-set wire
                # shape byte-for-byte; the key only appears for
                # concurrent multi-rank events.
                **(
                    {"victims": list(ev.victims)}
                    if len(ev.victims) > 1
                    else {}
                ),
            }
            for ev in report.faults
        ],
        "traffic": None
        if report.traffic is None
        else {
            "bytes_p2p": report.traffic.bytes_p2p,
            "bytes_collective": report.traffic.bytes_collective,
            "messages": report.traffic.messages,
            "collectives": report.traffic.collectives,
        },
        "details": _details_to_json(details),
        "telemetry": None if telemetry is None else telemetry_to_dict(telemetry),
    }


def report_from_dict(data: dict) -> SolveReport:
    """Decode :func:`report_to_dict` output."""
    account = EnergyAccount()
    for tag, time_s, energy_j in data["account"]:
        account.charges[PhaseTag(tag)] = Charge(time_s=time_s, energy_j=energy_j)
    rapl = RaplMeter(domain=RaplDomain(data["rapl"]["domain"]))
    for tag, t_start, t_end, power_w in data["rapl"]["phases"]:
        rapl.record(tag, t_start, t_end, power_w)
    faults = [
        FaultEvent(
            iteration=ev["iteration"],
            victim_rank=ev["victim_rank"],
            fault_class=FaultClass[ev["fault_class"]],
            scope=FaultScope(ev["scope"]),
            # Older payloads have no "victims" key: the event
            # normalizes the empty tuple to (victim_rank,).
            victims=tuple(ev.get("victims", ())),
        )
        for ev in data["faults"]
    ]
    traffic = (
        None
        if data["traffic"] is None
        else TrafficCounters(**data["traffic"])
    )
    details = dict(data["details"])
    if data.get("telemetry") is not None:
        telemetry = telemetry_from_dict(data["telemetry"])
        details["telemetry"] = telemetry
        details["trace"] = telemetry.events
    return SolveReport(
        scheme=data["scheme"],
        converged=data["converged"],
        iterations=data["iterations"],
        final_relative_residual=data["final_relative_residual"],
        residual_history=np.asarray(data["residual_history"], dtype=np.float64),
        time_s=data["time_s"],
        account=account,
        rapl=rapl,
        faults=faults,
        traffic=traffic,
        baseline_iters=data["baseline_iters"],
        details=details,
    )
