"""Declarative campaign specifications.

A campaign is a grid of experiment cells: every combination of
(matrix × rank count × fault load × seed) crossed with a scheme set,
plus the fault-free baseline cell each combination is normalized
against.  :class:`CampaignSpec` expands that grid deterministically;
:func:`preset` names the paper's studies so
``python -m repro.cli campaign --preset iteration-study`` reproduces a
whole section of the evaluation in one command.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.backends import DEFAULT_BACKEND, backend_names
from repro.core.recovery import scheme_names
from repro.engines import engine_names
from repro.harness.experiment import (
    COST_STUDY_SCHEMES,
    ITERATION_STUDY_SCHEMES,
    ExperimentConfig,
)
from repro.matrices import suite as matrix_suite

#: Scheme label of the fault-free baseline cell.
BASELINE_SCHEME = "FF"


@dataclass(frozen=True)
class CampaignCell:
    """One (experiment config, scheme) unit of work."""

    config: ExperimentConfig
    scheme: str

    @property
    def is_baseline(self) -> bool:
        return self.scheme == BASELINE_SCHEME

    @property
    def label(self) -> str:
        """Human-readable cell id used in progress lines and summaries."""
        c = self.config
        bits = [c.matrix, f"r{c.nranks}", f"f{c.n_faults}"]
        if c.seed != 0:
            bits.append(f"s{c.seed}")
        if c.scale != 1.0:
            bits.append(f"x{c.scale:g}")
        if c.engine != "sim":
            bits.append(c.engine)
        if c.fault_scope != "process":
            bits.append(c.fault_scope)
        if c.backend != DEFAULT_BACKEND:
            bits.append(c.backend)
        if c.victims_per_fault != 1:
            bits.append(f"v{c.victims_per_fault}")
        return f"{'/'.join(bits)}/{self.scheme}"


@dataclass(frozen=True)
class CampaignSpec:
    """A full parameter grid over the experiment space.

    ``cells()`` expands to ``matrices × nranks × fault_loads × seeds``
    experiment groups; each group contributes one ``FF`` baseline cell
    followed by one cell per scheme.  Expansion order is deterministic
    (and documented) so serial and parallel campaigns agree on cell
    identity.
    """

    name: str = "custom"
    matrices: tuple[str, ...] = field(default_factory=lambda: tuple(matrix_suite.names()))
    schemes: tuple[str, ...] = ("RD", "F0", "LI", "CR-D")
    nranks: tuple[int, ...] = (16,)
    fault_loads: tuple[int, ...] = (10,)
    seeds: tuple[int, ...] = (0,)
    #: Execution engines to sweep; ``("sim", "analytic")`` runs every
    #: grid point under both, which is what model-vs-sim drift
    #: (:mod:`repro.engines.validate`) pairs up.
    engines: tuple[str, ...] = ("sim",)
    #: Execution backends to sweep; ``("loop", "batched")`` runs every
    #: grid point under both, which is what the differential equivalence
    #: harness compares cell by cell.
    backends: tuple[str, ...] = (DEFAULT_BACKEND,)
    #: Victim-set sizes to sweep: ranks lost simultaneously per fault
    #: event.  ``(1,)`` is the paper's single-failure protocol; larger
    #: entries exercise multi-loss recovery (ESR, union interpolation).
    victims_per_fault: tuple[int, ...] = (1,)
    scale: float = 1.0
    tol: float = 1e-8
    cr_interval: str | int = "paper"
    #: Record per-cell telemetry (events, spans, metrics) and persist it
    #: with each report in the result store.
    trace: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "matrices", tuple(self.matrices))
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "nranks", tuple(self.nranks))
        object.__setattr__(self, "fault_loads", tuple(self.fault_loads))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "engines", tuple(self.engines))
        object.__setattr__(self, "backends", tuple(self.backends))
        object.__setattr__(
            self, "victims_per_fault", tuple(self.victims_per_fault)
        )
        if not self.matrices:
            raise ValueError("campaign needs at least one matrix")
        if not self.schemes:
            raise ValueError("campaign needs at least one scheme")
        if not self.engines:
            raise ValueError("campaign needs at least one engine")
        if not self.backends:
            raise ValueError("campaign needs at least one backend")
        if not self.victims_per_fault:
            raise ValueError("campaign needs at least one victim-set size")
        if any(k < 1 for k in self.victims_per_fault):
            raise ValueError("victims_per_fault entries must be >= 1")
        unknown = [e for e in self.engines if e not in engine_names()]
        if unknown:
            raise ValueError(f"unknown engines: {', '.join(unknown)}")
        unknown = [b for b in self.backends if b not in backend_names()]
        if unknown:
            raise ValueError(f"unknown backends: {', '.join(unknown)}")
        known_matrices = set(matrix_suite.names())
        unknown = [m for m in self.matrices if m not in known_matrices]
        if unknown:
            raise ValueError(f"unknown matrices: {', '.join(unknown)}")
        known_schemes = set(scheme_names()) | {BASELINE_SCHEME}
        unknown = [s for s in self.schemes if s not in known_schemes]
        if unknown:
            raise ValueError(f"unknown schemes: {', '.join(unknown)}")

    # ------------------------------------------------------------------
    def experiment_configs(self) -> list[ExperimentConfig]:
        """One config per experiment group, in expansion order."""
        return [
            ExperimentConfig(
                matrix=matrix,
                nranks=nranks,
                n_faults=n_faults,
                seed=seed,
                scale=self.scale,
                tol=self.tol,
                cr_interval=self.cr_interval,
                trace=self.trace,
                engine=engine,
                backend=backend,
                victims_per_fault=victims,
            )
            for matrix in self.matrices
            for nranks in self.nranks
            for n_faults in self.fault_loads
            for seed in self.seeds
            for engine in self.engines
            for backend in self.backends
            for victims in self.victims_per_fault
        ]

    def cells(self) -> list[CampaignCell]:
        """The full cell list: every group's FF baseline, then schemes."""
        out: list[CampaignCell] = []
        for config in self.experiment_configs():
            out.append(CampaignCell(config, BASELINE_SCHEME))
            out.extend(
                CampaignCell(config, scheme)
                for scheme in self.schemes
                if scheme != BASELINE_SCHEME
            )
        return out

    def __len__(self) -> int:
        n_groups = (
            len(self.matrices)
            * len(self.nranks)
            * len(self.fault_loads)
            * len(self.seeds)
            * len(self.engines)
            * len(self.backends)
            * len(self.victims_per_fault)
        )
        n_schemes = len([s for s in self.schemes if s != BASELINE_SCHEME])
        return n_groups * (1 + n_schemes)

    def describe(self) -> str:
        engines = (
            f" x {len(self.engines)} engines [{', '.join(self.engines)}]"
            if self.engines != ("sim",)
            else ""
        )
        backends = (
            f" x {len(self.backends)} backends [{', '.join(self.backends)}]"
            if self.backends != (DEFAULT_BACKEND,)
            else ""
        )
        victims = (
            f" x {len(self.victims_per_fault)} victim-set sizes "
            f"[{', '.join(map(str, self.victims_per_fault))}]"
            if self.victims_per_fault != (1,)
            else ""
        )
        return (
            f"campaign {self.name!r}: {len(self.matrices)} matrices x "
            f"{len(self.nranks)} rank counts x {len(self.fault_loads)} fault "
            f"loads x {len(self.seeds)} seeds{engines}{backends}{victims}, "
            f"schemes [{', '.join(self.schemes)}] (+FF) = {len(self)} cells"
        )


# ----------------------------------------------------------------------
# Named presets for the paper's studies.
#
# Rank counts mirror benchmarks/common.py: the iteration study uses the
# paper's 256 processes (iteration counts are scale-invariant); the cost
# and DVFS studies preserve the paper's rows-per-rank on our ~10x
# smaller stand-ins with 24 ranks (one node).
_PRESETS: dict[str, CampaignSpec] = {
    # Section 5.2 (Figure 5, Table 4): normalized iterations over the
    # suite, CR pinned to the paper's fixed 100-iteration cadence.
    "iteration-study": CampaignSpec(
        name="iteration-study",
        schemes=tuple(ITERATION_STUDY_SCHEMES),
        nranks=(256,),
        fault_loads=(10,),
        cr_interval="paper",
    ),
    # Section 5.3 (Table 5, Figure 8): time/power/energy costs with
    # Young-interval checkpointing.
    "cost-study": CampaignSpec(
        name="cost-study",
        schemes=tuple(COST_STUDY_SCHEMES),
        nranks=(24,),
        fault_loads=(10,),
        cr_interval="young",
    ),
    # Section 5.4 (Figure 7): forward recovery with and without the
    # DVFS power schedule during reconstruction.
    "dvfs-study": CampaignSpec(
        name="dvfs-study",
        schemes=("LI", "LI-DVFS", "LSI", "LSI-DVFS"),
        nranks=(24,),
        fault_loads=(10,),
        cr_interval="young",
    ),
    # Tiny grid for CI smoke runs and local sanity checks.
    "smoke": CampaignSpec(
        name="smoke",
        matrices=("wathen100", "Andrews"),
        schemes=("RD", "F0"),
        nranks=(8,),
        fault_loads=(2,),
        scale=0.25,
    ),
    # Concurrent rank failures (arXiv:1907.13077's multi-loss protocol):
    # two ranks die in each fault event.  ESR reconstructs both exactly;
    # union interpolation and rollback schemes give the comparison
    # points.  Both engines, so ``repro validate`` gates the multi-fault
    # models too.
    "multi-fault": CampaignSpec(
        name="multi-fault",
        matrices=("wathen100", "Andrews"),
        schemes=("ESR", "ABCR", "LI", "LSI", "CR-M", "RD"),
        nranks=(8,),
        fault_loads=(2,),
        victims_per_fault=(2,),
        engines=("sim", "analytic"),
        scale=0.25,
    ),
    # Table 6 as a standing gate: the same small grid under both
    # engines; ``repro validate`` pairs the cells and reports normalized
    # T_res / P / E_res drift per scheme (see repro.engines.validate).
    "model-validation": CampaignSpec(
        name="model-validation",
        matrices=("wathen100", "Andrews"),
        schemes=("RD", "F0", "FI", "CR-D", "CR-M"),
        nranks=(8,),
        fault_loads=(2,),
        engines=("sim", "analytic"),
        scale=0.25,
    ),
}


def preset_names() -> list[str]:
    """The named study grids ``preset()`` accepts."""
    return list(_PRESETS)


def preset(name: str, **overrides) -> CampaignSpec:
    """A named study, optionally narrowed (``preset("cost-study",
    matrices=("Kuu",))`` runs one matrix of the cost grid)."""
    try:
        spec = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; known: {', '.join(_PRESETS)}"
        ) from None
    return replace(spec, **overrides) if overrides else spec
