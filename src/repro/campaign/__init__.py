"""Campaign engine: parallel sweep orchestration with a persistent store.

Every figure and table in the paper is a sweep over
(matrix × scheme × fault load × rank count).  This package runs such
sweeps as *campaigns*: a declarative
:class:`~repro.campaign.spec.CampaignSpec` expands the grid, a
:class:`~repro.campaign.runner.CampaignRunner` executes the cells on a
fault-tolerant process pool, and a
:class:`~repro.campaign.store.ResultStore` persists every result under
a content hash of its full configuration — so re-running any campaign
(or any benchmark wired through the store) is incremental and
resumable.

>>> from repro.campaign import ResultStore, preset, run_campaign
>>> result = run_campaign(
...     preset("iteration-study", matrices=("Kuu",)),
...     store=ResultStore(".repro-cache"),
...     max_workers=4,
... )                                           # doctest: +SKIP
"""

from repro.campaign.progress import (
    ProgressReporter,
    format_attribution_summary,
    format_normalized_tables,
    format_summary,
    format_telemetry_summary,
    summary_counters,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CellResult,
    CellTimeout,
    execute_cell,
    run_campaign,
)
from repro.campaign.serialize import report_from_dict, report_to_dict
from repro.campaign.spec import (
    BASELINE_SCHEME,
    CampaignCell,
    CampaignSpec,
    preset,
    preset_names,
)
from repro.campaign.store import ResultStore, StoreEntry, cell_key

__all__ = [
    "BASELINE_SCHEME",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CellResult",
    "CellTimeout",
    "ProgressReporter",
    "ResultStore",
    "StoreEntry",
    "cell_key",
    "execute_cell",
    "format_attribution_summary",
    "format_normalized_tables",
    "format_summary",
    "format_telemetry_summary",
    "preset",
    "preset_names",
    "report_from_dict",
    "report_to_dict",
    "run_campaign",
    "summary_counters",
]
