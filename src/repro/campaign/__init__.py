"""Campaign engine: parallel sweep orchestration with a persistent store.

Every figure and table in the paper is a sweep over
(matrix × scheme × fault load × rank count).  This package runs such
sweeps as *campaigns*: a declarative
:class:`~repro.campaign.spec.CampaignSpec` expands the grid, a
:class:`~repro.campaign.runner.CampaignRunner` executes the cells on a
fault-tolerant process pool, and a
:class:`~repro.campaign.store.ResultStore` persists every result under
a content hash of its full configuration — so re-running any campaign
(or any benchmark wired through the store) is incremental and
resumable.

>>> from repro.campaign import ResultStore, preset, run_campaign
>>> result = run_campaign(
...     preset("iteration-study", matrices=("Kuu",)),
...     store=ResultStore(".repro-cache"),
...     max_workers=4,
... )                                           # doctest: +SKIP
"""

from repro.campaign.fleet import (
    DEFAULT_HEARTBEAT_S,
    FleetMonitor,
    ProgressEventError,
    annotate_cell_id,
    cell_correlation_id,
    cell_event,
    cell_event_from_line,
    cell_event_to_line,
)
from repro.campaign.manifest import (
    ManifestCell,
    ManifestError,
    ManifestWorker,
    RunManifest,
    format_manifest,
    manifest_from_doc,
    manifest_to_doc,
)
from repro.campaign.progress import (
    ProgressReporter,
    format_attribution_summary,
    format_normalized_tables,
    format_summary,
    format_telemetry_summary,
    summary_counters,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CellExecutionError,
    CellResult,
    CellTimeout,
    execute_cell,
    run_campaign,
    run_cell_in_worker,
)
from repro.campaign.serialize import report_from_dict, report_to_dict
from repro.campaign.spec import (
    BASELINE_SCHEME,
    CampaignCell,
    CampaignSpec,
    preset,
    preset_names,
)
from repro.campaign.store import ResultStore, StoreEntry, cell_key
from repro.campaign.watch import CampaignWatch, render_fleet

__all__ = [
    "BASELINE_SCHEME",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignWatch",
    "CellExecutionError",
    "CellResult",
    "CellTimeout",
    "DEFAULT_HEARTBEAT_S",
    "FleetMonitor",
    "ManifestCell",
    "ManifestError",
    "ManifestWorker",
    "ProgressEventError",
    "ProgressReporter",
    "ResultStore",
    "RunManifest",
    "StoreEntry",
    "annotate_cell_id",
    "cell_correlation_id",
    "cell_event",
    "cell_event_from_line",
    "cell_event_to_line",
    "cell_key",
    "execute_cell",
    "format_attribution_summary",
    "format_manifest",
    "format_normalized_tables",
    "format_summary",
    "format_telemetry_summary",
    "manifest_from_doc",
    "manifest_to_doc",
    "preset",
    "preset_names",
    "render_fleet",
    "report_from_dict",
    "report_to_dict",
    "run_campaign",
    "run_cell_in_worker",
    "summary_counters",
]
