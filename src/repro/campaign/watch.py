"""``repro campaign --watch``: a live terminal dashboard over the fleet.

Renders :meth:`~repro.campaign.fleet.FleetMonitor.snapshot` the same
way ``repro top`` renders the serving tier: a plain-text frame with no
escape codes inside it, repainted in place with one clear-and-home
sequence in live mode.  ``--once`` prints the final frame un-escaped to
stdout — the CI-greppable snapshot artifact.

The repaint loop is a daemon thread beside the campaign's main thread
(which is busy driving the worker pool), reading the monitor's
thread-safe snapshots; it owns no state of its own, so a campaign
without ``--watch`` pays nothing.
"""

from __future__ import annotations

import sys
import threading

from repro.campaign.fleet import FleetMonitor
from repro.obs.term import CLEAR, fmt_age, fmt_bytes, hms

#: Default repaint interval, seconds.
DEFAULT_REFRESH_S = 1.0


def render_fleet(snapshot: dict) -> str:
    """One dashboard frame as plain text (no escape codes)."""
    lines: list[str] = []
    total = snapshot["total"]
    done = snapshot["done"]
    pct = 100.0 * done / total if total else 0.0
    eta = snapshot["eta_s"]
    lines.append(
        f"repro campaign — {snapshot['name'] or '?'} "
        f"[run {snapshot['run_id']}], {snapshot['workers']} worker(s)"
    )
    lines.append("")
    lines.append(
        f"  cells     {done}/{total} ({pct:.0f}%)   "
        f"{snapshot['ran']} ran  {snapshot['cached']} cached  "
        f"{snapshot['failed']} failed  {snapshot['retries']} retries"
    )
    lines.append(
        f"  rate      {snapshot['cells_per_sec']:6.2f} cells/s   "
        f"wall {hms(snapshot['wall_s'])}   "
        f"eta {'--' if eta is None else hms(eta)}"
    )
    lines.append(
        f"  time      queue-wait {snapshot['queue_wait_s']:.2f}s   "
        f"compute {snapshot['compute_s']:.2f}s   "
        f"wasted {snapshot['wasted_s']:.2f}s   "
        f"banked {snapshot['banked_s']:.2f}s"
    )
    lines.append("")
    rows = snapshot["worker_rows"]
    if rows:
        lines.append(
            "  worker      state  cells  fails  "
            "hb-age  rss      current cell (age)"
        )
        for w in rows:
            cell = w["cell"] or "-"
            if w["cell"] is not None:
                cell = f"{cell} ({fmt_age(w['cell_age_s'])})"
            lines.append(
                f"  {w['worker']:<10}  {w['state']:<5}  "
                f"{w['done']:5d}  {w['failed_attempts']:5d}  "
                f"{fmt_age(w['hb_age_s']):>6}  {fmt_bytes(w['rss_bytes']):<7}  "
                f"{cell}"
            )
    else:
        lines.append("  worker    (serial run: cells execute in-process)")
    err = snapshot["last_error"]
    if err is not None:
        lines.append("")
        lines.append(
            f"  last error  {err['cell']} (attempt {err['attempts']}): "
            f"{err['error'][:120]}"
        )
    return "\n".join(lines)


class CampaignWatch:
    """Background repaint loop over a :class:`FleetMonitor`.

    ``start()`` launches the daemon thread; ``stop()`` joins it.  With
    ``once`` the live loop is suppressed entirely — the caller prints
    one :func:`final_frame` after the campaign returns instead.
    """

    def __init__(
        self,
        monitor: FleetMonitor,
        *,
        interval_s: float = DEFAULT_REFRESH_S,
        once: bool = False,
        out=None,
    ) -> None:
        self.monitor = monitor
        self.interval_s = interval_s
        self.once = once
        self.out = out
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _stream(self):
        return sys.stderr if self.out is None else self.out

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = render_fleet(self.monitor.snapshot())
            print(CLEAR + frame, file=self._stream(), flush=True)

    def start(self) -> "CampaignWatch":
        if not self.once and self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-campaign-watch", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def final_frame(self) -> str:
        """The closing snapshot as a plain frame (the ``--once`` output)."""
        return render_fleet(self.monitor.snapshot())
