"""Per-matrix fault-free normalization.

Every quantity the paper reports is normalized to the fault-free run of
the *same* matrix at the *same* system size ("Each matrix uses its own
normalization base, which is the fault free case", Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.report import SolveReport


@dataclass(frozen=True)
class NormalizedMetrics:
    """One scheme's metrics relative to its fault-free baseline."""

    scheme: str
    iterations: float
    time: float
    energy: float
    power: float
    converged: bool

    def as_dict(self) -> dict[str, float]:
        return {
            "iterations": self.iterations,
            "time": self.time,
            "energy": self.energy,
            "power": self.power,
        }


def normalize_report(report: SolveReport, baseline: SolveReport) -> NormalizedMetrics:
    """Normalize one report against its fault-free baseline."""
    return NormalizedMetrics(
        scheme=report.scheme,
        iterations=report.normalized_iterations(baseline),
        time=report.normalized_time(baseline),
        energy=report.normalized_energy(baseline),
        power=report.normalized_power(baseline),
        converged=report.converged,
    )


def normalize_reports(
    reports: dict[str, SolveReport], *, baseline_key: str = "FF"
) -> dict[str, NormalizedMetrics]:
    """Normalize a ``{scheme: report}`` map against ``reports[baseline_key]``.

    The baseline itself is included (all ratios exactly 1.0), matching
    the FF rows of Tables 4-6.
    """
    if baseline_key not in reports:
        raise KeyError(f"baseline {baseline_key!r} missing from reports")
    baseline = reports[baseline_key]
    return {
        name: normalize_report(rep, baseline) for name, rep in reports.items()
    }


def suite_average(
    per_matrix: dict[str, dict[str, "NormalizedMetrics"]], scheme: str
) -> dict[str, float]:
    """Average a scheme's normalized metrics over matrices (Table 5,
    Figure 7b: "values are averaged over all the matrices under study")."""
    rows = [m[scheme] for m in per_matrix.values() if scheme in m]
    if not rows:
        raise KeyError(f"scheme {scheme!r} absent from every matrix")
    n = len(rows)
    return {
        "iterations": sum(r.iterations for r in rows) / n,
        "time": sum(r.time for r in rows) / n,
        "energy": sum(r.energy for r in rows) / n,
        "power": sum(r.power for r in rows) / n,
    }
