"""Plain-text rendering of tables and series.

The benchmarks print their reproduced tables/figures through these
helpers so every experiment's output reads like the paper's own rows.
"""

from __future__ import annotations

from typing import Sequence


def _fmt(value, width: int, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.{precision}f}"
    return f"{value!s:>{width}}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
    precision: int = 2,
) -> str:
    """Fixed-width table with a header rule."""
    if not headers:
        raise ValueError("need at least one column")
    ncols = len(headers)
    for row in rows:
        if len(row) != ncols:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {ncols}"
            )
    widths = []
    for c, h in enumerate(headers):
        cells = [_fmt(r[c], 0, precision).strip() for r in rows]
        widths.append(max(len(h), *(len(s) for s in cells)) if cells else len(h))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(_fmt(v, w, precision) for v, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """A figure's data as columns: x then one column per series."""
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {len(x_values)}"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title, precision=precision)


def normalized_rows(
    normalized: dict[str, "object"],
    order: Sequence[str],
    metrics: Sequence[str] = ("time", "power", "energy"),
) -> list[list]:
    """Rows of ``[scheme, metric...]`` in a fixed scheme order, skipping
    schemes that were not run."""
    rows = []
    for name in order:
        if name not in normalized:
            continue
        m = normalized[name]
        rows.append([name, *(getattr(m, metric) for metric in metrics)])
    return rows
