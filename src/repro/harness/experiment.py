"""Experiment driver.

One :class:`Experiment` = one (matrix, rank count, fault load) cell of
the paper's evaluation.  It caches the fault-free baseline so every
scheme is normalized against the same run, and reproduces the paper's
two protocols:

* **iteration protocol** (Section 5.2: Figures 5-6, Table 4) —
  ``n_faults`` evenly spaced over the fault-free horizon, CR pinned to a
  fixed cadence (the paper's "every 100 iterations");
* **cost protocol** (Section 5.3: Figures 3, 7, 8; Tables 5, 6) — same
  fault load, but CR intervals derived from Young's formula with the
  MTBF implied by the fault load (``MTBF = T_ff / n_faults``), matching
  "The checkpointing frequency of CR is computed via Young's formula".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
import scipy.sparse as sp

from repro.core.errors import ConvergenceError
from repro.core.recovery import make_scheme
from repro.core.report import SolveReport
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import EvenlySpacedSchedule, FaultSchedule
from repro.matrices import suite as matrix_suite

#: The paper's fixed CR cadence in the resilience study (Section 5.2).
PAPER_CR_INTERVAL = 100


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experiment cell."""

    matrix: str = "crystm02"
    nranks: int = 16
    n_faults: int = 10
    tol: float = 1e-8
    seed: int = 0
    scale: float = 1.0
    #: CR cadence policy: "paper" = fixed 100 iterations (Section 5.2);
    #: "young" = Young's interval from the implied MTBF (Section 5.3);
    #: an int pins the cadence explicitly.
    cr_interval: str | int = "paper"
    construct_tol: float = 1e-6
    max_iters: int = 200_000
    #: Record per-solve telemetry (event stream, spans, metrics) in the
    #: report's ``details``; purely observational, never changes the
    #: numerics — but it is part of the cell's cache key because it
    #: changes the persisted payload.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.n_faults < 0:
            raise ValueError("n_faults must be non-negative")
        if isinstance(self.cr_interval, str) and self.cr_interval not in (
            "paper",
            "young",
        ):
            raise ValueError("cr_interval must be 'paper', 'young' or an int")
        if isinstance(self.cr_interval, int) and self.cr_interval < 1:
            raise ValueError("explicit CR interval must be >= 1")


class Experiment:
    """A matrix + fault load, ready to run any scheme."""

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        a: sp.spmatrix | None = None,
        fast: bool = True,
    ):
        """``fast`` selects the span-batched solve engine (the default).

        It is an execution knob, not part of :class:`ExperimentConfig`:
        both paths produce bit-identical reports (see
        tests/core/test_fast_equivalence.py), so it must not change
        campaign cache keys.
        """
        self.config = config
        self.fast = fast
        if a is None:
            a = matrix_suite.build(config.matrix, config.scale)
        self.a = sp.csr_matrix(a)
        n = self.a.shape[0]
        rng = np.random.default_rng(config.seed)
        self.x_true = rng.standard_normal(n)
        self.b = self.a @ self.x_true
        self._ff: SolveReport | None = None

    # ------------------------------------------------------------------
    def _solver_config(self, baseline: int | None) -> SolverConfig:
        c = self.config
        return SolverConfig(
            nranks=c.nranks,
            tol=c.tol,
            max_iters=c.max_iters,
            seed=c.seed,
            trace=c.trace,
            baseline_iters=baseline,
            fast=self.fast,
        )

    @property
    def fault_free(self) -> SolveReport:
        """The cached fault-free baseline."""
        if self._ff is None:
            solver = ResilientSolver(
                self.a, self.b, config=self._solver_config(None)
            )
            self._ff = solver.solve()
            if not self._ff.converged:
                raise ConvergenceError(
                    matrix=self.config.matrix,
                    tol=self.config.tol,
                    final_residual=self._ff.final_relative_residual,
                    iterations=self._ff.iterations,
                )
        return self._ff

    @property
    def has_baseline(self) -> bool:
        """Whether the fault-free baseline has been computed (or primed)."""
        return self._ff is not None

    def prime_baseline(self, report: SolveReport) -> None:
        """Install a previously computed fault-free baseline.

        Lets a campaign worker (or any caller holding a cached ``FF``
        report for this exact config) skip re-running the baseline
        solve.  The report must come from the same
        :class:`ExperimentConfig`; runs are deterministic, so an equal
        config implies an identical baseline.
        """
        if report.scheme != "FF":
            raise ValueError(f"baseline must be an FF report, got {report.scheme!r}")
        if not report.converged:
            raise ConvergenceError(
                matrix=self.config.matrix,
                tol=self.config.tol,
                final_residual=report.final_relative_residual,
                iterations=report.iterations,
            )
        self._ff = report

    def schedule(self) -> FaultSchedule:
        return EvenlySpacedSchedule(
            n_faults=self.config.n_faults, seed=self.config.seed
        )

    def implied_mtbf_s(self) -> float:
        """MTBF consistent with the injected fault load."""
        if self.config.n_faults == 0:
            raise ValueError("no faults: MTBF undefined")
        return self.fault_free.time_s / self.config.n_faults

    def _cr_kwargs(self) -> dict:
        c = self.config
        if c.cr_interval == "paper":
            return {"interval_iters": PAPER_CR_INTERVAL}
        if c.cr_interval == "young":
            return {"mtbf_s": self.implied_mtbf_s()}
        return {"interval_iters": int(c.cr_interval)}

    def run(self, scheme_name: str) -> SolveReport:
        """Run one scheme under the configured fault load."""
        if scheme_name == "FF":
            return self.fault_free
        ff = self.fault_free
        scheme = make_scheme(
            scheme_name,
            construct_tol=self.config.construct_tol,
            **(self._cr_kwargs() if scheme_name.startswith("CR") else {}),
        )
        solver = ResilientSolver(
            self.a,
            self.b,
            scheme=scheme,
            schedule=self.schedule(),
            config=self._solver_config(ff.iterations),
        )
        return solver.solve()

    def run_all(self, scheme_names: list[str]) -> dict[str, SolveReport]:
        return {name: self.run(name) for name in scheme_names}


#: The scheme set of Figure 5 / Table 4.
ITERATION_STUDY_SCHEMES = ["RD", "F0", "FI", "LI", "LSI", "CR-D"]
#: The scheme set of Table 5 / Figure 8.
COST_STUDY_SCHEMES = ["RD", "LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"]


def run_suite(
    matrices: list[str] | None = None,
    scheme_names: list[str] | None = None,
    *,
    base: ExperimentConfig | None = None,
    fast: bool = True,
) -> dict[str, dict[str, SolveReport]]:
    """Run a scheme set over a matrix set; returns
    ``{matrix: {scheme_or_"FF": report}}`` with baselines included."""
    base = base or ExperimentConfig()
    matrices = matrices if matrices is not None else matrix_suite.names()
    scheme_names = scheme_names or ITERATION_STUDY_SCHEMES
    out: dict[str, dict[str, SolveReport]] = {}
    for name in matrices:
        exp = Experiment(replace(base, matrix=name), fast=fast)
        reports = {"FF": exp.fault_free}
        reports.update(exp.run_all(scheme_names))
        out[name] = reports
    return out
