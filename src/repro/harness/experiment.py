"""Experiment driver.

One :class:`Experiment` = one (matrix, rank count, fault load) cell of
the paper's evaluation.  It caches the fault-free baseline so every
scheme is normalized against the same run, and reproduces the paper's
two protocols:

* **iteration protocol** (Section 5.2: Figures 5-6, Table 4) —
  ``n_faults`` evenly spaced over the fault-free horizon, CR pinned to a
  fixed cadence (the paper's "every 100 iterations");
* **cost protocol** (Section 5.3: Figures 3, 7, 8; Tables 5, 6) — same
  fault load, but CR intervals derived from Young's formula with the
  MTBF implied by the fault load (``MTBF = T_ff / n_faults``), matching
  "The checkpointing frequency of CR is computed via Young's formula".

Execution is delegated to a pluggable :class:`~repro.engines.base.
ExecutionEngine` (``config.engine``): ``"sim"`` numerically steps the
faulty solve, ``"analytic"`` evaluates the Section-3 closed-form models.
The experiment owns problem construction and protocol policy; engines
own how a cell's report gets produced.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
import scipy.sparse as sp

from repro.core.backends import DEFAULT_BACKEND, backend_names
from repro.core.errors import ConvergenceError
from repro.core.report import SolveReport
from repro.core.solver import SolverConfig
from repro.engines import DEFAULT_ENGINE, ExecutionEngine, engine_names, make_engine
from repro.faults.events import FaultScope
from repro.faults.schedule import EvenlySpacedSchedule, FaultSchedule
from repro.matrices import suite as matrix_suite

#: The paper's fixed CR cadence in the resilience study (Section 5.2).
PAPER_CR_INTERVAL = 100

#: CLI-facing names of the fault blast radii (`faults.events.FaultScope`).
FAULT_SCOPES = tuple(s.value for s in FaultScope)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one experiment cell."""

    matrix: str = "crystm02"
    nranks: int = 16
    n_faults: int = 10
    tol: float = 1e-8
    seed: int = 0
    scale: float = 1.0
    #: CR cadence policy: "paper" = fixed 100 iterations (Section 5.2);
    #: "young" = Young's interval from the implied MTBF (Section 5.3);
    #: an int pins the cadence explicitly.
    cr_interval: str | int = "paper"
    construct_tol: float = 1e-6
    max_iters: int = 200_000
    #: Record per-solve telemetry (event stream, spans, metrics) in the
    #: report's ``details``; purely observational, never changes the
    #: numerics — but it is part of the cell's cache key because it
    #: changes the persisted payload.
    trace: bool = False
    #: Execution engine: "sim" (numeric co-simulation) or "analytic"
    #: (Section-3 closed-form models).  Part of the cell's cache key —
    #: the engines agree on schema, not on bits.
    engine: str = DEFAULT_ENGINE
    #: Blast radius of each injected fault: "process" (the paper's
    #: protocol), "node" (every rank on the victim's node) or "system".
    fault_scope: str = "process"
    #: Execution backend for the CG kernels (repro.core.backends):
    #: "batched" (default, vectorized across ranks) or "loop" (the
    #: rank-by-rank reference).  Bit-identical by contract, but part of
    #: the cell's cache key so a backend regression can never silently
    #: serve results produced by the other backend.
    backend: str = DEFAULT_BACKEND
    #: Ranks lost *simultaneously* per fault event (the victim set).
    #: 1 reproduces the paper's single-failure protocol; >1 exercises the
    #: multi-loss tolerance of ESR/LI/LSI (arXiv:1907.13077's concurrent
    #: node failures).  Part of the cell's cache key.
    victims_per_fault: int = 1

    def __post_init__(self) -> None:
        if self.n_faults < 0:
            raise ValueError("n_faults must be non-negative")
        if self.victims_per_fault < 1:
            raise ValueError("victims_per_fault must be >= 1")
        if self.victims_per_fault > self.nranks:
            raise ValueError(
                f"victims_per_fault={self.victims_per_fault} exceeds "
                f"nranks={self.nranks}"
            )
        if isinstance(self.cr_interval, str) and self.cr_interval not in (
            "paper",
            "young",
        ):
            raise ValueError("cr_interval must be 'paper', 'young' or an int")
        if isinstance(self.cr_interval, int) and self.cr_interval < 1:
            raise ValueError("explicit CR interval must be >= 1")
        if self.engine not in engine_names():
            raise ValueError(
                f"unknown engine {self.engine!r}; known: "
                f"{', '.join(engine_names())}"
            )
        if self.fault_scope not in FAULT_SCOPES:
            raise ValueError(
                f"fault_scope must be one of {', '.join(FAULT_SCOPES)}"
            )
        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; known: "
                f"{', '.join(backend_names())}"
            )


class Experiment:
    """A matrix + fault load, ready to run any scheme."""

    def __init__(
        self,
        config: ExperimentConfig,
        *,
        a: sp.spmatrix | None = None,
        fast: bool = True,
        preconditioner: str | None = None,
        engine: ExecutionEngine | None = None,
    ):
        """``fast`` selects the span-batched solve engine (the default)
        and ``preconditioner`` enables PCG (``"jacobi"``).

        Both are execution knobs, not part of :class:`ExperimentConfig`:
        ``fast`` produces bit-identical reports (see
        tests/core/test_fast_equivalence.py) so it must not change
        campaign cache keys, and the preconditioner is a CLI-level
        exploration hook campaigns do not sweep.  ``engine`` overrides
        the instance built from ``config.engine`` (e.g. an
        :class:`~repro.engines.analytic.AnalyticEngine` with custom
        parameters); its name must match the config.
        """
        self.config = config
        self.fast = fast
        self.preconditioner = preconditioner
        if engine is not None and engine.name != config.engine:
            raise ValueError(
                f"engine {engine.name!r} does not match config.engine="
                f"{config.engine!r}"
            )
        self.engine = engine if engine is not None else make_engine(config.engine)
        if a is None:
            a = matrix_suite.build(config.matrix, config.scale)
        self.a = sp.csr_matrix(a)
        n = self.a.shape[0]
        if n < config.nranks:
            # Surface the tiny-n edge at construction with experiment
            # context; BlockRowPartition would reject it anyway, but
            # only deep inside the first solve.
            raise ValueError(
                f"matrix {config.matrix!r} at scale {config.scale} has "
                f"only {n} rows — cannot distribute over "
                f"nranks={config.nranks} without empty partitions; "
                f"lower nranks or raise scale"
            )
        rng = np.random.default_rng(config.seed)
        self.x_true = rng.standard_normal(n)
        self.b = self.a @ self.x_true
        # Baselines keyed by every execution-relevant knob: mutating
        # ``fast`` or ``preconditioner`` (or swapping ``engine``) after a
        # baseline was computed must never silently reuse a stale one.
        self._baselines: dict[tuple, SolveReport] = {}

    # ------------------------------------------------------------------
    def _baseline_key(self) -> tuple:
        return (self.engine.name, self.preconditioner, self.fast)

    def solver_config(self, baseline: int | None) -> SolverConfig:
        """The :class:`SolverConfig` for one solve under this experiment."""
        c = self.config
        return SolverConfig(
            nranks=c.nranks,
            tol=c.tol,
            max_iters=c.max_iters,
            seed=c.seed,
            preconditioner=self.preconditioner,
            trace=c.trace,
            baseline_iters=baseline,
            fast=self.fast,
            backend=c.backend,
        )

    @property
    def fault_free(self) -> SolveReport:
        """The cached fault-free baseline (per execution-knob set)."""
        key = self._baseline_key()
        ff = self._baselines.get(key)
        if ff is None:
            ff = self.engine.solve_fault_free(self)
            if not ff.converged:
                raise ConvergenceError(
                    matrix=self.config.matrix,
                    tol=self.config.tol,
                    final_residual=ff.final_relative_residual,
                    iterations=ff.iterations,
                )
            self._baselines[key] = ff
        return ff

    @property
    def has_baseline(self) -> bool:
        """Whether the fault-free baseline has been computed (or primed)
        for the *current* execution knobs."""
        return self._baseline_key() in self._baselines

    def prime_baseline(self, report: SolveReport) -> None:
        """Install a previously computed fault-free baseline.

        Lets a campaign worker (or any caller holding a cached ``FF``
        report for this exact config) skip re-running the baseline
        solve.  The report must come from the same
        :class:`ExperimentConfig` *and* the same engine; runs are
        deterministic, so an equal config implies an identical baseline.
        Reports predating engine provenance are treated as simulator
        output.
        """
        if report.scheme != "FF":
            raise ValueError(f"baseline must be an FF report, got {report.scheme!r}")
        if not report.converged:
            raise ConvergenceError(
                matrix=self.config.matrix,
                tol=self.config.tol,
                final_residual=report.final_relative_residual,
                iterations=report.iterations,
            )
        provenance = report.details.get("engine", "sim")
        if provenance != self.engine.name:
            raise ValueError(
                f"baseline was produced by the {provenance!r} engine; this "
                f"experiment runs {self.engine.name!r}"
            )
        self._baselines[self._baseline_key()] = report

    def schedule(self) -> FaultSchedule:
        return EvenlySpacedSchedule(
            n_faults=self.config.n_faults,
            seed=self.config.seed,
            scope=FaultScope(self.config.fault_scope),
            victims_per_fault=self.config.victims_per_fault,
        )

    def fault_scope_victims(self) -> int:
        """Worst-case ranks lost per fault under the configured scope,
        from the cluster topology (1 / cores-per-node cap / all)."""
        c = self.config
        if c.fault_scope == "process":
            return c.victims_per_fault
        if c.fault_scope == "system":
            return c.nranks
        from repro.cluster.comm import SimComm
        from repro.cluster.machine import paper_machine

        binding = SimComm(paper_machine(), c.nranks).binding
        per_node = max(
            len(binding.ranks_on_node(node))
            for node in range(binding.nodes_used)
        )
        return min(c.nranks, per_node * c.victims_per_fault)

    def implied_mtbf_s(self) -> float:
        """MTBF consistent with the injected fault load."""
        if self.config.n_faults == 0:
            raise ValueError("no faults: MTBF undefined")
        return self.fault_free.time_s / self.config.n_faults

    def cr_kwargs(self) -> dict:
        """Checkpoint cadence kwargs for ``make_scheme`` per the
        configured interval policy."""
        c = self.config
        if c.cr_interval == "paper":
            return {"interval_iters": PAPER_CR_INTERVAL}
        if c.cr_interval == "young":
            return {"mtbf_s": self.implied_mtbf_s()}
        return {"interval_iters": int(c.cr_interval)}

    def run(self, scheme_name: str) -> SolveReport:
        """Run one scheme under the configured fault load."""
        if scheme_name == "FF":
            return self.fault_free
        return self.engine.solve_scheme(self, scheme_name, self.fault_free)

    def run_all(self, scheme_names: list[str]) -> dict[str, SolveReport]:
        return {name: self.run(name) for name in scheme_names}


#: The scheme set of Figure 5 / Table 4.
ITERATION_STUDY_SCHEMES = ["RD", "F0", "FI", "LI", "LSI", "CR-D"]
#: The scheme set of Table 5 / Figure 8.
COST_STUDY_SCHEMES = ["RD", "LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"]


def run_suite(
    matrices: list[str] | None = None,
    scheme_names: list[str] | None = None,
    *,
    base: ExperimentConfig | None = None,
    fast: bool = True,
) -> dict[str, dict[str, SolveReport]]:
    """Run a scheme set over a matrix set; returns
    ``{matrix: {scheme_or_"FF": report}}`` with baselines included."""
    base = base or ExperimentConfig()
    matrices = matrices if matrices is not None else matrix_suite.names()
    scheme_names = scheme_names or ITERATION_STUDY_SCHEMES
    out: dict[str, dict[str, SolveReport]] = {}
    for name in matrices:
        exp = Experiment(replace(base, matrix=name), fast=fast)
        reports = {"FF": exp.fault_free}
        reports.update(exp.run_all(scheme_names))
        out[name] = reports
    return out
