"""Experiment harness: the drivers behind every table and figure.

:class:`~repro.harness.experiment.Experiment` builds a suite matrix,
caches its fault-free baseline, and runs any recovery scheme under the
paper's two fault protocols (fixed-count evenly-spaced faults with a
fixed CR cadence — Section 5.2; or the same faults with Young-derived CR
intervals — Section 5.3).  :mod:`repro.harness.reporting` renders the
rows exactly as the paper's tables print them.
"""

from repro.harness.experiment import Experiment, ExperimentConfig, run_suite
from repro.harness.normalize import normalize_reports
from repro.harness.reporting import format_table, format_series
from repro.harness.tracing import (
    CheckpointWritten,
    EventLog,
    FaultInjected,
    RecoveryApplied,
    SolverRestarted,
)

__all__ = [
    "Experiment",
    "ExperimentConfig",
    "run_suite",
    "normalize_reports",
    "format_table",
    "format_series",
    "EventLog",
    "FaultInjected",
    "RecoveryApplied",
    "CheckpointWritten",
    "SolverRestarted",
]
