"""Structured event tracing for resilient solves.

When :class:`~repro.core.solver.SolverConfig` is built with
``trace=True`` the solver records a typed, ordered event stream —
faults, recoveries, checkpoints, restarts — alongside the aggregate
report.  The stream is what post-hoc analysis needs (e.g. "how long
after each fault did the residual re-cross its pre-fault level?") and
what the aggregate phase accounts deliberately compress away.

Events are plain frozen dataclasses; :meth:`EventLog.to_rows` flattens
them for tabular tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(frozen=True)
class TraceEvent:
    """Base event: when it happened, in iterations and simulated time."""

    iteration: int
    sim_time_s: float

    kind = "event"


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """A fault damaged the dynamic state."""

    victim_rank: int = 0
    fault_class: str = "SNF"
    scope: str = "process"
    n_blocks_lost: int = 1

    kind = "fault"


@dataclass(frozen=True)
class RecoveryApplied(TraceEvent):
    """A scheme repaired (part of) the state."""

    scheme: str = ""
    victim_rank: int = 0
    needs_restart: bool = True
    construct_time_s: float = 0.0

    kind = "recovery"


@dataclass(frozen=True)
class CheckpointWritten(TraceEvent):
    """A checkpoint was committed."""

    duration_s: float = 0.0

    kind = "checkpoint"


@dataclass(frozen=True)
class SolverRestarted(TraceEvent):
    """The CG recurrence was re-anchored on the true residual."""

    kind = "restart"


@dataclass(frozen=True)
class PhaseEntered(TraceEvent):
    """Simulated time crossed into a resilience phase.

    Emitted on the *transition* (the previous time-advancing charge had
    a different tag), not per charge, so contiguous runs of the same
    phase — e.g. a block of EXTRA iterations — yield one event.
    """

    phase: str = ""
    from_phase: str = ""

    kind = "phase"


#: Record slack: events at the *same* simulated instant are legal and
#: common — a fault and its zero-cost recovery, or several block-local
#: recoveries inside one wide-scope fault, all land on one timestamp.
#: The slack also forgives float jitter from summing phase durations in
#: different orders; only a genuinely earlier timestamp (beyond 1e-12 s)
#: is time travel and rejected.
EQUAL_TIME_SLACK_S = 1e-12


@dataclass
class EventLog:
    """Append-only, time-ordered event stream."""

    events: list[TraceEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Per-kind index so of_kind() costs O(matches), not a full scan.
        self._by_kind: dict[str, list[TraceEvent]] = {}
        for e in self.events:
            self._by_kind.setdefault(e.kind, []).append(e)

    def record(self, event: TraceEvent) -> None:
        if (
            self.events
            and event.sim_time_s < self.events[-1].sim_time_s - EQUAL_TIME_SLACK_S
        ):
            raise ValueError("events must be recorded in time order")
        self.events.append(event)
        self._by_kind.setdefault(event.kind, []).append(event)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        """Events of one kind, via the per-kind index (no full scan).
        Returns a fresh list; mutating it does not affect the log."""
        return list(self._by_kind.get(kind, ()))

    @property
    def faults(self) -> list[FaultInjected]:
        return self.of_kind("fault")  # type: ignore[return-value]

    @property
    def recoveries(self) -> list[RecoveryApplied]:
        return self.of_kind("recovery")  # type: ignore[return-value]

    @property
    def checkpoints(self) -> list[CheckpointWritten]:
        return self.of_kind("checkpoint")  # type: ignore[return-value]

    @property
    def restarts(self) -> list[SolverRestarted]:
        return self.of_kind("restart")  # type: ignore[return-value]

    def to_rows(self) -> list[dict]:
        """Flatten into dicts (one per event) for tabular tooling."""
        out = []
        for e in self.events:
            row = {"kind": e.kind}
            for f in fields(e):
                row[f.name] = getattr(e, f.name)
            out.append(row)
        return out

    def recovery_latency_s(self) -> list[float]:
        """Simulated seconds from each fault to its (first) recovery."""
        latencies = []
        recoveries = iter(self.recoveries)
        pending: RecoveryApplied | None = next(recoveries, None)
        for fault in self.faults:
            while pending is not None and pending.sim_time_s < fault.sim_time_s:
                pending = next(recoveries, None)
            if pending is not None:
                latencies.append(pending.sim_time_s - fault.sim_time_s)
                pending = next(recoveries, None)
        return latencies

    def __len__(self) -> int:
        return len(self.events)
