"""The telemetry bundle one instrumented run produces.

:class:`Telemetry` groups the three observability primitives —
a typed :class:`~repro.harness.tracing.EventLog`, a
:class:`~repro.obs.spans.SpanRecorder` and a
:class:`~repro.obs.metrics.MetricsRegistry` — under one timebase, so a
consumer always knows whether timestamps are simulated seconds (solver)
or wall-clock seconds (harness/campaign).

The solver attaches its telemetry to ``SolveReport.details["telemetry"]``
(with the event log still aliased at ``details["trace"]`` for existing
tooling); the campaign serializer round-trips the whole bundle through
the result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.tracing import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

#: Bucket bounds for fault→recovery latency histograms (simulated s).
RECOVERY_LATENCY_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0,
)


@dataclass
class Telemetry:
    """Events + spans + metrics from one instrumented run."""

    events: EventLog = field(default_factory=EventLog)
    spans: SpanRecorder = field(default_factory=SpanRecorder)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: "sim" — timestamps are simulated cluster seconds (deterministic,
    #: bit-identical across serial/parallel runs); "wall" — real time.
    timebase: str = "wall"

    @classmethod
    def for_solver(cls, clock) -> "Telemetry":
        """Solver-side bundle: spans ride the simulated clock."""
        return cls(
            spans=SpanRecorder(clock=clock, timebase="sim"), timebase="sim"
        )

    def recovery_latency_histogram(self, scheme: str):
        """The per-scheme fault→recovery latency histogram (created on
        first use with the standard buckets)."""
        return self.metrics.histogram(
            "recovery.latency_s", buckets=RECOVERY_LATENCY_BUCKETS,
            scheme=scheme,
        )
