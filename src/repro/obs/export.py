"""Telemetry exporters and loaders: JSONL streams and CSV timeseries.

The JSONL format is line-oriented and greppable; every line is one JSON
object with a ``stream`` discriminator:

* ``{"stream": "cell", "cell": <label>, "scheme": …, "timebase": …}`` —
  opens one cell's telemetry;
* ``{"stream": "event", "cell": …, "kind": "fault", …}`` — one typed
  :class:`~repro.harness.tracing.TraceEvent`, flattened;
* ``{"stream": "span", "cell": …, "name": …, "t_start": …}`` — one span;
* ``{"stream": "metrics", "cell": …, "snapshot": {…}}`` — the cell's
  metrics registry snapshot.

:func:`load_trace_jsonl` inverts :func:`write_trace_jsonl` exactly:
floats survive (shortest-repr decimals parse back to identical doubles)
and ordering is preserved, so ``export → load → export`` is
byte-identical — the CI round-trip assertion and the serial-vs-parallel
acceptance check both lean on this.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path

from repro.harness.tracing import (
    CheckpointWritten,
    EventLog,
    FaultInjected,
    PhaseEntered,
    RecoveryApplied,
    SolverRestarted,
    TraceEvent,
)
from repro.obs.spans import SpanRecorder
from repro.obs.telemetry import Telemetry

_EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        FaultInjected,
        RecoveryApplied,
        CheckpointWritten,
        SolverRestarted,
        PhaseEntered,
        TraceEvent,
    )
}


def event_to_row(event: TraceEvent) -> dict:
    """Flatten one typed event into a JSON-shaped dict (kind + fields)."""
    row = {"kind": event.kind}
    for f in fields(event):
        row[f.name] = getattr(event, f.name)
    return row


def event_from_row(row: dict) -> TraceEvent:
    """Rebuild the typed event a :func:`event_to_row` dict encodes;
    unknown kinds degrade to the base :class:`TraceEvent`."""
    cls = _EVENT_TYPES.get(row.get("kind", "event"), TraceEvent)
    kwargs = {f.name: row[f.name] for f in fields(cls) if f.name in row}
    return cls(**kwargs)


def events_from_rows(rows: list[dict]) -> EventLog:
    """An :class:`EventLog` rebuilt from flattened event rows."""
    return EventLog(events=[event_from_row(r) for r in rows])


# ----------------------------------------------------------------------
# telemetry <-> JSON dict (also used by the campaign serializer)
# ----------------------------------------------------------------------
def telemetry_to_dict(tel: Telemetry) -> dict:
    """Encode a telemetry bundle as one JSON-shaped dict."""
    return {
        "timebase": tel.timebase,
        "events": [event_to_row(e) for e in tel.events.events],
        "spans": tel.spans.to_rows(),
        "metrics": tel.metrics.snapshot(),
    }


def telemetry_from_dict(data: dict) -> Telemetry:
    """Invert :func:`telemetry_to_dict` exactly (floats included)."""
    from repro.obs.metrics import MetricsRegistry

    timebase = data.get("timebase", "wall")
    return Telemetry(
        events=events_from_rows(data.get("events", [])),
        spans=SpanRecorder.from_rows(data.get("spans", []), timebase=timebase),
        metrics=MetricsRegistry.from_snapshot(data.get("metrics", {})),
        timebase=timebase,
    )


# ----------------------------------------------------------------------
# JSONL streams
# ----------------------------------------------------------------------
def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def trace_jsonl_lines(cells: dict[str, Telemetry]) -> list[str]:
    """Flatten ``{cell label: telemetry}`` into JSONL lines."""
    lines: list[str] = []
    for label, tel in cells.items():
        lines.append(
            _dumps({"stream": "cell", "cell": label, "timebase": tel.timebase})
        )
        for e in tel.events.events:
            lines.append(_dumps({"stream": "event", "cell": label, **event_to_row(e)}))
        for row in tel.spans.to_rows():
            lines.append(_dumps({"stream": "span", "cell": label, **row}))
        lines.append(
            _dumps(
                {"stream": "metrics", "cell": label, "snapshot": tel.metrics.snapshot()}
            )
        )
    return lines


def write_trace_jsonl(path: str | Path, cells: dict[str, Telemetry]) -> int:
    """Write the JSONL stream; returns the number of lines written."""
    lines = trace_jsonl_lines(cells)
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def load_trace_jsonl(path: str | Path) -> dict[str, Telemetry]:
    """Invert :func:`write_trace_jsonl`: ``{cell label: telemetry}``."""
    from repro.obs.metrics import MetricsRegistry

    cells: dict[str, Telemetry] = {}
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        if not raw.strip():
            continue
        obj = json.loads(raw)
        stream = obj.pop("stream", None)
        label = obj.pop("cell", None)
        if stream == "cell":
            cells[label] = Telemetry(timebase=obj.get("timebase", "wall"))
            cells[label].spans.timebase = cells[label].timebase
            continue
        if label not in cells:
            raise ValueError(
                f"line {lineno}: {stream!r} record before its 'cell' header"
            )
        tel = cells[label]
        if stream == "event":
            tel.events.record(event_from_row(obj))
        elif stream == "span":
            tel.spans.spans.append(
                SpanRecorder.from_rows([obj], timebase=tel.timebase).spans[0]
            )
        elif stream == "metrics":
            tel.metrics = MetricsRegistry.from_snapshot(obj.get("snapshot", {}))
        else:
            raise ValueError(f"line {lineno}: unknown stream {stream!r}")
    return cells


# ----------------------------------------------------------------------
# CSV timeseries
# ----------------------------------------------------------------------
def residual_power_csv(report) -> str:
    """Per-iteration residual + power timeseries as CSV text.

    Iteration end-times and powers are reconstructed from the report's
    RAPL phase log: ``iteration``/``extra`` phases cover whole CG
    iterations back-to-back at constant power, so each merged phase is
    split into equal slots of the solver's per-iteration wall time.
    """
    wall_s = report.details.get("iteration_wall_s")
    rows = ["iteration,sim_time_s,relative_residual,power_w"]
    history = [float(v) for v in report.residual_history]
    iteration = 0
    for phase in report.rapl.log.phases:
        if phase.tag not in ("iteration", "extra"):
            continue
        span_s = phase.t_end - phase.t_start
        n = max(1, round(span_s / wall_s)) if wall_s else 1
        step = span_s / n
        for k in range(n):
            iteration += 1
            if iteration > len(history):
                break
            t = phase.t_start + (k + 1) * step
            rows.append(
                f"{iteration},{t!r},{history[iteration - 1]!r},{phase.power_w!r}"
            )
    return "\n".join(rows) + "\n"
