"""Run diffing: structural comparison of two runs' reports + telemetry.

The diff reuses the store's own JSON schema walk
(:func:`repro.campaign.serialize.report_to_dict`), so anything the
store can persist, the differ can compare — and a field added to the
payload schema automatically shows up in diffs.  Three views layer on
top of the raw walk:

* **scalars** — the headline metrics (iterations, time, energy, power,
  T_res/E_res, convergence) as explicit deltas;
* **phases** — per-phase time/energy deltas from the attribution rows;
* **spans/events** — per-name span count/total-duration deltas and
  per-kind event count deltas, aligned by name rather than position so
  an extra recovery reads as "+1 recovery.lsi", not as a shifted wall
  of changed rows.

Long numeric arrays (residual histories) are summarized as one change —
length and first divergent index — and the structural walk is capped,
so a diff is always a screenful, not a dump.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.analysis.attribution import attribute_record
from repro.obs.analysis.records import RunRecord

#: Structural changes reported before truncation.
MAX_STRUCTURAL_CHANGES = 200

#: Keys excluded from the structural walk: diffed separately (telemetry,
#: residual_history) or meaningless to diff (nothing currently).
_EXCLUDED_KEYS = {"telemetry", "residual_history"}


@dataclass(frozen=True)
class MetricDelta:
    """One named value in both runs."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel(self) -> float:
        scale = max(abs(self.a), abs(self.b))
        return abs(self.delta) / scale if scale > 0 else 0.0

    @property
    def changed(self) -> bool:
        return self.a != self.b


@dataclass(frozen=True)
class SpanDelta:
    """One span name's aggregate presence in both runs."""

    name: str
    count_a: int
    count_b: int
    total_a: float
    total_b: float

    @property
    def changed(self) -> bool:
        return self.count_a != self.count_b or self.total_a != self.total_b


@dataclass(frozen=True)
class RunDiff:
    """Everything that differs between two runs."""

    label_a: str
    label_b: str
    scalars: tuple[MetricDelta, ...]
    phases: tuple[MetricDelta, ...]
    spans: tuple[SpanDelta, ...]
    events: tuple[MetricDelta, ...]
    structural: tuple[str, ...]
    structural_truncated: bool = False

    @property
    def n_changes(self) -> int:
        return (
            sum(d.changed for d in self.scalars)
            + sum(d.changed for d in self.phases)
            + sum(d.changed for d in self.spans)
            + sum(d.changed for d in self.events)
            + len(self.structural)
        )

    @property
    def identical(self) -> bool:
        return self.n_changes == 0


def _walk(a, b, path: str, out: list[str]) -> None:
    if len(out) > MAX_STRUCTURAL_CHANGES:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if path == "" and key in _EXCLUDED_KEYS:
                continue
            sub = f"{path}.{key}" if path else key
            if key not in a:
                out.append(f"{sub}: only in B")
            elif key not in b:
                out.append(f"{sub}: only in A")
            else:
                _walk(a[key], b[key], sub, out)
        return
    if isinstance(a, list) and isinstance(b, list):
        if all(isinstance(v, (int, float)) for v in a + b) and (
            len(a) > 8 or len(b) > 8
        ):
            # long numeric array: one summarized change
            first = next(
                (i for i, (x, y) in enumerate(zip(a, b)) if x != y), None
            )
            if len(a) != len(b) or first is not None:
                where = f"first diverges at [{first}]" if first is not None else "same prefix"
                out.append(
                    f"{path}: numeric array len {len(a)} -> {len(b)}, {where}"
                )
            return
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} -> {len(b)}")
            return
        for i, (x, y) in enumerate(zip(a, b)):
            _walk(x, y, f"{path}[{i}]", out)
        return
    if a != b:
        out.append(f"{path}: {a!r} -> {b!r}")


def _scalar_deltas(a: RunRecord, b: RunRecord) -> tuple[MetricDelta, ...]:
    ra, rb = a.report, b.report
    if ra is not None and rb is not None:
        pairs = [
            ("iterations", float(ra.iterations), float(rb.iterations)),
            ("converged", float(ra.converged), float(rb.converged)),
            ("final_relative_residual",
             ra.final_relative_residual, rb.final_relative_residual),
            ("time_s", ra.time_s, rb.time_s),
            ("energy_j", ra.energy_j, rb.energy_j),
            ("average_power_w", ra.average_power_w, rb.average_power_w),
            ("resilience_time_s", ra.resilience_time_s, rb.resilience_time_s),
            ("resilience_energy_j",
             ra.resilience_energy_j, rb.resilience_energy_j),
            ("n_faults", float(ra.n_faults), float(rb.n_faults)),
        ]
        return tuple(MetricDelta(n, x, y) for n, x, y in pairs)
    # telemetry-only: diff the shared gauges
    if a.telemetry is None or b.telemetry is None:
        return ()
    ga = a.telemetry.metrics.snapshot().get("gauges", {})
    gb = b.telemetry.metrics.snapshot().get("gauges", {})
    return tuple(
        MetricDelta(name, float(ga[name]), float(gb[name]))
        for name in sorted(set(ga) & set(gb))
    )


def _phase_deltas(a: RunRecord, b: RunRecord) -> tuple[MetricDelta, ...]:
    try:
        pa = {r.phase: r for r in attribute_record(a).rows}
        pb = {r.phase: r for r in attribute_record(b).rows}
    except ValueError:
        return ()
    out = []
    for phase in sorted(set(pa) | set(pb)):
        ta = pa[phase].time_s if phase in pa else 0.0
        tb = pb[phase].time_s if phase in pb else 0.0
        ea = pa[phase].energy_j if phase in pa else 0.0
        eb = pb[phase].energy_j if phase in pb else 0.0
        out.append(MetricDelta(f"phase.{phase}.time_s", ta, tb))
        out.append(MetricDelta(f"phase.{phase}.energy_j", ea, eb))
    return tuple(out)


def _span_deltas(a: RunRecord, b: RunRecord) -> tuple[SpanDelta, ...]:
    def agg(record: RunRecord) -> dict[str, tuple[int, float]]:
        if record.telemetry is None:
            return {}
        out: dict[str, list[float]] = {}
        for s in record.telemetry.spans.spans:
            acc = out.setdefault(s.name, [0, 0.0])
            acc[0] += 1
            acc[1] += s.duration_s
        return {n: (int(c), t) for n, (c, t) in out.items()}

    sa, sb = agg(a), agg(b)
    return tuple(
        SpanDelta(
            name=name,
            count_a=sa.get(name, (0, 0.0))[0],
            count_b=sb.get(name, (0, 0.0))[0],
            total_a=sa.get(name, (0, 0.0))[1],
            total_b=sb.get(name, (0, 0.0))[1],
        )
        for name in sorted(set(sa) | set(sb))
    )


def _event_deltas(a: RunRecord, b: RunRecord) -> tuple[MetricDelta, ...]:
    def counts(record: RunRecord) -> dict[str, int]:
        if record.telemetry is None:
            return {}
        out: dict[str, int] = {}
        for e in record.telemetry.events.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    ca, cb = counts(a), counts(b)
    return tuple(
        MetricDelta(f"events.{kind}", float(ca.get(kind, 0)), float(cb.get(kind, 0)))
        for kind in sorted(set(ca) | set(cb))
    )


def diff_runs(a: RunRecord, b: RunRecord) -> RunDiff:
    """Structural + metric diff of two runs (A is the baseline side)."""
    structural: list[str] = []
    if a.report is not None and b.report is not None:
        from repro.campaign.serialize import report_to_dict

        _walk(report_to_dict(a.report), report_to_dict(b.report), "", structural)
    truncated = len(structural) > MAX_STRUCTURAL_CHANGES
    return RunDiff(
        label_a=a.label,
        label_b=b.label,
        scalars=_scalar_deltas(a, b),
        phases=_phase_deltas(a, b),
        spans=_span_deltas(a, b),
        events=_event_deltas(a, b),
        structural=tuple(structural[:MAX_STRUCTURAL_CHANGES]),
        structural_truncated=truncated,
    )
