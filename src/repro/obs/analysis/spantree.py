"""Span-tree reconstruction: nesting, aggregation, critical path.

The solver records spans flat, in *completion* order (a child closes
before its parent), with the open-stack depth stamped on each span.
That makes the tree exact to rebuild: walking the flat list, a span at
depth ``d`` adopts every already-completed-but-unadopted span at depth
``d + 1``.

Legacy traces (exported before depth stamping) carry ``depth == 0`` on
every span; for those a containment fallback infers nesting from
intervals — the innermost later-completing span containing a child is
its parent.  Containment is ambiguous when zero-duration spans share a
timestamp (common in sim time), which is exactly why depth stamping
exists; the fallback only has to serve old traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.obs.spans import Span


@dataclass
class SpanNode:
    """One span plus its (time-ordered) children."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name

    @property
    def duration_s(self) -> float:
        return self.span.duration_s

    @property
    def self_time_s(self) -> float:
        """Duration not covered by children (may be negative on a
        corrupted trace; the span-integrity detector flags that)."""
        return self.duration_s - sum(c.duration_s for c in self.children)


def build_span_tree(spans: Iterable[Span]) -> list[SpanNode]:
    """Roots of the span forest, children in start-time order."""
    spans = list(spans)
    if any(s.depth > 0 for s in spans):
        roots = _build_from_depths(spans)
    else:
        roots = _build_from_containment(spans)
    for node, _ in walk(roots):
        node.children.sort(key=lambda n: (n.span.t_start, n.span.t_end))
    roots.sort(key=lambda n: (n.span.t_start, n.span.t_end))
    return roots


def _build_from_depths(spans: list[Span]) -> list[SpanNode]:
    # pending[d]: completed depth-d nodes not yet adopted by a parent.
    pending: dict[int, list[SpanNode]] = {}
    for s in spans:
        node = SpanNode(s, children=pending.pop(s.depth + 1, []))
        pending.setdefault(s.depth, []).append(node)
    roots = pending.pop(0, [])
    # Orphans (recorder torn down with spans still open) become roots.
    for d in sorted(pending):
        roots.extend(pending[d])
    return roots


def _build_from_containment(spans: list[Span]) -> list[SpanNode]:
    nodes = [SpanNode(s) for s in spans]
    roots: list[SpanNode] = []
    for i, node in enumerate(nodes):
        s = node.span
        parent = None
        # Children complete before parents, so only a later-completing
        # span can be an ancestor; the tightest such interval wins.
        for j in range(i + 1, len(nodes)):
            cand = nodes[j].span
            if cand.t_start <= s.t_start and s.t_end <= cand.t_end:
                if parent is None or cand.duration_s < parent.span.duration_s:
                    parent = nodes[j]
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots


def walk(roots: list[SpanNode]) -> Iterator[tuple[SpanNode, int]]:
    """Depth-first ``(node, depth)`` pairs, children in stored order."""
    stack = [(node, 0) for node in reversed(roots)]
    while stack:
        node, depth = stack.pop()
        yield node, depth
        for child in reversed(node.children):
            stack.append((child, depth + 1))


def tree_summary(spans: Iterable[Span]) -> list[dict]:
    """Flamegraph rows with nesting: one row per ``(depth, name)``.

    Rows appear in depth-first first-visit order, so a child row always
    follows some ancestor row, and ``depth`` says how far to indent.
    Fields: ``name, depth, count, total_s, mean_s, max_s``.
    """
    agg: dict[tuple[int, str], dict] = {}
    order: list[tuple[int, str]] = []
    for node, depth in walk(build_span_tree(spans)):
        key = (depth, node.name)
        row = agg.get(key)
        if row is None:
            row = agg[key] = {
                "name": node.name,
                "depth": depth,
                "count": 0,
                "total_s": 0.0,
                "max_s": 0.0,
            }
            order.append(key)
        row["count"] += 1
        row["total_s"] += node.duration_s
        row["max_s"] = max(row["max_s"], node.duration_s)
    out = [agg[key] for key in order]
    for row in out:
        row["mean_s"] = row["total_s"] / row["count"]
    return out


def critical_path(roots: list[SpanNode]) -> list[SpanNode]:
    """Longest chain by duration: the max-duration root, then its
    max-duration child, and so on down — e.g. the solve span, its most
    expensive recovery, that recovery's construction."""
    if not roots:
        return []
    path = [max(roots, key=lambda n: n.duration_s)]
    while path[-1].children:
        path.append(max(path[-1].children, key=lambda n: n.duration_s))
    return path
