"""Anomaly detectors: a pluggable registry of trace sanity checks.

A detector is a named function over :class:`~repro.obs.analysis.records.
RunRecord` evidence that yields :class:`Finding` objects.  ``repro
doctor`` runs every registered detector (or a named subset) and exits
non-zero when anything is found, so the contract is strict: **a healthy
run must produce zero findings**.  Detectors therefore only fire on
conditions that are inconsistent by construction (books that don't
balance, spans escaping their parent, a trace disagreeing with its own
report) or extreme by a wide margin (a 50× residual jump nowhere near a
fault), never on ordinary run-to-run variation.

Registering a detector::

    @register_detector("my_check", scope="run", description="…")
    def my_check(record):
        if something_wrong:
            yield Finding("my_check", "error", record.label, "…")

``scope="run"`` detectors see one record at a time; ``scope="campaign"``
detectors see the whole record list and can cross-reference cells (the
model-divergence detector pairs sim/analytic cells this way);
``scope="history"`` detectors see a :class:`~repro.obs.history.
MetricsHistory` (the serving tier's sampled metrics) and only run when
one is supplied — they back the live ``/slo`` endpoint and ``repro
doctor --history`` with the same registration; ``scope="fleet"``
detectors see a campaign :class:`~repro.campaign.manifest.RunManifest`
(duck-typed — this module never imports the campaign package) and judge
the *execution* rather than the numerics: stragglers, heartbeat gaps,
retry storms, cache stampedes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.obs.analysis.attribution import attribute_record, phase_counters
from repro.obs.analysis.records import RunRecord
from repro.obs.analysis.spantree import build_span_tree, walk

#: Books must balance to this relative tolerance (the tap mirrors every
#: charge bit-for-bit; only summation order may differ, which is ulps).
ENERGY_BALANCE_REL_TOL = 1e-6

#: A residual growing by this factor in one iteration, with no fault or
#: restart within ±RESIDUAL_EVENT_SLACK iterations, is anomalous.
RESIDUAL_JUMP_FACTOR = 50.0
RESIDUAL_EVENT_SLACK = 3

#: Iterations without a new running-minimum residual (and without a
#: fault) before a run counts as stalled.
RESIDUAL_STALL_WINDOW = 1000

#: Spans must agree with their parents and the report to this relative
#: tolerance (absolute floor 1e-9 s).
SPAN_TIME_REL_TOL = 1e-9
SOLVE_SPAN_REL_TOL = 1e-6

#: A still-running cell (or a worker's mean cell cost) this many times
#: the campaign's median ran-cell compute is a straggler…
STRAGGLER_FACTOR = 4.0
#: …but only past these absolute floors, so fast healthy grids (where
#: the median is milliseconds) never alert on scheduling jitter.
STRAGGLER_MIN_AGE_S = 30.0
STRAGGLER_MIN_GAP_S = 1.0
#: Workers need this many finished cells before their mean is evidence.
STRAGGLER_MIN_CELLS = 4

#: A worker silent for FACTOR heartbeat intervals (absolute floor
#: HEARTBEAT_GAP_MIN_S) while holding a cell has hung or died.
HEARTBEAT_GAP_FACTOR = 3.0
HEARTBEAT_GAP_MIN_S = 5.0

#: Retries are a storm when there are at least RETRY_STORM_MIN of them
#: *and* they amount to this fraction of the campaign's computed cells.
RETRY_STORM_MIN = 3
RETRY_STORM_RATIO = 0.5

#: Store overwrites (a put replacing an existing row — compute repeated
#: for a banked cell) are a stampede past both thresholds.
CACHE_STAMPEDE_MIN = 4
CACHE_STAMPEDE_RATIO = 0.5


@dataclass(frozen=True)
class Finding:
    """One detector hit on one cell."""

    detector: str
    severity: str  # "error" | "warning"
    cell: str
    message: str
    value: float | None = None
    threshold: float | None = None

    def __str__(self) -> str:
        extra = ""
        if self.value is not None:
            extra = f" (value={self.value:.6g}"
            if self.threshold is not None:
                extra += f", threshold={self.threshold:.6g}"
            extra += ")"
        return f"[{self.severity}] {self.cell}: {self.detector}: {self.message}{extra}"


@dataclass(frozen=True)
class Detector:
    name: str
    scope: str  # "run" | "campaign" | "history" | "fleet"
    description: str
    fn: Callable


_REGISTRY: dict[str, Detector] = {}


def register_detector(name: str, *, scope: str = "run", description: str = ""):
    """Class-of-one decorator: add a detector to the registry."""
    if scope not in ("run", "campaign", "history", "fleet"):
        raise ValueError(f"unknown detector scope {scope!r}")

    def deco(fn):
        _REGISTRY[name] = Detector(name, scope, description, fn)
        return fn

    return deco


def detectors() -> list[Detector]:
    """Registered detectors, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_detectors(
    records: Iterable[RunRecord],
    names: Iterable[str] | None = None,
    history=None,
    manifest=None,
) -> list[Finding]:
    """Run detectors (all, or the named subset) over the records.

    ``history`` is an optional :class:`~repro.obs.history.MetricsHistory`;
    history-scoped detectors are skipped when it is absent (there is no
    serving evidence to judge), so trace-only doctoring stays unchanged.
    ``manifest`` is an optional campaign :class:`~repro.campaign.
    manifest.RunManifest`; fleet-scoped detectors are likewise skipped
    without one.
    """
    records = list(records)
    if names is None:
        selected = detectors()
    else:
        names = list(names)
        unknown = sorted(set(names) - set(_REGISTRY))
        if unknown:
            raise ValueError(
                f"unknown detectors: {', '.join(unknown)} "
                f"(have: {', '.join(sorted(_REGISTRY))})"
            )
        selected = [_REGISTRY[n] for n in names]
    findings: list[Finding] = []
    for det in selected:
        if det.scope == "campaign":
            findings.extend(det.fn(records))
        elif det.scope == "history":
            if history is not None:
                findings.extend(det.fn(history))
        elif det.scope == "fleet":
            if manifest is not None:
                findings.extend(det.fn(manifest))
        else:
            for record in records:
                findings.extend(det.fn(record))
    return findings


# ----------------------------------------------------------------------
# built-ins
# ----------------------------------------------------------------------
def _rel_gap(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    return abs(a - b) / scale if scale > 0 else 0.0


@register_detector(
    "energy_balance",
    description="per-phase time/energy counters must reconcile with the "
    "account totals (and the solver.energy_j gauge with the report)",
)
def energy_balance(record: RunRecord) -> Iterator[Finding]:
    tel = record.telemetry
    if tel is not None and phase_counters(tel.metrics):
        attr = attribute_record(record)
        for kind, rel in (
            ("time", attr.residual_time_rel),
            ("energy", attr.residual_energy_rel),
        ):
            if rel > ENERGY_BALANCE_REL_TOL:
                yield Finding(
                    "energy_balance",
                    "error",
                    record.label,
                    f"per-phase {kind} does not reconcile with the "
                    f"{'account' if record.report else 'gauge'} total "
                    f"(residual {rel:.3e} relative)",
                    value=rel,
                    threshold=ENERGY_BALANCE_REL_TOL,
                )
    if record.report is not None and tel is not None:
        gauges = tel.metrics.snapshot().get("gauges", {})
        if "solver.energy_j" in gauges:
            rel = _rel_gap(float(gauges["solver.energy_j"]), record.report.energy_j)
            if rel > ENERGY_BALANCE_REL_TOL:
                yield Finding(
                    "energy_balance",
                    "error",
                    record.label,
                    f"solver.energy_j gauge disagrees with the report "
                    f"({rel:.3e} relative)",
                    value=rel,
                    threshold=ENERGY_BALANCE_REL_TOL,
                )


def _excused_iterations(record: RunRecord) -> set[int]:
    """Iterations where a residual excursion is expected: faults and
    restarts, padded by ±RESIDUAL_EVENT_SLACK."""
    centers: set[int] = set()
    if record.report is not None:
        centers.update(ev.iteration for ev in record.report.faults)
    if record.telemetry is not None:
        for e in record.telemetry.events.faults:
            centers.add(e.iteration)
        for e in record.telemetry.events.restarts:
            centers.add(e.iteration)
    excused: set[int] = set()
    for c in centers:
        excused.update(range(c - RESIDUAL_EVENT_SLACK, c + RESIDUAL_EVENT_SLACK + 1))
    return excused


@register_detector(
    "residual_convergence",
    description="no unexplained residual jumps (>50x in one iteration "
    "away from any fault/restart) and no 1000-iteration stalls",
)
def residual_convergence(record: RunRecord) -> Iterator[Finding]:
    if record.report is None:
        return
    history = [float(v) for v in record.report.residual_history]
    excused = _excused_iterations(record)
    for i in range(1, len(history)):
        prev, cur = history[i - 1], history[i]
        # history[i] is the residual after iteration i+1
        if prev > 0 and cur > RESIDUAL_JUMP_FACTOR * prev and (i + 1) not in excused:
            yield Finding(
                "residual_convergence",
                "error",
                record.label,
                f"residual jumped {cur / prev:.1f}x at iteration {i + 1} "
                "with no fault or restart nearby",
                value=cur / prev,
                threshold=RESIDUAL_JUMP_FACTOR,
            )
            break  # one finding per run; a broken recurrence cascades
    # stall: the running minimum stopped improving for a whole window
    if len(history) > RESIDUAL_STALL_WINDOW:
        best = float("inf")
        last_improvement = 0
        for i, v in enumerate(history):
            if v < best:
                best = v
                last_improvement = i
        gap = len(history) - 1 - last_improvement
        fault_in_gap = any(it > last_improvement + 1 for it in excused)
        if gap >= RESIDUAL_STALL_WINDOW and not fault_in_gap:
            yield Finding(
                "residual_convergence",
                "warning",
                record.label,
                f"residual has not improved for {gap} iterations "
                f"(best {best:.3e} at iteration {last_improvement + 1})",
                value=float(gap),
                threshold=float(RESIDUAL_STALL_WINDOW),
            )


@register_detector(
    "schedule_drift",
    description="realized fault events must match the report's fault "
    "list and the schedule the config implies",
)
def schedule_drift(record: RunRecord) -> Iterator[Finding]:
    report, tel = record.report, record.telemetry
    if report is not None and tel is not None and tel.events.faults:
        traced = sorted(
            (e.iteration, e.victim_rank) for e in tel.events.faults
        )
        reported = sorted(
            (ev.iteration, ev.victim_rank) for ev in report.faults
        )
        if traced != reported:
            yield Finding(
                "schedule_drift",
                "error",
                record.label,
                f"trace records faults {traced} but the report says "
                f"{reported}",
            )
    if report is not None and record.config is not None and report.baseline_iters:
        from repro.faults.events import FaultScope
        from repro.faults.schedule import EvenlySpacedSchedule

        cfg = record.config
        expected = EvenlySpacedSchedule(
            n_faults=cfg.n_faults,
            seed=cfg.seed,
            scope=FaultScope(cfg.fault_scope),
        ).events(nranks=cfg.nranks, horizon_iters=report.baseline_iters)
        want = sorted(e.iteration for e in expected if e.iteration <= report.iterations)
        got = sorted(ev.iteration for ev in report.faults)
        if want != got:
            yield Finding(
                "schedule_drift",
                "error",
                record.label,
                f"config implies faults at iterations {want} but the run "
                f"realized {got}",
            )


def _tol(t: float) -> float:
    return SPAN_TIME_REL_TOL * max(1.0, abs(t))


@register_detector(
    "span_integrity",
    description="spans must have non-negative duration, stay inside "
    "their parent, not overlap siblings, and the solve span must match "
    "the run's total time",
)
def span_integrity(record: RunRecord) -> Iterator[Finding]:
    tel = record.telemetry
    if tel is None or not tel.spans.spans:
        return
    for s in tel.spans.spans:
        if s.t_end < s.t_start - _tol(s.t_start):
            yield Finding(
                "span_integrity",
                "error",
                record.label,
                f"span {s.name!r} has negative duration "
                f"({s.t_start!r} -> {s.t_end!r})",
                value=s.duration_s,
            )
    roots = build_span_tree(tel.spans.spans)
    for node, _ in walk(roots):
        parent = node.span
        prev_end = None
        for child_node in node.children:
            child = child_node.span
            if (
                child.t_start < parent.t_start - _tol(parent.t_start)
                or child.t_end > parent.t_end + _tol(parent.t_end)
            ):
                yield Finding(
                    "span_integrity",
                    "error",
                    record.label,
                    f"span {child.name!r} [{child.t_start!r}, {child.t_end!r}] "
                    f"escapes its parent {parent.name!r} "
                    f"[{parent.t_start!r}, {parent.t_end!r}]",
                )
            if prev_end is not None and child.t_start < prev_end - _tol(prev_end):
                yield Finding(
                    "span_integrity",
                    "error",
                    record.label,
                    f"sibling spans overlap inside {parent.name!r}: "
                    f"{child.name!r} starts at {child.t_start!r} before "
                    f"the previous sibling ends at {prev_end!r}",
                )
            prev_end = max(prev_end, child.t_end) if prev_end is not None else child.t_end
    # the root solve span must cover the run
    reference = None
    if record.report is not None:
        reference = record.report.time_s
    else:
        gauges = tel.metrics.snapshot().get("gauges", {})
        if "solver.sim_time_s" in gauges:
            reference = float(gauges["solver.sim_time_s"])
    if reference is not None:
        for node in roots:
            if node.name != "solve":
                continue
            rel = _rel_gap(node.duration_s, reference)
            if rel > SOLVE_SPAN_REL_TOL:
                yield Finding(
                    "span_integrity",
                    "error",
                    record.label,
                    f"solve span covers {node.duration_s!r}s but the run "
                    f"took {reference!r}s ({rel:.3e} relative gap)",
                    value=rel,
                    threshold=SOLVE_SPAN_REL_TOL,
                )


@register_detector(
    "model_divergence",
    scope="campaign",
    description="paired sim/analytic cells must agree per Section-3 "
    "term within the validation drift threshold",
)
def model_divergence(records: list[RunRecord]) -> Iterator[Finding]:
    from repro.engines.validate import (
        DEFAULT_DRIFT_THRESHOLD,
        term_drift_rows_from_groups,
    )

    groups: dict = {}
    for r in records:
        if r.config is not None and r.report is not None:
            groups.setdefault(r.config, {})[r.scheme] = r.report
    for row in term_drift_rows_from_groups(list(groups.items())):
        if row.drift > DEFAULT_DRIFT_THRESHOLD:
            yield Finding(
                "model_divergence",
                "error",
                f"{row.matrix}/r{row.nranks}/f{row.n_faults}/{row.scheme}",
                f"term {row.term} diverges: sim {row.sim:.4f} vs "
                f"analytic {row.analytic:.4f}",
                value=row.drift,
                threshold=DEFAULT_DRIFT_THRESHOLD,
            )


def _median(values: list[float]) -> float:
    values = sorted(values)
    n = len(values)
    if n == 0:
        return 0.0
    mid = n // 2
    return values[mid] if n % 2 else (values[mid - 1] + values[mid]) / 2.0


@register_detector(
    "worker_straggler",
    scope="fleet",
    description="no cell may be left running at campaign end far past "
    "the median cell cost, and no worker's mean cell cost may sit far "
    "above its peers'",
)
def worker_straggler(manifest) -> Iterator[Finding]:
    ran = [c.compute_s for c in manifest.cells if c.status == "ran"]
    median = _median(ran)
    # clause 1: a cell still "running" when the campaign closed — its
    # worker hung (or died without the pool noticing) mid-cell
    threshold = max(STRAGGLER_FACTOR * median, STRAGGLER_MIN_AGE_S)
    for c in manifest.cells:
        if c.status != "running" or c.started_ts is None:
            continue
        age = manifest.finished_at - c.started_ts
        if age > threshold:
            yield Finding(
                "worker_straggler",
                "error",
                c.label,
                f"cell still running on worker {c.worker} after {age:.1f}s "
                f"(median ran cell: {median:.2f}s)",
                value=age,
                threshold=threshold,
            )
    # clause 2: one worker consistently slower than its pool-mates
    means = {
        w.worker: w.busy_s / w.cells_done
        for w in manifest.worker_rows
        if w.cells_done >= STRAGGLER_MIN_CELLS
    }
    if len(means) < 2:
        return
    pool_median = _median(list(means.values()))
    for pid, mean in sorted(means.items()):
        if (
            mean > STRAGGLER_FACTOR * pool_median
            and mean - pool_median > STRAGGLER_MIN_GAP_S
        ):
            yield Finding(
                "worker_straggler",
                "warning",
                f"fleet/worker-{pid}",
                f"worker averages {mean:.2f}s per cell against a pool "
                f"median of {pool_median:.2f}s",
                value=mean,
                threshold=STRAGGLER_FACTOR * pool_median,
            )


@register_detector(
    "heartbeat_gap",
    scope="fleet",
    description="no worker may go silent for several heartbeat "
    "intervals while holding a cell",
)
def heartbeat_gap(manifest) -> Iterator[Finding]:
    interval = manifest.heartbeat_interval_s
    if interval <= 0:
        return  # heartbeats disabled (serial runs): nothing to judge
    threshold = max(HEARTBEAT_GAP_FACTOR * interval, HEARTBEAT_GAP_MIN_S)
    for w in manifest.worker_rows:
        if w.max_heartbeat_gap_s > threshold:
            yield Finding(
                "heartbeat_gap",
                "error",
                f"fleet/worker-{w.worker}",
                f"worker went {w.max_heartbeat_gap_s:.1f}s without a "
                f"heartbeat while busy (interval {interval:g}s, "
                f"last cell {w.last_cell or '?'})",
                value=w.max_heartbeat_gap_s,
                threshold=threshold,
            )


@register_detector(
    "retry_storm",
    scope="fleet",
    description="retry attempts must stay a small fraction of the "
    "campaign's computed cells",
)
def retry_storm(manifest) -> Iterator[Finding]:
    c = manifest.counters
    retries = int(c.get("retries", 0))
    computed = int(c.get("ran", 0)) + int(c.get("failed", 0))
    threshold = RETRY_STORM_RATIO * max(1, computed)
    if retries >= RETRY_STORM_MIN and retries >= threshold:
        yield Finding(
            "retry_storm",
            "warning",
            f"fleet/{manifest.run_id}",
            f"{retries} retries across {computed} computed cells — the "
            "grid is fighting transient failures, not running",
            value=float(retries),
            threshold=max(float(RETRY_STORM_MIN), threshold),
        )


@register_detector(
    "cache_stampede",
    scope="fleet",
    description="a campaign must not keep overwriting results the "
    "store already holds (repeated compute for banked cells)",
)
def cache_stampede(manifest) -> Iterator[Finding]:
    c = manifest.counters
    overwrites = int(c.get("store_overwrites", 0))
    ran = int(c.get("ran", 0))
    threshold = CACHE_STAMPEDE_RATIO * max(1, ran)
    if overwrites >= CACHE_STAMPEDE_MIN and overwrites >= threshold:
        yield Finding(
            "cache_stampede",
            "warning",
            f"fleet/{manifest.run_id}",
            f"{overwrites} of {ran} fresh results overwrote rows the "
            "store already held — resume is off or several campaigns "
            "are racing one store",
            value=float(overwrites),
            threshold=max(float(CACHE_STAMPEDE_MIN), threshold),
        )


@register_detector(
    "slo_burn",
    scope="history",
    description="serving SLO burn rates (availability 5xx, latency "
    "threshold) must stay under their fast/slow-window alert thresholds",
)
def slo_burn(history) -> Iterator[Finding]:
    from repro.obs.slo import evaluate_slos

    for status in evaluate_slos(history):
        for speed, window in (("fast", status.fast), ("slow", status.slow)):
            if not window.firing:
                continue
            yield Finding(
                "slo_burn",
                "error",
                f"slo/{status.slo.name}",
                f"{speed}-burn alert over {window.window_s:g}s: "
                f"error rate {window.error_rate:.3%} of "
                f"{window.requests} requests burns the "
                f"{status.slo.budget:.3%} budget at {window.burn_rate:.1f}x",
                value=window.burn_rate,
                threshold=window.threshold,
            )
