"""Phase attribution: time/energy waterfalls reconciled to the account.

The paper's claims are per-phase (Eqs. 1–16 split ``T_res``/``E_res``
into checkpoint, rollback, reconstruction and delay terms), so the
first question analysis must answer about any run is *where the time
and energy went* — and whether the per-phase story actually adds up to
the totals the EnergyAccount charged.

Attribution therefore always carries an explicit **residual**: the
reference totals (the account's, or the ``solver.*`` gauges for a
telemetry-only trace) minus the per-phase sums.  On a healthy traced
run the residual is ulp-level (the tap mirrors every charge); a residual
above ~1e-9 relative means the books don't balance and the
``energy_balance`` detector will say so.  The residual is *reported*,
never folded into a phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.obs.analysis.records import RunRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.power.energy import PhaseTag

#: PhaseTag declaration order: solve first, resilience phases after —
#: the waterfall order every renderer uses.
PHASE_ORDER = tuple(tag.value for tag in PhaseTag)

_RESILIENCE = {tag.value for tag in PhaseTag if tag.is_resilience}


@dataclass(frozen=True)
class PhaseRow:
    """One phase's slice of the waterfall."""

    phase: str
    time_s: float
    energy_j: float
    time_share: float
    energy_share: float

    @property
    def is_resilience(self) -> bool:
        return self.phase in _RESILIENCE


@dataclass(frozen=True)
class PhaseAttribution:
    """Per-phase decomposition of one run (or one scheme's rollup)."""

    label: str
    scheme: str
    #: Where the rows came from: "metrics" (phase counters of a traced
    #: run), "account" (untraced report), or "rollup" (summed cells).
    source: str
    rows: tuple[PhaseRow, ...]
    #: Reference totals the rows are reconciled against.
    total_time_s: float
    total_energy_j: float

    @property
    def attributed_time_s(self) -> float:
        return sum(r.time_s for r in self.rows)

    @property
    def attributed_energy_j(self) -> float:
        return sum(r.energy_j for r in self.rows)

    @property
    def residual_time_s(self) -> float:
        return self.total_time_s - self.attributed_time_s

    @property
    def residual_energy_j(self) -> float:
        return self.total_energy_j - self.attributed_energy_j

    @property
    def residual_time_rel(self) -> float:
        if self.total_time_s == 0:
            return 0.0 if self.residual_time_s == 0 else float("inf")
        return abs(self.residual_time_s) / abs(self.total_time_s)

    @property
    def residual_energy_rel(self) -> float:
        if self.total_energy_j == 0:
            return 0.0 if self.residual_energy_j == 0 else float("inf")
        return abs(self.residual_energy_j) / abs(self.total_energy_j)

    @property
    def resilience_time_s(self) -> float:
        return sum(r.time_s for r in self.rows if r.is_resilience)

    @property
    def resilience_energy_j(self) -> float:
        return sum(r.energy_j for r in self.rows if r.is_resilience)


def phase_counters(metrics: MetricsRegistry) -> dict[str, tuple[float, float]]:
    """``{phase: (time_s, energy_j)}`` from the ``phase.*`` counters."""
    out: dict[str, list[float]] = {}
    snap = metrics.snapshot()
    for series, value in snap.get("counters", {}).items():
        name, labels = MetricsRegistry._parse_series(series)
        phase = labels.get("phase")
        if phase is None:
            continue
        if name == "phase.time_s":
            out.setdefault(phase, [0.0, 0.0])[0] += value
        elif name == "phase.energy_j":
            out.setdefault(phase, [0.0, 0.0])[1] += value
    return {p: (t, e) for p, (t, e) in out.items()}


def _rows(pairs: dict[str, tuple[float, float]], total_t: float, total_e: float):
    ordered = [p for p in PHASE_ORDER if p in pairs]
    ordered += sorted(p for p in pairs if p not in PHASE_ORDER)
    return tuple(
        PhaseRow(
            phase=p,
            time_s=pairs[p][0],
            energy_j=pairs[p][1],
            time_share=pairs[p][0] / total_t if total_t > 0 else 0.0,
            energy_share=pairs[p][1] / total_e if total_e > 0 else 0.0,
        )
        for p in ordered
    )


def attribute_record(record: RunRecord) -> PhaseAttribution:
    """Waterfall for one run, against the best available reference.

    Traced runs attribute from the ``phase.*`` metric counters (the
    independently accumulated mirror of the account) and reconcile
    against the account totals, so the residual *measures* tap drift.
    Untraced reports fall back to the account's own charges (residual
    identically zero by construction — stated, not hidden, via
    ``source="account"``).  Telemetry-only records reconcile the
    counters against the ``solver.sim_time_s``/``solver.energy_j``
    gauges.
    """
    tel = record.telemetry
    pairs = phase_counters(tel.metrics) if tel is not None else {}
    if record.report is not None:
        total_t = record.report.account.total_time_s
        total_e = record.report.account.total_energy_j
        if pairs:
            source = "metrics"
        else:
            source = "account"
            pairs = {
                tag.value: (c.time_s, c.energy_j)
                for tag, c in record.report.account.charges.items()
            }
    elif tel is not None:
        gauges = tel.metrics.snapshot().get("gauges", {})
        total_t = float(gauges.get("solver.sim_time_s", 0.0))
        total_e = float(gauges.get("solver.energy_j", 0.0))
        source = "metrics"
    else:
        raise ValueError(f"record {record.label!r} has no report and no telemetry")
    return PhaseAttribution(
        label=record.label,
        scheme=record.scheme,
        source=source,
        rows=_rows(pairs, total_t, total_e),
        total_time_s=total_t,
        total_energy_j=total_e,
    )


def attribute_telemetry(label: str, tel: Telemetry) -> PhaseAttribution:
    """Waterfall for a bare telemetry bundle (no report)."""
    return attribute_record(RunRecord(label=label, telemetry=tel))


def scheme_rollup(
    attributions: Iterable[PhaseAttribution],
) -> dict[str, PhaseAttribution]:
    """Per-scheme aggregate: phases, totals and residuals summed across
    every cell of the scheme, in first-seen scheme order."""
    grouped: dict[str, list[PhaseAttribution]] = {}
    for attr in attributions:
        grouped.setdefault(attr.scheme or "?", []).append(attr)
    out: dict[str, PhaseAttribution] = {}
    for scheme, attrs in grouped.items():
        pairs: dict[str, list[float]] = {}
        for attr in attrs:
            for row in attr.rows:
                acc = pairs.setdefault(row.phase, [0.0, 0.0])
                acc[0] += row.time_s
                acc[1] += row.energy_j
        total_t = sum(a.total_time_s for a in attrs)
        total_e = sum(a.total_energy_j for a in attrs)
        out[scheme] = PhaseAttribution(
            label=f"{scheme} ({len(attrs)} cells)",
            scheme=scheme,
            source="rollup",
            rows=_rows({p: tuple(v) for p, v in pairs.items()}, total_t, total_e),
            total_time_s=total_t,
            total_energy_j=total_e,
        )
    return out
