"""The unit of analysis: one labelled run with whatever evidence it has.

Every analysis entry point — attribution, detectors, diffing — consumes
:class:`RunRecord` objects so the same code runs over a live
:class:`~repro.core.report.SolveReport`, a campaign's cells, a store on
disk, or a bare JSONL trace with no report at all.  A record carries up
to three layers of evidence (report, telemetry, config); each analysis
uses what is present and degrades explicitly when something is missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.obs.export import load_trace_jsonl
from repro.obs.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.runner import CampaignResult
    from repro.campaign.store import ResultStore
    from repro.core.report import SolveReport
    from repro.harness.experiment import ExperimentConfig


@dataclass(frozen=True)
class RunRecord:
    """One run under analysis: label plus report/telemetry/config."""

    label: str
    report: "SolveReport | None" = None
    telemetry: Telemetry | None = None
    config: "ExperimentConfig | None" = None

    @property
    def scheme(self) -> str:
        """Best-effort scheme name: the report's, else the root solve
        span's ``scheme`` attribute, else empty."""
        if self.report is not None:
            return self.report.scheme
        if self.telemetry is not None:
            for s in self.telemetry.spans.of_name("solve"):
                attrs = dict(s.attrs)
                if "scheme" in attrs:
                    return str(attrs["scheme"])
        return ""

    @property
    def has_trace(self) -> bool:
        return self.telemetry is not None


def record_from_report(
    label: str, report: "SolveReport", config: "ExperimentConfig | None" = None
) -> RunRecord:
    """Wrap a report, picking up its attached telemetry (if traced)."""
    return RunRecord(
        label=label,
        report=report,
        telemetry=report.details.get("telemetry"),
        config=config,
    )


def records_from_store(store: "ResultStore") -> list[RunRecord]:
    """One record per stored entry, labelled by cell label."""
    return [
        record_from_report(e.cell.label, e.report, e.cell.config)
        for e in store.entries()
    ]


def records_from_campaign(result: "CampaignResult") -> list[RunRecord]:
    """One record per successful cell of a finished campaign."""
    return [
        record_from_report(r.cell.label, r.report, r.cell.config)
        for r in result.results
        if r.ok and r.report is not None
    ]


def records_from_jsonl(path: str | Path) -> list[RunRecord]:
    """Telemetry-only records from an exported JSONL trace."""
    return [
        RunRecord(label=label, telemetry=tel)
        for label, tel in load_trace_jsonl(path).items()
    ]


def select_records(
    records: Iterable[RunRecord],
    *,
    matrix: str | None = None,
    scheme: str | None = None,
) -> list[RunRecord]:
    """Filter by substring-in-label matrix and exact scheme name."""
    out = []
    for r in records:
        if matrix is not None and matrix not in r.label:
            continue
        if scheme is not None and r.scheme != scheme:
            continue
        out.append(r)
    return out
