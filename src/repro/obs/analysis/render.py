"""Terminal and Prometheus rendering of analysis results.

Everything here returns plain strings; the CLI decides where they go.
The Prometheus exposition follows the text format conventions (counter
series get a ``_total`` suffix, histograms expand to cumulative
``_bucket{le=…}``/``_sum``/``_count`` series) with fully deterministic
ordering, so two identical registries render byte-identically — same
property the JSON snapshot has.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.obs.analysis.attribution import PhaseAttribution
from repro.obs.analysis.detectors import Finding
from repro.obs.analysis.diffing import RunDiff
from repro.obs.analysis.spantree import SpanNode, critical_path, tree_summary
from repro.obs.metrics import MetricsRegistry

_BAR_WIDTH = 30


def _bar(share: float) -> str:
    n = max(0, min(_BAR_WIDTH, round(share * _BAR_WIDTH)))
    return "#" * n


def format_attribution(attr: PhaseAttribution) -> str:
    """One run's waterfall, residual line included."""
    header = (
        f"{'phase':<12} {'time_s':>12} {'time%':>7} "
        f"{'energy_j':>14} {'energy%':>8}  waterfall"
    )
    lines = [
        f"{attr.label} [{attr.scheme or '?'}] (source: {attr.source})",
        header,
        "-" * len(header),
    ]
    for row in attr.rows:
        marker = "*" if row.is_resilience else " "
        lines.append(
            f"{row.phase:<11}{marker} {row.time_s:>12.4f} "
            f"{row.time_share:>6.1%} {row.energy_j:>14.2f} "
            f"{row.energy_share:>7.1%}  {_bar(row.energy_share)}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'attributed':<12} {attr.attributed_time_s:>12.4f} "
        f"{'':>7} {attr.attributed_energy_j:>14.2f}"
    )
    lines.append(
        f"{'total':<12} {attr.total_time_s:>12.4f} "
        f"{'':>7} {attr.total_energy_j:>14.2f}"
    )
    lines.append(
        f"{'residual':<12} {attr.residual_time_s:>12.3e} "
        f"{'':>7} {attr.residual_energy_j:>14.3e}  "
        f"(rel {attr.residual_energy_rel:.2e})"
    )
    lines.append("  (* = resilience phase)")
    return "\n".join(lines)


def format_attribution_rollup(rollup: dict[str, PhaseAttribution]) -> str:
    """Per-scheme rollup waterfalls, one block per scheme."""
    if not rollup:
        return "no attributable cells"
    return "\n\n".join(format_attribution(attr) for attr in rollup.values())


def format_findings(findings: Iterable[Finding]) -> str:
    findings = list(findings)
    if not findings:
        return "no findings"
    lines = [str(f) for f in findings]
    n_err = sum(f.severity == "error" for f in findings)
    n_warn = len(findings) - n_err
    lines.append(f"{len(findings)} finding(s): {n_err} error(s), {n_warn} warning(s)")
    return "\n".join(lines)


def format_span_tree(spans) -> str:
    """Nested span summary: names indented by depth."""
    rows = tree_summary(spans)
    if not rows:
        return "no spans"
    header = (
        f"{'span':<34} {'count':>6} {'total_s':>12} {'mean_s':>12} {'max_s':>12}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        name = "  " * row["depth"] + row["name"]
        lines.append(
            f"{name:<34} {row['count']:>6} {row['total_s']:>12.4f} "
            f"{row['mean_s']:>12.6f} {row['max_s']:>12.6f}"
        )
    return "\n".join(lines)


def format_critical_path(path: list[SpanNode]) -> str:
    """The longest-duration chain through the span tree."""
    if not path:
        return "no spans"
    lines = ["critical path:"]
    for depth, node in enumerate(path):
        attrs = dict(node.span.attrs)
        suffix = f"  {attrs}" if attrs else ""
        lines.append(
            f"{'  ' * depth}{node.name}  {node.duration_s:.6f}s"
            f" (self {node.self_time_s:.6f}s){suffix}"
        )
    return "\n".join(lines)


def format_run_diff(diff: RunDiff) -> str:
    lines = [f"diff: A={diff.label_a}  B={diff.label_b}"]
    if diff.identical:
        lines.append("runs are identical under the store schema")
        return "\n".join(lines)
    changed_scalars = [d for d in diff.scalars if d.changed]
    if changed_scalars:
        lines.append("scalars:")
        for d in changed_scalars:
            lines.append(
                f"  {d.name:<26} {d.a:>14.6g} -> {d.b:<14.6g} "
                f"(delta {d.delta:+.6g}, {d.rel:.2%})"
            )
    changed_phases = [d for d in diff.phases if d.changed]
    if changed_phases:
        lines.append("phases:")
        for d in changed_phases:
            lines.append(
                f"  {d.name:<26} {d.a:>14.6g} -> {d.b:<14.6g} "
                f"(delta {d.delta:+.6g})"
            )
    changed_spans = [d for d in diff.spans if d.changed]
    if changed_spans:
        lines.append("spans:")
        for d in changed_spans:
            lines.append(
                f"  {d.name:<26} count {d.count_a} -> {d.count_b}, "
                f"total {d.total_a:.6f}s -> {d.total_b:.6f}s"
            )
    changed_events = [d for d in diff.events if d.changed]
    if changed_events:
        lines.append("events:")
        for d in changed_events:
            lines.append(f"  {d.name:<26} {int(d.a)} -> {int(d.b)}")
    if diff.structural:
        lines.append("structural:")
        for change in diff.structural:
            lines.append(f"  {change}")
        if diff.structural_truncated:
            lines.append(f"  … truncated at {len(diff.structural)} changes")
    lines.append(f"{diff.n_changes} change(s)")
    return "\n".join(lines)


def format_critical_path_of(spans) -> str:
    """Convenience: tree + critical path from raw spans."""
    from repro.obs.analysis.spantree import build_span_tree

    return format_critical_path(critical_path(build_span_tree(spans)))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for k in sorted(merged):
        v = str(merged[k]).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        parts.append(f'{_prom_name(k)}="{v}"')
    return "{" + ",".join(parts) + "}"


def prometheus_text(metrics: MetricsRegistry | dict) -> str:
    """Prometheus text-format exposition of a registry (or snapshot).

    Deterministic: series are emitted in sorted-snapshot order, so equal
    registries expose byte-identically.
    """
    snap = metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    lines: list[str] = []
    seen_types: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            lines.append(f"# TYPE {name} {kind}")
            seen_types.add(name)

    for series, value in snap.get("counters", {}).items():
        raw, labels = MetricsRegistry._parse_series(series)
        name = _prom_name(raw) + "_total"
        type_line(name, "counter")
        lines.append(f"{name}{_prom_labels(labels)} {value!r}")
    for series, value in snap.get("gauges", {}).items():
        raw, labels = MetricsRegistry._parse_series(series)
        name = _prom_name(raw)
        type_line(name, "gauge")
        lines.append(f"{name}{_prom_labels(labels)} {value!r}")
    for series, data in snap.get("histograms", {}).items():
        raw, labels = MetricsRegistry._parse_series(series)
        name = _prom_name(raw)
        type_line(name, "histogram")
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': repr(float(bound))})} "
                f"{cumulative}"
            )
        lines.append(
            f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})} {data['n']}"
        )
        lines.append(f"{name}_sum{_prom_labels(labels)} {data['total']!r}")
        lines.append(f"{name}_count{_prom_labels(labels)} {data['n']}")
    return "\n".join(lines) + ("\n" if lines else "")
