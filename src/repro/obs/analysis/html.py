"""Self-contained static HTML report: attribution, findings, spans, diff.

One function, one string, zero external assets — the output opens from
disk anywhere (CI artifact, laptop, mail attachment).  All dynamic text
is escaped; styling is a small inline stylesheet.
"""

from __future__ import annotations

from html import escape
from typing import Iterable

from repro.obs.analysis.attribution import PhaseAttribution
from repro.obs.analysis.detectors import Finding
from repro.obs.analysis.diffing import RunDiff
from repro.obs.analysis.spantree import tree_summary

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4a4e69; padding-bottom: .3rem; }
h2 { margin-top: 2rem; color: #22223b; }
table { border-collapse: collapse; margin: .6rem 0; font-size: .9rem; }
th, td { border: 1px solid #c9cbd8; padding: .25rem .6rem; text-align: right; }
th { background: #f2f3f7; }
td.name, th.name { text-align: left; font-family: ui-monospace, monospace; }
.bar { display: inline-block; height: .7rem; background: #5f7fbf;
       vertical-align: middle; }
.bar.res { background: #c1633f; }
.residual { font-family: ui-monospace, monospace; color: #444; }
.finding-error { color: #8b1e1e; }
.finding-warning { color: #8a6d1a; }
.ok { color: #20603d; }
.small { color: #666; font-size: .8rem; }
pre { background: #f6f6fa; padding: .6rem; overflow-x: auto; }
"""


def _attr_table(attr: PhaseAttribution) -> list[str]:
    out = [
        f"<h3>{escape(attr.label)} <span class='small'>[{escape(attr.scheme or '?')}, "
        f"source: {escape(attr.source)}]</span></h3>",
        "<table>",
        "<tr><th class='name'>phase</th><th>time (s)</th><th>time %</th>"
        "<th>energy (J)</th><th>energy %</th><th class='name'>waterfall</th></tr>",
    ]
    for row in attr.rows:
        klass = "bar res" if row.is_resilience else "bar"
        width = max(0.0, min(100.0, row.energy_share * 100.0))
        out.append(
            f"<tr><td class='name'>{escape(row.phase)}</td>"
            f"<td>{row.time_s:.4f}</td><td>{row.time_share:.1%}</td>"
            f"<td>{row.energy_j:.2f}</td><td>{row.energy_share:.1%}</td>"
            f"<td class='name'><span class='{klass}' "
            f"style='width:{width:.2f}%;'></span></td></tr>"
        )
    out.append(
        f"<tr><th class='name'>attributed</th><th>{attr.attributed_time_s:.4f}</th>"
        f"<th></th><th>{attr.attributed_energy_j:.2f}</th><th></th><th></th></tr>"
    )
    out.append(
        f"<tr><th class='name'>total</th><th>{attr.total_time_s:.4f}</th>"
        f"<th></th><th>{attr.total_energy_j:.2f}</th><th></th><th></th></tr>"
    )
    out.append("</table>")
    out.append(
        f"<p class='residual'>residual: {attr.residual_time_s:.3e} s, "
        f"{attr.residual_energy_j:.3e} J "
        f"(relative {attr.residual_energy_rel:.2e})</p>"
    )
    return out


def _findings_block(findings: list[Finding]) -> list[str]:
    if not findings:
        return ["<p class='ok'>no findings — all detectors passed.</p>"]
    out = ["<table>", "<tr><th class='name'>severity</th><th class='name'>cell</th>"
           "<th class='name'>detector</th><th class='name'>message</th></tr>"]
    for f in findings:
        out.append(
            f"<tr><td class='name finding-{escape(f.severity)}'>"
            f"{escape(f.severity)}</td>"
            f"<td class='name'>{escape(f.cell)}</td>"
            f"<td class='name'>{escape(f.detector)}</td>"
            f"<td class='name'>{escape(f.message)}</td></tr>"
        )
    out.append("</table>")
    return out


def _span_block(label: str, spans) -> list[str]:
    rows = tree_summary(spans)
    if not rows:
        return []
    out = [
        f"<h3>{escape(label)}</h3>",
        "<table>",
        "<tr><th class='name'>span</th><th>count</th><th>total (s)</th>"
        "<th>mean (s)</th><th>max (s)</th></tr>",
    ]
    for row in rows:
        indent = "&nbsp;" * (4 * row["depth"])
        out.append(
            f"<tr><td class='name'>{indent}{escape(row['name'])}</td>"
            f"<td>{row['count']}</td><td>{row['total_s']:.4f}</td>"
            f"<td>{row['mean_s']:.6f}</td><td>{row['max_s']:.6f}</td></tr>"
        )
    out.append("</table>")
    return out


def _manifest_block(doc: dict) -> list[str]:
    counters = doc.get("counters", {})
    out = [
        f"<p class='small'>run <code>{escape(doc['run_id'])}</code> "
        f"({escape(doc['name'])}), {doc['workers']} worker(s), "
        f"wall {doc['wall_s']:.1f}s — "
        f"{counters.get('ran', 0)} ran, {counters.get('cached', 0)} cached, "
        f"{counters.get('failed', 0)} failed, "
        f"{counters.get('retries', 0)} retries</p>"
    ]
    workers = doc.get("worker_rows", [])
    if workers:
        out.append("<h3>Workers</h3>")
        out.append(
            "<table><tr><th class='name'>pid</th><th>cells</th>"
            "<th>failed attempts</th><th>busy (s)</th><th>heartbeats</th>"
            "<th>max gap (s)</th><th>rss</th><th class='name'>last cell</th></tr>"
        )
        for w in workers:
            out.append(
                f"<tr><td class='name'>{escape(str(w['worker']))}</td>"
                f"<td>{w['cells_done']}</td><td>{w['failed_attempts']}</td>"
                f"<td>{w['busy_s']:.2f}</td><td>{w['heartbeats']}</td>"
                f"<td>{w['max_heartbeat_gap_s']:.2f}</td>"
                f"<td>{w['max_rss_bytes']}</td>"
                f"<td class='name'>{escape(str(w['last_cell'] or '-'))}</td></tr>"
            )
        out.append("</table>")
    cells = doc.get("cells", [])
    if cells:
        out.append("<h3>Cells</h3>")
        out.append(
            "<table><tr><th class='name'>cell</th><th class='name'>status</th>"
            "<th>tries</th><th class='name'>worker</th><th>wait (s)</th>"
            "<th>compute (s)</th><th>wasted (s)</th>"
            "<th class='name'>error</th></tr>"
        )
        for c in cells:
            klass = "finding-error" if c["status"] == "failed" else "name"
            out.append(
                f"<tr><td class='name'>{escape(c['label'])}</td>"
                f"<td class='name {klass}'>{escape(c['status'])}</td>"
                f"<td>{c['attempts']}</td>"
                f"<td class='name'>{escape(str(c['worker'] or '-'))}</td>"
                f"<td>{c['queue_wait_s']:.2f}</td><td>{c['compute_s']:.2f}</td>"
                f"<td>{c['wasted_s']:.2f}</td>"
                f"<td class='name'>{escape(str(c['error'] or ''))}</td></tr>"
            )
        out.append("</table>")
    return out


def html_report(
    *,
    title: str = "repro report",
    attributions: Iterable[PhaseAttribution] = (),
    findings: Iterable[Finding] | None = None,
    diff_text: str | None = None,
    span_trees: dict | None = None,
    manifest: dict | None = None,
) -> str:
    """Render one self-contained HTML document.

    ``span_trees`` maps a label to a span list; ``diff_text`` is the
    terminal diff rendering, embedded verbatim in a ``<pre>`` block so
    HTML and terminal always tell the same story.  ``manifest`` is the
    campaign run manifest as a plain doc (:func:`manifest_to_doc`),
    rendered as fleet-level worker and cell tables.
    """
    body: list[str] = [f"<h1>{escape(title)}</h1>"]
    attributions = list(attributions)
    if manifest is not None:
        body.append("<h2>Campaign run manifest</h2>")
        body.extend(_manifest_block(manifest))
    if attributions:
        body.append("<h2>Phase attribution</h2>")
        for attr in attributions:
            body.extend(_attr_table(attr))
    if findings is not None:
        body.append("<h2>Doctor findings</h2>")
        body.extend(_findings_block(list(findings)))
    if span_trees:
        body.append("<h2>Span trees</h2>")
        for label, spans in span_trees.items():
            body.extend(_span_block(label, spans))
    if diff_text is not None:
        body.append("<h2>Run diff</h2>")
        body.append(f"<pre>{escape(diff_text)}</pre>")
    return (
        "<!DOCTYPE html>\n<html lang='en'><head><meta charset='utf-8'>"
        f"<title>{escape(title)}</title><style>{_CSS}</style></head>\n"
        "<body>\n" + "\n".join(body) + "\n</body></html>\n"
    )
