"""Trace analytics: attribution, anomaly detection, diffing, rendering.

This subpackage turns the raw telemetry the solver and campaign layers
emit (``repro.obs``) into the *figures and sanity checks* the paper's
claims live on (see DESIGN.md §5g):

* :mod:`~repro.obs.analysis.records` — :class:`RunRecord`, the common
  unit every analysis consumes (report + telemetry + config, any subset);
* :mod:`~repro.obs.analysis.spantree` — exact span-nesting
  reconstruction, flamegraph summaries, critical-path extraction;
* :mod:`~repro.obs.analysis.attribution` — per-phase time/energy
  waterfalls reconciled against the EnergyAccount with an explicit
  residual;
* :mod:`~repro.obs.analysis.detectors` — the pluggable anomaly-detector
  registry behind ``repro doctor``;
* :mod:`~repro.obs.analysis.diffing` — structural run-vs-run comparison
  over the store's own payload schema;
* :mod:`~repro.obs.analysis.render` / :mod:`~repro.obs.analysis.html` —
  terminal tables, Prometheus text exposition, static HTML reports.
"""

from repro.obs.analysis.attribution import (
    PhaseAttribution,
    PhaseRow,
    attribute_record,
    attribute_telemetry,
    phase_counters,
    scheme_rollup,
)
from repro.obs.analysis.detectors import (
    Detector,
    Finding,
    detectors,
    register_detector,
    run_detectors,
)
from repro.obs.analysis.diffing import MetricDelta, RunDiff, SpanDelta, diff_runs
from repro.obs.analysis.html import html_report
from repro.obs.analysis.records import (
    RunRecord,
    record_from_report,
    records_from_campaign,
    records_from_jsonl,
    records_from_store,
    select_records,
)
from repro.obs.analysis.render import (
    format_attribution,
    format_attribution_rollup,
    format_critical_path,
    format_findings,
    format_run_diff,
    format_span_tree,
    prometheus_text,
)
from repro.obs.analysis.spantree import (
    SpanNode,
    build_span_tree,
    critical_path,
    tree_summary,
    walk,
)

__all__ = [
    "Detector",
    "Finding",
    "MetricDelta",
    "PhaseAttribution",
    "PhaseRow",
    "RunDiff",
    "RunRecord",
    "SpanDelta",
    "SpanNode",
    "attribute_record",
    "attribute_telemetry",
    "build_span_tree",
    "critical_path",
    "detectors",
    "diff_runs",
    "format_attribution",
    "format_attribution_rollup",
    "format_critical_path",
    "format_findings",
    "format_run_diff",
    "format_span_tree",
    "html_report",
    "phase_counters",
    "prometheus_text",
    "record_from_report",
    "records_from_campaign",
    "records_from_jsonl",
    "records_from_store",
    "register_detector",
    "run_detectors",
    "scheme_rollup",
    "select_records",
    "tree_summary",
    "walk",
]
