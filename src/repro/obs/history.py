"""Metrics time series: a bounded ring buffer of registry snapshots.

The serving tier's ``/metrics`` endpoint is a point-in-time snapshot;
:class:`MetricsHistory` turns it into a time series cheap enough to
leave on under load: every ``interval_s`` the sampler appends one
``(wall time, MetricsRegistry.snapshot())`` pair to a ``deque`` bounded
at ``capacity`` entries, so memory is O(capacity · series) no matter
how long the server runs — the oldest samples are evicted, newest win.

Consumers derive everything from *deltas between samples*:

* request rate = Δ(counter) / Δt over a window;
* latency percentiles = the histogram's per-bucket count deltas over a
  window, resolved to a bucket upper bound;
* SLO burn rates (:mod:`repro.obs.slo`) = error-count deltas divided by
  the error budget.

The whole history serializes to one JSON document
(:meth:`MetricsHistory.to_doc`), which is what ``repro serve
--history-out`` flushes on shutdown and ``repro doctor --history``
reads back — the live dashboard and the post-mortem see the same data.
"""

from __future__ import annotations

import json
import math
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

#: Document schema version for saved histories.
HISTORY_SCHEMA = 1

#: Default ring capacity: 10 minutes at the default 1 s interval.
DEFAULT_CAPACITY = 600

#: Default sampling interval, seconds.
DEFAULT_INTERVAL_S = 1.0


@dataclass(frozen=True)
class Sample:
    """One timestamped registry snapshot."""

    t: float
    metrics: dict

    def to_doc(self) -> dict:
        return {"t": self.t, "metrics": self.metrics}

    @classmethod
    def from_doc(cls, doc: dict) -> "Sample":
        return cls(t=float(doc["t"]), metrics=doc.get("metrics", {}))


class MetricsHistory:
    """Bounded, append-only time series of metrics snapshots."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        interval_s: float = DEFAULT_INTERVAL_S,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.capacity = capacity
        self.interval_s = interval_s
        self._samples: deque[Sample] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._samples)

    def append(self, t: float, snapshot: dict) -> Sample:
        """Record one snapshot; evicts the oldest sample at capacity."""
        sample = Sample(t=float(t), metrics=snapshot)
        self._samples.append(sample)
        return sample

    def sample(self, registry, t: float | None = None) -> Sample:
        """Snapshot a :class:`~repro.obs.metrics.MetricsRegistry` now."""
        return self.append(time.time() if t is None else t, registry.snapshot())

    def samples(
        self, window_s: float | None = None, now: float | None = None
    ) -> list[Sample]:
        """Samples inside the trailing window (all, if ``window_s`` is
        None).  ``now`` defaults to the newest sample's timestamp so a
        saved history analyses identically whenever it is read."""
        out = list(self._samples)
        if window_s is None or not out:
            return out
        horizon = (out[-1].t if now is None else now) - window_s
        return [s for s in out if s.t >= horizon]

    def latest(self) -> Sample | None:
        return self._samples[-1] if self._samples else None

    # -- persistence ---------------------------------------------------
    def to_doc(self, window_s: float | None = None) -> dict:
        return {
            "schema": HISTORY_SCHEMA,
            "capacity": self.capacity,
            "interval_s": self.interval_s,
            "samples": [s.to_doc() for s in self.samples(window_s)],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "MetricsHistory":
        hist = cls(
            capacity=int(doc.get("capacity", DEFAULT_CAPACITY)),
            interval_s=float(doc.get("interval_s", DEFAULT_INTERVAL_S)),
        )
        for raw in doc.get("samples", []):
            sample = Sample.from_doc(raw)
            hist.append(sample.t, sample.metrics)
        return hist

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_doc(), sort_keys=True, indent=2) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "MetricsHistory":
        return cls.from_doc(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# delta/rate helpers over snapshots
# ----------------------------------------------------------------------
def sum_counters(snapshot: dict, predicate) -> float:
    """Sum of counter series whose name passes ``predicate(series)``."""
    return sum(
        value
        for series, value in snapshot.get("counters", {}).items()
        if predicate(series)
    )


def counter_delta(
    history: MetricsHistory,
    predicate,
    window_s: float | None = None,
    now: float | None = None,
) -> tuple[float, float]:
    """``(delta, dt)`` of a counter sum across the trailing window.

    The delta is newest-sample minus oldest-in-window; with fewer than
    two samples there is no interval, so ``(0.0, 0.0)``.
    """
    samples = history.samples(window_s, now=now)
    if len(samples) < 2:
        return 0.0, 0.0
    first, last = samples[0], samples[-1]
    delta = sum_counters(last.metrics, predicate) - sum_counters(
        first.metrics, predicate
    )
    return delta, last.t - first.t


def histogram_delta(
    history: MetricsHistory,
    predicate,
    window_s: float | None = None,
    now: float | None = None,
) -> dict | None:
    """Merged per-bucket count deltas of matching histogram series.

    Returns ``{"buckets": [...], "counts": [...], "n": int, "total":
    float}`` covering the trailing window, or ``None`` when there are
    not two samples (or no matching series with consistent buckets).
    Series with different bucket layouts are skipped rather than mixed.
    """
    samples = history.samples(window_s, now=now)
    if len(samples) < 2:
        return None
    first = samples[0].metrics.get("histograms", {})
    last = samples[-1].metrics.get("histograms", {})
    buckets: list[float] | None = None
    counts: list[int] = []
    n = 0
    total = 0.0
    for series, data in last.items():
        if not predicate(series):
            continue
        if buckets is None:
            buckets = list(data["buckets"])
            counts = [0] * (len(buckets) + 1)
        elif list(data["buckets"]) != buckets:
            continue
        old = first.get(series, {"counts": [0] * len(data["counts"]), "n": 0, "total": 0.0})
        for i, c in enumerate(data["counts"]):
            counts[i] += c - old["counts"][i]
        n += data["n"] - old["n"]
        total += data["total"] - old["total"]
    if buckets is None:
        return None
    return {"buckets": buckets, "counts": counts, "n": n, "total": total}


def percentile_from_buckets(
    buckets: list[float], counts: list[int], q: float
) -> float | None:
    """Nearest-bucket percentile: the upper bound of the bucket where
    the cumulative count crosses ``q``; overflow resolves to the last
    finite bound.  ``None`` when there are no observations."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    n = sum(counts)
    if n == 0:
        return None
    rank = min(n, max(1, math.ceil(q * n)))
    cumulative = 0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            return buckets[i] if i < len(buckets) else buckets[-1]
    return buckets[-1]


def latency_error_fraction(delta: dict, threshold_s: float) -> tuple[float, int]:
    """``(fraction of observations above threshold, n)`` from a
    :func:`histogram_delta` result.  Observations are resolved at
    bucket granularity: a bucket counts as *good* only when its whole
    range is at or under the threshold, so part-way thresholds err on
    the strict side."""
    buckets, counts = delta["buckets"], delta["counts"]
    n = sum(counts)
    if n == 0:
        return 0.0, 0
    good = sum(
        count for bound, count in zip(buckets, counts) if bound <= threshold_s
    )
    return (n - good) / n, n
