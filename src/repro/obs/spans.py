"""Span timing: named, attributed intervals on a pluggable clock.

A span is one timed operation (``recovery.lsi``, ``checkpoint.write``,
``solve``) with open/close timestamps and free-form attributes::

    with spans.span("recovery.lsi", rank=3):
        ...construct...

The recorder's **clock** decides the timebase.  Inside the solver the
clock is the simulated cluster clock (``lambda: comm.now``) so spans
are deterministic and bit-identical across serial/parallel campaign
runs; in the harness and campaign layers the default wall clock
(:func:`time.perf_counter`) measures real elapsed time.  ``timebase``
("sim" or "wall") records which convention a stream used, and
exporters carry it along so readers never mix the two.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Span:
    """One closed interval.

    ``depth`` is the nesting level at which the span was *opened* (0 for
    top-level spans).  Sim-time spans frequently share timestamps — a
    zero-cost recovery closes at the instant its restart opens — so
    interval containment alone cannot reconstruct nesting; recording the
    live open-stack depth makes the tree exact
    (:func:`repro.obs.analysis.spantree.build_span_tree`).
    """

    name: str
    t_start: float
    t_end: float
    attrs: tuple[tuple[str, object], ...] = ()
    depth: int = 0

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def to_row(self) -> dict:
        return {
            "name": self.name,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": dict(self.attrs),
            "depth": self.depth,
        }

    @classmethod
    def from_row(cls, row: dict) -> "Span":
        return cls(
            name=row["name"],
            t_start=row["t_start"],
            t_end=row["t_end"],
            attrs=tuple(sorted(row.get("attrs", {}).items())),
            depth=int(row.get("depth", 0)),
        )


@dataclass
class SpanRecorder:
    """Collects closed spans in completion order."""

    #: Zero-argument callable returning the current time; ``None`` means
    #: wall clock.  Kept as a field so solver code can plug in sim time.
    clock: object = None
    timebase: str = "wall"
    spans: list[Span] = field(default_factory=list)
    #: Number of currently-open spans; stamped onto each Span as its depth.
    _depth: int = 0

    def now(self) -> float:
        return self.clock() if self.clock is not None else time.perf_counter()

    @contextmanager
    def span(self, name: str, **attrs):
        t0 = self.now()
        depth = self._depth
        self._depth = depth + 1
        try:
            yield
        finally:
            self._depth = depth
            self.spans.append(
                Span(
                    name=name,
                    t_start=t0,
                    t_end=self.now(),
                    attrs=tuple(sorted(attrs.items())),
                    depth=depth,
                )
            )

    def __len__(self) -> int:
        return len(self.spans)

    def of_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def summary(self) -> list[dict]:
        """Flamegraph-style aggregate: one row per span name, ordered by
        total time descending (ties broken by name)."""
        agg: dict[str, dict] = {}
        for s in self.spans:
            row = agg.setdefault(
                s.name,
                {"name": s.name, "count": 0, "total_s": 0.0, "max_s": 0.0},
            )
            row["count"] += 1
            row["total_s"] += s.duration_s
            row["max_s"] = max(row["max_s"], s.duration_s)
        for row in agg.values():
            row["mean_s"] = row["total_s"] / row["count"]
        return sorted(agg.values(), key=lambda r: (-r["total_s"], r["name"]))

    def to_rows(self) -> list[dict]:
        return [s.to_row() for s in self.spans]

    @classmethod
    def from_rows(cls, rows: list[dict], *, timebase: str = "wall"):
        rec = cls(timebase=timebase)
        rec.spans = [Span.from_row(r) for r in rows]
        return rec

    # Reports travel between pool workers as pickles; a sim-time clock
    # is a closure over the solver and must not travel with them.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["clock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
