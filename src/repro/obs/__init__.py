"""Observability: metrics, span timing, and telemetry export.

``repro.obs`` is the cross-cutting telemetry layer the paper's phase
decomposition (Eqs. 1–16) needs operationally: every solve can record a
typed event stream, span timings and a metrics registry, the campaign
engine persists the bundle per cell in the result store, and
``python -m repro.cli trace`` reads it back.

Two timebases coexist and are never mixed (see DESIGN.md §5d):

* **sim** — solver-side telemetry is stamped with simulated cluster
  seconds, so it is deterministic and bit-identical between serial and
  parallel campaign runs;
* **wall** — harness/campaign telemetry (cells/sec, retry counts) uses
  real elapsed time and is environment-dependent by nature.

The *live* half (DESIGN.md §5i) narrates running processes instead of
finished runs: :mod:`~repro.obs.logging` (structured JSONL logs with a
request-id context), :mod:`~repro.obs.history` (a bounded ring buffer
of metrics snapshots) and :mod:`~repro.obs.slo` (SLO burn-rate math
shared by the serving tier and ``repro doctor``).
"""

from repro.obs.export import (
    event_from_row,
    event_to_row,
    events_from_rows,
    load_trace_jsonl,
    residual_power_csv,
    telemetry_from_dict,
    telemetry_to_dict,
    trace_jsonl_lines,
    write_trace_jsonl,
)
from repro.obs.history import MetricsHistory, Sample
from repro.obs.logging import (
    REQUEST_ID_HEADER,
    LogRecord,
    StructuredLogger,
    bound_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    record_from_line,
    record_to_line,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.slo import DEFAULT_SLOS, Slo, SloStatus, evaluate_slos
from repro.obs.spans import Span, SpanRecorder
from repro.obs.telemetry import RECOVERY_LATENCY_BUCKETS, Telemetry

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_SLOS",
    "Gauge",
    "Histogram",
    "LogRecord",
    "MetricsHistory",
    "MetricsRegistry",
    "RECOVERY_LATENCY_BUCKETS",
    "REQUEST_ID_HEADER",
    "Sample",
    "Slo",
    "SloStatus",
    "Span",
    "SpanRecorder",
    "StructuredLogger",
    "Telemetry",
    "bound_request_id",
    "configure_logging",
    "current_request_id",
    "evaluate_slos",
    "get_logger",
    "record_from_line",
    "record_to_line",
    "event_from_row",
    "event_to_row",
    "events_from_rows",
    "load_trace_jsonl",
    "residual_power_csv",
    "telemetry_from_dict",
    "telemetry_to_dict",
    "trace_jsonl_lines",
    "write_trace_jsonl",
]
