"""Observability: metrics, span timing, and telemetry export.

``repro.obs`` is the cross-cutting telemetry layer the paper's phase
decomposition (Eqs. 1–16) needs operationally: every solve can record a
typed event stream, span timings and a metrics registry, the campaign
engine persists the bundle per cell in the result store, and
``python -m repro.cli trace`` reads it back.

Two timebases coexist and are never mixed (see DESIGN.md §5d):

* **sim** — solver-side telemetry is stamped with simulated cluster
  seconds, so it is deterministic and bit-identical between serial and
  parallel campaign runs;
* **wall** — harness/campaign telemetry (cells/sec, retry counts) uses
  real elapsed time and is environment-dependent by nature.
"""

from repro.obs.export import (
    event_from_row,
    event_to_row,
    events_from_rows,
    load_trace_jsonl,
    residual_power_csv,
    telemetry_from_dict,
    telemetry_to_dict,
    trace_jsonl_lines,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import Span, SpanRecorder
from repro.obs.telemetry import RECOVERY_LATENCY_BUCKETS, Telemetry

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RECOVERY_LATENCY_BUCKETS",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "event_from_row",
    "event_to_row",
    "events_from_rows",
    "load_trace_jsonl",
    "residual_power_csv",
    "telemetry_from_dict",
    "telemetry_to_dict",
    "trace_jsonl_lines",
    "write_trace_jsonl",
]
