"""SLO definitions and burn-rate evaluation over a metrics history.

The serving tier promises two things a user can feel: answers come back
(**availability**) and they come back fast (**latency**).  Each promise
is an :class:`Slo` — an objective like "99.9% of requests succeed" —
and the classic multi-window burn-rate alert decides when the promise
is in danger:

* the **error budget** is ``1 - objective`` (99.9% ⇒ 0.1% of requests
  may fail);
* the **burn rate** over a window is ``error_rate / budget`` — burn 1
  means the budget is being consumed exactly as provisioned, burn 14
  means it will be gone 14× too soon;
* a **fast window** (default 60 s) with a high threshold catches
  "everything is on fire right now"; a **slow window** (default 600 s)
  with a lower threshold catches sustained low-grade erosion.  Both
  windows must be populated — an alert never fires off zero traffic.

Evaluation consumes the serving tier's
:class:`~repro.obs.history.MetricsHistory`:

* availability errors are the ``serve_requests`` counters with a 5xx
  ``status`` label (client errors are the client's budget, not ours);
* latency errors are request-latency histogram observations above the
  SLO's threshold, counted at bucket granularity (the threshold should
  be a bucket bound; anything between bounds errs strict).

The ``slo_burn`` anomaly detector registered in
:mod:`repro.obs.analysis.detectors` wraps :func:`evaluate_slos`, so
``repro doctor --history`` and the live server (``/slo``, ``repro
top``) share one detector registration — the ISSUE's "one alerting
vocabulary".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.history import (
    MetricsHistory,
    counter_delta,
    histogram_delta,
    latency_error_fraction,
)

#: Counter family carrying per-request status labels.
REQUEST_COUNTER = "serve_requests"

#: Histogram family carrying per-request wall latency.
LATENCY_HISTOGRAM = "serve_request_latency_s"


@dataclass(frozen=True)
class Slo:
    """One service-level objective with its burn-alert policy."""

    name: str
    #: "availability" (5xx rate) or "latency" (slow-request rate).
    kind: str
    #: Fraction of requests that must be good, e.g. 0.999.
    objective: float
    #: Latency SLOs: requests slower than this are errors.  Should be a
    #: latency-histogram bucket bound; in-between thresholds err strict.
    threshold_s: float | None = None
    fast_window_s: float = 60.0
    slow_window_s: float = 600.0
    #: Burn-rate thresholds: the fast window tolerates only a blaze,
    #: the slow window catches sustained erosion.
    fast_burn: float = 14.0
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be within (0, 1)")
        if self.kind == "latency" and self.threshold_s is None:
            raise ValueError("latency SLOs need threshold_s")
        if self.fast_window_s >= self.slow_window_s:
            raise ValueError("fast window must be shorter than the slow one")

    @property
    def budget(self) -> float:
        """The error budget: tolerated error fraction."""
        return 1.0 - self.objective

    def describe(self) -> str:
        what = (
            "5xx responses"
            if self.kind == "availability"
            else f"requests slower than {self.threshold_s:g}s"
        )
        return (
            f"{self.name}: ≤{self.budget:.3%} {what} "
            f"(burn ≥{self.fast_burn:g}x/{self.fast_window_s:g}s fast, "
            f"≥{self.slow_burn:g}x/{self.slow_window_s:g}s slow)"
        )


#: The serving tier's standing objectives.  Latency threshold 0.1 s is
#: a DEFAULT_BUCKETS bound, far above the hot-path p99 (~3 ms) but well
#: under anything a user would call interactive.
DEFAULT_SLOS: tuple[Slo, ...] = (
    Slo(name="availability", kind="availability", objective=0.999),
    Slo(name="latency", kind="latency", objective=0.99, threshold_s=0.1),
)


@dataclass(frozen=True)
class BurnWindow:
    """Burn-rate evidence over one window."""

    window_s: float
    requests: int
    errors: float
    error_rate: float
    burn_rate: float
    threshold: float

    @property
    def firing(self) -> bool:
        return self.requests > 0 and self.burn_rate >= self.threshold

    def to_dict(self) -> dict:
        return {
            "window_s": self.window_s,
            "requests": self.requests,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "burn_rate": self.burn_rate,
            "threshold": self.threshold,
            "firing": self.firing,
        }


@dataclass(frozen=True)
class SloStatus:
    """One SLO evaluated at one instant: both burn windows."""

    slo: Slo
    fast: BurnWindow
    slow: BurnWindow

    @property
    def firing(self) -> bool:
        return self.fast.firing or self.slow.firing

    def to_dict(self) -> dict:
        return {
            "name": self.slo.name,
            "kind": self.slo.kind,
            "objective": self.slo.objective,
            "budget": self.slo.budget,
            "threshold_s": self.slo.threshold_s,
            "firing": self.firing,
            "fast": self.fast.to_dict(),
            "slow": self.slow.to_dict(),
        }


def _series_name(series: str) -> str:
    return series.partition("{")[0]


def _is_5xx(series: str) -> bool:
    if _series_name(series) != REQUEST_COUNTER:
        return False
    marker = 'status=5'
    return marker in series


def _availability_window(
    history: MetricsHistory, window_s: float, now: float | None
) -> tuple[int, float, float]:
    total, _ = counter_delta(
        history, lambda s: _series_name(s) == REQUEST_COUNTER, window_s, now=now
    )
    errors, _ = counter_delta(history, _is_5xx, window_s, now=now)
    rate = errors / total if total > 0 else 0.0
    return int(total), errors, rate


def _latency_window(
    history: MetricsHistory, threshold_s: float, window_s: float, now: float | None
) -> tuple[int, float, float]:
    delta = histogram_delta(
        history, lambda s: _series_name(s) == LATENCY_HISTOGRAM, window_s, now=now
    )
    if delta is None:
        return 0, 0.0, 0.0
    rate, n = latency_error_fraction(delta, threshold_s)
    return n, rate * n, rate


def evaluate_slo(
    history: MetricsHistory, slo: Slo, now: float | None = None
) -> SloStatus:
    """Both burn windows of one SLO against a metrics history."""
    windows = []
    for window_s, threshold in (
        (slo.fast_window_s, slo.fast_burn),
        (slo.slow_window_s, slo.slow_burn),
    ):
        if slo.kind == "availability":
            requests, errors, rate = _availability_window(history, window_s, now)
        else:
            requests, errors, rate = _latency_window(
                history, slo.threshold_s, window_s, now
            )
        windows.append(
            BurnWindow(
                window_s=window_s,
                requests=requests,
                errors=errors,
                error_rate=rate,
                burn_rate=rate / slo.budget,
                threshold=threshold,
            )
        )
    return SloStatus(slo=slo, fast=windows[0], slow=windows[1])


def evaluate_slos(
    history: MetricsHistory,
    slos: tuple[Slo, ...] = DEFAULT_SLOS,
    now: float | None = None,
) -> list[SloStatus]:
    """Every SLO's status, in definition order."""
    return [evaluate_slo(history, slo, now=now) for slo in slos]
