"""Structured JSONL logging: schema'd records, pluggable sinks and clock.

This is the operational half of ``repro.obs``: where the telemetry
bundle (:mod:`repro.obs.telemetry`) captures one *run* for later
analysis, the structured log is the live narration of a *process* — a
serving tier answering requests, a campaign grinding through cells.
Every line is one JSON object with a fixed schema::

    {"ts": 17.25, "level": "info", "component": "serve.app",
     "msg": "request", "timebase": "wall",
     "request_id": "9f2c4ab0d1e88c3a",
     "fields": {"endpoint": "/v1/solve", "status": 200, ...}}

Design rules, in the same spirit as the trace export:

* **exact round-trip** — :func:`record_to_line` and
  :func:`record_from_line` invert each other byte-for-byte (sorted
  keys, shortest-repr floats), so logs are machine-checkable: CI parses
  every emitted line back through the schema;
* **sim-or-wall timestamps** — the manager's clock is pluggable like
  :class:`~repro.obs.spans.SpanRecorder`'s, and ``timebase`` records
  which convention a stream used;
* **cheap when silent** — a suppressed level costs one dict lookup and
  one comparison, so instrumentation can stay on hot paths;
* **request correlation** — a :mod:`contextvars` request id, bound by
  the serving tier per HTTP request, is stamped onto every record
  emitted underneath it (coalesced solves, batch drains, errors).

Sinks are deliberately dumb ``emit(line)`` objects: stderr, a rotating
file, or an in-memory ring for tests and the ``repro top`` snapshot.
"""

from __future__ import annotations

import contextvars
import json
import os
import re
import sys
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

#: Severity order, least to most severe.
LOG_LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: i for i, name in enumerate(LOG_LEVELS)}

#: The HTTP header carrying a request id in and out of the serving tier.
REQUEST_ID_HEADER = "X-Repro-Request-Id"

#: Inbound request ids must match this (else a fresh id is minted) so a
#: hostile client cannot inject log-breaking bytes into every line.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Rotating-file defaults: 4 MiB per file, 3 rotated backups.
DEFAULT_MAX_BYTES = 4 << 20
DEFAULT_BACKUPS = 3


class LogSchemaError(ValueError):
    """A line that does not parse as a schema-conformant log record."""


# ----------------------------------------------------------------------
# request-id context
# ----------------------------------------------------------------------
_request_id_var: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_id", default=None
)


def new_request_id() -> str:
    """A fresh 16-hex-char request id (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


def valid_request_id(raw: str | None) -> str | None:
    """``raw`` if it is a safe inbound request id, else ``None``."""
    if raw is not None and _REQUEST_ID_RE.match(raw):
        return raw
    return None


def current_request_id() -> str | None:
    """The request id bound to the current (task/thread) context."""
    return _request_id_var.get()


@contextmanager
def bound_request_id(request_id: str | None):
    """Bind a request id for the duration of the block; records emitted
    inside (same asyncio task / thread) carry it automatically."""
    token = _request_id_var.set(request_id)
    try:
        yield request_id
    finally:
        _request_id_var.reset(token)


# ----------------------------------------------------------------------
# the record and its wire format
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogRecord:
    """One structured log line.

    ``fields`` is kept as a sorted tuple of pairs so records are
    hashable and serialize deterministically regardless of the keyword
    order at the call site.
    """

    ts: float
    level: str
    component: str
    msg: str
    timebase: str = "wall"
    request_id: str | None = None
    fields: tuple[tuple[str, object], ...] = ()

    def field_dict(self) -> dict:
        return dict(self.fields)


def record_to_line(record: LogRecord) -> str:
    """Serialize one record as its canonical JSON line (no newline)."""
    doc: dict = {
        "ts": record.ts,
        "level": record.level,
        "component": record.component,
        "msg": record.msg,
        "timebase": record.timebase,
        "fields": record.field_dict(),
    }
    if record.request_id is not None:
        doc["request_id"] = record.request_id
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def record_from_line(line: str) -> LogRecord:
    """Invert :func:`record_to_line` exactly; raises
    :class:`LogSchemaError` on anything that is not a conformant record."""
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise LogSchemaError(f"not JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise LogSchemaError("log line is not a JSON object")
    required = {"ts", "level", "component", "msg", "timebase", "fields"}
    missing = required - set(doc)
    if missing:
        raise LogSchemaError(f"missing keys: {', '.join(sorted(missing))}")
    unknown = set(doc) - required - {"request_id"}
    if unknown:
        raise LogSchemaError(f"unknown keys: {', '.join(sorted(unknown))}")
    if not isinstance(doc["ts"], (int, float)) or isinstance(doc["ts"], bool):
        raise LogSchemaError("'ts' must be a number")
    if doc["level"] not in LOG_LEVELS:
        raise LogSchemaError(f"unknown level {doc['level']!r}")
    for key in ("component", "msg", "timebase"):
        if not isinstance(doc[key], str):
            raise LogSchemaError(f"{key!r} must be a string")
    if not isinstance(doc["fields"], dict):
        raise LogSchemaError("'fields' must be an object")
    request_id = doc.get("request_id")
    if request_id is not None and not isinstance(request_id, str):
        raise LogSchemaError("'request_id' must be a string")
    return LogRecord(
        ts=doc["ts"],
        level=doc["level"],
        component=doc["component"],
        msg=doc["msg"],
        timebase=doc["timebase"],
        request_id=request_id,
        fields=tuple(sorted(doc["fields"].items())),
    )


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class StderrSink:
    """Writes each line to the *current* ``sys.stderr`` (not a frozen
    handle, so pytest's capture and redirections behave)."""

    def emit(self, line: str) -> None:
        print(line, file=sys.stderr)


class MemorySink:
    """Bounded in-memory ring of lines; tests and in-process dashboards."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._lines: deque[str] = deque(maxlen=capacity)

    def emit(self, line: str) -> None:
        self._lines.append(line)

    def lines(self) -> list[str]:
        return list(self._lines)

    def records(self) -> list[LogRecord]:
        return [record_from_line(line) for line in self._lines]

    def clear(self) -> None:
        self._lines.clear()

    def __len__(self) -> int:
        return len(self._lines)


class RotatingFileSink:
    """Appends lines to a file, rotating at ``max_bytes``.

    Rotation renames ``app.log`` → ``app.log.1`` → … → ``app.log.N``
    (oldest dropped), the classic size-based scheme: bounded disk under
    sustained load, and the live file is always the newest lines.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = DEFAULT_BACKUPS,
    ) -> None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._size = self.path.stat().st_size if self.path.exists() else 0

    def _rotate(self) -> None:
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for i in range(self.backups - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{i}")
                if src.exists():
                    os.replace(src, self.path.with_name(f"{self.path.name}.{i + 1}"))
            if self.path.exists():
                os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._size = 0

    def emit(self, line: str) -> None:
        data = line + "\n"
        with self._lock:
            if self._size + len(data) > self.max_bytes and self._size > 0:
                self._rotate()
            with open(self.path, "a", encoding="utf-8") as f:
                f.write(data)
            self._size += len(data)


# ----------------------------------------------------------------------
# manager + logger
# ----------------------------------------------------------------------
@dataclass
class LogManager:
    """Shared logging state: threshold, sinks, clock.

    One process normally has one manager (the module-level root); tests
    build private ones.  ``clock=None`` means wall time
    (``time.time()``); solver-side code can plug the simulated clock and
    set ``timebase="sim"``, mirroring the span recorder.
    """

    level: str = "warning"
    sinks: list = field(default_factory=lambda: [StderrSink()])
    clock: object = None
    timebase: str = "wall"

    def __post_init__(self) -> None:
        if self.level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level {self.level!r}")

    def enabled_for(self, level: str) -> bool:
        return _LEVEL_RANK[level] >= _LEVEL_RANK[self.level]

    def now(self) -> float:
        return self.clock() if self.clock is not None else time.time()

    def emit(self, record: LogRecord) -> None:
        line = record_to_line(record)
        for sink in self.sinks:
            sink.emit(line)


class StructuredLogger:
    """A component-bound façade over one :class:`LogManager`."""

    def __init__(self, component: str, manager: LogManager | None = None) -> None:
        self.component = component
        self._manager = manager

    @property
    def manager(self) -> LogManager:
        return self._manager if self._manager is not None else _root_manager()

    def enabled_for(self, level: str) -> bool:
        return self.manager.enabled_for(level)

    def log(self, level: str, msg: str, **fields: object) -> LogRecord | None:
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level {level!r}")
        manager = self.manager
        if not manager.enabled_for(level):
            return None
        record = LogRecord(
            ts=manager.now(),
            level=level,
            component=self.component,
            msg=msg,
            timebase=manager.timebase,
            request_id=current_request_id(),
            fields=tuple(sorted(fields.items())),
        )
        manager.emit(record)
        return record

    def debug(self, msg: str, **fields: object):
        return self.log("debug", msg, **fields)

    def info(self, msg: str, **fields: object):
        return self.log("info", msg, **fields)

    def warning(self, msg: str, **fields: object):
        return self.log("warning", msg, **fields)

    def error(self, msg: str, **fields: object):
        return self.log("error", msg, **fields)


# -- the process-wide root ---------------------------------------------
_ROOT = LogManager()


def _root_manager() -> LogManager:
    return _ROOT


def root_manager() -> LogManager:
    """The process-wide root manager.

    Exposed so process boundaries can replicate the configuration: the
    campaign pool initializer reads the parent's threshold here and
    re-applies it inside each worker, swapping the sinks for the
    queue-forwarding channel (worker records then surface through the
    parent's own stderr/file sinks instead of vanishing).
    """
    return _ROOT


def get_logger(component: str) -> StructuredLogger:
    """A logger bound to the process-wide root manager (late-bound, so
    :func:`configure_logging` affects loggers created before it ran)."""
    return StructuredLogger(component)


def configure_logging(
    *,
    level: str | None = None,
    stderr: bool = True,
    file: str | Path | None = None,
    max_bytes: int = DEFAULT_MAX_BYTES,
    backups: int = DEFAULT_BACKUPS,
    memory: MemorySink | None = None,
    clock=None,
    timebase: str | None = None,
) -> LogManager:
    """(Re)configure the root manager; returns it.

    ``level=None`` keeps the current threshold.  Sinks are rebuilt from
    the arguments: stderr (on by default), an optional rotating file and
    an optional caller-owned memory ring.
    """
    if level is not None:
        if level not in _LEVEL_RANK:
            raise ValueError(f"unknown log level {level!r}")
        _ROOT.level = level
    sinks: list = []
    if stderr:
        sinks.append(StderrSink())
    if file is not None:
        sinks.append(RotatingFileSink(file, max_bytes=max_bytes, backups=backups))
    if memory is not None:
        sinks.append(memory)
    _ROOT.sinks = sinks
    _ROOT.clock = clock
    if timebase is not None:
        _ROOT.timebase = timebase
    return _ROOT


def reset_logging() -> LogManager:
    """Restore the root manager to its defaults (tests)."""
    defaults = LogManager()
    _ROOT.level = defaults.level
    _ROOT.sinks = defaults.sinks
    _ROOT.clock = None
    _ROOT.timebase = defaults.timebase
    return _ROOT
