"""Shared plain-terminal rendering helpers.

The live dashboards (``repro top`` over the serving tier, ``repro
campaign --watch`` over the worker fleet) and the progress reporter all
render the same way: a plain-text frame with **no escape codes inside
it**, optionally preceded by one clear-and-home sequence when
repainting in place.  Keeping the frame itself escape-free is what
makes ``--once`` snapshots CI-greppable artifacts — the exact frame a
human watches is the exact text a pipeline asserts on.
"""

from __future__ import annotations

#: Clear the screen and home the cursor — the only ANSI the dashboards
#: ever emit, and only in live (non ``--once``) mode.
CLEAR = "\x1b[2J\x1b[H"


def hms(seconds: float) -> str:
    """``h:mm:ss`` (or ``m:ss`` under an hour) from a second count."""
    seconds = max(0, int(round(seconds)))
    h, rem = divmod(seconds, 3600)
    m, s = divmod(rem, 60)
    return f"{h}:{m:02d}:{s:02d}" if h else f"{m}:{s:02d}"


def fmt_ms(seconds: float | None) -> str:
    """Milliseconds with one decimal, right-aligned; ``--`` for None."""
    return "    --" if seconds is None else f"{seconds * 1e3:6.1f}"


def fmt_bytes(n: int | float | None) -> str:
    """Human-readable byte count (``512B``, ``3.2MB``, …)."""
    if not n or n <= 0:
        return "-"
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}TB"


def fmt_age(seconds: float | None) -> str:
    """A compact age (``3.2s``, ``41s``, ``2:05``); ``-`` for None."""
    if seconds is None:
        return "-"
    seconds = max(0.0, seconds)
    if seconds < 10.0:
        return f"{seconds:.1f}s"
    if seconds < 60.0:
        return f"{int(round(seconds))}s"
    return hms(seconds)
