"""Lightweight metrics: counters, gauges, histograms with explicit buckets.

A :class:`MetricsRegistry` is a deterministic, in-process metrics sink
modelled on the Prometheus client's data model but with none of its
runtime machinery: instruments are keyed by ``(name, labels)``, values
are plain Python numbers, and :meth:`MetricsRegistry.snapshot` emits a
JSON-shaped dict whose ordering is fully determined by the recorded
data — so two runs that record the same values produce byte-identical
snapshots, which is what the campaign's serial-vs-parallel equality
check relies on.

Registries merge: a campaign rolls worker-side registries (one per
cell, shipped inside each report's telemetry) into one campaign-level
registry with :meth:`MetricsRegistry.merge_snapshot` — counters and
histograms add, gauges keep the last value written.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Default histogram buckets: log-spaced upper bounds (seconds-ish).
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)

#: Default cap on distinct label sets per metric name (per instrument
#: family).  Every label axis we record is low-cardinality — phases,
#: schemes, statuses — so a run that approaches this is labelling by
#: something unbounded (rank ids, iterations) by mistake.
DEFAULT_MAX_LABEL_SETS = 128


class MetricsCardinalityError(ValueError):
    """A metric acquired more distinct label sets than the registry cap."""


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing total (float-valued)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Cumulative-bucket histogram with explicit upper bounds.

    ``buckets`` are finite upper bounds; an implicit +inf bucket catches
    the overflow, so ``counts`` has ``len(buckets) + 1`` slots.
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        self.buckets = tuple(float(b) for b in self.buckets)
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("bucket bounds must be sorted ascending")
        if any(math.isinf(b) for b in self.buckets):
            raise ValueError("the +inf bucket is implicit; give finite bounds")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.n += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0


@dataclass
class MetricsRegistry:
    """Deterministic registry of named, labelled instruments."""

    _counters: dict = field(default_factory=dict)
    _gauges: dict = field(default_factory=dict)
    _histograms: dict = field(default_factory=dict)
    #: Cap on distinct label sets per metric name within each instrument
    #: family; 0 disables the guard.
    max_label_sets: int = DEFAULT_MAX_LABEL_SETS

    def _get_or_create(self, table: dict, name: str, labels: dict, make):
        key = (name, _label_key(labels))
        inst = table.get(key)
        if inst is None:
            if self.max_label_sets > 0:
                existing = sum(1 for k in table if k[0] == name)
                if existing >= self.max_label_sets:
                    offending = (
                        "{" + ", ".join(f"{k}={v!r}" for k, v in key[1]) + "}"
                    )
                    raise MetricsCardinalityError(
                        f"metric {name!r} already has {existing} label sets "
                        f"(cap {self.max_label_sets}); rejected new label set "
                        f"{offending} — a label is carrying an unbounded "
                        "value (rank? iteration?)"
                    )
            inst = table[key] = make()
        return inst

    # -- instrument accessors (get-or-create) ---------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(self._counters, name, labels, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(self._gauges, name, labels, Gauge)

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            self._histograms, name, labels, lambda: Histogram(buckets=buckets)
        )

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshot / merge ----------------------------------------------
    @staticmethod
    def _series_name(key) -> str:
        name, labels = key
        if not labels:
            return name
        inner = ",".join(f"{k}={v}" for k, v in labels)
        return f"{name}{{{inner}}}"

    def snapshot(self) -> dict:
        """JSON-shaped dump, ordering fixed by sorted series names."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(self._counters, key=self._series_name):
            out["counters"][self._series_name(key)] = self._counters[key].value
        for key in sorted(self._gauges, key=self._series_name):
            out["gauges"][self._series_name(key)] = self._gauges[key].value
        for key in sorted(self._histograms, key=self._series_name):
            h = self._histograms[key]
            out["histograms"][self._series_name(key)] = {
                "buckets": list(h.buckets),
                "counts": list(h.counts),
                "total": h.total,
                "n": h.n,
            }
        return out

    @staticmethod
    def _parse_series(series: str) -> tuple[str, dict[str, str]]:
        if not series.endswith("}"):
            return series, {}
        name, _, inner = series[:-1].partition("{")
        labels = dict(pair.split("=", 1) for pair in inner.split(",") if pair)
        return name, labels

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict in: counters/histograms add,
        gauges overwrite."""
        for series, value in snap.get("counters", {}).items():
            name, labels = self._parse_series(series)
            self.counter(name, **labels).inc(value)
        for series, value in snap.get("gauges", {}).items():
            name, labels = self._parse_series(series)
            self.gauge(name, **labels).set(value)
        for series, data in snap.get("histograms", {}).items():
            name, labels = self._parse_series(series)
            h = self.histogram(
                name, buckets=tuple(data["buckets"]), **labels
            )
            if h.buckets != tuple(data["buckets"]):
                raise ValueError(
                    f"bucket mismatch merging histogram {series!r}"
                )
            for i, c in enumerate(data["counts"]):
                h.counts[i] += c
            h.total += data["total"]
            h.n += data["n"]

    @classmethod
    def from_snapshot(cls, snap: dict) -> "MetricsRegistry":
        reg = cls()
        reg.merge_snapshot(snap)
        return reg

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())
