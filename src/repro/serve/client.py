"""Small blocking client for the serving tier.

Used by the test suite, the CI smoke job and the load generator; it is
also the reference for how to talk to the API from any HTTP client.
One :class:`ServeClient` holds one keep-alive connection, so it is
cheap to issue many requests from one thread — and NOT thread-safe:
the load generator gives each worker thread its own client.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection


class ServeError(RuntimeError):
    """A non-2xx answer from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Blocking JSON client over one keep-alive connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8030, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self._conn = HTTPConnection(host, port, timeout=timeout)

    # -- plumbing ------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None):
        body = None if payload is None else json.dumps(payload)
        headers = {} if body is None else {"Content-Type": "application/json"}
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (ConnectionError, BrokenPipeError):
            # server dropped the keep-alive connection: retry once fresh
            self._conn.close()
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
            raw = response.read()
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            data = json.loads(raw.decode("utf-8")) if raw else {}
        else:
            data = raw.decode("utf-8")
        if response.status >= 400:
            message = (
                data.get("error", raw.decode("utf-8", "replace"))
                if isinstance(data, dict)
                else str(data)
            )
            raise ServeError(response.status, message)
        return data

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- API methods ---------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")

    def store_stats(self) -> dict:
        return self._request("GET", "/v1/store/stats")

    def solve(self, **fields) -> dict:
        """POST /v1/solve; ``fields`` are ExperimentConfig fields plus
        ``scheme`` (e.g. ``solve(matrix="wathen100", scheme="RD",
        nranks=8, n_faults=2, scale=0.25)``)."""
        return self._request("POST", "/v1/solve", fields)

    def project(self, sizes: list[int], schemes: list[str] | None = None) -> dict:
        payload: dict = {"sizes": sizes}
        if schemes is not None:
            payload["schemes"] = schemes
        return self._request("POST", "/v1/project", payload)

    def reports(self) -> dict:
        return self._request("GET", "/v1/reports")

    def report(self, key: str) -> dict:
        return self._request("GET", f"/v1/reports/{key}")

    def diff(self, key_a: str, key_b: str) -> dict:
        return self._request("GET", f"/v1/reports/diff?a={key_a}&b={key_b}")
