"""Small blocking client for the serving tier.

Used by the test suite, the CI smoke job and the load generator; it is
also the reference for how to talk to the API from any HTTP client.
One :class:`ServeClient` holds one keep-alive connection, so it is
cheap to issue many requests from one thread — and NOT thread-safe:
the load generator gives each worker thread its own client.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

from repro.obs.logging import REQUEST_ID_HEADER


class ServeError(RuntimeError):
    """A non-2xx answer from the server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Blocking JSON client over one keep-alive connection."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8030, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self._conn = HTTPConnection(host, port, timeout=timeout)
        #: Request id the server stamped on the most recent response
        #: (X-Repro-Request-Id) — the handle for log/trace correlation.
        self.last_request_id: str | None = None

    # -- plumbing ------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        headers: dict[str, str] | None = None,
    ):
        body = None if payload is None else json.dumps(payload)
        send_headers = dict(headers or {})
        if body is not None:
            send_headers.setdefault("Content-Type", "application/json")
        try:
            self._conn.request(method, path, body=body, headers=send_headers)
            response = self._conn.getresponse()
            raw = response.read()
        except (ConnectionError, BrokenPipeError):
            # server dropped the keep-alive connection: retry once fresh
            self._conn.close()
            self._conn.request(method, path, body=body, headers=send_headers)
            response = self._conn.getresponse()
            raw = response.read()
        self.last_request_id = response.getheader(REQUEST_ID_HEADER)
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            data = json.loads(raw.decode("utf-8")) if raw else {}
        else:
            data = raw.decode("utf-8")
        if response.status >= 400:
            message = (
                data.get("error", raw.decode("utf-8", "replace"))
                if isinstance(data, dict)
                else str(data)
            )
            raise ServeError(response.status, message)
        return data

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- API methods ---------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")

    def metrics_history(self, window_s: float | None = None) -> dict:
        path = "/metrics/history"
        if window_s is not None:
            path += f"?window={window_s:g}"
        return self._request("GET", path)

    def slo(self) -> dict:
        return self._request("GET", "/slo")

    def store_stats(self) -> dict:
        return self._request("GET", "/v1/store/stats")

    def solve(self, *, request_id: str | None = None, **fields) -> dict:
        """POST /v1/solve; ``fields`` are ExperimentConfig fields plus
        ``scheme`` (e.g. ``solve(matrix="wathen100", scheme="RD",
        nranks=8, n_faults=2, scale=0.25)``).  A caller-supplied
        ``request_id`` rides the X-Repro-Request-Id header and is
        honored by the server."""
        headers = None
        if request_id is not None:
            headers = {REQUEST_ID_HEADER: request_id}
        return self._request("POST", "/v1/solve", fields, headers=headers)

    def project(self, sizes: list[int], schemes: list[str] | None = None) -> dict:
        payload: dict = {"sizes": sizes}
        if schemes is not None:
            payload["schemes"] = schemes
        return self._request("POST", "/v1/project", payload)

    def reports(self) -> dict:
        return self._request("GET", "/v1/reports")

    def report(self, key: str) -> dict:
        return self._request("GET", f"/v1/reports/{key}")

    def diff(self, key_a: str, key_b: str) -> dict:
        return self._request("GET", f"/v1/reports/diff?a={key_a}&b={key_b}")
